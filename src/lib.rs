//! Umbrella crate for the DPS reproduction suite.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency.

pub use dps_cluster as cluster;
pub use dps_core as core;
pub use dps_ctrl as ctrl;
pub use dps_idle as idle;
pub use dps_metrics as metrics;
pub use dps_obs as obs;
pub use dps_rapl as rapl;
pub use dps_sched as sched;
pub use dps_sim_core as sim_core;
pub use dps_traffic as traffic;
pub use dps_workloads as workloads;
