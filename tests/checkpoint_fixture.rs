//! Old-format snapshot compatibility across the storage-layout change.
//!
//! `tests/fixtures/checkpoint_v2.bin` was written by the pre-refactor
//! `DpsManager` (per-unit `Vec<UnitState>` storage) via the committed
//! recipe below; `checkpoint_v2_expected.txt` holds the cap trajectories
//! (as f64 bit patterns) that same pre-refactor build produced after
//! restoring the snapshot. The struct-of-arrays manager must restore the
//! identical bytes into its column store and reproduce every cap
//! bit-for-bit — the checkpoint codec is a stable wire format, not an
//! internal detail of the storage layout.
//!
//! Regenerate (only with a build whose behaviour is the accepted baseline):
//!
//! ```text
//! DPS_REGEN_FIXTURE=1 cargo test --release --test checkpoint_fixture
//! ```

use dps_suite::core::manager::{PowerManager, UnitLimits};
use dps_suite::core::{DpsConfig, DpsManager, GuardConfig};
use dps_suite::sim_core::RngStream;

const N: usize = 4;
const BUDGET: f64 = 440.0;
const WARMUP_CYCLES: usize = 30;
const CONTINUATION_CYCLES: usize = 12;
const FIXTURE: &str = "tests/fixtures/checkpoint_v2.bin";
const EXPECTED: &str = "tests/fixtures/checkpoint_v2_expected.txt";

/// The pinned manager shape the fixture was checkpointed from.
fn fixture_manager() -> DpsManager {
    DpsManager::with_guard(
        N,
        BUDGET,
        UnitLimits::xeon_gold_6240(),
        DpsConfig::default(),
        GuardConfig {
            stuck_window: 5,
            quarantine_after: 2,
            probation_after: 3,
            readmit_after: 4,
            ..GuardConfig::default()
        },
        RngStream::new(0xF1D0, "fixture/checkpoint-v2"),
    )
}

/// Deterministic demand with a unit-0 sensor dropout window, so the
/// snapshot carries non-trivial guard state (quarantine, held samples)
/// alongside the Kalman/history/moments internals.
fn demand(t: usize, u: usize) -> f64 {
    if u == 0 && (12..18).contains(&t) {
        return f64::NAN;
    }
    let base = [120.0, 60.0, 95.0, 140.0][u];
    base + 0.4 * (((t + 3 * u) % 7) as f64 - 3.0)
}

fn drive_cycle(m: &mut DpsManager, caps: &mut [f64], t: usize) {
    let z: Vec<f64> = (0..N).map(|u| demand(t, u).min(caps[u])).collect();
    m.assign_caps(&z, caps, 1.0);
}

fn caps_to_hex(caps: &[f64]) -> String {
    caps.iter()
        .map(|c| format!("{:016x}", c.to_bits()))
        .collect::<Vec<_>>()
        .join(" ")
}

#[test]
fn v2_snapshot_fixture_restores_bit_exactly() {
    if std::env::var("DPS_REGEN_FIXTURE").is_ok() {
        let mut m = fixture_manager();
        let mut caps = vec![110.0; N];
        for t in 0..WARMUP_CYCLES {
            drive_cycle(&mut m, &mut caps, t);
        }
        let snap = m.checkpoint().unwrap();
        let mut lines = vec![caps_to_hex(&caps)];
        for t in WARMUP_CYCLES..WARMUP_CYCLES + CONTINUATION_CYCLES {
            drive_cycle(&mut m, &mut caps, t);
            lines.push(caps_to_hex(&caps));
        }
        std::fs::create_dir_all("tests/fixtures").unwrap();
        std::fs::write(FIXTURE, &snap).unwrap();
        std::fs::write(EXPECTED, lines.join("\n") + "\n").unwrap();
        eprintln!(
            "regenerated {FIXTURE} ({} bytes) and {EXPECTED}",
            snap.len()
        );
        return;
    }

    let snap = std::fs::read(FIXTURE).expect("committed v2 snapshot fixture");
    let expected: Vec<String> = std::fs::read_to_string(EXPECTED)
        .expect("committed expected-caps fixture")
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(expected.len(), 1 + CONTINUATION_CYCLES);

    let mut m = fixture_manager();
    m.restore(&snap).expect("v2 snapshot restores");
    assert_eq!(m.total_budget(), BUDGET);

    // The caps in force at checkpoint time are the first expected line.
    let mut caps: Vec<f64> = expected[0]
        .split_whitespace()
        .map(|h| f64::from_bits(u64::from_str_radix(h, 16).unwrap()))
        .collect();

    for (i, t) in (WARMUP_CYCLES..WARMUP_CYCLES + CONTINUATION_CYCLES).enumerate() {
        drive_cycle(&mut m, &mut caps, t);
        assert_eq!(
            caps_to_hex(&caps),
            expected[i + 1],
            "restored trajectory diverged from the pre-refactor build at cycle {t}"
        );
    }
}

#[test]
fn membership_churn_immediately_after_restore() {
    if std::env::var("DPS_REGEN_FIXTURE").is_ok() {
        return; // the sibling test is rewriting the fixture under us
    }
    let snap = std::fs::read(FIXTURE).expect("committed v2 snapshot fixture");
    let mut m = fixture_manager();
    m.restore(&snap).expect("v2 snapshot restores");

    // Unit 1 churns before the restored controller runs a single cycle —
    // the reset must land on freshly restored column state.
    m.observe_membership(&[true, false, true, true]);
    m.observe_membership(&[true, true, true, true]);

    let churned = m.unit_state(1);
    assert!(churned.power_history.is_empty(), "history survived churn");
    assert_eq!(churned.latest_estimate(), 0.0);
    assert_eq!(churned.history_std(), 0.0);
    assert!(!churned.high_freq && !churned.priority);
    // Non-churned neighbours keep the checkpointed state.
    assert!(!m.unit_state(0).power_history.is_empty());
    assert!(!m.unit_state(3).power_history.is_empty());

    // The post-churn controller still runs under budget discipline.
    let mut caps = vec![110.0; N];
    for t in 0..20 {
        drive_cycle(&mut m, &mut caps, WARMUP_CYCLES + t);
        let sum: f64 = caps.iter().sum();
        assert!(sum <= BUDGET + 1e-6, "budget violated after churn: {sum}");
    }
}
