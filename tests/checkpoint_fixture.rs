//! Old-format snapshot compatibility across the storage-layout change.
//!
//! `tests/fixtures/checkpoint_v2.bin` was written by the pre-refactor
//! `DpsManager` (per-unit `Vec<UnitState>` storage) via the committed
//! recipe in `tests/support/fixture_recipe.rs`;
//! `checkpoint_v2_expected.txt` holds the cap trajectories (as f64 bit
//! patterns) that same pre-refactor build produced after restoring the
//! snapshot. The struct-of-arrays manager must restore the identical
//! bytes into its column store and reproduce every cap bit-for-bit —
//! the checkpoint codec is a stable wire format, not an internal detail
//! of the storage layout.
//!
//! `tests/fixtures/checkpoint_sharded_v1.bin` is the hierarchical
//! counterpart: a 4-shard tree's snapshot (versioned `SHRD` framing with
//! the flat per-shard blobs nested inside) plus its continuation
//! trajectory, pinning the sharded wire format the same way.
//!
//! Regenerate (only with a build whose behaviour is the accepted baseline):
//!
//! ```text
//! DPS_REGEN_FIXTURE=1 cargo test --release --test checkpoint_fixture
//! ```

use dps_suite::core::manager::{PowerManager, UnitLimits};
use dps_suite::core::{DpsManager, ShardedManager};
use dps_suite::sim_core::RngStream;

#[path = "support/fixture_recipe.rs"]
mod recipe;

/// The pinned manager shape the flat fixture was checkpointed from.
fn fixture_manager() -> DpsManager {
    DpsManager::with_guard(
        recipe::N,
        recipe::BUDGET,
        recipe::limits(),
        recipe::dps_config(),
        recipe::guard(),
        recipe::rng(),
    )
}

#[test]
fn v2_snapshot_fixture_restores_bit_exactly() {
    if std::env::var("DPS_REGEN_FIXTURE").is_ok() {
        let mut m = fixture_manager();
        let mut caps = vec![110.0; recipe::N];
        for t in 0..recipe::WARMUP_CYCLES {
            recipe::drive_cycle(&mut m, &mut caps, t);
        }
        let snap = m.checkpoint().unwrap();
        let mut lines = vec![recipe::caps_to_hex(&caps)];
        for t in recipe::WARMUP_CYCLES..recipe::WARMUP_CYCLES + recipe::CONTINUATION_CYCLES {
            recipe::drive_cycle(&mut m, &mut caps, t);
            lines.push(recipe::caps_to_hex(&caps));
        }
        std::fs::create_dir_all("tests/fixtures").unwrap();
        std::fs::write(recipe::FIXTURE, &snap).unwrap();
        std::fs::write(recipe::EXPECTED, lines.join("\n") + "\n").unwrap();
        eprintln!(
            "regenerated {} ({} bytes) and {}",
            recipe::FIXTURE,
            snap.len(),
            recipe::EXPECTED
        );
        return;
    }

    let snap = std::fs::read(recipe::FIXTURE).expect("committed v2 snapshot fixture");
    let expected = recipe::expected_lines();
    assert_eq!(expected.len(), 1 + recipe::CONTINUATION_CYCLES);

    let mut m = fixture_manager();
    m.restore(&snap).expect("v2 snapshot restores");
    assert_eq!(m.total_budget(), recipe::BUDGET);

    // The caps in force at checkpoint time are the first expected line.
    let mut caps = recipe::caps_from_hex(&expected[0]);

    for (i, t) in
        (recipe::WARMUP_CYCLES..recipe::WARMUP_CYCLES + recipe::CONTINUATION_CYCLES).enumerate()
    {
        recipe::drive_cycle(&mut m, &mut caps, t);
        assert_eq!(
            recipe::caps_to_hex(&caps),
            expected[i + 1],
            "restored trajectory diverged from the pre-refactor build at cycle {t}"
        );
    }
}

#[test]
fn membership_churn_immediately_after_restore() {
    if std::env::var("DPS_REGEN_FIXTURE").is_ok() {
        return; // the sibling test is rewriting the fixture under us
    }
    let snap = std::fs::read(recipe::FIXTURE).expect("committed v2 snapshot fixture");
    let mut m = fixture_manager();
    m.restore(&snap).expect("v2 snapshot restores");

    // Unit 1 churns before the restored controller runs a single cycle —
    // the reset must land on freshly restored column state.
    m.observe_membership(&[true, false, true, true]);
    m.observe_membership(&[true, true, true, true]);

    let churned = m.unit_state(1);
    assert!(churned.power_history.is_empty(), "history survived churn");
    assert_eq!(churned.latest_estimate(), 0.0);
    assert_eq!(churned.history_std(), 0.0);
    assert!(!churned.high_freq && !churned.priority);
    // Non-churned neighbours keep the checkpointed state.
    assert!(!m.unit_state(0).power_history.is_empty());
    assert!(!m.unit_state(3).power_history.is_empty());

    // The post-churn controller still runs under budget discipline.
    let mut caps = vec![110.0; recipe::N];
    for t in 0..20 {
        recipe::drive_cycle(&mut m, &mut caps, recipe::WARMUP_CYCLES + t);
        let sum: f64 = caps.iter().sum();
        assert!(
            sum <= recipe::BUDGET + 1e-6,
            "budget violated after churn: {sum}"
        );
    }
}

// ---------------------------------------------------------------------
// Sharded fixture: the hierarchical wire format, pinned the same way.
// ---------------------------------------------------------------------

const SHARDED_N: usize = 8;
const SHARDED_BUDGET: f64 = 880.0;
const SHARDED_SHARDS: usize = 4;
const SHARDED_WARMUP: usize = 40;
const SHARDED_FIXTURE: &str = "tests/fixtures/checkpoint_sharded_v1.bin";
const SHARDED_EXPECTED: &str = "tests/fixtures/checkpoint_sharded_v1_expected.txt";

/// The pinned tree the sharded fixture was checkpointed from.
fn sharded_fixture_manager(num_shards: usize) -> ShardedManager {
    ShardedManager::with_guard(
        SHARDED_N,
        SHARDED_BUDGET,
        UnitLimits::xeon_gold_6240(),
        recipe::dps_config(),
        recipe::guard(),
        num_shards,
        RngStream::new(0x5A4D, "fixture/checkpoint-sharded-v1"),
    )
}

/// Skewed per-unit demand (hot and cold shards, one NaN dropout window)
/// so the snapshot carries real allocator state: unequal grants, primed
/// derivative EWMAs, guard holds.
fn sharded_demand(t: usize, u: usize) -> f64 {
    if u == 1 && (10..16).contains(&t) {
        return f64::NAN;
    }
    let base = [120.0, 60.0, 95.0, 140.0, 80.0, 130.0, 70.0, 110.0][u];
    base + 0.4 * (((t + 3 * u) % 7) as f64 - 3.0)
}

fn sharded_drive_cycle(m: &mut dyn PowerManager, caps: &mut [f64], t: usize) {
    let z: Vec<f64> = (0..SHARDED_N)
        .map(|u| sharded_demand(t, u).min(caps[u]))
        .collect();
    m.assign_caps(&z, caps, 1.0);
}

#[test]
fn sharded_v1_snapshot_fixture_restores_bit_exactly() {
    if std::env::var("DPS_REGEN_FIXTURE").is_ok() {
        let mut m = sharded_fixture_manager(SHARDED_SHARDS);
        let mut caps = vec![110.0; SHARDED_N];
        for t in 0..SHARDED_WARMUP {
            sharded_drive_cycle(&mut m, &mut caps, t);
        }
        let snap = m.checkpoint().unwrap();
        let mut lines = vec![recipe::caps_to_hex(&caps)];
        for t in SHARDED_WARMUP..SHARDED_WARMUP + recipe::CONTINUATION_CYCLES {
            sharded_drive_cycle(&mut m, &mut caps, t);
            lines.push(recipe::caps_to_hex(&caps));
        }
        std::fs::create_dir_all("tests/fixtures").unwrap();
        std::fs::write(SHARDED_FIXTURE, &snap).unwrap();
        std::fs::write(SHARDED_EXPECTED, lines.join("\n") + "\n").unwrap();
        eprintln!(
            "regenerated {SHARDED_FIXTURE} ({} bytes) and {SHARDED_EXPECTED}",
            snap.len()
        );
        return;
    }

    let snap = std::fs::read(SHARDED_FIXTURE).expect("committed sharded snapshot fixture");
    let expected: Vec<String> = std::fs::read_to_string(SHARDED_EXPECTED)
        .expect("committed sharded expected-caps fixture")
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(expected.len(), 1 + recipe::CONTINUATION_CYCLES);

    let mut m = sharded_fixture_manager(SHARDED_SHARDS);
    m.restore(&snap).expect("sharded v1 snapshot restores");
    assert_eq!(m.total_budget(), SHARDED_BUDGET);

    let mut caps = recipe::caps_from_hex(&expected[0]);
    for (i, t) in (SHARDED_WARMUP..SHARDED_WARMUP + recipe::CONTINUATION_CYCLES).enumerate() {
        sharded_drive_cycle(&mut m, &mut caps, t);
        assert_eq!(
            recipe::caps_to_hex(&caps),
            expected[i + 1],
            "restored sharded trajectory diverged at cycle {t}"
        );
    }
}

#[test]
fn sharded_fixture_rejects_mismatched_tree_shapes() {
    if std::env::var("DPS_REGEN_FIXTURE").is_ok() {
        return; // the sibling test is rewriting the fixture under us
    }
    let snap = std::fs::read(SHARDED_FIXTURE).expect("committed sharded snapshot fixture");

    // A tree with a different shard count must refuse cleanly (versioned
    // header), not misassemble the nested blobs.
    let mut two = sharded_fixture_manager(2);
    let err = two.restore(&snap).expect_err("cross-shard-count restore");
    assert!(
        err.contains("shard"),
        "error does not name the shard mismatch: {err}"
    );

    // The flat manager must also refuse the sharded framing outright.
    let mut flat = fixture_manager();
    assert!(
        flat.restore(&snap).is_err(),
        "flat manager accepted a sharded snapshot"
    );
}
