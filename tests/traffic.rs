//! Traffic-mode integration: request-driven elasticity, provisioning
//! churn, and the budget invariant, exercised through the whole stack
//! (generator → provisioner → simulator → manager → RAPL substrate).
//!
//! The headline acceptance checks live here:
//!
//! * with the elastic provisioner powering whole nodes on and off, the sum
//!   of caps applied to *powered* units never exceeds the cluster budget
//!   on any cycle, for any manager;
//! * an identical seed yields a bit-identical traffic trace;
//! * a membership flip covering ≥ 25 % of the fleet in a single
//!   `observe_membership` call leaves no stale per-unit state behind —
//!   no priority flags, no quarantine verdicts, no Kalman history.

use dps_suite::cluster::{ClusterSim, ExperimentConfig};
use dps_suite::core::guard::HealthState;
use dps_suite::core::manager::{ManagerKind, PowerManager, UnitLimits};
use dps_suite::core::{DpsConfig, DpsManager, GuardConfig};
use dps_suite::obs::SinkHandle;
use dps_suite::rapl::Topology;
use dps_suite::sim_core::RngStream;
use dps_suite::traffic::{ProvisionerConfig, ProvisionerMode, TrafficConfig, TrafficPattern};

const MANAGERS: [ManagerKind; 3] = [ManagerKind::Constant, ManagerKind::Slurm, ManagerKind::Dps];

/// 2 clusters × 2 nodes × 2 sockets under a flash crowd that forces the
/// reactive provisioner through both power-ons and hysteresis power-offs.
fn traffic_config(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(seed, 1);
    cfg.sim.topology = Topology::new(2, 2, 2);
    let total_sockets = cfg.sim.topology.total_units();
    let mut traffic = TrafficConfig::default_diurnal(total_sockets, 100.0);
    traffic.pattern = TrafficPattern::FlashCrowd {
        base_rps: 100.0,
        peak_rps: 0.9 * total_sockets as f64 * 100.0,
        start: 20.0,
        ramp: 10.0,
        hold: 60.0,
        decay: 10.0,
    };
    traffic.provisioner = ProvisionerMode::Reactive(ProvisionerConfig {
        target_utilization: 0.7,
        headroom_nodes: 0,
        power_off_after: 15.0,
        min_nodes: 1,
    });
    traffic.milestone_every = 10_000;
    cfg.sim.traffic = Some(traffic);
    cfg
}

/// Runs `cycles` windows asserting the powered-caps budget invariant on
/// every one. Returns (sim, peak powered nodes, min powered nodes seen
/// after the peak).
fn run_checked(cfg: &ExperimentConfig, kind: ManagerKind, cycles: u64) -> (ClusterSim, usize) {
    let mut sim = ClusterSim::with_traffic(
        cfg.sim.clone(),
        cfg.build_manager(kind),
        &RngStream::new(cfg.seed, "traffic-integration"),
    );
    let budget = cfg.sim.total_budget();
    let mut peak = 0;
    for _ in 0..cycles {
        sim.cycle();
        let occupied = sim.occupied_units().expect("traffic mode");
        let occupied_sum: f64 = sim
            .caps()
            .iter()
            .zip(occupied)
            .filter(|&(_, &occ)| occ)
            .map(|(&cap, _)| cap)
            .sum();
        assert!(
            occupied_sum <= budget + 1e-6,
            "{kind}: powered caps {occupied_sum:.3} W exceed budget {budget:.3} W at t={:.0}",
            sim.now()
        );
        peak = peak.max(sim.traffic_driver().unwrap().active_nodes());
    }
    (sim, peak)
}

#[test]
fn budget_safe_under_elastic_provisioning_for_every_manager() {
    let cfg = traffic_config(11);
    for kind in MANAGERS {
        let (sim, peak) = run_checked(&cfg, kind, 250);
        // The scenario must actually churn the fleet, or the invariant
        // check above guards nothing.
        assert!(peak >= 3, "{kind}: fleet never grew (peak {peak})");
        assert!(
            sim.traffic_driver().unwrap().active_nodes() < peak,
            "{kind}: fleet never shrank back"
        );
        let stats = sim.request_stats().unwrap();
        assert!(
            stats.served > 1_000.0,
            "{kind}: implausibly few requests served ({})",
            stats.served
        );
        // Conservation: every arrival is either served or still queued.
        let backlog = sim.traffic_driver().unwrap().backlog();
        assert!(
            (stats.arrived - stats.served - backlog).abs() < 1e-6,
            "{kind}: request conservation violated"
        );
    }
}

#[test]
fn identical_seed_yields_bit_identical_traffic_trace() {
    let record = || {
        let cfg = traffic_config(23);
        let mut sim = ClusterSim::with_traffic(
            cfg.sim.clone(),
            cfg.build_manager(ManagerKind::Dps),
            &RngStream::new(cfg.seed, "traffic-determinism"),
        );
        let sink = SinkHandle::recording(1 << 16);
        sim.set_trace_sink(sink.clone());
        for _ in 0..200 {
            sim.cycle();
        }
        sink.export().expect("recording sink exports")
    };
    let a = record();
    let b = record();
    assert!(
        a == b,
        "same seed must reproduce the traffic trace byte-for-byte"
    );

    let trace = dps_suite::obs::codec::decode(&a).expect("trace decodes");
    let reg = dps_suite::obs::ObsRegistry::from_events(&trace.events);
    assert!(reg.provision_power_ons() > 0, "no power-ons in the trace");
    assert!(reg.provision_power_offs() > 0, "no power-offs in the trace");
    assert!(reg.request_milestones() > 0, "no milestones in the trace");
    assert!(
        reg.membership_flips() > 0,
        "no membership flips in the trace"
    );
}

// ---- membership churn-rate stress (the ≥ 25 %-in-one-cycle regression) ----

const N: usize = 16;

fn guarded_manager(seed: u64) -> DpsManager {
    DpsManager::with_guard(
        N,
        110.0 * N as f64,
        UnitLimits {
            min_cap: 40.0,
            max_cap: 165.0,
        },
        DpsConfig::default(),
        GuardConfig {
            // Synthetic noise-free telemetry trips the zero-variance
            // detector; let the value gates do the detecting.
            stuck_window: 0,
            quarantine_after: 2,
            probation_after: 3,
            readmit_after: 4,
            ..Default::default()
        },
        RngStream::new(seed, "churn-stress"),
    )
}

/// One synthetic manager cycle: hot units report power near their caps,
/// quiet units report 30 W, and `faulty` units report NaN.
fn cycle(mgr: &mut DpsManager, caps: &mut [f64], faulty: &[usize]) {
    let measured: Vec<f64> = caps
        .iter()
        .enumerate()
        .map(|(u, &cap)| {
            if faulty.contains(&u) {
                f64::NAN
            } else if u < N / 2 {
                (cap - 1.0).max(40.0)
            } else {
                30.0
            }
        })
        .collect();
    mgr.assign_caps(&measured, caps, 1.0);
}

#[test]
fn quarter_fleet_churn_in_one_cycle_leaves_no_stale_state() {
    let budget = 110.0 * N as f64;
    let mut mgr = guarded_manager(0xC11);
    let mut caps = vec![110.0; N];
    let mut active = vec![true; N];
    mgr.observe_membership(&active);

    // Warm up: asymmetric load accumulates Kalman histories and priority
    // flags, and unit 0's NaN telemetry drives it into quarantine.
    for _ in 0..30 {
        cycle(&mut mgr, &mut caps, &[0]);
        assert!(caps.iter().sum::<f64>() <= budget + 1e-6);
    }
    let health = mgr.health().expect("guarded manager");
    assert!(
        health[0].is_isolated(),
        "precondition: unit 0 should be quarantined, got {:?}",
        health[0]
    );
    let priorities = mgr.priorities().expect("DPS tracks priorities");
    let hot_priorities = priorities[..N / 2].iter().filter(|&&p| p).count();
    assert!(
        hot_priorities > 0,
        "precondition: warm-up must set priority flags on hot units"
    );

    // Flip half the fleet — including the quarantined unit — in ONE call:
    // well above the 25 % churn-rate bar.
    active[..N / 2].fill(false);
    mgr.observe_membership(&active);

    // No stale state may survive the flip: priorities cleared, quarantine
    // verdicts dropped (the socket's next tenant starts with clean
    // telemetry history).
    let priorities = mgr.priorities().unwrap();
    for (u, &p) in priorities.iter().take(N / 2).enumerate() {
        assert!(!p, "unit {u}: priority flag survived the flip");
    }
    assert_eq!(
        mgr.health().unwrap()[0],
        HealthState::Healthy,
        "quarantine verdict survived the membership flip"
    );

    // The shrunken fleet keeps allocating safely...
    for _ in 0..20 {
        cycle(&mut mgr, &mut caps, &[]);
        assert!(
            caps.iter().sum::<f64>() <= budget + 1e-6,
            "budget overrun after mass power-off"
        );
    }

    // ...and so does the re-grown fleet (another ≥ 25 % flip, back on).
    active[..N / 2].fill(true);
    mgr.observe_membership(&active);
    for u in 0..N / 2 {
        assert!(
            !mgr.priorities().unwrap()[u],
            "unit {u}: rejoined with a stale priority flag"
        );
    }
    for _ in 0..30 {
        cycle(&mut mgr, &mut caps, &[]);
        assert!(
            caps.iter().sum::<f64>() <= budget + 1e-6,
            "budget overrun after mass power-on"
        );
    }
    // With clean telemetry after the churn, every unit must be healthy.
    assert!(
        mgr.health()
            .unwrap()
            .iter()
            .all(|h| *h == HealthState::Healthy),
        "stale guard state after churn: {:?}",
        mgr.health().unwrap()
    );
}
