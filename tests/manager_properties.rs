//! Property tests on the managers driven directly (no cluster simulator):
//! arbitrary measurement sequences can never break the budget, the limits,
//! or determinism-after-reset.

use dps_suite::core::budget::check_budget;
use dps_suite::core::manager::{ManagerKind, PowerManager, UnitLimits};
use dps_suite::core::{
    ConstantManager, DpsConfig, DpsManager, FeedbackConfig, FeedbackManager, MimdConfig,
    PredictiveConfig, PredictiveManager, QdpmConfig, QdpmManager, ShardedManager, SlurmManager,
    TwoLevelManager,
};
use dps_suite::sim_core::RngStream;
use proptest::prelude::*;

const LIMITS: UnitLimits = UnitLimits {
    min_cap: 40.0,
    max_cap: 165.0,
};

fn build(kind: ManagerKind, n: usize, budget: f64, seed: u64) -> Box<dyn PowerManager> {
    let rng = RngStream::new(seed, "prop-mgr");
    match kind {
        ManagerKind::Constant => Box::new(ConstantManager::new(n, budget, LIMITS)),
        ManagerKind::Slurm => Box::new(SlurmManager::new(
            n,
            budget,
            LIMITS,
            MimdConfig::default(),
            rng,
        )),
        ManagerKind::Dps => Box::new(DpsManager::new(
            n,
            budget,
            LIMITS,
            DpsConfig::default(),
            rng,
        )),
        ManagerKind::Feedback => Box::new(FeedbackManager::new(
            n,
            budget,
            LIMITS,
            FeedbackConfig::default(),
        )),
        ManagerKind::Predictive => Box::new(PredictiveManager::new(
            n,
            budget,
            LIMITS,
            PredictiveConfig::default(),
        )),
        ManagerKind::Qdpm => Box::new(QdpmManager::new(
            n,
            budget,
            LIMITS,
            QdpmConfig::default(),
            rng,
        )),
        // One socket per node keeps any unit count valid in the harness.
        ManagerKind::TwoLevel => Box::new(TwoLevelManager::new(
            n,
            1,
            budget,
            LIMITS,
            MimdConfig::default(),
            rng,
        )),
        // Two shards wherever the fleet can be split; the single-unit
        // degenerate tree otherwise.
        ManagerKind::Sharded => Box::new(ShardedManager::new(
            n,
            budget,
            LIMITS,
            DpsConfig::default(),
            2.min(n),
            rng,
        )),
        ManagerKind::Oracle => unreachable!("oracle needs demand feeds"),
    }
}

/// Managers exercised by the arbitrary-measurement invariant harness.
const REALISTIC: [ManagerKind; 8] = [
    ManagerKind::Constant,
    ManagerKind::Slurm,
    ManagerKind::Dps,
    ManagerKind::Feedback,
    ManagerKind::Predictive,
    ManagerKind::Qdpm,
    ManagerKind::TwoLevel,
    ManagerKind::Sharded,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bounded measurement traces: budget and limits hold on
    /// every cycle for every realistic manager.
    #[test]
    fn arbitrary_measurements_cannot_break_invariants(
        n in 1usize..12,
        kind_idx in 0usize..REALISTIC.len(),
        trace in prop::collection::vec(prop::collection::vec(0.0f64..200.0, 1..12), 1..60),
        seed in 0u64..100,
    ) {
        let kind = REALISTIC[kind_idx];
        let budget = n as f64 * 110.0;
        let mut mgr = build(kind, n, budget, seed);
        let mut caps = vec![110.0; n];
        for step in &trace {
            // Cycle the measurement vector to the unit count.
            let measured: Vec<f64> = (0..n).map(|u| step[u % step.len()]).collect();
            mgr.assign_caps(&measured, &mut caps, 1.0);
            check_budget(&caps, budget, LIMITS)
                .map_err(|e| TestCaseError::fail(format!("{kind}: {e}")))?;
        }
    }

    /// Reset really does restore the initial state: replaying the same
    /// trace gives the same caps.
    #[test]
    fn reset_is_a_true_reset(
        trace in prop::collection::vec(0.0f64..170.0, 5..40),
        seed in 0u64..100,
    ) {
        let n = 4;
        let mut mgr = build(ManagerKind::Dps, n, 440.0, seed);
        let run = |mgr: &mut Box<dyn PowerManager>| {
            let mut caps = vec![110.0; n];
            for &p in &trace {
                let measured = vec![p.min(caps[0]), (p * 0.5).min(caps[1]), 30.0, 150.0f64.min(caps[3])];
                mgr.assign_caps(&measured, &mut caps, 1.0);
            }
            caps
        };
        let first = run(&mut mgr);
        mgr.reset();
        let second = run(&mut mgr);
        prop_assert_eq!(first, second);
    }

    /// DPS with *zero* leftover budget and all units equal: caps stay at
    /// the constant cap (no spurious churn on a balanced saturated system).
    #[test]
    fn balanced_saturated_system_stays_balanced(steps in 5usize..60) {
        let n = 6;
        let mut mgr = build(ManagerKind::Dps, n, 660.0, 3);
        let mut caps = vec![110.0; n];
        for _ in 0..steps {
            let measured = vec![109.5; n];
            mgr.assign_caps(&measured, &mut caps, 1.0);
        }
        for &c in &caps {
            prop_assert!((c - 110.0).abs() < 1.0, "caps drifted: {caps:?}");
        }
    }

    /// Q-DPM's learning is seed-deterministic: two managers built with the
    /// same seed walk bit-identical Q-tables and caps through an arbitrary
    /// measurement trace, and a different seed diverges (the exploration
    /// draws really do come from the stream).
    #[test]
    fn qdpm_updates_are_seed_deterministic(
        trace in prop::collection::vec(0.0f64..170.0, 10..50),
        seed in 0u64..1_000,
    ) {
        let n = 4;
        let budget = 440.0;
        let run = |seed: u64| {
            let mut mgr = QdpmManager::new(
                n,
                budget,
                LIMITS,
                QdpmConfig::default(),
                RngStream::new(seed, "qdpm-prop"),
            );
            let mut caps = vec![110.0; n];
            for &p in &trace {
                let measured: Vec<f64> = (0..n)
                    .map(|u| ((p + u as f64 * 11.0) % 170.0).min(caps[u]))
                    .collect();
                mgr.assign_caps(&measured, &mut caps, 1.0);
            }
            let tables: Vec<Vec<f64>> =
                (0..n).map(|u| mgr.q_table(u).to_vec()).collect();
            (caps, tables)
        };
        let (caps_a, tables_a) = run(seed);
        let (caps_b, tables_b) = run(seed);
        prop_assert_eq!(&caps_a, &caps_b, "caps diverged under the same seed");
        prop_assert_eq!(&tables_a, &tables_b, "Q-tables diverged under the same seed");
        // A different seed must not replay the same exploration sequence:
        // the Q-tables (which integrate every draw) should differ.
        let (_, tables_c) = run(seed + 1);
        prop_assert!(tables_a != tables_c, "seed does not influence learning");
    }

    /// The DPS priority vector always matches the unit count and the
    /// restore flag is coherent with it.
    #[test]
    fn dps_priorities_well_formed(
        trace in prop::collection::vec(0.0f64..170.0, 1..30),
    ) {
        let n = 5;
        let mut mgr = DpsManager::new(n, 550.0, LIMITS, DpsConfig::default(), RngStream::new(1, "p"));
        let mut caps = vec![110.0; n];
        for &p in &trace {
            let measured: Vec<f64> = (0..n).map(|u| (p + u as f64 * 7.0) % 170.0).collect();
            let measured: Vec<f64> = measured.iter().zip(&caps).map(|(m, c)| m.min(*c)).collect();
            mgr.assign_caps(&measured, &mut caps, 1.0);
            prop_assert_eq!(mgr.priorities().unwrap().len(), n);
        }
    }
}

#[test]
fn oracle_equal_satisfaction_property() {
    // For any over-budget demand vector, the oracle's caps give every unit
    // (whose demand is above min-cap) the same demand fraction.
    use dps_suite::core::OracleManager;
    let mut rng = RngStream::new(17, "oracle-prop");
    for _ in 0..200 {
        let n = 6;
        let mut mgr = OracleManager::new(n, 500.0, LIMITS);
        let demands: Vec<f64> = (0..n).map(|_| rng.range(60.0..165.0)).collect();
        if demands.iter().sum::<f64>() <= 500.0 {
            continue;
        }
        mgr.observe_demands(&demands);
        let mut caps = vec![0.0; n];
        mgr.assign_caps(&vec![0.0; n], &mut caps, 1.0);
        let fracs: Vec<f64> = caps
            .iter()
            .zip(&demands)
            .filter(|(c, d)| **c > LIMITS.min_cap + 1e-6 && **d > LIMITS.min_cap)
            .map(|(c, d)| c / d)
            .collect();
        if fracs.len() > 1 {
            let lo = fracs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = fracs.iter().cloned().fold(0.0, f64::max);
            assert!(hi - lo < 1e-6, "satisfaction fractions differ: {fracs:?}");
        }
    }
}
