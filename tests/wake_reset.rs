//! Wake-path state-reset regression suite.
//!
//! With idle management wired into traffic mode, units flow through
//! `observe_membership` far more often than scheduler churn ever drove:
//! every demotion vacates a socket and every completed wake re-admits it.
//! The manager contract is that a re-admitted unit is indistinguishable
//! from a freshly constructed one — no Kalman estimate, no power/duration
//! history, no rolling-moment accumulators, no priority flag, no guard
//! verdict, and (for the Q-learning manager) no Q-table carryover from
//! the previous tenancy.
//!
//! These tests warm a manager into a visibly learned state, bounce a unit
//! off and back on through `observe_membership`, and compare the woken
//! unit field by field against a never-touched construction-state twin.

use dps_suite::core::guard::HealthState;
use dps_suite::core::manager::{PowerManager, UnitLimits};
use dps_suite::core::{DpsConfig, DpsManager, GuardConfig, QdpmConfig, QdpmManager};
use dps_suite::sim_core::RngStream;

const N: usize = 8;

fn limits() -> UnitLimits {
    UnitLimits {
        min_cap: 40.0,
        max_cap: 165.0,
    }
}

fn guarded_dps(seed: u64) -> DpsManager {
    DpsManager::with_guard(
        N,
        110.0 * N as f64,
        limits(),
        DpsConfig::default(),
        GuardConfig {
            // Noise-free synthetic telemetry trips the zero-variance
            // detector; the NaN value gate does the detecting here.
            stuck_window: 0,
            quarantine_after: 2,
            probation_after: 3,
            readmit_after: 4,
            ..Default::default()
        },
        RngStream::new(seed, "wake-reset"),
    )
}

/// One synthetic cycle: a per-unit load pattern asymmetric enough to build
/// distinct histories, with unit 0 reporting NaN telemetry.
fn warm_cycle(mgr: &mut DpsManager, caps: &mut [f64]) {
    let measured: Vec<f64> = caps
        .iter()
        .enumerate()
        .map(|(u, &cap)| {
            if u == 0 {
                f64::NAN
            } else if u % 2 == 0 {
                (cap - 1.0).max(40.0)
            } else {
                30.0 + u as f64
            }
        })
        .collect();
    mgr.assign_caps(&measured, caps, 1.0);
}

#[test]
fn woken_unit_reenters_dps_with_construction_state() {
    let mut mgr = guarded_dps(0xA3E);
    // The twin is never cycled: its unit states are the construction
    // state every woken unit must be reset to.
    let fresh = guarded_dps(0x1234);
    let mut caps = vec![110.0; N];

    // Warm up until the learned state is visibly non-fresh: histories
    // filled, priorities set, unit 0 quarantined on its NaN telemetry.
    for _ in 0..30 {
        warm_cycle(&mut mgr, &mut caps);
    }
    for u in [0, 2] {
        assert!(
            !mgr.unit_state(u).power_history.is_empty(),
            "precondition: unit {u} must have accumulated history"
        );
    }
    assert!(
        mgr.health().unwrap()[0].is_isolated(),
        "precondition: unit 0 should be quarantined, got {:?}",
        mgr.health().unwrap()[0]
    );
    assert!(
        mgr.priorities().unwrap().iter().any(|&p| p),
        "precondition: warm-up must set priority flags"
    );

    // Bounce units 0 and 2 off and back on — the demote → wake round trip
    // the idle ladder drives every time a dark unit is re-admitted.
    let mut active = vec![true; N];
    active[0] = false;
    active[2] = false;
    mgr.observe_membership(&active);
    active[0] = true;
    active[2] = true;
    mgr.observe_membership(&active);

    for u in [0, 2] {
        let woken = mgr.unit_state(u);
        let twin = fresh.unit_state(u);
        // Kalman filter: back to the construction estimate.
        assert_eq!(
            woken.latest_estimate(),
            twin.latest_estimate(),
            "unit {u}: Kalman estimate survived the wake"
        );
        // Power/duration histories and their rolling accumulators: empty.
        assert!(
            woken.power_history.is_empty(),
            "unit {u}: power history survived the wake"
        );
        assert!(
            woken.duration_history.is_empty(),
            "unit {u}: duration history survived the wake"
        );
        assert_eq!(
            woken.history_std(),
            twin.history_std(),
            "unit {u}: rolling moments survived the wake"
        );
        assert!(!woken.high_freq, "unit {u}: classification survived");
        assert!(!woken.priority, "unit {u}: priority flag survived");
    }
    // Guard verdict: the socket's next tenant starts with clean telemetry
    // history, so the quarantine must not outlive the tenancy.
    assert_eq!(
        mgr.health().unwrap()[0],
        HealthState::Healthy,
        "quarantine verdict survived the wake"
    );

    // An untouched unit keeps its learned state — reset is per-unit, not
    // fleet-wide.
    assert!(
        !mgr.unit_state(4).power_history.is_empty(),
        "unit 4 was never flipped; its history must survive"
    );
}

#[test]
fn woken_unit_reenters_qdpm_with_construction_state() {
    let config = QdpmConfig::default();
    let mut mgr = QdpmManager::new(
        N,
        110.0 * N as f64,
        limits(),
        config,
        RngStream::new(0xBEEF, "qdpm-wake"),
    );
    let fresh = QdpmManager::new(
        N,
        110.0 * N as f64,
        limits(),
        config,
        RngStream::new(0x5EED, "qdpm-wake-twin"),
    );
    let mut caps = vec![110.0; N];

    // Warm up: saturated even units and idle odd units drive the Q-table
    // away from its optimistic initialisation.
    for _ in 0..60 {
        let measured: Vec<f64> = caps
            .iter()
            .enumerate()
            .map(|(u, &cap)| if u % 2 == 0 { cap } else { 0.0 })
            .collect();
        mgr.assign_caps(&measured, &mut caps, 1.0);
    }
    assert_ne!(
        mgr.q_table(2),
        fresh.q_table(2),
        "precondition: warm-up must move unit 2's Q-table"
    );

    let mut active = vec![true; N];
    active[2] = false;
    mgr.observe_membership(&active);
    active[2] = true;
    mgr.observe_membership(&active);

    // The woken unit's learning state is the construction state: the
    // optimistic Q-table and the undecayed exploration rate.
    assert_eq!(
        mgr.q_table(2),
        fresh.q_table(2),
        "unit 2: Q-table survived the wake"
    );
    // Untouched units keep their learned tables.
    assert_ne!(
        mgr.q_table(4),
        fresh.q_table(4),
        "unit 4 was never flipped; its Q-table must survive"
    );
}
