//! Property tests on the request-arrival generators: seed determinism,
//! rate-curve bounds, and conservation of the sampled arrival streams.

use dps_suite::sim_core::RngStream;
use dps_suite::traffic::{PlaybackPoint, RequestGenerator, TrafficPattern};
use proptest::prelude::*;

/// Strategy for valid diurnal patterns: peak built as base + extra so the
/// pair is always ordered.
fn diurnal_strategy() -> impl Strategy<Value = TrafficPattern> {
    (
        0.0f64..2_000.0,
        0.0f64..3_000.0,
        60.0f64..90_000.0,
        0.0f64..1.0,
    )
        .prop_map(|(base, extra, period, phase)| TrafficPattern::Diurnal {
            base_rps: base,
            peak_rps: base + extra,
            period,
            phase,
        })
}

/// Strategy for valid flash-crowd patterns (ramp/hold/decay may be zero).
fn flash_crowd_strategy() -> impl Strategy<Value = TrafficPattern> {
    (
        0.0f64..1_000.0,
        0.0f64..5_000.0,
        0.0f64..500.0,
        0.0f64..120.0,
        0.0f64..600.0,
        0.0f64..120.0,
    )
        .prop_map(
            |(base, extra, start, ramp, hold, decay)| TrafficPattern::FlashCrowd {
                base_rps: base,
                peak_rps: base + extra,
                start,
                ramp,
                hold,
                decay,
            },
        )
}

/// Samples `windows` one-second arrival batches from a fresh generator.
fn sample_stream(pattern: &TrafficPattern, seed: u64, windows: usize) -> Vec<f64> {
    let mut generator = RequestGenerator::new(pattern.clone(), RngStream::new(seed, "proptest"));
    (0..windows)
        .map(|w| generator.arrivals(w as f64, 1.0, 0.0))
        .collect()
}

proptest! {
    #[test]
    fn same_seed_means_identical_arrival_stream(
        pattern in diurnal_strategy(),
        seed in 0u64..1_000_000,
    ) {
        prop_assert!(pattern.validate().is_ok());
        let a = sample_stream(&pattern, seed, 50);
        let b = sample_stream(&pattern, seed, 50);
        prop_assert_eq!(a, b, "seeded generator must be bit-reproducible");
    }

    #[test]
    fn diurnal_rates_are_never_negative(
        pattern in diurnal_strategy(),
        t in -100.0f64..200_000.0,
    ) {
        let rate = pattern.rate_at(t);
        prop_assert!(rate >= 0.0, "rate {rate} at t={t}");
        prop_assert!(rate.is_finite());
        // And bounded by the configured crest.
        prop_assert!(rate <= pattern.peak_rate() + 1e-9);
    }

    #[test]
    fn flash_crowd_burst_is_bounded_by_the_configured_peak(
        pattern in flash_crowd_strategy(),
        t in -50.0f64..2_000.0,
    ) {
        prop_assert!(pattern.validate().is_ok());
        let rate = pattern.rate_at(t);
        prop_assert!(rate >= 0.0);
        prop_assert!(
            rate <= pattern.peak_rate() + 1e-9,
            "rate {rate} exceeds configured peak {}",
            pattern.peak_rate()
        );
    }

    #[test]
    fn arrivals_are_finite_and_non_negative(
        pattern in flash_crowd_strategy(),
        seed in 0u64..100_000,
    ) {
        for batch in sample_stream(&pattern, seed, 40) {
            prop_assert!(batch.is_finite());
            prop_assert!(batch >= 0.0);
        }
    }

    #[test]
    fn playback_interpolation_stays_inside_the_sample_hull(
        rps in prop::collection::vec(0.0f64..3_000.0, 2..12),
        t in -10.0f64..400.0,
    ) {
        let points: Vec<PlaybackPoint> = rps
            .iter()
            .enumerate()
            .map(|(i, &r)| PlaybackPoint { time: 30.0 * i as f64, rps: r })
            .collect();
        let pattern = TrafficPattern::Playback(points);
        prop_assert!(pattern.validate().is_ok());
        let rate = pattern.rate_at(t);
        let lo = rps.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = rps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(rate >= lo - 1e-9 && rate <= hi + 1e-9, "{rate} outside [{lo}, {hi}]");
    }
}
