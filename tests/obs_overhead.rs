//! Observability overhead guard.
//!
//! The `dps-obs` acceptance bar: a manager with the default no-op
//! [`TraceSink`](dps_suite::obs::TraceSink) attached must step within 2 %
//! of one with no sink interaction at all, at the scale bench's largest
//! size (16 384 units, the `paper_default_w20` cell of
//! `results/BENCH_manager_scaling.json`).
//!
//! Two layers of defence:
//!
//! * **Differential, always on** — both variants are timed in the same
//!   process with interleaved min-of-trials, so machine speed, build mode
//!   and CPU contention cancel out. This is the check that gates CI.
//! * **Baseline structure, always on** — the committed PR4 bench JSON must
//!   still carry the 16 384-unit cells this guard is calibrated against,
//!   so a silent regeneration that drops the big size cannot defang the
//!   guard.
//! * **Absolute, opt-in** — `DPS_STRICT_OVERHEAD=1` (release builds on a
//!   quiet machine) additionally compares the measured per-cycle time
//!   against the committed baseline numbers.

use dps_suite::core::config::DpsConfig;
use dps_suite::core::manager::{PowerManager, UnitLimits};
use dps_suite::core::DpsManager;
use dps_suite::obs::SinkHandle;
use dps_suite::sim_core::RngStream;
use std::sync::Mutex;
use std::time::Instant;

/// Timed tests must not run concurrently with each other — the harness runs
/// tests on parallel threads, and a second bench on a sibling core skews
/// the comparison.
static TIMING_LOCK: Mutex<()> = Mutex::new(());

const UNITS: usize = 16_384;
const WARMUP_CYCLES: usize = 84; // history_len + 64, as in the scale bench
const TRIALS: usize = 5;
const CYCLES_PER_TRIAL: usize = 12;

/// The scale bench's deterministic sawtooth churn driver
/// (`paper_default_w20`): every unit ramps 40→160 W over 20 cycles with a
/// per-unit phase offset.
struct Churn {
    measured: Vec<f64>,
    caps: Vec<f64>,
    step: usize,
}

impl Churn {
    fn new(n: usize) -> Self {
        Self {
            measured: vec![0.0; n],
            caps: vec![110.0; n],
            step: 0,
        }
    }

    fn drive(&mut self, mgr: &mut DpsManager) {
        self.step += 1;
        for (u, m) in self.measured.iter_mut().enumerate() {
            let phase = ((self.step + u) % 20) as f64 / 20.0;
            *m = (40.0 + 120.0 * phase).min(self.caps[u]);
        }
        mgr.assign_caps(&self.measured, &mut self.caps, 1.0);
    }
}

fn bench_manager(attach_noop: bool) -> (DpsManager, Churn) {
    let mut mgr = DpsManager::new(
        UNITS,
        110.0 * UNITS as f64,
        UnitLimits::xeon_gold_6240(),
        DpsConfig::default(),
        RngStream::new(7, "scale/step-bench"),
    );
    if attach_noop {
        mgr.attach_trace(SinkHandle::noop());
    }
    let mut churn = Churn::new(UNITS);
    for _ in 0..WARMUP_CYCLES {
        churn.drive(&mut mgr);
    }
    (mgr, churn)
}

fn time_trial(mgr: &mut DpsManager, churn: &mut Churn) -> f64 {
    let start = Instant::now();
    for _ in 0..CYCLES_PER_TRIAL {
        churn.drive(mgr);
    }
    start.elapsed().as_secs_f64() / CYCLES_PER_TRIAL as f64
}

#[test]
fn noop_sink_overhead_is_within_two_percent() {
    let _serial = TIMING_LOCK.lock().unwrap();
    let (mut plain_mgr, mut plain_churn) = bench_manager(false);
    let (mut noop_mgr, mut noop_churn) = bench_manager(true);

    // Paired min-of-ratios: each trial times both variants back to back, so
    // a frequency ramp or background load hits the pair alike, and the
    // least-perturbed pair is the cleanest observation of the true
    // overhead. Any pair showing the noop variant within budget bounds the
    // real cost from above.
    let mut best_ratio = f64::INFINITY;
    let mut best_pair = (0.0, 0.0);
    for _ in 0..TRIALS {
        let plain = time_trial(&mut plain_mgr, &mut plain_churn);
        let noop = time_trial(&mut noop_mgr, &mut noop_churn);
        let ratio = noop / plain;
        if ratio < best_ratio {
            best_ratio = ratio;
            best_pair = (plain, noop);
        }
    }

    // The decisions themselves must be identical — this is a timing
    // comparison, not a behavioural fork.
    assert_eq!(
        plain_churn.caps, noop_churn.caps,
        "attaching a no-op sink changed the decisions"
    );

    assert!(
        best_ratio <= 1.02,
        "no-op sink costs {:.2}% per cycle in the cleanest of {TRIALS} trials \
         (plain {:.1} µs, noop {:.1} µs); budget is 2%",
        (best_ratio - 1.0) * 100.0,
        best_pair.0 * 1e6,
        best_pair.1 * 1e6,
    );
}

/// Pulls `per_cycle_us` for a (config, units, mode) cell out of the bench
/// JSON without a JSON dependency — the file is line-per-cell by
/// construction (see `scale.rs`).
fn baseline_cell(json: &str, config: &str, units: usize, mode: &str) -> Option<f64> {
    let key = format!("\"config\": \"{config}\", \"units\": {units}, \"mode\": \"{mode}\"");
    let line = json.lines().find(|l| l.contains(&key))?;
    let field = line.split("\"per_cycle_us\": ").nth(1)?;
    field.split([',', '}']).next()?.trim().parse().ok()
}

#[test]
fn bench_baseline_still_carries_the_guarded_cells() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/BENCH_manager_scaling.json"
    );
    let json = std::fs::read_to_string(path).expect("committed PR4 bench baseline present");
    assert!(
        json.contains("\"experiment\": \"dps_manager_step_scaling\""),
        "unexpected experiment id in {path}"
    );
    for mode in ["incremental", "rescan"] {
        let cell = baseline_cell(&json, "paper_default_w20", UNITS, mode);
        let us = cell
            .unwrap_or_else(|| panic!("baseline lost the paper_default_w20/{UNITS}/{mode} cell"));
        assert!(
            us.is_finite() && us > 0.0,
            "nonsensical baseline per_cycle_us {us}"
        );
    }
}

/// Opt-in absolute check against the committed PR4 baseline numbers:
///
/// ```text
/// DPS_STRICT_OVERHEAD=1 cargo test --release --test obs_overhead
/// ```
///
/// Wall-clock numbers drift by tens of percent between runs on the same
/// container (frequency scaling, host load), so the precise 2 % bound
/// lives in the *differential* test above. This check exists to catch a
/// categorical regression the differential can't see — observability cost
/// accidentally baked into both variants, e.g. an unconditional encode in
/// `assign_caps` — which would show up as a multiple of the baseline, not
/// a few percent.
#[test]
fn strict_absolute_overhead_check() {
    if std::env::var_os("DPS_STRICT_OVERHEAD").is_none() {
        eprintln!("skipped (set DPS_STRICT_OVERHEAD=1 in a release build to enable)");
        return;
    }
    const DRIFT_ALLOWANCE: f64 = 3.0;
    let _serial = TIMING_LOCK.lock().unwrap();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/BENCH_manager_scaling.json"
    );
    let json = std::fs::read_to_string(path).expect("bench baseline present");
    let baseline_us = baseline_cell(&json, "paper_default_w20", UNITS, "incremental")
        .expect("baseline cell present");

    let (mut mgr, mut churn) = bench_manager(true);
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        best = best.min(time_trial(&mut mgr, &mut churn));
    }
    let measured_us = best * 1e6;
    eprintln!(
        "noop-sink stepping: {measured_us:.1} µs/cycle vs {baseline_us:.1} µs committed \
         baseline ({:+.2}%)",
        (measured_us / baseline_us - 1.0) * 100.0,
    );
    assert!(
        measured_us <= baseline_us * DRIFT_ALLOWANCE,
        "noop-sink stepping costs {measured_us:.1} µs/cycle — beyond the PR4 baseline's \
         {baseline_us:.1} µs even after a {DRIFT_ALLOWANCE}x machine-drift allowance; the \
         observability layer is leaking work into the hot path",
    );
}
