//! Property tests on the workload substrate: demand programs, the
//! power→performance model, and run bookkeeping conserve what they must.

use dps_suite::workloads::{
    build_program, catalog, DemandProgram, PerfModel, Phase, RunningWorkload,
};
use proptest::prelude::*;

/// Strategy for arbitrary (but valid) demand programs.
fn program_strategy() -> impl Strategy<Value = DemandProgram> {
    prop::collection::vec(
        (0.5f64..60.0, 0.0f64..165.0, 0.0f64..165.0, any::<bool>()),
        1..12,
    )
    .prop_map(|phases| {
        DemandProgram::new(
            phases
                .into_iter()
                .map(|(dur, a, b, ramp)| {
                    if ramp {
                        Phase::ramp(dur, a, b)
                    } else {
                        Phase::constant(dur, a)
                    }
                })
                .collect(),
        )
    })
}

proptest! {
    #[test]
    fn demand_bounded_by_phase_levels(program in program_strategy(), t in -10.0f64..500.0) {
        let d = program.demand_at(t);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= program.peak_demand() + 1e-9);
    }

    #[test]
    fn total_work_is_sum_of_durations(program in program_strategy()) {
        let sum: f64 = program.phases().iter().map(|p| p.duration).sum();
        prop_assert!((program.total_work() - sum).abs() < 1e-9);
    }

    #[test]
    fn work_scaling_preserves_demand_levels(
        program in program_strategy(),
        factor in 0.1f64..10.0,
        frac in 0.0f64..1.0,
    ) {
        let scaled = program.scale_work(factor);
        prop_assert!((scaled.total_work() - program.total_work() * factor).abs() < 1e-6);
        // Demand at the same *relative* position is preserved.
        let t = program.total_work() * frac * 0.999;
        let d0 = program.demand_at(t);
        let d1 = scaled.demand_at(t * factor);
        prop_assert!((d0 - d1).abs() < 1e-6, "{d0} vs {d1}");
    }

    #[test]
    fn perf_rate_monotone_and_bounded(
        demand in 0.0f64..165.0,
        g1 in 0.0f64..165.0,
        g2 in 0.0f64..165.0,
        alpha in 0.3f64..1.0,
    ) {
        let m = PerfModel::new(alpha, 15.0);
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        let r_lo = m.rate(demand, lo);
        let r_hi = m.rate(demand, hi);
        prop_assert!(r_lo <= r_hi + 1e-12, "monotonicity");
        prop_assert!(r_hi <= 1.0 + 1e-12);
        prop_assert!(r_lo > 0.0, "progress never stalls completely");
    }

    #[test]
    fn grant_for_rate_is_right_inverse(
        demand in 30.0f64..165.0,
        target in 0.05f64..1.0,
        alpha in 0.3f64..1.0,
    ) {
        let m = PerfModel::new(alpha, 15.0);
        let grant = m.grant_for_rate(demand, target);
        let achieved = m.rate(demand, grant);
        // Below the floor the inverse saturates; otherwise it's exact.
        prop_assert!(achieved >= target - 1e-6, "{achieved} < {target}");
    }

    #[test]
    fn run_durations_scale_with_rate(
        work in 5.0f64..100.0,
        rate in 0.1f64..1.0,
    ) {
        let program = DemandProgram::new(vec![Phase::constant(work, 100.0)]);
        let mut w = RunningWorkload::once(program, PerfModel::linear(0.0));
        let mut guard = 0;
        while !w.is_done() && guard < 100_000 {
            w.advance_with_rate(rate, 1.0);
            guard += 1;
        }
        prop_assert!(w.is_done());
        let expected = work / rate;
        let got = w.run_durations()[0];
        prop_assert!((got - expected).abs() < 1.0 + 1e-9, "{got} vs {expected}");
    }

    #[test]
    fn progress_conserved_across_windows(
        work in 5.0f64..60.0,
        splits in prop::collection::vec(0.05f64..1.0, 1..50),
    ) {
        // However the windows are sliced, total progressed work equals the
        // program's total work at completion.
        let program = DemandProgram::new(vec![Phase::constant(work, 120.0)]);
        let mut w = RunningWorkload::once(program, PerfModel::linear(0.0));
        let mut progressed = 0.0;
        'outer: loop {
            for &rate in &splits {
                if w.is_done() {
                    break 'outer;
                }
                progressed += w.advance_with_rate(rate, 1.0);
            }
            if w.elapsed() > 100_000.0 {
                break;
            }
        }
        prop_assert!(w.is_done());
        prop_assert!((progressed - work).abs() < 1e-6, "{progressed} vs {work}");
    }
}

#[test]
fn every_catalog_workload_calibrates() {
    // Multiple seeds: calibration must hold for any realisation.
    let perf = PerfModel::paper_default();
    for spec in catalog::SPARK_WORKLOADS
        .iter()
        .chain(catalog::NPB_WORKLOADS)
    {
        for seed in [10, 20, 30] {
            let program = build_program(spec, &perf, seed);
            let d = dps_suite::workloads::generator::capped_duration(&program, &perf, 110.0);
            let rel = (d - spec.duration_110w).abs() / spec.duration_110w;
            assert!(
                rel < 0.01,
                "{} seed {seed}: {d} vs {}",
                spec.name,
                spec.duration_110w
            );
            assert!(program.peak_demand() <= 165.0 + 1e-9, "{}", spec.name);
        }
    }
}
