//! The paper's headline guarantees as integration tests.
//!
//! * DPS "ensures the same lower-bound performance as constant allocation"
//!   (§4.1): on every tested pair DPS's pair harmonic-mean speedup over the
//!   constant baseline stays above 1 minus a small transient tolerance.
//! * In the Spark×NPB regime DPS outperforms SLURM (§6.3).
//! * In the low-utility regime all dynamic managers beat constant
//!   allocation (§6.1).

use dps_suite::cluster::{run_pair, ExperimentConfig};
use dps_suite::core::manager::ManagerKind;
use dps_suite::rapl::Topology;
use dps_suite::workloads::catalog;

fn config(seed: u64, reps: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(seed, reps);
    // Smaller topology for test runtime; the managers' logic is unchanged.
    cfg.sim.topology = Topology::new(2, 2, 2);
    cfg
}

fn speedups(a: &str, b: &str, kind: ManagerKind, cfg: &ExperimentConfig) -> (f64, f64, f64) {
    let spec_a = catalog::find(a).unwrap();
    let spec_b = catalog::find(b).unwrap();
    let baseline = run_pair(spec_a, spec_b, ManagerKind::Constant, cfg);
    let out = run_pair(spec_a, spec_b, kind, cfg);
    let (ba, bb) = (baseline.a.hmean_duration(), baseline.b.hmean_duration());
    (
        out.speedup_a(ba),
        out.speedup_b(bb),
        out.pair_speedup(ba, bb),
    )
}

#[test]
fn dps_never_meaningfully_below_constant() {
    // A spread of regimes: low utility, high utility, Spark×NPB,
    // high-frequency, sustained×sustained.
    let pairs = [
        ("LDA", "Sort"),
        ("LR", "Wordcount"),
        ("Kmeans", "GMM"),
        ("Bayes", "GMM"),
        ("GMM", "EP"),
        ("LR", "FT"),
        ("RF", "LU"),
    ];
    for (a, b) in pairs {
        let cfg = config(3, 2);
        let (_, _, pair) = speedups(a, b, ManagerKind::Dps, &cfg);
        assert!(
            pair > 0.98,
            "{a}+{b}: DPS pair speedup {pair:.3} violates the lower bound"
        );
    }
}

#[test]
fn dps_beats_slurm_on_spark_npb() {
    for (a, b) in [("GMM", "EP"), ("Bayes", "LU"), ("Kmeans", "BT")] {
        let cfg = config(5, 2);
        let (_, _, dps) = speedups(a, b, ManagerKind::Dps, &cfg);
        let (_, _, slurm) = speedups(a, b, ManagerKind::Slurm, &cfg);
        assert!(
            dps > slurm + 0.01,
            "{a}+{b}: DPS {dps:.3} should clearly beat SLURM {slurm:.3}"
        );
    }
}

#[test]
fn slurm_pair_falls_below_constant_on_spark_npb() {
    // The failure mode that motivates DPS: SLURM's greedy allocation makes
    // the *pair* slower than doing nothing.
    let cfg = config(5, 2);
    let (_, _, slurm) = speedups("Bayes", "LU", ManagerKind::Slurm, &cfg);
    assert!(
        slurm < 1.0,
        "SLURM pair speedup {slurm:.3} should fall below constant on Bayes+LU"
    );
}

#[test]
fn dynamic_managers_beat_constant_in_low_utility() {
    let cfg = config(7, 2);
    for kind in [ManagerKind::Dps, ManagerKind::Oracle] {
        let (a, _, _) = speedups("LDA", "Sort", kind, &cfg);
        assert!(
            a > 1.02,
            "{kind}: LDA paired with Sort should speed up, got {a:.3}"
        );
    }
}

#[test]
fn oracle_close_to_best_in_low_utility() {
    // The oracle is the ceiling in the low-utility regime: DPS must land
    // within a few percent of it *on average* (the paper reports
    // near-identical mean bars; individual pairs vary). Aggregate LDA's
    // Fig. 4 row — its four low-power pairings — at the paper topology.
    let cfg = ExperimentConfig::paper_default(9, 1);
    let partners = ["Wordcount", "Sort", "Terasort", "Repartition"];
    let mean = |kind: ManagerKind| -> f64 {
        partners
            .iter()
            .map(|b| speedups("LDA", b, kind, &cfg).0)
            .sum::<f64>()
            / partners.len() as f64
    };
    let oracle_a = mean(ManagerKind::Oracle);
    let dps_a = mean(ManagerKind::Dps);
    assert!(
        dps_a > oracle_a - 0.05,
        "DPS {dps_a:.3} should be within 5% of oracle {oracle_a:.3} on average"
    );
}

#[test]
fn dps_fairness_exceeds_slurm_under_contention() {
    let cfg = config(13, 2);
    let spec_a = catalog::find("GMM").unwrap();
    let spec_b = catalog::find("SP").unwrap();
    let dps = run_pair(spec_a, spec_b, ManagerKind::Dps, &cfg);
    let slurm = run_pair(spec_a, spec_b, ManagerKind::Slurm, &cfg);
    assert!(
        dps.fairness > slurm.fairness + 0.05,
        "DPS fairness {:.3} vs SLURM {:.3}",
        dps.fairness,
        slurm.fairness
    );
    assert!(dps.fairness > 0.85, "DPS fairness {:.3}", dps.fairness);
}
