//! Property tests for the hierarchical shard allocator and the sharded
//! manager's tree invariant.
//!
//! The allocator ([`allocate_grants`]) is pure arithmetic, so it gets
//! direct property coverage: for arbitrary floors/ceilings/weights and
//! budgets the grants must conserve the distributable budget exactly,
//! stay non-negative, and respect every per-shard floor and ceiling.
//! The manager-level properties then drive whole [`ShardedManager`]
//! trees through random shard counts, churn masks, NaN dropouts, and
//! budget shocks, asserting the per-level budget invariant on every
//! cycle via the shared oracle.

use dps_suite::core::budget::BUDGET_EPSILON;
use dps_suite::core::manager::{PowerManager, UnitLimits};
use dps_suite::core::{allocate_grants, DpsConfig, ShardedManager};
use dps_suite::sim_core::RngStream;
use proptest::prelude::*;

#[path = "support/sharded_oracle.rs"]
mod oracle;

const LIMITS: UnitLimits = UnitLimits {
    min_cap: 40.0,
    max_cap: 165.0,
};

/// Per-shard (floor, extra-ceiling-above-floor, weight) triples; the
/// vector length is the (random) shard count.
fn shard_params(max_shards: usize) -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    prop::collection::vec((10.0f64..200.0, 0.0f64..400.0, 0.0f64..10.0), 1..max_shards)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Grants conserve the distributable budget exactly: they sum to
    /// `min(budget, Σceilings)` (within float ε), never exceed the
    /// budget, and each grant sits inside `[floor, ceiling]`.
    #[test]
    fn allocator_conserves_budget_and_respects_bounds(
        params in shard_params(24),
        slack in 0.0f64..2000.0,
    ) {
        let k = params.len();
        let floors: Vec<f64> = params.iter().map(|p| p.0).collect();
        let ceilings: Vec<f64> = params.iter().map(|p| p.0 + p.1).collect();
        let weights: Vec<f64> = params.iter().map(|p| p.2).collect();
        // Always feasible: at least the floors are fundable.
        let budget = floors.iter().sum::<f64>() + slack;
        let mut grants = vec![0.0; k];
        allocate_grants(budget, &floors, &ceilings, &weights, &mut grants);

        let tol = BUDGET_EPSILON * (k as f64 + 1.0);
        let mut sum = 0.0;
        for s in 0..k {
            prop_assert!(grants[s].is_finite(), "shard {s} grant not finite");
            prop_assert!(grants[s] >= 0.0, "shard {s} grant negative");
            prop_assert!(
                grants[s] >= floors[s] - tol,
                "shard {s} grant {} under its floor {}",
                grants[s],
                floors[s]
            );
            prop_assert!(
                grants[s] <= ceilings[s] + tol,
                "shard {s} grant {} over its ceiling {}",
                grants[s],
                ceilings[s]
            );
            sum += grants[s];
        }
        prop_assert!(sum <= budget + tol, "grants {sum} exceed budget {budget}");
        let distributable = budget.min(ceilings.iter().sum::<f64>());
        prop_assert!(
            (sum - distributable).abs() <= tol + 1e-9 * distributable.abs(),
            "grants {sum} strand budget: distributable {distributable}"
        );
    }

    /// Degenerate weight vectors (all zero, one NaN, one infinite) must
    /// not strand budget or produce non-finite grants.
    #[test]
    fn allocator_survives_degenerate_weights(
        params in shard_params(16),
        poison_idx in 0usize..16,
        poison_kind in 0usize..4,
        slack in 0.0f64..800.0,
    ) {
        let k = params.len();
        let poison = [0.0, f64::NAN, f64::INFINITY, -3.0][poison_kind];
        let floors: Vec<f64> = params.iter().map(|p| p.0).collect();
        let ceilings: Vec<f64> = params.iter().map(|p| p.0 + p.1).collect();
        let mut weights: Vec<f64> = params.iter().map(|p| p.2).collect();
        weights[poison_idx % k] = poison;
        let budget = floors.iter().sum::<f64>() + slack;
        let mut grants = vec![0.0; k];
        allocate_grants(budget, &floors, &ceilings, &weights, &mut grants);

        let tol = BUDGET_EPSILON * (k as f64 + 1.0);
        let sum: f64 = grants.iter().sum();
        prop_assert!(grants.iter().all(|g| g.is_finite() && *g >= 0.0));
        prop_assert!(sum <= budget + tol);
        let distributable = budget.min(ceilings.iter().sum::<f64>());
        prop_assert!(
            (sum - distributable).abs() <= tol + 1e-9 * distributable.abs(),
            "degenerate weights stranded budget: {sum} vs {distributable}"
        );
    }

    /// A whole tree under random shard counts, churn masks, NaN
    /// dropouts, and budget shocks: the per-level budget invariant holds
    /// on every cycle, and shocked budgets are honoured from the very
    /// next cycle.
    #[test]
    fn tree_invariant_holds_under_churn_and_shocks(
        n in 2usize..32,
        shards in 1usize..8,
        seed in 0u64..500,
        trace in prop::collection::vec(0.0f64..200.0, 10..60),
        churn_mask in prop::collection::vec(any::<bool>(), 32..=32),
        shock in 0.70f64..1.0,
        shock_at in 5usize..30,
    ) {
        let shards = shards.min(n);
        let nominal = n as f64 * 110.0;
        let mut mgr = ShardedManager::new(
            n,
            nominal,
            LIMITS,
            DpsConfig::default(),
            shards,
            RngStream::new(seed, "prop-sharded"),
        );
        let mut caps = vec![110.0; n];
        let mut active = vec![true; n];
        for (t, &p) in trace.iter().enumerate() {
            if t == shock_at {
                let shocked = (nominal * shock).max(LIMITS.min_cap * n as f64);
                mgr.set_budget(shocked).expect("shock stays feasible");
            }
            if t > 0 && t % 7 == 0 {
                // Apply the random churn mask one unit at a time so both
                // directions (leave and rejoin) occur along the trace.
                let u = t % n;
                active[u] = churn_mask[u % churn_mask.len()];
                mgr.observe_membership(&active);
            }
            let measured: Vec<f64> = (0..n)
                .map(|u| {
                    if (t + u) % 13 == 0 {
                        f64::NAN
                    } else {
                        (p + u as f64 * 3.0).min(caps[u])
                    }
                })
                .collect();
            mgr.assign_caps(&measured, &mut caps, 1.0);
            oracle::assert_tree_budget_safe(&mgr, &caps, &format!("cycle {t}"));
            let total: f64 = caps.iter().sum();
            prop_assert!(
                total <= mgr.total_budget() + BUDGET_EPSILON * n as f64,
                "caps {total} exceed the in-force budget {} at cycle {t}",
                mgr.total_budget()
            );
        }
    }
}
