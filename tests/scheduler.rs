//! Scheduler-mode integration: the batch queue, unit churn, and the budget
//! invariant, exercised through the whole stack (scheduler → simulator →
//! manager → RAPL substrate).
//!
//! The headline acceptance check lives here: with a scheduler attached, the
//! sum of caps applied to *occupied* units never exceeds the cluster budget
//! on any cycle, for any manager — even as jobs start, finish, and evict
//! underneath the manager's learned state.

use dps_suite::cluster::{ClusterSim, ExperimentConfig};
use dps_suite::core::manager::ManagerKind;
use dps_suite::rapl::Topology;
use dps_suite::sched::{JobOutcome, SchedConfig};
use dps_suite::sim_core::RngStream;

const MANAGERS: [ManagerKind; 3] = [ManagerKind::Constant, ManagerKind::Slurm, ManagerKind::Dps];

/// 2 clusters × 4 nodes × 2 sockets with a short Poisson trace.
fn sched_config(seed: u64, jobs: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(seed, 1);
    cfg.sim.topology = Topology::new(2, 4, 2);
    cfg.sim.scheduler = Some(SchedConfig::default_poisson(jobs, 200.0));
    cfg
}

/// Runs a manager to queue drain, asserting the occupied-caps budget
/// invariant on every cycle. Returns the drained simulator.
fn drain_checked(cfg: &ExperimentConfig, kind: ManagerKind) -> ClusterSim {
    let mut sim = ClusterSim::with_scheduler(
        cfg.sim.clone(),
        cfg.build_manager(kind),
        &RngStream::new(cfg.seed, "sched-integration"),
    );
    let budget = cfg.sim.total_budget();
    for _ in 0..cfg.max_steps {
        sim.cycle();
        let occupied = sim.occupied_units().expect("scheduler mode");
        let occupied_sum: f64 = sim
            .caps()
            .iter()
            .zip(occupied)
            .filter(|&(_, &occ)| occ)
            .map(|(&cap, _)| cap)
            .sum();
        assert!(
            occupied_sum <= budget + 1e-6,
            "{kind}: occupied caps {occupied_sum:.3} W exceed budget {budget:.3} W \
             at t={:.0}",
            sim.now()
        );
        if sim.scheduler_drained() {
            return sim;
        }
    }
    panic!(
        "{kind}: queue failed to drain within {} cycles",
        cfg.max_steps
    );
}

/// The acceptance criterion: occupied caps within budget every cycle, for
/// every manager, and the whole trace retires.
#[test]
fn occupied_caps_respect_budget_for_all_managers() {
    let cfg = sched_config(11, 10);
    for kind in MANAGERS {
        let sim = drain_checked(&cfg, kind);
        assert_eq!(sim.job_records().len(), 10, "{kind}: all jobs retire");
    }
}

/// Every manager sees the identical arrival trace (same seed → same jobs,
/// arrivals, sizes), so job-level metrics are comparable.
#[test]
fn managers_share_the_arrival_trace() {
    let cfg = sched_config(23, 8);
    let mut shapes: Vec<Vec<(usize, String, usize, f64)>> = Vec::new();
    for kind in MANAGERS {
        let sim = drain_checked(&cfg, kind);
        let mut shape: Vec<_> = sim
            .job_records()
            .iter()
            .map(|r| (r.id, r.name.clone(), r.nodes, r.arrival))
            .collect();
        shape.sort_by_key(|s| s.0);
        shapes.push(shape);
    }
    assert_eq!(shapes[0], shapes[1]);
    assert_eq!(shapes[1], shapes[2]);
}

/// Scheduler mode is bit-deterministic: the same seed reproduces the same
/// job records, caps, and occupancy.
#[test]
fn scheduler_runs_are_reproducible() {
    let cfg = sched_config(5, 8);
    let a = drain_checked(&cfg, ManagerKind::Dps);
    let b = drain_checked(&cfg, ManagerKind::Dps);
    assert_eq!(a.job_records(), b.job_records());
    assert_eq!(a.caps(), b.caps());
    assert_eq!(a.occupied_units(), b.occupied_units());
    assert_eq!(a.now(), b.now());
}

/// Tight walltimes force evictions; the queue still drains, DPS still
/// respects the budget through the churn, and evicted jobs are recorded as
/// such.
#[test]
fn eviction_churn_keeps_the_invariant() {
    let mut cfg = sched_config(3, 10);
    let sched = cfg.sim.scheduler.as_mut().unwrap();
    // Walltime at 60 % of the nominal 110 W duration: throttled jobs will
    // overrun and get evicted.
    sched.walltime_factor = 0.6;
    let sim = drain_checked(&cfg, ManagerKind::Dps);
    let records = sim.job_records();
    assert_eq!(records.len(), 10);
    assert!(
        records.iter().any(|r| r.outcome == JobOutcome::Evicted),
        "tight walltimes should evict at least one job"
    );
    // Every eviction happened at (not before) the walltime deadline.
    for r in records.iter().filter(|r| r.outcome == JobOutcome::Evicted) {
        assert!(r.runtime() >= r.walltime - 1e-6);
    }
}

/// `scheduler: None` keeps the classic pinned mode: no scheduler state, no
/// job records, no occupancy mask — the pre-scheduler API surface intact.
#[test]
fn pinned_mode_reports_no_scheduler_state() {
    use dps_suite::cluster::run_pair;
    use dps_suite::workloads::catalog;

    let mut cfg = ExperimentConfig::paper_default(1, 1);
    cfg.sim.topology = Topology::new(2, 1, 2);
    assert!(cfg.sim.scheduler.is_none(), "paper default stays pinned");
    let bayes = catalog::find("Bayes").unwrap();
    let sort = catalog::find("Sort").unwrap();
    let outcome = run_pair(bayes, sort, ManagerKind::Dps, &cfg);
    assert!(outcome.a.durations.len() == 1 && outcome.b.durations.len() == 1);
}
