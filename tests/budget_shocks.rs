//! Dynamic budget shocks: every manager re-complies within one cycle.
//!
//! `PowerManager::set_budget` is the contract behind brownouts and
//! demand-response windows: after a downward step the very next
//! `assign_caps` must already respect the new ceiling, and after recovery
//! the manager must be able to spend the restored headroom again. These
//! tests drive the whole `ManagerKind::ALL` roster — both directly against
//! the trait and end-to-end through `SimConfig::budget` schedules.

use dps_suite::cluster::{BudgetSchedule, ClusterSim, ExperimentConfig};
use dps_suite::core::manager::ManagerKind;
use dps_suite::rapl::Topology;
use dps_suite::sim_core::RngStream;
use dps_suite::workloads::{DemandProgram, Phase};

fn small(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(seed, 1);
    cfg.sim.topology = Topology::new(2, 2, 2);
    cfg
}

fn programs(duration: f64) -> Vec<DemandProgram> {
    vec![
        DemandProgram::new(vec![Phase::constant(duration, 150.0)]),
        DemandProgram::new(vec![Phase::constant(duration, 70.0)]),
    ]
}

/// Downward step at cycle 60, recovery at cycle 120. The caps must track
/// the effective budget with at most the single documented cycle of lag —
/// the shock lands at the top of cycle `t`, so the caps assigned *in*
/// cycle `t` already see it.
#[test]
fn every_manager_recomplies_within_one_cycle_of_a_downward_shock() {
    for kind in ManagerKind::ALL {
        let mut cfg = small(11);
        cfg.sim.budget = BudgetSchedule::from_segments(vec![
            dps_suite::cluster::BudgetSegment {
                start: 60.0,
                factor: 0.7,
                ramp: 0.0,
            },
            dps_suite::cluster::BudgetSegment {
                start: 120.0,
                factor: 1.0,
                ramp: 0.0,
            },
        ])
        .expect("valid schedule");
        cfg.sim.validate().expect("valid config");

        let base = cfg.sim.total_budget();
        let mut sim = ClusterSim::new(
            cfg.sim.clone(),
            programs(400.0),
            cfg.build_manager(kind),
            &RngStream::new(11, "budget-shock"),
        );
        sim.set_invariant_fail_fast(true);

        let mut shocks = 0;
        for _ in 0..180 {
            sim.cycle();
            let requested: f64 = sim.caps().iter().sum();
            assert!(
                requested <= sim.current_budget() + 1e-6,
                "{kind}: requested {requested:.3} W over effective budget {:.3} W at t={}",
                sim.current_budget(),
                sim.now()
            );
            if (sim.current_budget() - base).abs() > 1e-9 {
                shocks += 1;
            }
        }
        assert!(shocks > 0, "{kind}: the shock never took effect");
        assert!(
            (sim.current_budget() - base).abs() < 1e-9,
            "{kind}: budget never recovered"
        );
    }
}

/// After recovery the managers must actually *use* the restored headroom,
/// not stay huddled at the trough allocation.
#[test]
fn managers_spend_the_restored_headroom_after_recovery() {
    for kind in ManagerKind::ALL {
        let mut cfg = small(13);
        cfg.sim.budget = BudgetSchedule::demand_response(40.0, 40.0, 0.6);
        cfg.sim.validate().expect("valid config");

        let base = cfg.sim.total_budget();
        let mut sim = ClusterSim::new(
            cfg.sim.clone(),
            programs(400.0),
            cfg.build_manager(kind),
            &RngStream::new(13, "budget-recovery"),
        );

        let mut trough_sum = f64::NEG_INFINITY;
        for _ in 0..160 {
            sim.cycle();
            let requested: f64 = sim.caps().iter().sum();
            if sim.current_budget() < base - 1e-9 {
                trough_sum = trough_sum.max(requested);
            }
        }
        let final_sum: f64 = sim.caps().iter().sum();
        assert!(
            (sim.current_budget() - base).abs() < 1e-9,
            "{kind}: demand-response window never closed"
        );
        assert!(
            final_sum > trough_sum + 1e-6,
            "{kind}: caps stayed at the trough allocation ({final_sum:.2} W vs {trough_sum:.2} W) after recovery"
        );
    }
}

/// The trait-level contract, without a simulator in the way: a rejected
/// budget leaves the manager untouched, an accepted one is visible
/// immediately.
#[test]
fn set_budget_validates_and_applies_atomically() {
    for kind in ManagerKind::ALL {
        let cfg = small(17);
        let mut manager = cfg.build_manager(kind);
        let base = manager.total_budget();
        let n = manager.num_units();
        let limits = cfg.limits();

        // Infeasible floor: fewer watts than min_cap per unit.
        let too_low = limits.min_cap * n as f64 * 0.5;
        assert!(
            manager.set_budget(too_low).is_err(),
            "{kind}: accepted an infeasible budget"
        );
        assert_eq!(
            manager.total_budget(),
            base,
            "{kind}: rejected budget still mutated state"
        );
        for bad in [f64::NAN, f64::INFINITY, -100.0] {
            assert!(manager.set_budget(bad).is_err(), "{kind}: accepted {bad}");
        }

        let lowered = base * 0.7;
        manager.set_budget(lowered).unwrap();
        assert_eq!(
            manager.total_budget(),
            lowered,
            "{kind}: budget not adopted"
        );

        // One assignment under the new budget already complies.
        let measured = vec![100.0; n];
        let mut caps = vec![limits.max_cap; n];
        manager.assign_caps(&measured, &mut caps, 1.0);
        let sum: f64 = caps.iter().sum();
        assert!(
            sum <= lowered + 1e-6,
            "{kind}: first post-shock assignment {sum:.3} W over {lowered:.3} W"
        );
    }
}
