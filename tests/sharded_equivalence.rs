//! Differential harness for the hierarchical sharded manager.
//!
//! The contract under test has two halves:
//!
//! * **Degenerate tree ≡ flat.** A one-shard [`ShardedManager`] is not
//!   "approximately" the flat [`DpsManager`] — it must be bit-identical:
//!   same cap bits through a live side-by-side gauntlet of NaN dropouts,
//!   membership churn, and budget shocks; same recorded decision-trace
//!   bytes on every flat golden scenario; interchangeable checkpoint
//!   bytes, including the committed pre-refactor fixture.
//! * **Real trees stay budget-safe at every level.** Under chaos and
//!   traffic schedules an N-shard tree must satisfy the hierarchical
//!   invariant on *every* cycle: shard cap sums within their grants,
//!   grants within the cluster budget — checked both by the simulator's
//!   always-on monitor (fail-fast here) and independently by this
//!   harness through [`ClusterSim::shard_view`].
//!
//! The scripted gauntlet and tree checks live in
//! `tests/support/sharded_oracle.rs` so other harnesses can reuse them.

use dps_experiments::scenarios::GoldenScenario;
use dps_suite::cluster::{BudgetSchedule, ChaosSchedule, ChaosWindow, ClusterSim, SimConfig};
use dps_suite::core::manager::{PowerManager, UnitLimits};
use dps_suite::core::{DpsConfig, DpsManager, ShardedManager};
use dps_suite::rapl::{SensorFault, Topology};
use dps_suite::sim_core::RngStream;
use dps_suite::traffic::{ProvisionerConfig, ProvisionerMode, TrafficConfig, TrafficPattern};
use dps_suite::workloads::{DemandProgram, Phase};

#[path = "support/sharded_oracle.rs"]
mod oracle;
#[path = "support/fixture_recipe.rs"]
mod recipe;

const LIMITS: UnitLimits = UnitLimits {
    min_cap: 40.0,
    max_cap: 165.0,
};

/// Live side-by-side oracle: a one-shard tree and the flat manager walk
/// 400 cycles of sawtooth demand with NaN dropouts, membership churn,
/// and budget shocks in bit-exact lockstep; their checkpoints are
/// byte-identical and interchangeable, and the cross-restored pair stays
/// in lockstep for another stretch.
#[test]
fn one_shard_tree_is_bit_identical_to_flat_live() {
    let n = 12;
    let budget = 110.0 * n as f64;
    let mk_rng = || RngStream::new(0xE0A1, "sharded-equiv/live");
    let mut tree = ShardedManager::new(n, budget, LIMITS, DpsConfig::default(), 1, mk_rng());
    let mut flat = DpsManager::new(n, budget, LIMITS, DpsConfig::default(), mk_rng());

    let (snap_tree, snap_flat) =
        oracle::assert_bitwise_lockstep(&mut tree, &mut flat, 400, "live-oracle");
    let snap_tree = snap_tree.expect("tree checkpoints");
    let snap_flat = snap_flat.expect("flat checkpoints");
    assert!(
        snap_tree == snap_flat,
        "one-shard checkpoint bytes differ from flat ({} vs {} bytes)",
        snap_tree.len(),
        snap_flat.len()
    );

    // The snapshots are interchangeable across the two implementations:
    // restore each into the *other* shape and keep walking in lockstep.
    let mut tree2 = ShardedManager::new(n, budget, LIMITS, DpsConfig::default(), 1, mk_rng());
    let mut flat2 = DpsManager::new(n, budget, LIMITS, DpsConfig::default(), mk_rng());
    tree2.restore(&snap_flat).expect("tree restores flat bytes");
    flat2.restore(&snap_tree).expect("flat restores tree bytes");
    oracle::assert_bitwise_lockstep(&mut tree2, &mut flat2, 150, "live-oracle/cross-restored");
}

/// Every flat golden scenario re-recorded under a one-shard tree (same
/// RNG streams, same sim) produces the *same trace bytes* as the flat
/// manager — both against a fresh flat recording and against the
/// committed golden file.
#[test]
fn one_shard_tree_reproduces_every_flat_golden_trace() {
    if std::env::var("DPS_REGEN_GOLDEN").is_ok() {
        return; // golden_trace is rewriting the files under us
    }
    for s in GoldenScenario::ALL {
        if s == GoldenScenario::ShardedElastic {
            continue; // already a (four-shard) tree
        }
        let flat = s.record();
        let one = s.record_with_shards(DpsConfig::default(), 1);
        assert!(
            flat == one,
            "{}: one-shard trace diverged from the flat recording ({} vs {} bytes)",
            s.name(),
            flat.len(),
            one.len()
        );
        let committed = std::fs::read(format!("tests/golden/{}", s.file_name()))
            .unwrap_or_else(|e| panic!("committed golden {} unreadable: {e}", s.file_name()));
        assert!(
            committed == one,
            "{}: one-shard trace diverged from the committed golden file",
            s.name()
        );
    }
}

/// A one-shard tree restores the committed *flat* pre-refactor fixture
/// and reproduces the committed continuation trajectory bit for bit —
/// the degenerate tree speaks the flat wire format, not just its own.
#[test]
fn one_shard_tree_restores_the_committed_flat_fixture() {
    if std::env::var("DPS_REGEN_FIXTURE").is_ok() {
        return; // checkpoint_fixture is rewriting the files under us
    }
    let snap = std::fs::read(recipe::FIXTURE).expect("committed v2 snapshot fixture");
    let expected = recipe::expected_lines();

    let mut m = ShardedManager::with_guard(
        recipe::N,
        recipe::BUDGET,
        recipe::limits(),
        recipe::dps_config(),
        recipe::guard(),
        1,
        recipe::rng(),
    );
    m.restore(&snap)
        .expect("one-shard tree restores the flat fixture");
    assert_eq!(m.total_budget(), recipe::BUDGET);

    let mut caps = recipe::caps_from_hex(&expected[0]);
    for (i, t) in
        (recipe::WARMUP_CYCLES..recipe::WARMUP_CYCLES + recipe::CONTINUATION_CYCLES).enumerate()
    {
        recipe::drive_cycle(&mut m, &mut caps, t);
        assert_eq!(
            recipe::caps_to_hex(&caps),
            expected[i + 1],
            "one-shard continuation diverged from the committed trajectory at cycle {t}"
        );
    }
}

/// Four shards under the elastic flash crowd: the provisioner churns
/// membership and the allocator trades grants, while the per-level
/// budget invariant holds on every one of the 220 cycles — checked
/// independently of the (fail-fast) invariant monitor.
#[test]
fn multi_shard_tree_is_budget_safe_under_traffic() {
    let mut cfg = SimConfig {
        topology: Topology::new(2, 2, 2),
        ..SimConfig::paper_default()
    };
    let total_sockets = cfg.topology.total_units();
    let mut traffic = TrafficConfig::default_diurnal(total_sockets, 100.0);
    traffic.pattern = TrafficPattern::FlashCrowd {
        base_rps: 100.0,
        peak_rps: 0.9 * total_sockets as f64 * 100.0,
        start: 20.0,
        ramp: 10.0,
        hold: 60.0,
        decay: 10.0,
    };
    traffic.provisioner = ProvisionerMode::Reactive(ProvisionerConfig {
        target_utilization: 0.7,
        headroom_nodes: 0,
        power_off_after: 15.0,
        min_nodes: 1,
    });
    cfg.traffic = Some(traffic);
    let rng = RngStream::new(0x5EED_07A1, "sharded-equiv/traffic");
    let limits = UnitLimits {
        min_cap: cfg.domain_spec.min_cap,
        max_cap: cfg.domain_spec.tdp,
    };
    let manager: Box<dyn PowerManager> = Box::new(ShardedManager::new(
        total_sockets,
        cfg.total_budget(),
        limits,
        DpsConfig::default(),
        4,
        rng.child("mgr"),
    ));
    let mut sim = ClusterSim::with_traffic(cfg, manager, &rng);
    sim.set_invariant_fail_fast(true);
    for step in 0..220 {
        sim.cycle();
        let spans = sim.shard_view().expect("sharded manager exposes its tree");
        oracle::assert_tree_budget_safe_spans(
            spans,
            sim.caps(),
            sim.current_budget(),
            &format!("traffic cycle {step}"),
        );
    }
    assert_eq!(sim.invariant_violations(), 0, "monitor saw violations");
    assert!(
        sim.request_stats().expect("traffic stats").served > 0.0,
        "the crowd never arrived — scenario is vacuous"
    );
}

/// Four shards through a correlated chaos incident — sensor dropouts on
/// half the fleet and a budget brownout ramping through — with per-level
/// budget safety asserted on every cycle while the guard quarantines and
/// readmits underneath.
#[test]
fn multi_shard_tree_is_budget_safe_under_chaos() {
    let mut cfg = SimConfig {
        topology: Topology::new(2, 2, 2),
        ..SimConfig::paper_default()
    };
    cfg.chaos = ChaosSchedule::new(vec![ChaosWindow::new(1, 20.0, 60.0)
        .with_sensor(SensorFault::Dropout)
        .with_budget_factor(0.9)]);
    cfg.budget = BudgetSchedule::brownout(30.0, 0.75, 10.0, 30.0);
    let rng = RngStream::new(0x5EED_07A2, "sharded-equiv/chaos");
    let limits = UnitLimits {
        min_cap: cfg.domain_spec.min_cap,
        max_cap: cfg.domain_spec.tdp,
    };
    let n = cfg.topology.total_units();
    let manager: Box<dyn PowerManager> = Box::new(ShardedManager::with_guard(
        n,
        cfg.total_budget(),
        limits,
        DpsConfig::default(),
        recipe::guard(),
        4,
        rng.child("mgr"),
    ));
    let hot = DemandProgram::new(vec![Phase::constant(200.0, 160.0)]);
    let busy = DemandProgram::new(vec![Phase::constant(200.0, 140.0)]);
    let mut sim = ClusterSim::new(cfg, vec![hot, busy], manager, &rng);
    sim.set_invariant_fail_fast(true);
    for step in 0..160 {
        sim.cycle();
        let spans = sim.shard_view().expect("sharded manager exposes its tree");
        oracle::assert_tree_budget_safe_spans(
            spans,
            sim.caps(),
            sim.current_budget(),
            &format!("chaos cycle {step}"),
        );
    }
    assert_eq!(sim.invariant_violations(), 0, "monitor saw violations");
}

/// The tree's threaded shard fan-out against its serial loop: a 4-shard
/// manager with `parallel_threshold` forced to 1 must stay bit-identical
/// to one whose threshold is never reached, through the full scripted
/// gauntlet (churn, shocks, NaN dropouts) and in its checkpoint bytes.
#[cfg(feature = "parallel")]
#[test]
fn parallel_shard_fanout_matches_serial() {
    let n = 64;
    let budget = 110.0 * n as f64;
    let mk = |threshold: usize| {
        let cfg = DpsConfig {
            parallel_threshold: threshold,
            ..DpsConfig::default()
        };
        ShardedManager::new(
            n,
            budget,
            LIMITS,
            cfg,
            4,
            RngStream::new(0xE0A2, "sharded-equiv/parallel"),
        )
    };
    let mut par = mk(1);
    let mut ser = mk(usize::MAX);
    let (snap_par, snap_ser) =
        oracle::assert_bitwise_lockstep(&mut par, &mut ser, 300, "parallel-fanout");
    assert!(
        snap_par.expect("checkpoints") == snap_ser.expect("checkpoints"),
        "parallel and serial trees checkpoint differently"
    );
}
