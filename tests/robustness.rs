//! Failure injection and edge-of-envelope behaviour: extreme measurement
//! noise, infeasible budgets, idle systems, degenerate topologies.

use dps_suite::cluster::{ClusterSim, ExperimentConfig, SimConfig};
use dps_suite::core::manager::ManagerKind;
use dps_suite::rapl::{NoiseModel, Topology};
use dps_suite::sim_core::RngStream;
use dps_suite::workloads::{build_program, catalog, DemandProgram, Phase};

fn small(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(seed, 1);
    cfg.sim.topology = Topology::new(2, 1, 2);
    cfg
}

fn flat(duration: f64, watts: f64) -> DemandProgram {
    DemandProgram::new(vec![Phase::constant(duration, watts)])
}

#[test]
fn extreme_noise_never_breaks_budget_or_crashes() {
    // 25 W noise on a 110 W signal: every manager must stay within budget
    // and the simulation must complete.
    for kind in [ManagerKind::Slurm, ManagerKind::Dps, ManagerKind::Feedback] {
        let mut cfg = small(3);
        cfg.sim.noise = NoiseModel::Gaussian { std_dev: 25.0 };
        let a = build_program(catalog::find("Bayes").unwrap(), &cfg.sim.perf, 1);
        let b = build_program(catalog::find("FT").unwrap(), &cfg.sim.perf, 2);
        let budget = cfg.sim.total_budget();
        let mut sim = ClusterSim::new(
            cfg.sim.clone(),
            vec![a, b],
            cfg.build_manager(kind),
            &RngStream::new(3, "noise-extreme"),
        );
        for _ in 0..500 {
            sim.cycle();
            assert!(
                sim.caps().iter().sum::<f64>() <= budget + 1e-6,
                "{kind} broke the budget under extreme noise"
            );
        }
    }
}

#[test]
fn dps_with_extreme_noise_still_beats_badly_wrong_outcomes() {
    // Quality degrades gracefully: even at 15 W noise a contended pair
    // under DPS stays within 10% of the constant baseline.
    let mut cfg = small(7);
    cfg.sim.noise = NoiseModel::Gaussian { std_dev: 15.0 };
    let gmm = catalog::find("GMM").unwrap();
    let ep = catalog::find("EP").unwrap();
    let baseline = dps_suite::cluster::run_pair(gmm, ep, ManagerKind::Constant, &cfg);
    let dps = dps_suite::cluster::run_pair(gmm, ep, ManagerKind::Dps, &cfg);
    let pair = dps.pair_speedup(baseline.a.hmean_duration(), baseline.b.hmean_duration());
    assert!(pair > 0.90, "DPS under extreme noise: {pair:.3}");
}

#[test]
#[should_panic(expected = "cannot cover")]
fn infeasible_budget_rejected_loudly() {
    let mut sim_cfg = SimConfig::paper_default();
    sim_cfg.budget_fraction = 0.2; // 33 W/socket < 40 W minimum cap
    sim_cfg.validate().unwrap_or_else(|e| panic!("{e}"));
}

#[test]
#[should_panic(expected = "infeasible budget")]
fn cluster_sim_refuses_invalid_config() {
    // The manager constructor rejects the infeasible budget before
    // ClusterSim::new even gets to validate the sim config.
    let mut cfg = small(1);
    cfg.sim.budget_fraction = 0.1;
    let a = flat(10.0, 100.0);
    let b = flat(10.0, 100.0);
    ClusterSim::new(
        cfg.sim.clone(),
        vec![a, b],
        cfg.build_manager(ManagerKind::Constant),
        &RngStream::new(1, "invalid"),
    );
}

#[test]
fn budget_fraction_one_means_never_throttled() {
    let mut cfg = small(9);
    cfg.sim.budget_fraction = 1.0; // every socket can hold TDP
    cfg.sim.noise = NoiseModel::None;
    let a = build_program(catalog::find("GMM").unwrap(), &cfg.sim.perf, 4);
    let uncapped_duration =
        dps_suite::workloads::generator::capped_duration(&a, &cfg.sim.perf, 165.0);
    let b = flat(50.0, 60.0);
    let mut sim = ClusterSim::new(
        cfg.sim.clone(),
        vec![a, b],
        cfg.build_manager(ManagerKind::Dps),
        &RngStream::new(9, "full-budget"),
    );
    sim.run_until(20_000, |s| s.runs_completed(0) >= 1);
    let d = sim.run_durations(0)[0];
    assert!(
        (d - uncapped_duration).abs() / uncapped_duration < 0.03,
        "GMM at full budget should run uncapped: {d} vs {uncapped_duration}"
    );
    assert!(sim.satisfaction(0) > 0.99);
}

#[test]
fn fully_idle_system_restores_and_stays_satisfied() {
    let cfg = small(11);
    let mut sim = ClusterSim::new(
        cfg.sim.clone(),
        vec![flat(100.0, 5.0), flat(100.0, 5.0)],
        cfg.build_manager(ManagerKind::Dps),
        &RngStream::new(11, "idle"),
    );
    for _ in 0..150 {
        sim.cycle();
    }
    // Idle demand below the idle floor is always "satisfied".
    assert_eq!(sim.satisfaction(0), 1.0);
    assert_eq!(sim.fairness(0, 1), 1.0);
    // DPS should be parked at the constant allocation.
    for &c in sim.caps() {
        assert!((c - 110.0).abs() < 1e-6, "{:?}", sim.caps());
    }
}

#[test]
fn single_cluster_topology_supported() {
    let mut cfg = small(13);
    cfg.sim.topology = Topology::new(1, 2, 2);
    let a = build_program(catalog::find("LDA").unwrap(), &cfg.sim.perf, 5);
    let mut sim = ClusterSim::new(
        cfg.sim.clone(),
        vec![a],
        cfg.build_manager(ManagerKind::Dps),
        &RngStream::new(13, "single"),
    );
    for _ in 0..200 {
        sim.cycle();
    }
    assert!(sim.satisfaction(0) > 0.0);
    assert_eq!(sim.fairness(0, 0), 1.0, "self-fairness is unity");
}

#[test]
fn concatenated_job_queue_runs_through() {
    // A mixed job queue flattened into one program (Ellsworth-style job
    // throughput setup): all jobs complete and throughput time is the
    // makespan.
    let cfg = small(15);
    let perf = cfg.sim.perf;
    let jobs: Vec<DemandProgram> = ["Sort", "Bayes", "Wordcount"]
        .iter()
        .map(|n| build_program(catalog::find(n).unwrap(), &perf, 8))
        .collect();
    let queue = DemandProgram::concat(&jobs, 10.0, 20.0);
    let total_work = queue.total_work();
    let mut sim = ClusterSim::new(
        cfg.sim.clone(),
        vec![queue, flat(50.0, 60.0)],
        cfg.build_manager(ManagerKind::Dps),
        &RngStream::new(15, "queue"),
    );
    sim.run_until(30_000, |s| s.runs_completed(0) >= 1);
    assert_eq!(sim.runs_completed(0), 1);
    let makespan = sim.run_durations(0)[0];
    assert!(
        makespan >= total_work * 0.95 && makespan < total_work * 1.5,
        "makespan {makespan} vs work {total_work}"
    );
}

#[test]
fn quantized_noise_model_supported_end_to_end() {
    let mut cfg = small(17);
    cfg.sim.noise = NoiseModel::QuantizedGaussian {
        std_dev: 1.5,
        step: 0.5,
    };
    let a = build_program(catalog::find("RF").unwrap(), &cfg.sim.perf, 6);
    let b = flat(60.0, 70.0);
    let mut sim = ClusterSim::new(
        cfg.sim.clone(),
        vec![a, b],
        cfg.build_manager(ManagerKind::Dps),
        &RngStream::new(17, "quantized"),
    );
    sim.enable_logging();
    for _ in 0..100 {
        sim.cycle();
    }
    // Measurements snap to the 0.5 W grid.
    for rec in sim.log().records() {
        for &p in &rec.power {
            let snapped = (p / 0.5).round() * 0.5;
            assert!((p - snapped).abs() < 1e-9, "unquantized measurement {p}");
        }
    }
}

// ---- sensor/actuator fault injection against the telemetry guard ----

use dps_suite::core::manager::{PowerManager, UnitLimits};
use dps_suite::core::{DpsManager, GuardConfig, HealthState};
use dps_suite::rapl::{ActuatorFault, SensorFault, UnitFaultEvent, UnitFaultSchedule};

fn guarded_dps(cfg: &ExperimentConfig) -> Box<dyn PowerManager> {
    Box::new(DpsManager::with_guard(
        cfg.sim.topology.total_units(),
        cfg.sim.total_budget(),
        UnitLimits {
            min_cap: cfg.sim.domain_spec.min_cap,
            max_cap: cfg.sim.domain_spec.tdp,
        },
        cfg.dps,
        GuardConfig {
            stuck_window: 6,
            quarantine_after: 2,
            probation_after: 5,
            readmit_after: 8,
            ..GuardConfig::default()
        },
        RngStream::new(cfg.seed, "manager/DPS"),
    ))
}

#[test]
fn quarantine_and_readmission_preserve_budget_and_lower_bound() {
    // Unit 0 (hot cluster) reports a frozen 95 W from t=40 to t=140 while
    // every hot unit wants 150 W. The guard must quarantine it at the
    // constant-allocation fallback, never break the budget, never push the
    // other hot (healthy) units below the fallback to fund it, and readmit
    // the unit once real telemetry returns.
    let mut cfg = ExperimentConfig::paper_default(23, 1);
    cfg.sim.topology = Topology::new(2, 2, 2); // 8 units, 880 W budget
    cfg.sim.sensor_faults = UnitFaultSchedule::new(vec![UnitFaultEvent::sensor(
        0,
        40.0,
        140.0,
        SensorFault::StuckAt { value: 95.0 },
    )]);
    let budget = cfg.sim.total_budget();
    let fallback = budget / cfg.sim.topology.total_units() as f64; // 110 W
    let mut sim = ClusterSim::new(
        cfg.sim.clone(),
        vec![flat(400.0, 150.0), flat(400.0, 60.0)],
        guarded_dps(&cfg),
        &RngStream::new(23, "quarantine-e2e"),
    );

    let mut isolated_cycles = 0;
    for _ in 0..260 {
        sim.cycle();
        let caps = sim.caps();
        assert!(
            caps.iter().sum::<f64>() <= budget + 1e-6,
            "budget broken at t={}: {caps:?}",
            sim.now()
        );
        let health = sim.health().expect("guarded manager");
        if health[0].is_isolated() {
            isolated_cycles += 1;
            // The quarantined unit is pinned at the fallback cap...
            assert!(
                (caps[0] - fallback).abs() < 1e-6,
                "isolated unit not at fallback: {}",
                caps[0]
            );
            // ...and the healthy hot units (1..4 share its cluster and are
            // pushing against their caps) are never taxed below it to fund
            // the pin. DPS's own readjust step equalizes high-priority
            // units at their mean cap, which can dip a busy unit a few
            // Watts under the fallback even on fault-free hardware — the
            // slack below covers that control-law wobble, not the guard.
            for (u, &cap) in caps.iter().enumerate().take(4).skip(1) {
                assert!(
                    cap >= fallback - 5.0,
                    "healthy hot unit {u} pushed below fallback: {cap}"
                );
            }
        }
    }
    assert!(
        isolated_cycles > 50,
        "fault window barely isolated: {isolated_cycles}"
    );
    assert_eq!(
        sim.health().unwrap()[0],
        HealthState::Healthy,
        "unit must be readmitted after the fault clears"
    );
    let stats = sim.guard_stats().unwrap();
    assert!(stats.stuck_trips > 0, "stuck detector never fired");
    assert!(stats.readmissions >= 1, "no readmission recorded");
}

#[test]
fn actuator_faults_during_readjustment_keep_caps_finite_and_budgeted() {
    // Overlapping actuator faults (dropped writes on one hot unit, firmware
    // clamping on another) while the whole hot cluster is contended — so the
    // readjust/equalize machinery runs every cycle against readbacks the
    // controller did not request. No cap, requested or applied, may ever go
    // non-finite, and the requested sum must hold the budget throughout.
    for guarded in [false, true] {
        let mut cfg = ExperimentConfig::paper_default(31, 1);
        cfg.sim.topology = Topology::new(2, 2, 2);
        cfg.sim.sensor_faults = UnitFaultSchedule::new(vec![
            UnitFaultEvent::actuator(0, 30.0, 170.0, ActuatorFault::DropWrites),
            UnitFaultEvent::actuator(
                1,
                50.0,
                150.0,
                ActuatorFault::ClampWrites {
                    floor: 80.0,
                    ceil: 120.0,
                },
            ),
        ]);
        let budget = cfg.sim.total_budget();
        let manager = if guarded {
            guarded_dps(&cfg)
        } else {
            cfg.build_manager(ManagerKind::Dps)
        };
        let mut sim = ClusterSim::new(
            cfg.sim.clone(),
            vec![flat(400.0, 155.0), flat(400.0, 70.0)],
            manager,
            &RngStream::new(31, "actuator-readjust"),
        );
        for step in 0..300 {
            sim.cycle();
            let caps = sim.caps();
            assert!(
                caps.iter().all(|c| c.is_finite()),
                "guarded={guarded}: non-finite requested cap at step {step}: {caps:?}"
            );
            assert!(
                caps.iter().sum::<f64>() <= budget + 1e-6,
                "guarded={guarded}: budget broken at step {step}"
            );
            assert!(
                sim.applied_caps().iter().all(|c| c.is_finite()),
                "guarded={guarded}: non-finite applied cap at step {step}"
            );
        }
    }
}

#[test]
fn dropped_cap_writes_bound_the_applied_overshoot() {
    // Unit 0's actuator silently drops every cap write mid-run. The caps in
    // force at the hardware can transiently exceed what the controller
    // requested, but write verification plus believed-cap accounting must
    // keep the enforced sum essentially at the budget, where an unguarded
    // controller drifts well past it.
    let run = |guarded: bool| -> f64 {
        let mut cfg = ExperimentConfig::paper_default(29, 1);
        cfg.sim.topology = Topology::new(2, 2, 2);
        cfg.sim.sensor_faults = UnitFaultSchedule::new(vec![UnitFaultEvent::actuator(
            0,
            40.0,
            160.0,
            ActuatorFault::DropWrites,
        )]);
        let budget = cfg.sim.total_budget();
        let manager = if guarded {
            guarded_dps(&cfg)
        } else {
            cfg.build_manager(ManagerKind::Dps)
        };
        let mut sim = ClusterSim::new(
            cfg.sim.clone(),
            vec![flat(400.0, 150.0), flat(400.0, 60.0)],
            manager,
            &RngStream::new(29, "dropwrites-e2e"),
        );
        let mut worst = 0.0f64;
        for _ in 0..240 {
            sim.cycle();
            // Requested caps always respect the budget...
            assert!(sim.caps().iter().sum::<f64>() <= budget + 1e-6);
            // ...the interesting margin is on the hardware side.
            worst = worst.max(sim.applied_caps().iter().sum::<f64>() - budget);
        }
        if guarded {
            let stats = sim.guard_stats().unwrap();
            assert!(stats.write_mismatches > 0, "write verification never fired");
        }
        worst
    };

    let unguarded = run(false);
    let guarded = run(true);
    assert!(
        guarded <= unguarded + 1e-9,
        "guard made the overshoot worse: {guarded:.2} vs {unguarded:.2}"
    );
    // One decision cycle of slack is inherent (the drop is only visible at
    // the next readback); beyond that the guard must hold the line.
    assert!(
        guarded <= 16.0,
        "guarded applied-cap overshoot too large: {guarded:.2} W"
    );
}

// ---------------------------------------------------------------------------
// Combined-fault acceptance: everything at once, deterministically.

use dps_suite::cluster::{BudgetSchedule, ChaosSchedule, ChaosWindow};
use dps_suite::core::OperatingMode;
use dps_suite::obs::SinkHandle;

/// The cross-layer pile-up the chaos harness exists for: a framed control
/// plane loses 30 % of rack-1's frames while that rack's sensors go dark
/// and one of its nodes churns out, an independent actuator fault drops
/// unit 2's cap writes, and a brownout pulls the budget down 25 % through
/// the middle of it all. The guarded manager must hold the requested-caps
/// invariant against the *effective* budget every single cycle, the mode
/// ladder must recover to Normal, and the whole ordeal must be
/// reproducible bit-for-bit from the seed. (Measurement noise stays on:
/// noise-free constant demand trips the guard's stuck-sensor detector and
/// would quarantine the whole fleet before the chaos window even opens.)
#[test]
fn combined_faults_hold_the_budget_and_reproduce_exactly() {
    let run = || {
        let mut cfg = small(31);
        cfg.sim.topology = Topology::new(2, 2, 2);
        cfg.sim.control_plane =
            dps_suite::cluster::ControlPlaneMode::Framed(dps_suite::ctrl::FramedConfig::default());
        cfg.sim.sensor_faults = UnitFaultSchedule::new(vec![UnitFaultEvent::actuator(
            2,
            30.0,
            70.0,
            ActuatorFault::DropWrites,
        )]);
        cfg.sim.chaos = ChaosSchedule::new(vec![ChaosWindow::new(1, 25.0, 65.0)
            .with_sensor(SensorFault::Dropout)
            .with_frame_loss(0.3)
            .with_churn()]);
        cfg.sim.budget = BudgetSchedule::brownout(35.0, 0.75, 10.0, 30.0);
        cfg.sim.validate().expect("valid combined-fault config");

        let manager = guarded_dps(&cfg);
        let mut sim = ClusterSim::new(
            cfg.sim.clone(),
            vec![flat(400.0, 150.0), flat(400.0, 70.0)],
            manager,
            &RngStream::new(31, "combined-faults"),
        );
        let sink = SinkHandle::recording(1 << 16);
        sim.set_trace_sink(sink.clone());

        let mut saw_shock = false;
        let mut saw_degraded = false;
        for _ in 0..140 {
            sim.cycle();
            let requested: f64 = sim.caps().iter().sum();
            assert!(
                requested <= sim.current_budget() + 1e-6,
                "requested {requested:.3} W over effective budget {:.3} W at t={}",
                sim.current_budget(),
                sim.now()
            );
            saw_shock |= (sim.current_budget() - cfg.sim.total_budget()).abs() > 1e-9;
            saw_degraded |= sim.operating_mode() != OperatingMode::Normal;
        }

        assert!(saw_shock, "the brownout never took effect");
        assert!(saw_degraded, "the mode ladder never reacted to the pile-up");
        assert_eq!(
            sim.operating_mode(),
            OperatingMode::Normal,
            "mode ladder failed to recover after the incident"
        );
        let stats = sim.guard_stats().expect("guarded manager reports stats");
        assert!(
            stats.quarantine_entries > 0,
            "the dropout never reached the guard"
        );
        let bytes = sink.export().expect("recording sink exports");

        // Hard safety checks must come through the pile-up clean. Soft
        // applied-budget reports are legitimate here: the drop-writes
        // actuator holds a stale high cap straight through the brownout
        // trough, which is exactly what that graced check exists to flag.
        let trace = dps_suite::obs::codec::decode(&bytes).expect("trace decodes");
        for event in &trace.events {
            if let dps_suite::obs::Event::InvariantViolation { kind, cycle, .. } = event {
                assert_eq!(
                    *kind,
                    dps_suite::obs::InvariantKind::AppliedBudget,
                    "hard invariant {kind:?} violated at cycle {cycle}"
                );
            }
        }
        bytes
    };

    let first = run();
    let second = run();
    assert!(
        first == second,
        "combined-fault run is not deterministic for a fixed seed"
    );
}
