//! Reusable differential oracle for the hierarchical sharded manager.
//!
//! Two exports:
//!
//! * [`assert_bitwise_lockstep`] drives a candidate manager and a
//!   reference manager through the same scripted gauntlet — sawtooth
//!   demand, periodic NaN dropouts, membership churn, budget shocks —
//!   and demands f64 **bit** equality on every cap and identical
//!   priority vectors on every cycle. A one-shard tree against the flat
//!   manager must survive this indefinitely; any hidden divergence in
//!   RNG consumption, guard state, or accumulator order surfaces as the
//!   first differing bit.
//! * [`assert_tree_budget_safe`] checks the hierarchical budget
//!   invariant at every level of a sharded tree: shard cap sums within
//!   their grants, grants within the cluster budget, spans contiguous
//!   and covering.
#![allow(dead_code)] // each including test crate uses a subset

use dps_suite::core::budget::BUDGET_EPSILON;
use dps_suite::core::manager::PowerManager;

/// Synthetic demand for `unit` at `step`: a per-unit-staggered sawtooth
/// with periodic NaN dropouts so the non-finite path stays in play.
pub fn measurement(step: usize, unit: usize, cap: f64) -> f64 {
    if (step + 11 * unit).is_multiple_of(47) {
        return f64::NAN;
    }
    let demand = 35.0 + 130.0 * (((3 * step + 7 * unit) % 29) as f64 / 29.0);
    demand.min(cap)
}

/// Membership churn script: every 61 cycles one unit flips in or out.
/// Returns `true` when `active` changed (callers then notify managers).
pub fn churn_step(step: usize, active: &mut [bool]) -> bool {
    if step == 0 || !step.is_multiple_of(61) {
        return false;
    }
    let u = (step / 61 * 5) % active.len();
    active[u] = !active[u];
    true
}

/// Budget shock script: alternating 100-cycle windows at 85% and 100%
/// of the nominal budget.
pub fn budget_at(step: usize, nominal: f64) -> f64 {
    if (step / 100) % 2 == 1 {
        nominal * 0.85
    } else {
        nominal
    }
}

/// Drives `candidate` and `reference` in lockstep through `cycles` of
/// the scripted gauntlet and asserts bitwise agreement every cycle.
/// Returns the two final checkpoints for the caller to compare.
pub fn assert_bitwise_lockstep(
    candidate: &mut dyn PowerManager,
    reference: &mut dyn PowerManager,
    cycles: usize,
    label: &str,
) -> (Option<Vec<u8>>, Option<Vec<u8>>) {
    let n = reference.num_units();
    assert_eq!(candidate.num_units(), n, "{label}: unit counts differ");
    let nominal = reference.total_budget();
    assert_eq!(
        candidate.total_budget(),
        nominal,
        "{label}: budgets differ before the run"
    );
    let mut caps_c = vec![nominal / n as f64; n];
    let mut caps_r = caps_c.clone();
    let mut active = vec![true; n];
    for step in 0..cycles {
        if churn_step(step, &mut active) {
            candidate.observe_membership(&active);
            reference.observe_membership(&active);
        }
        let b = budget_at(step, nominal);
        if b != reference.total_budget() {
            candidate.set_budget(b).expect("budget shock is feasible");
            reference.set_budget(b).expect("budget shock is feasible");
        }
        let measured: Vec<f64> = (0..n).map(|u| measurement(step, u, caps_r[u])).collect();
        candidate.assign_caps(&measured, &mut caps_c, 1.0);
        reference.assign_caps(&measured, &mut caps_r, 1.0);
        for u in 0..n {
            assert_eq!(
                caps_c[u].to_bits(),
                caps_r[u].to_bits(),
                "{label}: cap bits diverged at step {step} unit {u}: {} vs {}",
                caps_c[u],
                caps_r[u]
            );
        }
        let pc = candidate.priorities().map(<[bool]>::to_vec);
        let pr = reference.priorities().map(<[bool]>::to_vec);
        assert_eq!(pc, pr, "{label}: priority vectors diverged at step {step}");
    }
    (candidate.checkpoint(), reference.checkpoint())
}

/// Per-level budget safety of a sharded tree, against the caps actually
/// in force — convenience wrapper over [`assert_tree_budget_safe_spans`]
/// for a directly-held manager.
pub fn assert_tree_budget_safe(mgr: &dyn PowerManager, caps: &[f64], ctx: &str) {
    let spans = mgr.shard_view().expect("manager exposes a shard tree");
    assert_tree_budget_safe_spans(spans, caps, mgr.total_budget(), ctx);
}

/// Per-level budget safety of a shard tree: every shard's caps sum
/// within its grant (+ε per unit), the grants sum within the cluster
/// budget (+ε per shard), and the spans tile the fleet exactly.
pub fn assert_tree_budget_safe_spans(
    spans: &[dps_suite::core::manager::ShardSpan],
    caps: &[f64],
    budget: f64,
    ctx: &str,
) {
    let mut grant_sum = 0.0;
    let mut covered = 0usize;
    for (s, sp) in spans.iter().enumerate() {
        assert_eq!(sp.start, covered, "{ctx}: shard {s} is not contiguous");
        covered = sp.end;
        assert!(
            sp.grant.is_finite() && sp.grant >= 0.0,
            "{ctx}: shard {s} grant is degenerate: {}",
            sp.grant
        );
        let shard_caps: f64 = caps[sp.start..sp.end].iter().sum();
        assert!(
            shard_caps <= sp.grant + BUDGET_EPSILON * sp.units().max(1) as f64,
            "{ctx}: shard {s} caps {shard_caps} exceed its grant {}",
            sp.grant
        );
        grant_sum += sp.grant;
    }
    assert_eq!(covered, caps.len(), "{ctx}: tree does not tile the fleet");
    assert!(
        grant_sum <= budget + BUDGET_EPSILON * spans.len() as f64,
        "{ctx}: shard grants {grant_sum} exceed the cluster budget {budget}"
    );
}
