//! The pinned checkpoint-fixture recipe, shared by `checkpoint_fixture.rs`
//! (flat manager) and `sharded_equivalence.rs` (one-shard tree). Both
//! harnesses must restore `tests/fixtures/checkpoint_v2.bin` and reproduce
//! the committed cap trajectory bit for bit, so the recipe — manager
//! shape, demand script, encoding — lives in one place and cannot drift.
#![allow(dead_code)] // each including test crate uses a subset

use dps_suite::core::manager::{PowerManager, UnitLimits};
use dps_suite::core::{DpsConfig, GuardConfig};
use dps_suite::sim_core::RngStream;

pub const N: usize = 4;
pub const BUDGET: f64 = 440.0;
pub const WARMUP_CYCLES: usize = 30;
pub const CONTINUATION_CYCLES: usize = 12;
pub const FIXTURE: &str = "tests/fixtures/checkpoint_v2.bin";
pub const EXPECTED: &str = "tests/fixtures/checkpoint_v2_expected.txt";

pub fn limits() -> UnitLimits {
    UnitLimits::xeon_gold_6240()
}

pub fn dps_config() -> DpsConfig {
    DpsConfig::default()
}

/// The guard the fixture manager was checkpointed with.
pub fn guard() -> GuardConfig {
    GuardConfig {
        stuck_window: 5,
        quarantine_after: 2,
        probation_after: 3,
        readmit_after: 4,
        ..GuardConfig::default()
    }
}

/// The pinned RNG stream of the fixture manager.
pub fn rng() -> RngStream {
    RngStream::new(0xF1D0, "fixture/checkpoint-v2")
}

/// Deterministic demand with a unit-0 sensor dropout window, so the
/// snapshot carries non-trivial guard state (quarantine, held samples)
/// alongside the Kalman/history/moments internals.
pub fn demand(t: usize, u: usize) -> f64 {
    if u == 0 && (12..18).contains(&t) {
        return f64::NAN;
    }
    let base = [120.0, 60.0, 95.0, 140.0][u];
    base + 0.4 * (((t + 3 * u) % 7) as f64 - 3.0)
}

pub fn drive_cycle(m: &mut dyn PowerManager, caps: &mut [f64], t: usize) {
    let z: Vec<f64> = (0..N).map(|u| demand(t, u).min(caps[u])).collect();
    m.assign_caps(&z, caps, 1.0);
}

pub fn caps_to_hex(caps: &[f64]) -> String {
    caps.iter()
        .map(|c| format!("{:016x}", c.to_bits()))
        .collect::<Vec<_>>()
        .join(" ")
}

pub fn caps_from_hex(line: &str) -> Vec<f64> {
    line.split_whitespace()
        .map(|h| f64::from_bits(u64::from_str_radix(h, 16).unwrap()))
        .collect()
}

/// The committed expected-caps lines: the caps in force at checkpoint
/// time, then one line per continuation cycle.
pub fn expected_lines() -> Vec<String> {
    std::fs::read_to_string(EXPECTED)
        .expect("committed expected-caps fixture")
        .lines()
        .map(str::to_string)
        .collect()
}
