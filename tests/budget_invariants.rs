//! Cross-crate safety invariants: whatever the workload does, every manager
//! respects the cluster budget and the per-unit cap limits on every single
//! decision cycle. The paper's §6 claim — "in all cases (and for all power
//! managers) the power caps are respected" — as an executable property.

use dps_suite::cluster::{ClusterSim, ExperimentConfig};
use dps_suite::core::budget::check_budget;
use dps_suite::core::manager::ManagerKind;
use dps_suite::rapl::{NoiseModel, Topology};
use dps_suite::sim_core::RngStream;
use dps_suite::workloads::{build_program, catalog};
use proptest::prelude::*;

const MANAGERS: [ManagerKind; 5] = [
    ManagerKind::Constant,
    ManagerKind::Slurm,
    ManagerKind::Dps,
    ManagerKind::Qdpm,
    ManagerKind::Oracle,
];

fn small_config(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(seed, 1);
    cfg.sim.topology = Topology::new(2, 1, 2);
    cfg
}

/// Names of all catalog workloads, as a proptest strategy.
fn workload_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("Wordcount"),
        Just("Sort"),
        Just("Kmeans"),
        Just("LDA"),
        Just("Linear"),
        Just("LR"),
        Just("Bayes"),
        Just("RF"),
        Just("GMM"),
        Just("EP"),
        Just("FT"),
        Just("CG"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random workload pair, random seed, every manager: the caps respect
    /// the budget and limits on every one of the first 400 cycles.
    #[test]
    fn caps_always_respect_budget(
        a in workload_name(),
        b in workload_name(),
        seed in 0u64..1000,
        manager_idx in 0usize..MANAGERS.len(),
    ) {
        let cfg = small_config(seed);
        let kind = MANAGERS[manager_idx];
        let spec_a = catalog::find(a).unwrap();
        let spec_b = catalog::find(b).unwrap();
        let rng = RngStream::new(seed, "prop-budget");
        let program_a = build_program(spec_a, &cfg.sim.perf, seed);
        let program_b = build_program(spec_b, &cfg.sim.perf, seed ^ 0xABCD);
        let mut sim = ClusterSim::new(
            cfg.sim.clone(),
            vec![program_a, program_b],
            cfg.build_manager(kind),
            &rng,
        );
        let budget = cfg.sim.total_budget();
        let limits = cfg.limits();
        for step in 0..400 {
            sim.cycle();
            check_budget(sim.caps(), budget, limits)
                .map_err(|e| TestCaseError::fail(format!("{kind} step {step}: {e}")))?;
        }
    }

    /// Measurement noise never lets true delivered power exceed the cap:
    /// the enforcement is on true power, not on the noisy reading.
    #[test]
    fn true_power_never_exceeds_caps(seed in 0u64..500) {
        let mut cfg = small_config(seed);
        cfg.sim.noise = NoiseModel::Gaussian { std_dev: 4.0 };
        let spec = catalog::find("GMM").unwrap();
        let rng = RngStream::new(seed, "prop-power");
        let program_a = build_program(spec, &cfg.sim.perf, seed);
        let program_b = build_program(spec, &cfg.sim.perf, seed + 1);
        let mut sim = ClusterSim::new(
            cfg.sim.clone(),
            vec![program_a, program_b],
            cfg.build_manager(ManagerKind::Dps),
            &rng,
        );
        sim.enable_logging();
        // Caps programmed at cycle t take effect at t+1, so compare each
        // window's true demand-limited draw against the *previous* caps.
        let mut prev_caps: Vec<f64> = sim.caps().to_vec();
        for _ in 0..300 {
            sim.cycle();
            let rec = sim.log().records().last().unwrap();
            for (u, (&d, &prev_cap)) in rec.demand.iter().zip(&prev_caps).enumerate() {
                let idle = cfg.sim.domain_spec.idle_power;
                let true_draw = d.max(idle).min(prev_cap).max(idle);
                prop_assert!(
                    true_draw <= prev_cap.max(idle) + 1e-9,
                    "unit {u}: draw {true_draw} vs cap {prev_cap}"
                );
            }
            prev_caps = rec.caps.clone();
        }
    }
}

#[test]
fn budget_holds_at_paper_scale_for_all_managers() {
    // One non-property run at the real 20-unit topology for each manager.
    for kind in MANAGERS {
        let cfg = ExperimentConfig::paper_default(11, 1);
        let spec_a = catalog::find("Bayes").unwrap();
        let spec_b = catalog::find("CG").unwrap();
        let rng = RngStream::new(11, "paper-scale");
        let program_a = build_program(spec_a, &cfg.sim.perf, 1);
        let program_b = build_program(spec_b, &cfg.sim.perf, 2);
        let mut sim = ClusterSim::new(
            cfg.sim.clone(),
            vec![program_a, program_b],
            cfg.build_manager(kind),
            &rng,
        );
        for _ in 0..600 {
            sim.cycle();
            check_budget(sim.caps(), cfg.sim.total_budget(), cfg.limits())
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }
}
