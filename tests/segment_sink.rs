//! Segment-sink roundtrip: a scenario recorded through a streaming
//! [`SegmentSink`] must replay **identically** to the same scenario
//! recorded through an in-memory [`RingSink`] — same events, same order,
//! and the merged segment stream must re-encode to the exact golden
//! bytes. This is the contract that lets long runs spill to disk without
//! changing what the trace says.

use std::path::PathBuf;
use std::rc::Rc;

use dps_experiments::scenarios::GoldenScenario;
use dps_obs::segment::{read_segment_dir, segment_files};
use dps_obs::{codec, SegmentSink, SinkHandle};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("segments-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Records a scenario through a segment sink and returns the directory.
fn record_segmented(scenario: GoldenScenario, capacity: usize, tag: &str) -> PathBuf {
    let dir = scratch_dir(tag);
    let sink = SegmentSink::new(&dir, capacity).expect("create segment dir");
    let handle = SinkHandle::new(Rc::new(sink));
    scenario.drive(Default::default(), &handle);
    let seg = handle.as_segment().expect("handle wraps a segment sink");
    seg.flush();
    assert_eq!(seg.io_errors(), 0, "{:?}", seg.last_error());
    dir
}

#[test]
fn segmented_recording_matches_ring_recording() {
    let scenario = GoldenScenario::PaperDefault;
    let ring_trace = codec::decode(&scenario.record()).expect("ring trace decodes");

    // A small segment capacity forces many spills mid-run.
    let dir = record_segmented(scenario, 64, "paper-default");
    let files = segment_files(&dir).expect("segments were written");
    assert!(
        files.len() > 3,
        "expected several segments, got {}",
        files.len()
    );

    let merged = read_segment_dir(&dir).expect("segment dir reassembles");
    assert_eq!(merged.dropped, 0, "spill-on-full must never drop");
    assert_eq!(
        merged.events, ring_trace.events,
        "segmented stream diverged from the ring recording"
    );

    // Re-encoding the merged stream reproduces the golden bytes exactly.
    assert_eq!(
        codec::encode(&merged.events, merged.dropped),
        scenario.record()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn segment_capacity_does_not_change_the_stream() {
    let scenario = GoldenScenario::SensorFault;
    let a = record_segmented(scenario, 64, "sf-64");
    let b = record_segmented(scenario, 1024, "sf-1024");
    let ta = read_segment_dir(&a).unwrap();
    let tb = read_segment_dir(&b).unwrap();
    assert!(segment_files(&a).unwrap().len() > segment_files(&b).unwrap().len());
    assert_eq!(ta.events, tb.events);
    std::fs::remove_dir_all(&a).unwrap();
    std::fs::remove_dir_all(&b).unwrap();
}

#[test]
fn segment_registry_matches_offline_rebuild() {
    let scenario = GoldenScenario::PaperDefault;
    let dir = scratch_dir("registry");
    let sink = SegmentSink::new(&dir, 512).expect("create segment dir");
    let handle = SinkHandle::new(Rc::new(sink));
    scenario.drive(Default::default(), &handle);
    let seg = handle.as_segment().unwrap();
    seg.flush();

    // The live registry the sink kept while spilling must agree with a
    // registry rebuilt offline from the reassembled stream.
    let merged = read_segment_dir(&dir).unwrap();
    let offline = dps_obs::ObsRegistry::from_events(&merged.events);
    let live = seg.registry();
    assert_eq!(live.events(), offline.events());
    assert_eq!(live.cap_deltas(), offline.cap_deltas());
    assert_eq!(live.priority_flips(), offline.priority_flips());
    assert_eq!(live.restores(), offline.restores());
    assert_eq!(live.cap_churn().count(), offline.cap_churn().count());
    std::fs::remove_dir_all(&dir).unwrap();
}
