//! Golden-trace regression suite.
//!
//! Every scenario in [`dps_experiments::scenarios`] is a pinned-seed
//! end-to-end run whose `dps-obs` trace is committed under `tests/golden/`.
//! These tests re-record each scenario and compare **byte for byte**: any
//! behavioural drift in the decision loop — a reordered emission, a changed
//! cap by one ULP, an extra guard transition — fails the suite with a
//! pointer to `trace_inspect diff`.
//!
//! When a behaviour change is intentional and reviewed, regenerate with:
//!
//! ```text
//! DPS_REGEN_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! (or per scenario via `trace_inspect record <name> tests/golden/<name>.trace`),
//! then commit the updated traces alongside the change that caused them.

use dps_experiments::scenarios::GoldenScenario;
use dps_suite::core::config::{DpsConfig, StatsMode};
use dps_suite::obs::codec;
use std::path::PathBuf;

fn golden_path(scenario: GoldenScenario) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(scenario.file_name())
}

fn regen_requested() -> bool {
    std::env::var_os("DPS_REGEN_GOLDEN").is_some_and(|v| v != "0")
}

/// Records `scenario`, handles `DPS_REGEN_GOLDEN`, and returns the freshly
/// recorded bytes after asserting they match the committed golden file.
fn check_against_golden(scenario: GoldenScenario) -> Vec<u8> {
    let recorded = scenario.record();
    let path = golden_path(scenario);
    if regen_requested() {
        std::fs::write(&path, &recorded).expect("write regenerated golden trace");
        eprintln!("regenerated {}", path.display());
        return recorded;
    }
    let committed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\n(run with DPS_REGEN_GOLDEN=1 to create it)",
            path.display()
        )
    });
    assert!(
        recorded == committed,
        "{} drifted from its golden trace.\n\
         Inspect with:  cargo run --bin trace_inspect diff {} <(fresh recording)\n\
         If the change is intentional, regenerate: DPS_REGEN_GOLDEN=1 cargo test --test golden_trace",
        scenario.name(),
        path.display(),
    );
    recorded
}

#[test]
fn paper_default_matches_golden() {
    let bytes = check_against_golden(GoldenScenario::PaperDefault);
    let trace = codec::decode(&bytes).expect("golden trace decodes");
    assert_eq!(trace.dropped, 0);
}

#[test]
fn sensor_fault_matches_golden() {
    let bytes = check_against_golden(GoldenScenario::SensorFault);
    let trace = codec::decode(&bytes).expect("golden trace decodes");
    // The scenario must actually exercise the fault machinery, otherwise
    // the golden file silently stops guarding anything.
    let reg = dps_suite::obs::ObsRegistry::from_events(&trace.events);
    assert!(reg.fault_edges() >= 4, "both fault windows open and close");
    assert!(
        reg.guard_transitions() > 0,
        "guard must react to the dropout"
    );
    assert!(reg.checkpoints() > 0, "watchdog checkpoints in the window");
}

#[test]
fn scheduler_churn_matches_golden() {
    let bytes = check_against_golden(GoldenScenario::SchedulerChurn);
    let trace = codec::decode(&bytes).expect("golden trace decodes");
    let reg = dps_suite::obs::ObsRegistry::from_events(&trace.events);
    assert_eq!(reg.sched_arrivals(), 5);
    assert_eq!(reg.sched_starts(), 5);
    assert_eq!(reg.sched_finishes(), 4);
    assert_eq!(reg.sched_evictions(), 1, "the tight-walltime job evicts");
}

#[test]
fn elastic_traffic_matches_golden() {
    let bytes = check_against_golden(GoldenScenario::ElasticTraffic);
    let trace = codec::decode(&bytes).expect("golden trace decodes");
    let reg = dps_suite::obs::ObsRegistry::from_events(&trace.events);
    // The scenario must exercise the whole elastic loop: growth during the
    // flash crowd, hysteresis shrinkage after, request milestones, and the
    // membership churn provisioning drives into the manager.
    assert!(reg.provision_power_ons() > 0, "no power-ons recorded");
    assert!(reg.provision_power_offs() > 0, "no power-offs recorded");
    assert!(
        reg.request_milestones() > 0,
        "no request milestones recorded"
    );
    assert!(
        reg.membership_flips() > 0,
        "provisioning never reached the manager"
    );
}

#[test]
fn idle_elastic_matches_golden() {
    let bytes = check_against_golden(GoldenScenario::IdleElastic);
    let trace = codec::decode(&bytes).expect("golden trace decodes");
    let reg = dps_suite::obs::ObsRegistry::from_events(&trace.events);
    // The scenario must walk the whole sleep ladder: demotions during the
    // post-crowd shrink, wake latencies paid on the re-growth, and — with
    // the learning-augmented policy — predictor samples scoring the advice
    // against realised gap lengths.
    assert!(reg.sleep_transitions() > 0, "no demotions recorded");
    assert!(reg.wake_starts() > 0, "no wakes ever started");
    assert!(reg.wake_dones() > 0, "no wake ever completed");
    assert!(
        reg.predictor_samples() > 0,
        "learning-augmented policy produced no predictor samples"
    );
    assert!(
        reg.membership_flips() > 0,
        "woken units never re-entered the manager's view"
    );
}

#[test]
fn chaos_brownout_matches_golden() {
    let bytes = check_against_golden(GoldenScenario::ChaosBrownout);
    let trace = codec::decode(&bytes).expect("golden trace decodes");
    let reg = dps_suite::obs::ObsRegistry::from_events(&trace.events);
    // The scenario must actually walk the degradation ladder and ride the
    // brownout: at least one descent and the hysteretic recovery, budget
    // shocks from the ramps, and not a single safety-invariant violation
    // even with the chaos window open.
    assert!(reg.mode_changes() >= 2, "ladder never moved");
    assert!(
        reg.budget_shocks() > 0,
        "brownout never reached the manager"
    );
    assert_eq!(
        reg.invariant_violations(),
        0,
        "safety invariants must hold under chaos"
    );
    assert!(reg.fault_edges() > 0, "chaos sensor fault never compiled");
}

#[test]
fn sharded_elastic_matches_golden() {
    let bytes = check_against_golden(GoldenScenario::ShardedElastic);
    let trace = codec::decode(&bytes).expect("golden trace decodes");
    let reg = dps_suite::obs::ObsRegistry::from_events(&trace.events);
    // The tree must actually behave like a tree: the allocator regrants
    // as the flash crowd skews demand across shards, the provisioner's
    // churn reaches the top level as (global-index) membership flips,
    // and the monitor's per-level budget checks stay silent throughout.
    assert!(reg.shard_grants() > 0, "the allocator never regranted");
    assert!(
        reg.membership_flips() > 0,
        "provisioning never reached the tree"
    );
    assert!(reg.provision_power_ons() > 0, "no power-ons recorded");
    assert_eq!(
        reg.invariant_violations(),
        0,
        "the tree violated a budget invariant"
    );
}

#[test]
fn recording_twice_is_byte_stable() {
    for scenario in GoldenScenario::ALL {
        let a = scenario.record();
        let b = scenario.record();
        assert!(a == b, "{} is not byte-stable across runs", scenario.name());
    }
}

/// `StatsMode::Rescan` is the reference implementation of the incremental
/// statistics; decisions — and therefore traces — must be identical.
#[test]
fn rescan_stats_mode_reproduces_golden_traces() {
    let rescan = DpsConfig::default().with_stats_mode(StatsMode::Rescan);
    for scenario in GoldenScenario::ALL {
        let default_bytes = scenario.record();
        let rescan_bytes = scenario.record_with(rescan);
        assert!(
            default_bytes == rescan_bytes,
            "{}: Rescan stats diverge from Incremental in the trace",
            scenario.name()
        );
    }
}

/// The threaded observe/classify phase must be decision-identical to the
/// sequential loop: forcing the parallel path (threshold 1) has to produce
/// the exact bytes the sequential default records.
#[cfg(feature = "parallel")]
#[test]
fn parallel_classify_reproduces_golden_traces() {
    let forced = DpsConfig {
        parallel_threshold: 1,
        ..DpsConfig::default()
    };
    for scenario in GoldenScenario::ALL {
        let sequential = scenario.record_with(DpsConfig {
            parallel_threshold: usize::MAX,
            ..DpsConfig::default()
        });
        let parallel = scenario.record_with(forced);
        assert!(
            sequential == parallel,
            "{}: parallel classify changes the trace",
            scenario.name()
        );
    }
}
