//! End-to-end runs at the paper's full topology, checking the whole
//! pipeline hangs together: workloads complete, logs are self-consistent,
//! satisfaction/fairness land in sane ranges, and the DPS-specific log
//! fields (priorities) are populated.

use dps_suite::cluster::{run_pair, ClusterSim, ExperimentConfig};
use dps_suite::core::manager::ManagerKind;
use dps_suite::sim_core::RngStream;
use dps_suite::workloads::{build_program, catalog};

#[test]
fn paper_topology_pair_completes_under_every_manager() {
    let cfg = ExperimentConfig::paper_default(31, 1);
    let a = catalog::find("Bayes").unwrap();
    let b = catalog::find("MG").unwrap();
    for kind in [
        ManagerKind::Constant,
        ManagerKind::Slurm,
        ManagerKind::Dps,
        ManagerKind::Oracle,
    ] {
        let out = run_pair(a, b, kind, &cfg);
        assert_eq!(out.a.durations.len(), 1, "{kind}");
        assert_eq!(out.b.durations.len(), 1, "{kind}");
        assert!(out.steps < cfg.max_steps, "{kind} hit the step limit");
        assert!(
            (0.0..=1.0).contains(&out.fairness),
            "{kind} fairness {}",
            out.fairness
        );
        assert!((0.0..=1.0).contains(&out.a.satisfaction));
        assert!((0.0..=1.0).contains(&out.b.satisfaction));
        // Throughput times are in the right ballpark of the catalog: never
        // faster than the uncapped bound and never absurdly slow.
        let d = out.a.hmean_duration();
        assert!(
            d > a.duration_110w * 0.7 && d < a.duration_110w * 2.0,
            "{kind}: Bayes duration {d}"
        );
    }
}

#[test]
fn cycle_log_is_self_consistent() {
    let cfg = ExperimentConfig::paper_default(33, 1);
    let spec_a = catalog::find("LDA").unwrap();
    let spec_b = catalog::find("IS").unwrap();
    let program_a = build_program(spec_a, &cfg.sim.perf, 1);
    let program_b = build_program(spec_b, &cfg.sim.perf, 2);
    let mut sim = ClusterSim::new(
        cfg.sim.clone(),
        vec![program_a, program_b],
        cfg.build_manager(ManagerKind::Dps),
        &RngStream::new(33, "e2e"),
    );
    sim.enable_logging();
    for _ in 0..400 {
        sim.cycle();
    }
    let records = sim.log().records();
    assert_eq!(records.len(), 400);
    let n = cfg.sim.topology.total_units();
    let limits = cfg.limits();
    for (i, rec) in records.iter().enumerate() {
        assert_eq!(rec.power.len(), n);
        assert_eq!(rec.caps.len(), n);
        assert_eq!(rec.demand.len(), n);
        assert_eq!(rec.priority.len(), n, "DPS must log priorities");
        // Records are stamped with the cycle's start time (0-based).
        assert!((rec.time - i as f64).abs() < 1e-9, "time axis");
        for u in 0..n {
            assert!(rec.caps[u] >= limits.min_cap - 1e-9 && rec.caps[u] <= limits.max_cap + 1e-9);
            // Measured power = true power + bounded noise; true power never
            // exceeds the cap in force during the window (the cap recorded
            // in the *previous* record), so allow the noise envelope only.
            let prev_cap = if i == 0 {
                110.0
            } else {
                records[i - 1].caps[u]
            };
            assert!(
                rec.power[u] <= prev_cap + 12.0,
                "unit {u} cycle {i}: power {} vs window cap {prev_cap}",
                rec.power[u]
            );
            assert!(rec.power[u] >= 0.0);
            assert!(rec.demand[u] >= 0.0 && rec.demand[u] <= 165.0 + 1e-9);
        }
    }
    // Priorities must actually vary over a run with phases.
    let ever_high = (0..n).any(|u| records.iter().any(|r| r.priority[u]));
    let ever_low = (0..n).any(|u| records.iter().any(|r| !r.priority[u]));
    assert!(ever_high && ever_low, "priorities should vary");
}

#[test]
fn satisfaction_reflects_throttling_direction() {
    // GMM paired with EP under constant caps: both demand > 110 most of the
    // time, so both satisfactions sit well below 1; Sort paired with Sort
    // is never throttled.
    let cfg = ExperimentConfig::paper_default(35, 1);
    let gmm = catalog::find("GMM").unwrap();
    let ep = catalog::find("EP").unwrap();
    let hot = run_pair(gmm, ep, ManagerKind::Constant, &cfg);
    assert!(hot.a.satisfaction < 0.95, "GMM sat {}", hot.a.satisfaction);
    assert!(hot.b.satisfaction < 0.95, "EP sat {}", hot.b.satisfaction);

    let sort = catalog::find("Sort").unwrap();
    let wc = catalog::find("Wordcount").unwrap();
    let cool = run_pair(sort, wc, ManagerKind::Constant, &cfg);
    assert!(
        cool.a.satisfaction > 0.97,
        "Sort sat {}",
        cool.a.satisfaction
    );
    assert!(cool.fairness > 0.97);
}

#[test]
fn repetitions_are_fresh_realisations() {
    // §6.1: run-to-run variance. Under a dynamic manager, each repetition
    // of a phase-rich workload is a new realisation whose phases align
    // differently with the partner — durations must not be identical.
    let mut cfg = ExperimentConfig::paper_default(41, 3);
    cfg.sim.topology = dps_suite::rapl::Topology::new(2, 1, 2);
    let a = catalog::find("Bayes").unwrap();
    let b = catalog::find("GMM").unwrap();
    let out = run_pair(a, b, ManagerKind::Slurm, &cfg);
    let d = &out.a.durations;
    assert_eq!(d.len(), 3);
    let spread = d.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - d.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        spread > 0.5,
        "repetitions should differ under contention: {d:?}"
    );
}

#[test]
fn repeated_runs_accumulate() {
    let mut cfg = ExperimentConfig::paper_default(37, 3);
    cfg.sim.topology = dps_suite::rapl::Topology::new(2, 1, 2);
    let a = catalog::find("Sort").unwrap();
    let b = catalog::find("FT").unwrap();
    let out = run_pair(a, b, ManagerKind::Slurm, &cfg);
    assert_eq!(out.a.durations.len(), 3);
    assert_eq!(out.b.durations.len(), 3);
    // Sort is never capped: run-to-run spread should be tiny.
    let d = &out.a.durations;
    let spread = d.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - d.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 3.0, "Sort spread {spread}");
}
