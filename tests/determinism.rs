//! Reproducibility guarantees: every experiment is a pure function of its
//! seed, and the workload realisation is shared across managers so their
//! comparison is paired, not confounded.

use dps_suite::cluster::{run_pair, ExperimentConfig};
use dps_suite::core::manager::ManagerKind;
use dps_suite::rapl::Topology;
use dps_suite::workloads::catalog;

fn config(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(seed, 1);
    cfg.sim.topology = Topology::new(2, 1, 2);
    cfg
}

#[test]
fn identical_seeds_identical_outcomes() {
    let a = catalog::find("Bayes").unwrap();
    let b = catalog::find("FT").unwrap();
    for kind in [
        ManagerKind::Constant,
        ManagerKind::Slurm,
        ManagerKind::Dps,
        ManagerKind::Qdpm,
        ManagerKind::Oracle,
    ] {
        let x = run_pair(a, b, kind, &config(42));
        let y = run_pair(a, b, kind, &config(42));
        assert_eq!(x, y, "{kind} must be deterministic");
    }
}

#[test]
fn different_seeds_differ() {
    let a = catalog::find("Bayes").unwrap();
    let b = catalog::find("FT").unwrap();
    let x = run_pair(a, b, ManagerKind::Dps, &config(1));
    let y = run_pair(a, b, ManagerKind::Dps, &config(2));
    assert_ne!(
        x.a.durations, y.a.durations,
        "different seeds should give different realisations"
    );
}

#[test]
fn workload_realisation_shared_across_managers() {
    // Sort never exceeds a 110 W cap, so any manager grants its full
    // demand; its run duration therefore fingerprints the realisation.
    let a = catalog::find("Sort").unwrap();
    let b = catalog::find("Terasort").unwrap();
    let cfg = config(9);
    let constant = run_pair(a, b, ManagerKind::Constant, &cfg);
    let dps = run_pair(a, b, ManagerKind::Dps, &cfg);
    let slurm = run_pair(a, b, ManagerKind::Slurm, &cfg);
    assert!((constant.a.hmean_duration() - dps.a.hmean_duration()).abs() < 2.0);
    assert!((constant.a.hmean_duration() - slurm.a.hmean_duration()).abs() < 2.0);
}

#[test]
fn outcome_independent_of_thread_schedule() {
    // The parallel grid runner must produce exactly what serial runs do.
    use dps_experiments_shim::*;
    let cfg = config(21);
    let pairs = [
        (catalog::find("LR").unwrap(), catalog::find("Sort").unwrap()),
        (
            catalog::find("Bayes").unwrap(),
            catalog::find("MG").unwrap(),
        ),
    ];
    let serial: Vec<_> = pairs
        .iter()
        .map(|(a, b)| run_pair(a, b, ManagerKind::Dps, &cfg))
        .collect();
    let parallel = parallel_map(4, &pairs, |(a, b)| run_pair(a, b, ManagerKind::Dps, &cfg));
    assert_eq!(serial, parallel);
}

/// `dps-experiments` is a sibling package, not a dependency of the umbrella
/// crate; a tiny local reimplementation keeps this test self-contained.
mod dps_experiments_shim {
    pub fn parallel_map<T: Sync, R: Send>(
        threads: usize,
        items: &[T],
        f: impl Fn(&T) -> R + Sync,
    ) -> Vec<R> {
        let n = items.len();
        let threads = threads.min(n).max(1);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (slots, chunk_items) in results.chunks_mut(chunk).zip(items.chunks(chunk)) {
                let f = &f;
                scope.spawn(move || {
                    for (slot, item) in slots.iter_mut().zip(chunk_items) {
                        *slot = Some(f(item));
                    }
                });
            }
        });
        results.into_iter().map(|r| r.unwrap()).collect()
    }
}
