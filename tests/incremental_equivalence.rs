//! Decision-level equivalence of the statistics fast path: a DPS controller
//! running [`StatsMode::Incremental`] (rolling accumulators) must emit caps
//! bit-identical to one running [`StatsMode::Rescan`] (the original
//! full-window recompute) on every cycle, for every workload the suite can
//! throw at it — the optimization is only allowed to change cost, never a
//! decision.
//!
//! Since PR5 the comparison is double-layered: alongside the per-cycle cap
//! lockstep, both sims record a full `dps-obs` trace and the exported bytes
//! must match exactly. The trace carries every *decision event* (cap
//! deltas, priority flips, readjusts, guard transitions) with its cycle
//! index, so two runs that happen to land on the same caps via different
//! intermediate decisions still fail the suite.
//!
//! The matrix is three-way: a one-shard hierarchical tree
//! ([`ManagerKind::Sharded`] with `shards = 1`) rides in the same
//! lockstep, because the degenerate tree is specified to be the flat
//! incremental manager — same caps, same trace bytes — not an
//! approximation of it.

use dps_suite::cluster::{ClusterSim, ExperimentConfig};
use dps_suite::core::config::StatsMode;
use dps_suite::core::manager::ManagerKind;
use dps_suite::obs::SinkHandle;
use dps_suite::rapl::{SensorFault, Topology, UnitFaultEvent, UnitFaultSchedule};
use dps_suite::sched::SchedConfig;
use dps_suite::sim_core::RngStream;
use dps_suite::workloads::{build_program, catalog, DemandProgram, Phase};

/// Large enough that no equivalence run ever overflows the ring — a
/// dropped event would make the byte comparison vacuous, so it's asserted.
const TRACE_CAPACITY: usize = 1 << 18;

fn recording(sim: &mut ClusterSim) -> SinkHandle {
    let sink = SinkHandle::recording(TRACE_CAPACITY);
    sim.set_trace_sink(sink.clone());
    sink
}

/// Exports both traces and demands byte equality (and zero drops).
fn assert_traces_match(a: &SinkHandle, b: &SinkHandle, label: &str) {
    let ta = a.export().expect("trace exports");
    let tb = b.export().expect("trace exports");
    let decoded = dps_suite::obs::codec::decode(&ta).expect("trace decodes");
    assert_eq!(
        decoded.dropped, 0,
        "{label}: ring overflowed, raise TRACE_CAPACITY"
    );
    assert!(
        ta == tb,
        "{label}: decision-event streams diverged ({} vs {} bytes)",
        ta.len(),
        tb.len()
    );
}

fn with_mode(base: &ExperimentConfig, mode: StatsMode) -> ExperimentConfig {
    let mut cfg = base.clone();
    cfg.dps = cfg.dps.with_stats_mode(mode);
    cfg
}

fn programs(cfg: &ExperimentConfig) -> Vec<DemandProgram> {
    vec![
        build_program(catalog::find("GMM").unwrap(), &cfg.sim.perf, 1),
        build_program(catalog::find("EP").unwrap(), &cfg.sim.perf, 2),
    ]
}

/// Builds the three sims (flat Incremental, flat Rescan, one-shard tree
/// on Incremental — identical otherwise), drives them in lockstep, and
/// demands exact cap equality on every cycle plus byte-equal traces.
fn assert_lockstep(base: &ExperimentConfig, label: &str, cycles: usize) {
    let inc_cfg = with_mode(base, StatsMode::Incremental);
    let res_cfg = with_mode(base, StatsMode::Rescan);
    let mut shd_cfg = with_mode(base, StatsMode::Incremental);
    shd_cfg.shards = 1;
    let rng = RngStream::new(base.seed, label);
    let mut inc = ClusterSim::new(
        inc_cfg.sim.clone(),
        programs(&inc_cfg),
        inc_cfg.build_manager(ManagerKind::Dps),
        &rng,
    );
    let mut res = ClusterSim::new(
        res_cfg.sim.clone(),
        programs(&res_cfg),
        res_cfg.build_manager(ManagerKind::Dps),
        &rng,
    );
    let mut shd = ClusterSim::new(
        shd_cfg.sim.clone(),
        programs(&shd_cfg),
        shd_cfg.build_manager(ManagerKind::Sharded),
        &rng,
    );
    let inc_sink = recording(&mut inc);
    let res_sink = recording(&mut res);
    let shd_sink = recording(&mut shd);
    for step in 0..cycles {
        inc.cycle();
        res.cycle();
        shd.cycle();
        assert_eq!(
            inc.caps(),
            res.caps(),
            "{label}: incremental and rescan caps diverged at step {step}"
        );
        assert_eq!(
            inc.caps(),
            shd.caps(),
            "{label}: one-shard tree caps diverged from flat at step {step}"
        );
    }
    assert_traces_match(&inc_sink, &res_sink, label);
    assert_traces_match(&inc_sink, &shd_sink, &format!("{label}/sharded1"));
}

/// Paper-default configuration: noisy telemetry, the GMM+EP contended pair.
#[test]
fn incremental_matches_rescan_on_paper_default() {
    let mut cfg = ExperimentConfig::paper_default(61, 1);
    cfg.sim.topology = Topology::new(2, 2, 2);
    assert_lockstep(&cfg, "equiv-paper", 400);
}

/// Sensor faults feed the classifier frozen and NaN readings mid-run; both
/// modes must make the same (possibly degraded) decisions from them.
#[test]
fn incremental_matches_rescan_under_sensor_faults() {
    let mut cfg = ExperimentConfig::paper_default(67, 1);
    cfg.sim.topology = Topology::new(2, 2, 2);
    cfg.sim.sensor_faults = UnitFaultSchedule::new(vec![
        UnitFaultEvent::sensor(0, 40.0, 140.0, SensorFault::StuckAt { value: 95.0 }),
        UnitFaultEvent::sensor(3, 60.0, 120.0, SensorFault::Dropout),
    ]);
    assert_lockstep(&cfg, "equiv-faults", 300);
}

/// A saturating step: long constant phases drive the rolling std and the
/// peak tracker through their degenerate (zero-variance, single-run) cases.
#[test]
fn incremental_matches_rescan_on_constant_phases() {
    let mut cfg = ExperimentConfig::paper_default(71, 1);
    cfg.sim.topology = Topology::new(2, 2, 2);
    let inc_cfg = with_mode(&cfg, StatsMode::Incremental);
    let res_cfg = with_mode(&cfg, StatsMode::Rescan);
    let mk_programs = || {
        vec![
            DemandProgram::new(vec![
                Phase::constant(120.0, 60.0),
                Phase::constant(280.0, 150.0),
            ]),
            DemandProgram::new(vec![Phase::constant(400.0, 80.0)]),
        ]
    };
    let rng = RngStream::new(71, "equiv-const");
    let mut inc = ClusterSim::new(
        inc_cfg.sim.clone(),
        mk_programs(),
        inc_cfg.build_manager(ManagerKind::Dps),
        &rng,
    );
    let mut res = ClusterSim::new(
        res_cfg.sim.clone(),
        mk_programs(),
        res_cfg.build_manager(ManagerKind::Dps),
        &rng,
    );
    let inc_sink = recording(&mut inc);
    let res_sink = recording(&mut res);
    for step in 0..350 {
        inc.cycle();
        res.cycle();
        assert_eq!(inc.caps(), res.caps(), "diverged at step {step}");
    }
    assert_traces_match(&inc_sink, &res_sink, "equiv-const");
}

/// Scheduler churn: jobs start, finish, and evict underneath the manager,
/// forcing `observe_membership` resets of the per-unit accumulators. The
/// reset path must leave the incremental state bit-compatible with a
/// rescan-mode controller seeing the same churn.
#[test]
fn incremental_matches_rescan_under_scheduler_churn() {
    let mut base = ExperimentConfig::paper_default(73, 1);
    base.sim.topology = Topology::new(2, 4, 2);
    base.sim.scheduler = Some(SchedConfig::default_poisson(10, 200.0));
    let inc_cfg = with_mode(&base, StatsMode::Incremental);
    let res_cfg = with_mode(&base, StatsMode::Rescan);
    let mut shd_cfg = with_mode(&base, StatsMode::Incremental);
    shd_cfg.shards = 1;
    let rng = RngStream::new(base.seed, "equiv-sched");
    let mut inc = ClusterSim::with_scheduler(
        inc_cfg.sim.clone(),
        inc_cfg.build_manager(ManagerKind::Dps),
        &rng,
    );
    let mut res = ClusterSim::with_scheduler(
        res_cfg.sim.clone(),
        res_cfg.build_manager(ManagerKind::Dps),
        &rng,
    );
    // The one-shard tree sees the same churn: `observe_membership` resets
    // must flow through the top level identically to the flat manager.
    let mut shd = ClusterSim::with_scheduler(
        shd_cfg.sim.clone(),
        shd_cfg.build_manager(ManagerKind::Sharded),
        &rng,
    );
    let inc_sink = recording(&mut inc);
    let res_sink = recording(&mut res);
    let shd_sink = recording(&mut shd);
    let mut drained_at = None;
    for step in 0..base.max_steps {
        inc.cycle();
        res.cycle();
        shd.cycle();
        assert_eq!(
            inc.caps(),
            res.caps(),
            "scheduler churn: caps diverged at step {step}"
        );
        assert_eq!(
            inc.caps(),
            shd.caps(),
            "scheduler churn: one-shard tree diverged at step {step}"
        );
        assert_eq!(
            inc.occupied_units(),
            res.occupied_units(),
            "occupancy diverged at step {step}"
        );
        if inc.scheduler_drained() {
            drained_at = Some(step);
            break;
        }
    }
    let drained_at = drained_at.expect("queue drained");
    assert!(drained_at > 50, "trace too short to exercise churn");
    assert_traces_match(&inc_sink, &res_sink, "equiv-sched");
    assert_traces_match(&inc_sink, &shd_sink, "equiv-sched/sharded1");
}

/// The struct-of-arrays decision core against the per-unit-struct oracle:
/// a [`DpsManager`] (whose hot path runs entirely on the flat column
/// store) is driven alongside a mirror `Vec<UnitState>` fed the identical
/// measurement stream, and every cycle the manager's materialized
/// per-unit view must agree **bit for bit** on every observe-state
/// observable — Kalman estimate, rolling history std, prominent-peak
/// count, windowed derivative. Sawtooth demand keeps the peak tracker
/// churning, NaN dropouts hit the non-finite path, and membership flips
/// exercise the column reset against the struct reset.
#[test]
fn soa_matches_unit_oracle_observe_state() {
    use dps_suite::core::history::UnitState;
    use dps_suite::core::manager::{PowerManager, UnitLimits};
    use dps_suite::core::{DpsConfig, DpsManager};

    let n = 24;
    let config = DpsConfig::default();
    let mut mgr = DpsManager::new(
        n,
        110.0 * n as f64,
        UnitLimits::xeon_gold_6240(),
        config,
        RngStream::new(11, "equiv-soa-oracle"),
    );
    let mut oracle: Vec<UnitState> = (0..n).map(|_| UnitState::new(&config)).collect();
    let mut caps = vec![110.0; n];
    let mut active = vec![true; n];
    let mut measured = vec![0.0; n];
    for step in 0..400usize {
        if step > 0 && step % 97 == 0 {
            // Membership churn: the manager resets the unit's columns, the
            // oracle resets its struct; both must land in the same state.
            let u = step % n;
            active[u] = !active[u];
            mgr.observe_membership(&active);
            oracle[u].reset();
        }
        for (u, m) in measured.iter_mut().enumerate() {
            let demand = 40.0 + 120.0 * (((step + u) % 20) as f64 / 20.0);
            *m = if (step + u) % 53 == 0 {
                f64::NAN
            } else {
                demand.min(caps[u])
            };
        }
        mgr.assign_caps(&measured, &mut caps, 1.0);
        for (state, &z) in oracle.iter_mut().zip(&measured) {
            state.observe(z, 1.0);
        }
        for (u, state) in oracle.iter_mut().enumerate() {
            let mut soa = mgr.unit_state(u);
            assert_eq!(
                soa.latest_estimate().to_bits(),
                state.latest_estimate().to_bits(),
                "estimate diverged at step {step} unit {u}"
            );
            assert_eq!(
                soa.history_std().to_bits(),
                state.history_std().to_bits(),
                "history std diverged at step {step} unit {u}"
            );
            assert_eq!(
                soa.prominent_peak_count(),
                state.prominent_peak_count(),
                "peak count diverged at step {step} unit {u}"
            );
            assert_eq!(
                soa.derivative().map(f64::to_bits),
                state.derivative().map(f64::to_bits),
                "derivative diverged at step {step} unit {u}"
            );
        }
    }
}

/// The threaded observe/classify phase against the sequential loop: with
/// `parallel_threshold` forced to 1 (every cycle takes the threaded path)
/// the decision-event stream must be byte-identical to a sim whose
/// threshold is never reached. Shard-order-dependent reductions or
/// nondeterministic floating-point merges in the parallel path show up
/// here as the first diverging event.
#[cfg(feature = "parallel")]
#[test]
fn parallel_classify_matches_sequential_trace() {
    let mut base = ExperimentConfig::paper_default(79, 1);
    base.sim.topology = Topology::new(2, 2, 2);
    let mut seq_cfg = base.clone();
    seq_cfg.dps.parallel_threshold = usize::MAX;
    let mut par_cfg = base.clone();
    par_cfg.dps.parallel_threshold = 1;
    let rng = RngStream::new(base.seed, "equiv-parallel");
    let mut seq = ClusterSim::new(
        seq_cfg.sim.clone(),
        programs(&seq_cfg),
        seq_cfg.build_manager(ManagerKind::Dps),
        &rng,
    );
    let mut par = ClusterSim::new(
        par_cfg.sim.clone(),
        programs(&par_cfg),
        par_cfg.build_manager(ManagerKind::Dps),
        &rng,
    );
    let seq_sink = recording(&mut seq);
    let par_sink = recording(&mut par);
    for step in 0..400 {
        seq.cycle();
        par.cycle();
        assert_eq!(
            seq.caps(),
            par.caps(),
            "parallel classify diverged from sequential at step {step}"
        );
    }
    assert_traces_match(&seq_sink, &par_sink, "equiv-parallel");
}
