//! Controller crash-recovery acceptance: a DPS controller restored from a
//! watchdog snapshot mid-run must pick up exactly where the dead one left
//! off — same caps, same budget discipline — on a fault-free trace.

use dps_suite::cluster::{ClusterSim, ExperimentConfig};
use dps_suite::core::config::StatsMode;
use dps_suite::core::manager::{PowerManager, UnitLimits};
use dps_suite::core::{DpsManager, GuardConfig};
use dps_suite::rapl::Topology;
use dps_suite::sim_core::RngStream;
use dps_suite::workloads::{DemandProgram, Phase};

fn config(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(seed, 1);
    cfg.sim.topology = Topology::new(2, 2, 2);
    cfg
}

fn dps(cfg: &ExperimentConfig, guarded: bool) -> Box<dyn PowerManager> {
    let limits = UnitLimits {
        min_cap: cfg.sim.domain_spec.min_cap,
        max_cap: cfg.sim.domain_spec.tdp,
    };
    let rng = RngStream::new(cfg.seed, "manager/DPS");
    let n = cfg.sim.topology.total_units();
    let budget = cfg.sim.total_budget();
    if guarded {
        Box::new(DpsManager::with_guard(
            n,
            budget,
            limits,
            cfg.dps,
            GuardConfig::default(),
            rng,
        ))
    } else {
        Box::new(DpsManager::new(n, budget, limits, cfg.dps, rng))
    }
}

fn dps_mode(cfg: &ExperimentConfig, mode: StatsMode) -> Box<dyn PowerManager> {
    let limits = UnitLimits {
        min_cap: cfg.sim.domain_spec.min_cap,
        max_cap: cfg.sim.domain_spec.tdp,
    };
    Box::new(DpsManager::new(
        cfg.sim.topology.total_units(),
        cfg.sim.total_budget(),
        limits,
        cfg.dps.with_stats_mode(mode),
        RngStream::new(cfg.seed, "manager/DPS"),
    ))
}

fn programs() -> Vec<DemandProgram> {
    vec![
        DemandProgram::new(vec![Phase::constant(400.0, 150.0)]),
        DemandProgram::new(vec![
            Phase::constant(120.0, 60.0),
            Phase::constant(280.0, 140.0),
        ]),
    ]
}

/// The acceptance criterion: with per-cycle checkpoints, crash + restore at
/// an arbitrary point reproduces the uninterrupted trajectory bit for bit.
#[test]
fn restored_controller_matches_uninterrupted_run() {
    for guarded in [false, true] {
        let cfg = config(41);
        let budget = cfg.sim.total_budget();
        let sim_rng = RngStream::new(41, "ckpt-e2e");
        let mut crashed =
            ClusterSim::new(cfg.sim.clone(), programs(), dps(&cfg, guarded), &sim_rng);
        let mut twin = ClusterSim::new(cfg.sim.clone(), programs(), dps(&cfg, guarded), &sim_rng);
        crashed.enable_watchdog(1);

        for _ in 0..70 {
            crashed.cycle();
            twin.cycle();
        }
        // Crash: all in-memory controller state is lost; a freshly
        // constructed manager takes over from the last snapshot.
        crashed
            .crash_and_restore(dps(&cfg, guarded))
            .expect("restore from snapshot");

        for _ in 0..150 {
            crashed.cycle();
            twin.cycle();
            assert_eq!(
                crashed.caps(),
                twin.caps(),
                "guarded={guarded} diverged at t={}",
                crashed.timestep()
            );
            assert!(crashed.caps().iter().sum::<f64>() <= budget + 1e-6);
        }
    }
}

/// The Q-learning manager honours the same crash contract: its Q-tables,
/// per-unit exploration rates, and rng stream position all live in the
/// snapshot, so a freshly constructed `QdpmManager` — built with a
/// *different* seed, which the restore must overwrite — picks up the
/// uninterrupted trajectory bit for bit.
#[test]
fn restored_qdpm_controller_matches_uninterrupted_run() {
    use dps_suite::core::{QdpmConfig, QdpmManager};
    let cfg = config(47);
    let budget = cfg.sim.total_budget();
    let limits = UnitLimits {
        min_cap: cfg.sim.domain_spec.min_cap,
        max_cap: cfg.sim.domain_spec.tdp,
    };
    let qdpm = |seed: u64| -> Box<dyn PowerManager> {
        Box::new(QdpmManager::new(
            cfg.sim.topology.total_units(),
            budget,
            limits,
            QdpmConfig::default(),
            RngStream::new(seed, "manager/QDPM"),
        ))
    };
    let sim_rng = RngStream::new(47, "ckpt-qdpm");
    let mut crashed = ClusterSim::new(cfg.sim.clone(), programs(), qdpm(47), &sim_rng);
    let mut twin = ClusterSim::new(cfg.sim.clone(), programs(), qdpm(47), &sim_rng);
    crashed.enable_watchdog(1);

    for _ in 0..70 {
        crashed.cycle();
        twin.cycle();
    }
    crashed
        .crash_and_restore(qdpm(999))
        .expect("restore from snapshot");

    for _ in 0..150 {
        crashed.cycle();
        twin.cycle();
        assert_eq!(
            crashed.caps(),
            twin.caps(),
            "QDPM diverged at t={}",
            crashed.timestep()
        );
        assert!(crashed.caps().iter().sum::<f64>() <= budget + 1e-6);
    }
}

/// The rolling-moment accumulators resync against the raw ring every
/// `4 × window` pushes (80 cycles at the paper-default window), so their
/// persisted state is path-dependent: a snapshot taken after the boundary
/// carries post-resync offsets that a from-scratch rebuild would not
/// reproduce. Crashing well past that boundary must still restore to a
/// bit-identical trajectory — the codec persists the accumulators
/// themselves, not just the ring they summarize.
#[test]
fn restore_after_resync_boundary_stays_bit_identical() {
    let cfg = config(53);
    let budget = cfg.sim.total_budget();
    let sim_rng = RngStream::new(53, "ckpt-resync");
    let mut crashed = ClusterSim::new(
        cfg.sim.clone(),
        programs(),
        dps_mode(&cfg, StatsMode::Incremental),
        &sim_rng,
    );
    let mut twin = ClusterSim::new(
        cfg.sim.clone(),
        programs(),
        dps_mode(&cfg, StatsMode::Incremental),
        &sim_rng,
    );
    crashed.enable_watchdog(1);

    for _ in 0..120 {
        crashed.cycle();
        twin.cycle();
    }
    crashed
        .crash_and_restore(dps_mode(&cfg, StatsMode::Incremental))
        .expect("restore past the resync boundary");

    for _ in 0..150 {
        crashed.cycle();
        twin.cycle();
        assert_eq!(
            crashed.caps(),
            twin.caps(),
            "diverged at t={}",
            crashed.timestep()
        );
        assert!(crashed.caps().iter().sum::<f64>() <= budget + 1e-6);
    }
}

/// Snapshots are portable across statistics modes: one written by an
/// incremental-mode controller restores into a rescan-mode replacement and
/// vice versa, and either way the trajectory still matches an uninterrupted
/// twin exactly (the modes are decision-equivalent, so the twin's own mode
/// is immaterial).
#[test]
fn cross_mode_restore_matches_uninterrupted_run() {
    for (before, after) in [
        (StatsMode::Incremental, StatsMode::Rescan),
        (StatsMode::Rescan, StatsMode::Incremental),
    ] {
        let cfg = config(59);
        let sim_rng = RngStream::new(59, "ckpt-crossmode");
        let mut crashed = ClusterSim::new(
            cfg.sim.clone(),
            programs(),
            dps_mode(&cfg, before),
            &sim_rng,
        );
        let mut twin = ClusterSim::new(
            cfg.sim.clone(),
            programs(),
            dps_mode(&cfg, before),
            &sim_rng,
        );
        crashed.enable_watchdog(1);

        for _ in 0..100 {
            crashed.cycle();
            twin.cycle();
        }
        crashed
            .crash_and_restore(dps_mode(&cfg, after))
            .expect("cross-mode restore");

        for _ in 0..150 {
            crashed.cycle();
            twin.cycle();
            assert_eq!(
                crashed.caps(),
                twin.caps(),
                "{before:?}->{after:?} diverged at t={}",
                crashed.timestep()
            );
        }
    }
}

/// A sparser watchdog (every 20 cycles) restores to a snapshot up to 19
/// cycles stale. The restored controller is *behind* the plant, so exact
/// trajectory equality is off the table — but it must stay budget-safe
/// immediately and converge back to the twin's allocation.
#[test]
fn stale_snapshot_restores_safely_and_converges() {
    let cfg = config(43);
    let budget = cfg.sim.total_budget();
    let sim_rng = RngStream::new(43, "ckpt-stale");
    let mut crashed = ClusterSim::new(cfg.sim.clone(), programs(), dps(&cfg, false), &sim_rng);
    let mut twin = ClusterSim::new(cfg.sim.clone(), programs(), dps(&cfg, false), &sim_rng);
    crashed.enable_watchdog(20);

    for _ in 0..70 {
        crashed.cycle();
        twin.cycle();
    }
    crashed
        .crash_and_restore(dps(&cfg, false))
        .expect("restore from stale snapshot");

    let mut worst_gap = 0.0f64;
    for step in 0..200 {
        crashed.cycle();
        twin.cycle();
        assert!(
            crashed.caps().iter().sum::<f64>() <= budget + 1e-6,
            "restored controller broke the budget at step {step}"
        );
        let gap: f64 = crashed
            .caps()
            .iter()
            .zip(twin.caps())
            .map(|(a, b)| (a - b).abs())
            .sum();
        if step >= 150 {
            worst_gap = worst_gap.max(gap);
        }
    }
    // Both controllers face the same demands; the restored one must settle
    // onto an allocation close to the uninterrupted twin's.
    assert!(
        worst_gap < 25.0,
        "restored controller never converged: {worst_gap:.1} W total cap gap"
    );
}

/// Restoring into the wrong shape or from garbage must fail loudly and
/// leave the incumbent manager running.
#[test]
fn bad_restores_are_rejected() {
    let cfg = config(47);
    let sim_rng = RngStream::new(47, "ckpt-bad");
    let mut sim = ClusterSim::new(cfg.sim.clone(), programs(), dps(&cfg, true), &sim_rng);
    sim.enable_watchdog(5);
    for _ in 0..10 {
        sim.cycle();
    }

    // Wrong unit count.
    let mut small = config(47);
    small.sim.topology = Topology::new(2, 1, 2);
    let err = sim.crash_and_restore(dps(&small, true)).unwrap_err();
    assert!(err.contains("units"), "{err}");

    // Corrupted snapshot: flip one byte and restore into a fresh manager.
    let mut snap = sim.last_checkpoint().expect("snapshot taken").to_vec();
    snap[12] ^= 0xFF;
    let mut fresh = dps(&cfg, true);
    assert!(fresh.restore(&snap).is_err(), "corrupt snapshot accepted");

    // The incumbent keeps running fine after both failures.
    for _ in 0..5 {
        sim.cycle();
    }
}
