//! No-op `Serialize`/`Deserialize` derives for the serde stand-in.
//!
//! They accept (and ignore) `#[serde(...)]` attributes and expand to
//! nothing: the stand-in traits are markers, so there is nothing to
//! implement.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
