//! Minimal offline stand-in for `criterion` (see `third_party/README.md`).
//!
//! Lets the workspace's bench targets compile and smoke-run: each benchmark
//! executes a few iterations and prints its name, with no timing statistics.

use std::fmt::Display;

pub use std::hint::black_box;

/// Iterations run per benchmark by the stand-in.
const SMOKE_ITERS: u32 = 3;

/// Drives closures passed to `iter`.
pub struct Bencher;

impl Bencher {
    /// Runs the routine a few times (no measurement).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..SMOKE_ITERS {
            black_box(routine());
        }
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation (accepted, ignored).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted, ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted, ignored.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted, ignored.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        eprintln!("bench {}/{} (smoke)", self.name, id);
        f(&mut Bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        eprintln!("bench {name} (smoke)");
        f(&mut Bencher);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
