//! Minimal offline stand-in for `rand 0.8` (see `third_party/README.md`).
//!
//! Implements exactly the API surface this workspace consumes. The `StdRng`
//! core is xoshiro256** rather than upstream's ChaCha12: sequences differ
//! from upstream for the same seed, but are deterministic and of good
//! statistical quality, which is all the simulation relies on.

/// Core random-number-generator interface (subset of `rand_core`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed byte-array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` (splitmix64-expanded, matching the
    /// upstream convention of filling the seed little-endian).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // splitmix64 step
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generator types.
    use super::{RngCore, SeedableRng};

    /// Stand-in for the standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start all-zero.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

pub mod distributions {
    //! Distributions (subset: `Standard` and uniform-range sampling).
    use super::RngCore;

    /// A sampleable distribution over `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution per type: full range for integers,
    /// `[0, 1)` for floats, fair coin for `bool`.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits → [0, 1) with full double precision.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                #[inline]
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub mod uniform {
        //! Uniform sampling from ranges.
        use super::super::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Types that can be sampled uniformly from a bounded range.
        pub trait SampleUniform: Sized + PartialOrd + Copy {
            /// Uniform sample from `[lo, hi)` (`inclusive` = `[lo, hi]`).
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self;
        }

        macro_rules! impl_sample_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                    ) -> Self {
                        let lo_w = lo as i128;
                        let hi_w = hi as i128;
                        let span = if inclusive {
                            hi_w - lo_w + 1
                        } else {
                            hi_w - lo_w
                        };
                        assert!(span > 0, "cannot sample from empty range");
                        // Modulo draw: the bias is < span/2^64, far below
                        // anything observable in this workspace's usage.
                        let draw = (rng.next_u64() as u128 % span as u128) as i128;
                        (lo_w + draw) as $t
                    }
                }
            )*};
        }
        impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_sample_uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        _inclusive: bool,
                    ) -> Self {
                        assert!(lo <= hi, "cannot sample from empty range");
                        let u = (rng.next_u64() >> 11) as f64
                            * (1.0 / (1u64 << 53) as f64);
                        let v = lo as f64 + (hi as f64 - lo as f64) * u;
                        // Guard against rounding up to an exclusive bound.
                        if v >= hi as f64 && lo < hi {
                            lo
                        } else {
                            v as $t
                        }
                    }
                }
            )*};
        }
        impl_sample_uniform_float!(f32, f64);

        /// Range forms accepted by [`super::super::Rng::gen_range`].
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_uniform(rng, self.start, self.end, false)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_uniform(rng, *self.start(), *self.end(), true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::uniform::SampleUniform;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(0usize..=4);
            assert!(y <= 4);
            let z = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn negative_int_ranges() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let x = i64::sample_uniform(&mut r, -10, 10, false);
            assert!((-10..10).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
