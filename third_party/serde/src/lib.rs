//! Minimal offline stand-in for `serde` (see `third_party/README.md`).
//!
//! The workspace only *derives* `Serialize`/`Deserialize` so that its public
//! types advertise serializability; nothing serializes at runtime. The
//! traits here are markers and the derives are no-ops.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub mod de {
    //! Deserialization half (markers only).
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    //! Serialization half (markers only).
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
