//! `any::<T>()` — the canonical strategy per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Full-range floats minus the non-finite values (the workspace's properties
// all operate on finite arithmetic).
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() * 2.0 - 1.0) * 1e9
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.unit_f64() * 2.0 - 1.0) * 1e9) as f32
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}
