//! Minimal offline stand-in for `proptest` (see `third_party/README.md`).
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, range/tuple/`Just`/`any`
//! strategies, `prop::collection::vec`, `prop_map`, `prop_oneof!`, and the
//! `prop_assert*` macros. Each property runs over a fixed number of
//! deterministically seeded cases (no shrinking, regression files ignored).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything a property-test file needs, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` path alias (`prop::collection::vec(...)`).
        pub use crate::collection;
        pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    }
}

/// Defines property-test functions. Each function body runs once per case
/// with its arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(__msg) if __msg == $crate::test_runner::REJECT_SENTINEL => {}
                        ::std::result::Result::Err(__msg) => {
                            panic!("property failed at case {}: {}", __case, __msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                format!("assertion failed: `{:?}` == `{:?}`", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)));
        }
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(
                format!("assertion failed: `{:?}` != `{:?}`", l, r));
        }
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::string::String::from($crate::test_runner::REJECT_SENTINEL));
        }
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
