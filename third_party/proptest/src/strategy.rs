//! The `Strategy` trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Object-safe: the combinator methods carry `Self: Sized` bounds so boxed
/// strategies remain usable.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Retries generation until `f` accepts the value (bounded attempts).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 consecutive values", self.whence);
    }
}

/// Uniform choice over equally weighted alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.int_in(0, self.options.len() as i128 - 1) as usize;
        self.options[idx].generate(rng)
    }
}

// ---- ranges as strategies -------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.int_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.int_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as f64;
                let hi = self.end as f64;
                let v = lo + (hi - lo) * rng.unit_f64();
                if v >= hi { self.start } else { v as $t }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as f64;
                let hi = *self.end() as f64;
                (lo + (hi - lo) * rng.unit_f64()) as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

// ---- tuples of strategies -------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
