//! Collection strategies (subset: `vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy generating a `Vec` of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.int_in(self.size.lo as i128, self.size.hi as i128) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
