//! Case configuration and the deterministic per-case RNG.

/// Sentinel error string used by `prop_assume!` to signal a rejected
/// (skipped) case rather than a failure.
pub const REJECT_SENTINEL: &str = "__proptest_stub_reject__";

/// Explicit case-failure value for `Result`-style property bodies
/// (`.map_err(|e| TestCaseError::fail(...))?`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure carrying `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }

    /// A rejection (the case is skipped, not failed).
    pub fn reject(_reason: impl Into<String>) -> Self {
        Self(REJECT_SENTINEL.to_string())
    }
}

impl From<TestCaseError> for String {
    fn from(e: TestCaseError) -> String {
        e.0
    }
}

/// Runner configuration (subset: only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking in the stand-in).
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic splitmix64 generator seeded from `(property name, case)`.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn fnv1a(label: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in label.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl TestRng {
    /// The RNG for one case of one named property.
    pub fn for_case(property: &str, case: u32) -> Self {
        Self {
            state: splitmix64(fnv1a(property) ^ splitmix64(u64::from(case))),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "empty integer range");
        let span = (hi - lo + 1) as u128;
        lo + (self.next_u64() as u128 % span) as i128
    }
}
