//! The sleep-state ladder: how an idle socket decides how deep to sleep.
//!
//! ```text
//! cargo run --release --example idle_states
//! ```
//!
//! An overprovisioned cluster spends much of its life waiting, and what an
//! idle socket does while it waits is a cost model: shallow states keep
//! burning power but wake for free, deep states sip power but charge a
//! wake penalty. This example walks the `dps-idle` pieces bottom-up —
//! first the catalog and its break-even times, then the demotion schedule
//! each policy compiles (and what it pays against the offline optimum),
//! and finally a flash-crowd simulation where the provisioner's dark
//! sockets actually descend the ladder, comparing a naive fixed timeout
//! against the 2-competitive ski-rental cascade.

use dps_suite::cluster::{ClusterSim, ExperimentConfig};
use dps_suite::core::manager::ManagerKind;
use dps_suite::idle::{IdleConfig, IdlePolicy, SleepCatalog};
use dps_suite::rapl::Topology;
use dps_suite::sim_core::RngStream;
use dps_suite::traffic::{ProvisionerConfig, ProvisionerMode, TrafficConfig, TrafficPattern};

fn print_schedule(policy: &IdlePolicy, catalog: &SleepCatalog, prediction: f64) {
    let steps: Vec<String> = policy
        .schedule(catalog, prediction)
        .into_iter()
        .map(|(t, s)| format!("{} @ {:>6.1} s", catalog.states()[s].name, t))
        .collect();
    println!("  {:<19} {}", policy.name(), steps.join("  ->  "));
}

fn main() {
    // (1) The cost model: a four-level ladder loosely modelled on the
    // paper testbed's Xeon package C-states. Each break-even time marks
    // where the next state's wake penalty amortises — together they trace
    // the lower envelope an offline-optimal sleeper would follow.
    let catalog = SleepCatalog::xeon_c_states();
    println!("sleep-state catalog (shallowest first):\n");
    println!("  state   idle W   wake s   wake J");
    for s in catalog.states() {
        println!(
            "  {:<6} {:>6.1}  {:>7.1}  {:>7.0}",
            s.name, s.idle_power_w, s.wake_latency_s, s.wake_energy_j
        );
    }
    let breaks: Vec<String> = catalog
        .break_even_times()
        .iter()
        .skip(1)
        .map(|t| format!("{t:.1} s"))
        .collect();
    println!("\nbreak-even entry times: {}\n", breaks.join(", "));

    // (2) The policies compile that model into a demotion schedule. The
    // fixed timeout jumps straight to the deepest state after a grace
    // period; ski rental walks the break-even cascade; the
    // learning-augmented variant shifts the cascade toward the predicted
    // gap (earlier when a long gap is advised, later when a short one is).
    let fixed = IdlePolicy::FixedTimeout { timeout_s: 100.0 };
    let ski = IdlePolicy::SkiRental;
    let la = IdlePolicy::LearningAugmented { lambda: 0.5 };
    println!("demotion schedules (predicted gap 300 s):\n");
    for policy in [&fixed, &ski, &la] {
        print_schedule(policy, &catalog, 300.0);
    }
    println!("\ndemotion schedules (predicted gap 5 s):\n");
    for policy in [&fixed, &ski, &la] {
        print_schedule(policy, &catalog, 5.0);
    }

    // What each schedule actually pays, against the clairvoyant optimum
    // that knows the gap and picks the single best state up front.
    println!("\ncost per idle gap, as a multiple of offline OPT:\n");
    println!("  gap (s)      OPT (J)   fixed    ski     LA(good)  LA(bad)");
    for gap in [1.0, 10.0, 60.0, 600.0] {
        let opt = catalog.offline_optimal_cost(gap);
        println!(
            "  {:>7.0}  {:>10.0}   {:>5.2}  {:>5.2}   {:>7.2}  {:>7.2}",
            gap,
            opt,
            fixed.cost(&catalog, gap, gap) / opt,
            ski.cost(&catalog, gap, gap) / opt,
            la.cost(&catalog, gap, gap) / opt,
            la.cost(&catalog, 8.0 * gap + 40.0, gap) / opt,
        );
    }

    // (3) The ladder in situ: a flash crowd on a 2×4×2 partition. The
    // reactive provisioner powers nodes off once the crowd passes, and the
    // idle fleet decides how deep those dark sockets sleep. Same seed,
    // same traffic — only the demotion policy differs.
    println!("\nflash crowd on 16 sockets, fixed timeout vs ski rental:\n");
    let run = |policy: IdlePolicy| {
        let name = policy.name();
        let mut config = ExperimentConfig::paper_default(/* seed */ 7, /* reps */ 1);
        config.sim.topology = Topology::new(2, 4, 2);
        let sockets = config.sim.topology.total_units();
        let capacity_rps = 100.0;
        let mut traffic = TrafficConfig::default_diurnal(sockets, capacity_rps);
        traffic.pattern = TrafficPattern::FlashCrowd {
            base_rps: 0.15 * sockets as f64 * capacity_rps,
            peak_rps: 0.9 * sockets as f64 * capacity_rps,
            start: 60.0,
            ramp: 30.0,
            hold: 120.0,
            decay: 30.0,
        };
        traffic.provisioner = ProvisionerMode::Reactive(ProvisionerConfig {
            target_utilization: 0.7,
            headroom_nodes: 0,
            power_off_after: 15.0,
            min_nodes: 1,
        });
        config.sim.traffic = Some(traffic);
        config.sim.idle = Some(IdleConfig {
            policy,
            ..IdleConfig::default()
        });
        let mut sim = ClusterSim::with_traffic(
            config.sim.clone(),
            config.build_manager(ManagerKind::Dps),
            &RngStream::new(config.seed, "idle-states-example"),
        );
        for _ in 0..600 {
            sim.cycle();
        }
        let stats = sim.request_stats().expect("traffic mode").clone();
        println!(
            "  {:<14} {:>12.0} J   SLO {:>5.1} %   {:.0} served",
            name,
            stats.joules,
            100.0 * stats.slo_attainment().unwrap_or(1.0),
            stats.served,
        );
        stats.joules
    };
    let fixed_j = run(IdlePolicy::FixedTimeout { timeout_s: 100.0 });
    let ski_j = run(IdlePolicy::SkiRental);
    println!(
        "\nski rental saved {:.1} % of total energy over the fixed timeout,\n\
         without a predictor and without knowing the gap distribution.",
        100.0 * (fixed_j - ski_j) / fixed_j,
    );
    assert!(ski_j < fixed_j, "ski rental should beat the fixed timeout");
}
