//! Job scheduler: run a seeded batch queue through the simulated testbed.
//!
//! ```text
//! cargo run --release --example job_scheduler
//! ```
//!
//! Instead of pinning one workload per cluster, a Poisson stream of catalog
//! jobs flows through the EASY-backfill scheduler: each job asks for whole
//! nodes and a power reservation, runs under the manager's caps, and frees
//! its sockets on completion (unit churn). The same seeded trace is run
//! under constant caps and under DPS to show what demand-aware power
//! steering buys the queue.

use dps_suite::cluster::{ClusterSim, ExperimentConfig};
use dps_suite::core::manager::ManagerKind;
use dps_suite::metrics::jobs::{bounded_slowdowns, makespan};
use dps_suite::rapl::Topology;
use dps_suite::sched::SchedConfig;
use dps_suite::sim_core::RngStream;

fn drain(config: &ExperimentConfig, kind: ManagerKind) -> ClusterSim {
    let mut sim = ClusterSim::with_scheduler(
        config.sim.clone(),
        config.build_manager(kind),
        // Same seed and label for every manager: identical arrival trace.
        &RngStream::new(config.seed, "job-scheduler-example"),
    );
    while !sim.scheduler_drained() {
        sim.cycle();
    }
    sim
}

fn report(label: &str, sim: &ClusterSim, bound: f64) {
    let times: Vec<(f64, f64, f64)> = sim
        .job_records()
        .iter()
        .map(|r| (r.arrival, r.start, r.end))
        .collect();
    let slowdowns = bounded_slowdowns(&times, bound);
    let mean = slowdowns.iter().sum::<f64>() / slowdowns.len().max(1) as f64;
    println!(
        "{label}: {} jobs, makespan {:.0} s, mean bounded slowdown {:.2}",
        times.len(),
        makespan(&times).unwrap_or(0.0),
        mean,
    );
}

fn main() {
    // A small partition — 1 cluster × 8 nodes × 2 sockets — with ten
    // Poisson arrivals drawn from the workload catalog. (Jobs span up to
    // 4 nodes; 8 nodes keeps even a wide, hungry job's power reservation
    // within the cluster budget.)
    let mut config = ExperimentConfig::paper_default(/* seed */ 7, /* reps */ 1);
    config.sim.topology = Topology::new(1, 8, 2);
    let sched_cfg =
        SchedConfig::default_poisson(/* jobs */ 10, /* mean interarrival */ 250.0);
    let bound = sched_cfg.slowdown_bound;
    config.sim.scheduler = Some(sched_cfg);

    let constant = drain(&config, ManagerKind::Constant);
    let dps = drain(&config, ManagerKind::Dps);

    report("constant", &constant, bound);
    report("DPS     ", &dps, bound);

    // The job records carry per-job detail too.
    println!("\nper-job (DPS):");
    for r in dps.job_records() {
        println!(
            "  job {:>2} {:<12} {} node(s): waited {:>5.0} s, ran {:>6.0} s ({:?})",
            r.id,
            r.name,
            r.nodes,
            r.wait(),
            r.runtime(),
            r.outcome,
        );
    }
}
