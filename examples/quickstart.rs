//! Quickstart: cap a two-cluster simulated testbed with DPS.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's experiment setup in a few lines: a workload pair from
//! the catalog, the Dynamic Power Scheduler, and a run that reports
//! throughput times, satisfaction and fairness.

use dps_suite::cluster::{run_pair, ExperimentConfig};
use dps_suite::core::manager::ManagerKind;
use dps_suite::workloads::catalog;

fn main() {
    // The paper's setup: 2 clusters × 5 nodes × 2 sockets, 165 W TDP,
    // 66.7 % cluster-wide budget (110 W/socket), 1 s decisions.
    let config = ExperimentConfig::paper_default(/* seed */ 1, /* reps */ 2);

    // Pick a workload per cluster from the built-in catalog (Tables 2 & 4).
    let bayes = catalog::find("Bayes").expect("catalog entry");
    let gmm = catalog::find("GMM").expect("catalog entry");

    // Run the pair under constant allocation (the baseline) and under DPS.
    let baseline = run_pair(bayes, gmm, ManagerKind::Constant, &config);
    let dps = run_pair(bayes, gmm, ManagerKind::Dps, &config);

    println!("workload pair: {} + {}", baseline.a.name, baseline.b.name);
    println!(
        "constant 110 W: {} runs at hmean {:.1} s / {:.1} s",
        config.reps,
        baseline.a.hmean_duration(),
        baseline.b.hmean_duration()
    );
    println!(
        "DPS:            {} runs at hmean {:.1} s / {:.1} s",
        config.reps,
        dps.a.hmean_duration(),
        dps.b.hmean_duration()
    );
    println!(
        "speedups over constant: {:+.1}% / {:+.1}% (pair hmean {:+.1}%)",
        100.0 * (dps.speedup_a(baseline.a.hmean_duration()) - 1.0),
        100.0 * (dps.speedup_b(baseline.b.hmean_duration()) - 1.0),
        100.0 * (dps.pair_speedup(baseline.a.hmean_duration(), baseline.b.hmean_duration()) - 1.0),
    );
    println!(
        "satisfaction: {:.3} / {:.3}; fairness {:.3}",
        dps.a.satisfaction, dps.b.satisfaction, dps.fairness
    );
}
