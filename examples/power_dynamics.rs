//! The power-dynamics toolkit on its own: Kalman filtering, prominent-peak
//! detection and derivative estimation over a noisy power trace.
//!
//! ```text
//! cargo run --release --example power_dynamics
//! ```
//!
//! Generates an LR-style demand trace, corrupts it with RAPL-grade
//! measurement noise, and shows each stage of the §4.3 pipeline: the
//! filter's estimates, the peak counter's frequency classification, and
//! the windowed derivative that anticipates power needs.

use dps_suite::core::config::DpsConfig;
use dps_suite::core::history::UnitState;
use dps_suite::rapl::NoiseModel;
use dps_suite::sim_core::{signal, RngStream};
use dps_suite::workloads::{build_program, catalog, PerfModel};

fn main() {
    let config = DpsConfig::default();
    let perf = PerfModel::paper_default();
    let noise = NoiseModel::Gaussian { std_dev: 2.0 };
    let mut rng = RngStream::new(99, "power-dynamics-example");

    let spec = catalog::find("LR").unwrap();
    let program = build_program(spec, &perf, 3);
    let truth = program.sample(1.0);

    // Feed 120 seconds of noisy measurements through a unit's state.
    let mut state = UnitState::new(&config);
    let mut rows = Vec::new();
    for (i, &demand) in truth.values().iter().take(120).enumerate() {
        let measured = noise.apply(demand, &mut rng);
        let estimate = state.observe(measured, 1.0);
        if i % 10 == 9 {
            let peaks = state.prominent_peak_count();
            let deriv = state.derivative().unwrap_or(0.0);
            rows.push((i + 1, demand, measured, estimate, peaks, deriv));
        }
    }

    println!(
        "{:>5} {:>9} {:>9} {:>9} {:>6} {:>10}",
        "t(s)", "truth(W)", "noisy(W)", "kalman(W)", "peaks", "dP/dt(W/s)"
    );
    for (t, truth, noisy, est, peaks, deriv) in rows {
        println!("{t:>5} {truth:>9.1} {noisy:>9.1} {est:>9.1} {peaks:>6} {deriv:>+10.2}");
    }

    // Frequency classification over the whole trace, sliding the history
    // window one sample per cycle exactly as the priority module does.
    let window = config.history_len;
    let gate_rate = |values: &[f64]| {
        let mut high = 0usize;
        let mut total = 0usize;
        for chunk in values.windows(window) {
            total += 1;
            if signal::count_prominent_peaks(chunk, config.peak_prominence) > config.pp_threshold {
                high += 1;
            }
        }
        (high, total)
    };
    let (lr_high, lr_total) = gate_rate(truth.values());
    println!(
        "\nLR cycles where the frequency gate fires: {lr_high}/{lr_total} \
         (prominence {} W, threshold > {} peaks per {window} s window)",
        config.peak_prominence, config.pp_threshold
    );

    // Compare with a long-phase workload.
    let lda = build_program(catalog::find("LDA").unwrap(), &perf, 3);
    let lda_trace = lda.sample(1.0);
    let (lda_high, lda_total) = gate_rate(lda_trace.values());
    println!("LDA cycles where the frequency gate fires: {lda_high}/{lda_total}");
    println!("\nThe gap between those two rates is exactly what lets DPS treat LR's");
    println!("churn differently from LDA's long phases (paper Alg. 2).");
}
