//! Request-driven elastic cluster: a flash crowd hits a small service.
//!
//! ```text
//! cargo run --release --example request_driven_cluster
//! ```
//!
//! Instead of pinning workloads or queueing jobs, requests arrive — a
//! steady trickle, then a flash crowd — and two control loops react
//! together: the reactive provisioner powers whole nodes on as backlog
//! builds (and off again, after a hysteresis window, once the crowd
//! passes), while DPS redistributes the power budget among whichever
//! sockets are lit each cycle. The narration below shows the fleet
//! growing into the burst and shrinking back, with the powered-caps sum
//! staying inside the budget throughout.

use dps_suite::cluster::{ClusterSim, ExperimentConfig};
use dps_suite::core::manager::ManagerKind;
use dps_suite::rapl::Topology;
use dps_suite::sim_core::RngStream;
use dps_suite::traffic::{ProvisionerConfig, ProvisionerMode, TrafficConfig, TrafficPattern};

fn main() {
    // A small partition — 1 cluster × 4 nodes × 2 sockets, each socket
    // serving up to 100 requests/s — facing a flash crowd that peaks at
    // 75 % of the whole fleet's capacity.
    let mut config = ExperimentConfig::paper_default(/* seed */ 7, /* reps */ 1);
    config.sim.topology = Topology::new(1, 4, 2);
    let sockets = config.sim.topology.total_units();
    let capacity_rps = 100.0;

    let mut traffic = TrafficConfig::default_diurnal(sockets, capacity_rps);
    traffic.pattern = TrafficPattern::FlashCrowd {
        base_rps: 100.0,
        peak_rps: 0.75 * sockets as f64 * capacity_rps,
        start: 60.0,
        ramp: 30.0,
        hold: 240.0,
        decay: 30.0,
    };
    traffic.provisioner = ProvisionerMode::Reactive(ProvisionerConfig {
        target_utilization: 0.7,
        headroom_nodes: 0,
        power_off_after: 45.0,
        min_nodes: 1,
    });
    let slo = traffic.slo_latency;
    let pattern = traffic.pattern.clone();
    config.sim.traffic = Some(traffic);

    let budget = config.sim.total_budget();
    let mut sim = ClusterSim::with_traffic(
        config.sim.clone(),
        config.build_manager(ManagerKind::Dps),
        &RngStream::new(config.seed, "request-driven-example"),
    );

    println!(
        "flash crowd: 100 -> {:.0} rps on {sockets} sockets ({:.0} rps capacity), \
         budget {budget:.0} W\n",
        0.75 * sockets as f64 * capacity_rps,
        sockets as f64 * capacity_rps,
    );
    println!("    t   offered  nodes  backlog  powered caps   fleet");
    for cycle in 0..600u64 {
        sim.cycle();
        if cycle % 30 != 29 {
            continue;
        }
        let driver = sim.traffic_driver().expect("traffic mode");
        let occupied = sim.occupied_units().expect("traffic mode");
        let powered_caps: f64 = sim
            .caps()
            .iter()
            .zip(occupied)
            .filter(|&(_, &on)| on)
            .map(|(&cap, _)| cap)
            .sum();
        assert!(powered_caps <= budget + 1e-6, "budget invariant violated");
        let nodes = driver.active_nodes();
        println!(
            "{:>5.0}  {:>7.0}  {:>5}  {:>7.0}  {:>9.0} W   {}{}",
            sim.now(),
            pattern.rate_at(sim.now()),
            nodes,
            driver.backlog(),
            powered_caps,
            "#".repeat(nodes),
            ".".repeat(4 - nodes),
        );
    }

    let stats = sim.request_stats().expect("traffic mode");
    println!(
        "\n{:.0} arrived, {:.0} served, {:.0} still queued",
        stats.arrived,
        stats.served,
        sim.traffic_driver().unwrap().backlog(),
    );
    println!(
        "SLO ({slo:.0} s): {:.1} % attained, mean latency {:.2} s, p95 {:.2} s",
        100.0 * stats.slo_attainment().unwrap_or(1.0),
        stats.mean_latency().unwrap_or(0.0),
        stats.latency_percentile(0.95).unwrap_or(0.0),
    );
    println!(
        "energy: {:.0} J total, {:.0} J per million requests",
        stats.joules,
        stats.joules_per_million().unwrap_or(0.0),
    );
}
