//! Implementing your own power manager against the `PowerManager` trait.
//!
//! ```text
//! cargo run --release --example custom_manager
//! ```
//!
//! Defines `ProportionalManager` — a simple policy that every cycle
//! reallocates the entire budget proportionally to each unit's *measured*
//! power above a per-unit floor — and races it against SLURM and DPS on
//! two high-utility pairs. Measured power is capped power, so a
//! proportional policy ratifies the existing allocation whenever every
//! unit is saturated; the min-cap floor turns that fixed point into a slow
//! contraction back toward the equal split, which makes the policy
//! surprisingly serviceable — and makes the comparison with DPS
//! instructive: DPS reaches the same balanced allocation in one
//! equalization step and can *anticipate* demand via power dynamics.

use dps_suite::cluster::{ClusterSim, ExperimentConfig};
use dps_suite::core::manager::{ManagerKind, PowerManager, UnitLimits};
use dps_suite::sim_core::units::{Seconds, Watts};
use dps_suite::sim_core::RngStream;
use dps_suite::workloads::{build_program, catalog};

/// Reallocates the budget proportionally to the last measured power.
struct ProportionalManager {
    total_budget: Watts,
    limits: UnitLimits,
    num_units: usize,
}

impl PowerManager for ProportionalManager {
    fn kind(&self) -> ManagerKind {
        // There is no enum variant for third-party managers; report the
        // closest archetype (it only labels logs).
        ManagerKind::Constant
    }

    fn num_units(&self) -> usize {
        self.num_units
    }

    fn total_budget(&self) -> Watts {
        self.total_budget
    }

    fn set_budget(&mut self, new_budget: Watts) -> Result<(), String> {
        dps_suite::core::manager::check_new_budget(new_budget, self.num_units, self.limits)?;
        self.total_budget = new_budget;
        Ok(())
    }

    fn assign_caps(&mut self, measured: &[Watts], caps: &mut [Watts], _dt: Seconds) {
        let total: f64 = measured.iter().map(|&p| p.max(1.0)).sum();
        // Floor every unit at min_cap, then split what remains by share of
        // measured power.
        let floor = self.limits.min_cap;
        let spendable = (self.total_budget - floor * caps.len() as f64).max(0.0);
        for (cap, &p) in caps.iter_mut().zip(measured) {
            *cap = self.limits.clamp(floor + spendable * p.max(1.0) / total);
        }
        // Clamping at TDP can only reduce the sum, so the budget holds.
    }

    fn reset(&mut self) {}
}

fn run(label: &str, partner: &str, manager: Box<dyn PowerManager>, config: &ExperimentConfig) {
    let a = catalog::find("Kmeans").unwrap();
    let b = catalog::find(partner).unwrap();
    let program_a = build_program(a, &config.sim.perf, 21);
    let program_b = build_program(b, &config.sim.perf, 22);
    let mut sim = ClusterSim::new(
        config.sim.clone(),
        vec![program_a, program_b],
        manager,
        &RngStream::new(5, "custom-example"),
    );
    let reps = config.reps;
    sim.run_until(config.max_steps, |s| {
        s.runs_completed(0) >= reps && s.runs_completed(1) >= reps
    });
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    println!(
        "{label:<22} Kmeans {:>7.1} s  {partner} {:>7.1} s  fairness {:.3}",
        mean(sim.run_durations(0)),
        mean(sim.run_durations(1)),
        sim.fairness(0, 1)
    );
}

fn main() {
    let config = ExperimentConfig::paper_default(5, 1);
    let n = config.sim.topology.total_units();
    let proportional = || -> Box<dyn PowerManager> {
        Box::new(ProportionalManager {
            total_budget: config.sim.total_budget(),
            limits: config.limits(),
            num_units: n,
        })
    };

    // Against another phase-rich workload the proportional policy gets
    // away with it: GMM's own quiet phases keep releasing share back.
    println!("Kmeans + GMM (both phase-rich), mean run durations:\n");
    run("proportional (custom)", "GMM", proportional(), &config);
    run(
        "SLURM",
        "GMM",
        config.build_manager(ManagerKind::Slurm),
        &config,
    );
    run(
        "DPS",
        "GMM",
        config.build_manager(ManagerKind::Dps),
        &config,
    );
    run(
        "constant",
        "GMM",
        config.build_manager(ManagerKind::Constant),
        &config,
    );

    // Against a sustained workload the proportional policy cannot exploit
    // slack (EP never dips), so it collapses to roughly constant
    // allocation, while SLURM's greedy grab actively hurts.
    println!("\nKmeans + EP (sustained partner), mean run durations:\n");
    run("proportional (custom)", "EP", proportional(), &config);
    run(
        "SLURM",
        "EP",
        config.build_manager(ManagerKind::Slurm),
        &config,
    );
    run("DPS", "EP", config.build_manager(ManagerKind::Dps), &config);
    run(
        "constant",
        "EP",
        config.build_manager(ManagerKind::Constant),
        &config,
    );

    println!("\nUnder saturation, measured power equals capped power, so the");
    println!("proportional policy can only ratify the status quo (its floor term");
    println!("slowly contracts it back to the equal split). It matches constant");
    println!("allocation's balance but cannot anticipate demand: DPS reads the");
    println!("dynamics of the measurements, not just their level.");
}
