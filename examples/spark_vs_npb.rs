//! The paper's hardest scenario, narrated: a phase-rich Spark workload
//! (GMM) sharing a power budget with a sustained HPC workload (NPB's EP).
//!
//! ```text
//! cargo run --release --example spark_vs_npb
//! ```
//!
//! Runs the pair under every manager, prints the per-cluster caps at a few
//! interesting moments, and ends with the scoreboard. This is Fig. 6's
//! mechanism made visible: a stateless manager lets the always-hungry NPB
//! cluster absorb every Watt the Spark cluster releases during its quiet
//! phases, then cannot give them back; DPS's power dynamics detect the
//! Spark cluster's revival and equalize.

use dps_suite::cluster::{run_pair, ClusterSim, ExperimentConfig};
use dps_suite::core::manager::ManagerKind;
use dps_suite::sim_core::RngStream;
use dps_suite::workloads::{build_program, catalog};

fn main() {
    let config = ExperimentConfig::paper_default(7, 2);
    let gmm = catalog::find("GMM").unwrap();
    let ep = catalog::find("EP").unwrap();

    // --- A short narrated run under DPS with logging on.
    println!("== 6 simulated minutes under DPS (cluster-mean Watts) ==\n");
    let program_a = build_program(gmm, &config.sim.perf, 11);
    let program_b = build_program(ep, &config.sim.perf, 12);
    let mut sim = ClusterSim::new(
        config.sim.clone(),
        vec![program_a, program_b],
        config.build_manager(ManagerKind::Dps),
        &RngStream::new(7, "example"),
    );
    sim.enable_logging();
    println!(
        "{:>5}  {:>16}  {:>16}",
        "t(s)", "GMM demand/cap", "EP demand/cap"
    );
    for t in 0..360 {
        sim.cycle();
        if t % 30 == 0 {
            let rec = sim.log().records().last().unwrap();
            let half = sim.config().topology.units_per_cluster();
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            println!(
                "{t:>5}  {:>7.0} /{:>7.0}  {:>7.0} /{:>7.0}",
                mean(&rec.demand[..half]),
                mean(&rec.caps[..half]),
                mean(&rec.demand[half..]),
                mean(&rec.caps[half..]),
            );
        }
    }
    println!(
        "\nfairness so far: {:.3} (satisfaction {:.3} vs {:.3})\n",
        sim.fairness(0, 1),
        sim.satisfaction(0),
        sim.satisfaction(1)
    );

    // --- The scoreboard across managers.
    println!("== full pair runs ({} repetitions each) ==\n", config.reps);
    let baseline = run_pair(gmm, ep, ManagerKind::Constant, &config);
    let (ba, bb) = (baseline.a.hmean_duration(), baseline.b.hmean_duration());
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}",
        "manager", "GMM", "EP", "pair", "fairness"
    );
    for kind in [ManagerKind::Slurm, ManagerKind::Dps, ManagerKind::Oracle] {
        let out = run_pair(gmm, ep, kind, &config);
        println!(
            "{:<10} {:>+9.1}% {:>+9.1}% {:>+9.1}% {:>10.3}",
            kind.to_string(),
            100.0 * (out.speedup_a(ba) - 1.0),
            100.0 * (out.speedup_b(bb) - 1.0),
            100.0 * (out.pair_speedup(ba, bb) - 1.0),
            out.fairness,
        );
    }
    println!("\nExpected: SLURM trades a large GMM loss for an EP gain (negative pair");
    println!("hmean, low fairness); DPS keeps both near the constant baseline or");
    println!("better, with fairness close to 1.");
}
