//! Record-and-replay: capture a power trace from one simulation, write it
//! as CSV, load it back as a demand program, and run it as a workload.
//!
//! ```text
//! cargo run --release --example replay_trace
//! ```
//!
//! This is the workflow a deployment would use with *real* RAPL logs: dump
//! `time,power` CSVs from production, then replay them through the managers
//! offline to predict how a policy change would have behaved.

use dps_suite::cluster::{ClusterSim, ExperimentConfig};
use dps_suite::core::manager::ManagerKind;
use dps_suite::metrics::csv;
use dps_suite::sim_core::RngStream;
use dps_suite::workloads::{build_program, catalog, playback};

fn main() {
    let config = ExperimentConfig::paper_default(3, 1);

    // --- Step 1: run Bayes and record one socket's true demand trace.
    let bayes = catalog::find("Bayes").unwrap();
    let program = build_program(bayes, &config.sim.perf, 77);
    let low = build_program(catalog::find("Sort").unwrap(), &config.sim.perf, 78);
    let mut sim = ClusterSim::new(
        config.sim.clone(),
        vec![program, low],
        config.build_manager(ManagerKind::Constant),
        &RngStream::new(3, "record"),
    );
    sim.enable_logging();
    for _ in 0..400 {
        sim.cycle();
    }
    let demand_series = sim.log().demand_series(0);
    let times: Vec<f64> = (0..demand_series.len()).map(|i| i as f64).collect();
    let csv_text = csv::trace(&times, &demand_series);
    println!(
        "recorded {} samples of socket 0's demand (peak {:.0} W)",
        demand_series.len(),
        demand_series.iter().cloned().fold(0.0, f64::max)
    );

    // --- Step 2: load the CSV back as a demand program.
    let replayed = playback::program_from_csv(&csv_text).expect("replay parses");
    println!(
        "replay program: {:.0} work-seconds across {} phases",
        replayed.total_work(),
        replayed.phases().len()
    );

    // --- Step 3: run the replayed workload under DPS and report.
    let mut replay_sim = ClusterSim::new(
        config.sim.clone(),
        vec![
            replayed,
            build_program(catalog::find("Sort").unwrap(), &config.sim.perf, 79),
        ],
        config.build_manager(ManagerKind::Dps),
        &RngStream::new(4, "replay"),
    );
    replay_sim.run_until(20_000, |s| s.runs_completed(0) >= 1);
    println!(
        "replayed run under DPS: {:.1} s, satisfaction {:.3}",
        replay_sim.run_durations(0)[0],
        replay_sim.satisfaction(0)
    );
    println!("\nAny time,value CSV works the same way — including real RAPL logs.");
}
