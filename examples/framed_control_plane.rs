//! Framed control plane: run DPS over a faulty wire and watch it cope.
//!
//! ```text
//! cargo run --release --example framed_control_plane
//! ```
//!
//! Switches the cluster simulation from the ideal shared-memory exchange
//! to the framed control plane: every measurement and cap assignment is a
//! 3-byte frame on a lossy link, a node crashes mid-run and rejoins, and
//! the controller keeps the cluster inside its power budget throughout
//! (stale nodes' budget is reclaimed and returned on readmission).

use dps_suite::cluster::{ClusterSim, ControlPlaneMode, ExperimentConfig};
use dps_suite::core::manager::ManagerKind;
use dps_suite::ctrl::{FaultEvent, FramedConfig};
use dps_suite::rapl::Topology;
use dps_suite::sim_core::RngStream;
use dps_suite::workloads::{DemandProgram, Phase};

fn main() {
    // A small testbed: 2 clusters × 2 nodes × 2 sockets (8 units), one
    // hot cluster (throttled by the budget) and one cool.
    let mut config = ExperimentConfig::paper_default(/* seed */ 7, /* reps */ 1);
    config.sim.topology = Topology::new(2, 2, 2);

    // The wire: 50 µs latency, 2 % frame drop, and node 1 crashes at
    // t = 60 s, rebooting at t = 150 s.
    let mut framed = FramedConfig::default();
    framed.link.drop_prob = 0.02;
    framed.faults.push(FaultEvent::Crash {
        node: 1,
        at: 60.0,
        until: 150.0,
    });
    config.sim.control_plane = ControlPlaneMode::Framed(framed);

    let programs = vec![
        DemandProgram::new(vec![Phase::constant(240.0, 150.0)]),
        DemandProgram::new(vec![Phase::constant(240.0, 60.0)]),
    ];
    let mut sim = ClusterSim::new(
        config.sim.clone(),
        programs,
        config.build_manager(ManagerKind::Dps),
        &RngStream::new(config.seed, "framed-example"),
    );

    let budget = sim.config().total_budget();
    println!("budget {budget:.0} W over 8 units; node 1 crashes at t=60 s\n");
    for step in 0..240 {
        sim.cycle();
        if step % 30 == 29 {
            let plane = sim.control_plane().expect("framed mode");
            let live: Vec<usize> = (0..4).filter(|&n| plane.node_live(n)).collect();
            // The all-nodes sum can exceed the budget while a node is
            // down: its hardware holds the last programmed caps ("hold
            // through silence") while its budget share is reclaimed for
            // the live nodes. The safety invariant is over the *live* sum.
            println!(
                "t={:>3.0} s  live nodes {:?}  applied W: live {:>6.1} / all {:>6.1}  \
                 hot satisfaction {:.3}",
                sim.now(),
                live,
                plane.live_applied_sum(),
                plane.applied_caps().iter().sum::<f64>(),
                sim.satisfaction(0),
            );
        }
    }

    let stats = sim.control_plane_stats().expect("framed mode");
    println!(
        "\nwire: {} frames, {:.1}% delivered, {} retries; \
         {} stale transition(s), {} readmission(s)",
        stats.frames_sent,
        100.0 * stats.delivery_rate(),
        stats.retries,
        stats.stale_transitions,
        stats.readmissions,
    );
    println!(
        "worst believed-cap excess over budget: {:.2} W (0 = invariant held)",
        stats.worst_budget_excess
    );
}
