//! Sensor faults: watch the telemetry guard quarantine and readmit a unit.
//!
//! ```text
//! cargo run --release --example sensor_faults
//! ```
//!
//! One socket's power sensor freezes mid-run (reads pin at 95 W while the
//! unit actually idles). An unguarded controller would keep allocating to
//! the phantom load; the guarded DPS manager notices the zero-variance
//! readings, quarantines the unit at its constant-allocation fallback cap,
//! redistributes the freed budget, and readmits the unit once real
//! telemetry returns — all without the cluster ever exceeding its budget.

use dps_suite::cluster::{ClusterSim, ExperimentConfig};
use dps_suite::core::manager::{PowerManager, UnitLimits};
use dps_suite::core::{DpsManager, GuardConfig, HealthState};
use dps_suite::rapl::{SensorFault, Topology, UnitFaultEvent, UnitFaultSchedule};
use dps_suite::sim_core::RngStream;
use dps_suite::workloads::{DemandProgram, Phase};

fn main() {
    // A small testbed: 2 clusters × 2 nodes × 2 sockets (8 units), one
    // hot cluster (throttled by the budget) and one cool.
    let mut config = ExperimentConfig::paper_default(/* seed */ 7, /* reps */ 1);
    config.sim.topology = Topology::new(2, 2, 2);

    // Unit 0's sensor freezes at 95 W from t = 60 s to t = 160 s.
    config.sim.sensor_faults = UnitFaultSchedule::new(vec![UnitFaultEvent::sensor(
        0,
        60.0,
        160.0,
        SensorFault::StuckAt { value: 95.0 },
    )]);
    config.sim.validate().expect("valid config");

    let n = config.sim.topology.total_units();
    let budget = config.sim.total_budget();
    let limits = UnitLimits {
        min_cap: config.sim.domain_spec.min_cap,
        max_cap: config.sim.domain_spec.tdp,
    };
    // Impatient guard settings so the demo fits in 240 cycles; production
    // deployments would keep the defaults.
    let guard = GuardConfig {
        stuck_window: 6,
        quarantine_after: 2,
        probation_after: 5,
        readmit_after: 10,
        ..GuardConfig::default()
    };
    let manager: Box<dyn PowerManager> = Box::new(DpsManager::with_guard(
        n,
        budget,
        limits,
        Default::default(),
        guard,
        RngStream::new(config.seed, "manager/DPS"),
    ));

    let programs = vec![
        DemandProgram::new(vec![Phase::constant(240.0, 150.0)]),
        DemandProgram::new(vec![Phase::constant(240.0, 60.0)]),
    ];
    let mut sim = ClusterSim::new(
        config.sim.clone(),
        programs,
        manager,
        &RngStream::new(config.seed, "sensor-faults-example"),
    );

    println!("budget {budget:.0} W over {n} units; unit 0's sensor sticks at t=60..160 s\n");
    let mut last_state = HealthState::Healthy;
    for _ in 0..240 {
        sim.cycle();
        let health = sim.health().expect("guarded manager");
        let state = health[0];
        if state != last_state {
            println!(
                "t={:>3.0} s  unit 0: {last_state} -> {state}  (cap {:>5.1} W, cluster sum {:>6.1} W)",
                sim.now(),
                sim.caps()[0],
                sim.caps().iter().sum::<f64>(),
            );
            last_state = state;
        }
        assert!(
            sim.caps().iter().sum::<f64>() <= budget + 1e-6,
            "budget invariant must hold under the fault"
        );
    }

    let stats = sim.guard_stats().expect("guarded manager");
    println!(
        "\nguard: {} samples rejected, {} stuck trip(s), {} quarantine(s), {} readmission(s)",
        stats.rejected_samples, stats.stuck_trips, stats.quarantine_entries, stats.readmissions
    );
    println!(
        "hot-cluster satisfaction {:.3}, cool {:.3}; budget held every cycle",
        sim.satisfaction(0),
        sim.satisfaction(1)
    );
}
