//! Counters and fixed-bucket histograms derived from the event stream.
//!
//! The registry answers the questions a human asks *before* reaching for
//! the raw trace — how much cap churn, how often did restore fire, how
//! many guard quarantines, what is the budget-slack distribution — and it
//! answers them two ways: **live**, updated by [`RingSink`] on every emit
//! (through `&self`, everything is [`Cell`]-based), and **offline**,
//! rebuilt from a decoded trace via [`ObsRegistry::from_events`] so
//! `trace_inspect` can summarize a file without replaying the run.
//!
//! Histograms use fixed, hard-coded bucket bounds rather than adaptive
//! ones so that two summaries are comparable no matter which run produced
//! them.
//!
//! [`RingSink`]: crate::sink::RingSink
//! [`Cell`]: std::cell::Cell

use std::cell::Cell;

use crate::event::{Event, PhaseKind, ReadjustKind};

/// A fixed-bucket histogram updatable through `&self`.
#[derive(Debug)]
pub struct Histogram {
    /// Ascending upper bounds; values above the last land in the overflow
    /// bucket.
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket.
    counts: Vec<Cell<u64>>,
    count: Cell<u64>,
    sum: Cell<f64>,
    min: Cell<f64>,
    max: Cell<f64>,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| Cell::new(0)).collect(),
            count: Cell::new(0),
            sum: Cell::new(0.0),
            min: Cell::new(f64::INFINITY),
            max: Cell::new(f64::NEG_INFINITY),
        }
    }

    /// Records one sample. Non-finite samples are counted in the overflow
    /// bucket but excluded from sum/min/max.
    pub fn record(&self, v: f64) {
        self.count.set(self.count.get() + 1);
        if v.is_finite() {
            self.sum.set(self.sum.get() + v);
            self.min.set(self.min.get().min(v));
            self.max.set(self.max.get().max(v));
            let idx = self
                .bounds
                .iter()
                .position(|&b| v <= b)
                .unwrap_or(self.bounds.len());
            self.counts[idx].set(self.counts[idx].get() + 1);
        } else {
            let last = self.counts.len() - 1;
            self.counts[last].set(self.counts[last].get() + 1);
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Mean of the finite samples, or `None` if nothing finite was seen.
    pub fn mean(&self) -> Option<f64> {
        if self.min.get().is_finite() {
            Some(self.sum.get() / self.count.get() as f64)
        } else {
            None
        }
    }

    /// Smallest finite sample seen.
    pub fn min(&self) -> Option<f64> {
        let m = self.min.get();
        m.is_finite().then_some(m)
    }

    /// Largest finite sample seen.
    pub fn max(&self) -> Option<f64> {
        let m = self.max.get();
        m.is_finite().then_some(m)
    }

    /// Bucket labels and counts, including the trailing overflow bucket.
    pub fn buckets(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, c) in self.counts.iter().enumerate() {
            let label = if i < self.bounds.len() {
                format!("<= {}", self.bounds[i])
            } else {
                "overflow".to_string()
            };
            out.push((label, c.get()));
        }
        out
    }

    fn reset(&self) {
        for c in &self.counts {
            c.set(0);
        }
        self.count.set(0);
        self.sum.set(0.0);
        self.min.set(f64::INFINITY);
        self.max.set(f64::NEG_INFINITY);
    }

    fn summary_line(&self) -> String {
        match self.mean() {
            Some(mean) => format!(
                "n={} min={:.3} mean={:.3} max={:.3}",
                self.count(),
                self.min().unwrap(),
                mean,
                self.max().unwrap()
            ),
            None => format!("n={}", self.count()),
        }
    }
}

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Plain event counters, one per observable behavior.
        #[derive(Debug, Default)]
        struct Counters {
            $($name: Cell<u64>,)+
        }

        impl ObsRegistry {
            $(
                $(#[$doc])*
                pub fn $name(&self) -> u64 {
                    self.counters.$name.get()
                }
            )+
        }
    };
}

counters!(
    /// Total events recorded.
    events,
    /// Per-unit cap changes across `assign_caps`.
    cap_deltas,
    /// Priority classification flips.
    priority_flips,
    /// Cycles where Alg. 3 restored the constant allocation.
    restores,
    /// Cycles where Alg. 4 distributed leftover budget.
    readjust_distributed,
    /// Cycles where Alg. 4 equalized high-priority caps.
    readjust_equalized,
    /// Non-finite incoming caps repaired.
    cap_repairs,
    /// Guard health-state transitions of any kind.
    guard_transitions,
    /// Transitions specifically *into* quarantine.
    quarantines,
    /// Scheduler-driven unit occupancy flips.
    membership_flips,
    /// Watchdog checkpoints taken.
    checkpoints,
    /// Controller crash-restores.
    controller_restores,
    /// Scheduler job arrivals.
    sched_arrivals,
    /// Scheduler job starts.
    sched_starts,
    /// Scheduler job completions.
    sched_finishes,
    /// Scheduler walltime evictions.
    sched_evictions,
    /// Sensor/actuator fault-window edges (open or close).
    fault_edges,
    /// Elastic-provisioner power-on decisions.
    provision_power_ons,
    /// Elastic-provisioner power-off decisions.
    provision_power_offs,
    /// Request-serving milestones crossed.
    request_milestones,
    /// Control-plane frames sent (summed deltas).
    frames_sent,
    /// Control-plane frames dropped (summed deltas).
    frames_dropped,
    /// Operating-mode ladder transitions.
    mode_changes,
    /// Budget-schedule shocks applied.
    budget_shocks,
    /// Invariant-monitor violations observed.
    invariant_violations,
    /// Sleep-ladder transitions (demotions and deepenings).
    sleep_transitions,
    /// Wakes initiated from a sleep state.
    wake_starts,
    /// Wakes completed (unit rejoined the serving fleet).
    wake_dones,
    /// Idle-gap predictor samples recorded.
    predictor_samples,
    /// Inter-shard budget grants from the sharded manager's allocator.
    shard_grants,
);

/// Live counters plus histograms for the quantities worth distributions.
#[derive(Debug)]
pub struct ObsRegistry {
    counters: Counters,
    /// Cycles during which the ring overwrote at least one event. A live
    /// counter maintained by the recording sink (not derived from the
    /// event stream, so `from_events` cannot rebuild it): the overwritten
    /// events are by definition absent from the trace, which is exactly
    /// why the loss needs a first-class counter.
    ring_overflows: Cell<u64>,
    /// Budget minus assigned caps at each cycle end (W).
    budget_slack_w: Histogram,
    /// Units whose caps changed, per cycle (cap churn).
    cap_churn: Histogram,
    /// Full-cycle latency in microseconds (timing sinks only).
    cycle_us: Histogram,
}

impl ObsRegistry {
    /// Creates an empty registry with the standard bucket layouts.
    pub fn new() -> Self {
        ObsRegistry {
            counters: Counters::default(),
            ring_overflows: Cell::new(0),
            budget_slack_w: Histogram::new(&[0.0, 1.0, 10.0, 100.0, 1_000.0, 10_000.0]),
            cap_churn: Histogram::new(&[0.0, 1.0, 4.0, 16.0, 64.0, 256.0, 4096.0]),
            cycle_us: Histogram::new(&[10.0, 100.0, 1_000.0, 10_000.0, 100_000.0]),
        }
    }

    /// Folds one event into the counters and histograms.
    pub fn record(&self, e: &Event) {
        let c = &self.counters;
        let bump = |cell: &Cell<u64>| cell.set(cell.get() + 1);
        bump(&c.events);
        match *e {
            Event::CycleStart { .. } => {}
            Event::PhaseEnd { phase, nanos, .. } => {
                if phase == PhaseKind::SimCycle {
                    self.cycle_us.record(nanos as f64 / 1_000.0);
                }
            }
            Event::CapDelta { .. } => bump(&c.cap_deltas),
            Event::PriorityFlip { .. } => bump(&c.priority_flips),
            Event::Restored { .. } => bump(&c.restores),
            Event::Readjusted { kind, .. } => match kind {
                ReadjustKind::Distributed => bump(&c.readjust_distributed),
                ReadjustKind::Equalized => bump(&c.readjust_equalized),
            },
            Event::CapRepair { .. } => bump(&c.cap_repairs),
            Event::GuardHealth { state, .. } => {
                bump(&c.guard_transitions);
                if state == crate::event::HealthKind::Quarantined {
                    bump(&c.quarantines);
                }
            }
            Event::MembershipFlip { .. } => bump(&c.membership_flips),
            Event::CheckpointTaken { .. } => bump(&c.checkpoints),
            Event::ControllerRestored { .. } => bump(&c.controller_restores),
            Event::ControlPlaneDelta { sent, dropped, .. } => {
                c.frames_sent.set(c.frames_sent.get() + sent);
                c.frames_dropped.set(c.frames_dropped.get() + dropped);
            }
            Event::SchedJob { kind, .. } => match kind {
                crate::event::SchedKind::Arrived => bump(&c.sched_arrivals),
                crate::event::SchedKind::Started => bump(&c.sched_starts),
                crate::event::SchedKind::Finished => bump(&c.sched_finishes),
                crate::event::SchedKind::Evicted => bump(&c.sched_evictions),
            },
            Event::FaultEdge { .. } => bump(&c.fault_edges),
            Event::CycleEnd {
                budget_slack_w,
                caps_changed,
                ..
            } => {
                self.budget_slack_w.record(budget_slack_w);
                self.cap_churn.record(caps_changed as f64);
            }
            Event::Provision { kind, .. } => match kind {
                crate::event::ProvisionKind::PowerOn => bump(&c.provision_power_ons),
                crate::event::ProvisionKind::PowerOff => bump(&c.provision_power_offs),
            },
            Event::RequestMilestone { .. } => bump(&c.request_milestones),
            Event::ModeChange { .. } => bump(&c.mode_changes),
            Event::BudgetShock { .. } => bump(&c.budget_shocks),
            Event::InvariantViolation { .. } => bump(&c.invariant_violations),
            Event::SleepTransition { .. } => bump(&c.sleep_transitions),
            Event::WakeStart { .. } => bump(&c.wake_starts),
            Event::WakeDone { .. } => bump(&c.wake_dones),
            Event::PredictorSample { .. } => bump(&c.predictor_samples),
            Event::ShardGrant { .. } => bump(&c.shard_grants),
        }
    }

    /// Rebuilds a registry from a decoded event stream.
    pub fn from_events(events: &[Event]) -> Self {
        let reg = ObsRegistry::new();
        for e in events {
            reg.record(e);
        }
        reg
    }

    /// Cycles during which the ring lost at least one event to overwrite.
    pub fn ring_overflows(&self) -> u64 {
        self.ring_overflows.get()
    }

    /// Records that the current cycle overflowed the ring. Called by the
    /// recording sink at most once per cycle (on `CycleEnd`), so the count
    /// reads as "cycles with loss", not "events lost" — the ring's own
    /// `dropped` counter already holds the latter.
    pub fn note_ring_overflow(&self) {
        self.ring_overflows.set(self.ring_overflows.get() + 1);
    }

    /// The budget-slack histogram (W, sampled at each cycle end).
    pub fn budget_slack_w(&self) -> &Histogram {
        &self.budget_slack_w
    }

    /// The per-cycle cap-churn histogram (units changed per cycle).
    pub fn cap_churn(&self) -> &Histogram {
        &self.cap_churn
    }

    /// The cycle-latency histogram in µs (only populated by timing sinks).
    pub fn cycle_us(&self) -> &Histogram {
        &self.cycle_us
    }

    /// Zeroes every counter and histogram.
    pub fn reset(&self) {
        let fresh = Counters::default();
        // Cell has no field-wise reset; overwrite through the macro-built
        // struct by copying each zeroed cell's value.
        let c = &self.counters;
        macro_rules! zero {
            ($($f:ident),+) => { $(c.$f.set(fresh.$f.get());)+ };
        }
        zero!(
            events,
            cap_deltas,
            priority_flips,
            restores,
            readjust_distributed,
            readjust_equalized,
            cap_repairs,
            guard_transitions,
            quarantines,
            membership_flips,
            checkpoints,
            controller_restores,
            sched_arrivals,
            sched_starts,
            sched_finishes,
            sched_evictions,
            fault_edges,
            provision_power_ons,
            provision_power_offs,
            request_milestones,
            frames_sent,
            frames_dropped,
            mode_changes,
            budget_shocks,
            invariant_violations,
            sleep_transitions,
            wake_starts,
            wake_dones,
            predictor_samples,
            shard_grants
        );
        self.ring_overflows.set(0);
        self.budget_slack_w.reset();
        self.cap_churn.reset();
        self.cycle_us.reset();
    }

    /// Renders a human-readable multi-line summary (used by
    /// `trace_inspect summary`).
    pub fn render(&self, dropped: u64) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: u64| {
            if v > 0 {
                out.push_str(&format!("  {k:<22} {v}\n"));
            }
        };
        line("events", self.events());
        line("dropped (ring)", dropped);
        line("ring_overflows", self.ring_overflows());
        line("cap_deltas", self.cap_deltas());
        line("priority_flips", self.priority_flips());
        line("restores", self.restores());
        line("readjust_distributed", self.readjust_distributed());
        line("readjust_equalized", self.readjust_equalized());
        line("cap_repairs", self.cap_repairs());
        line("guard_transitions", self.guard_transitions());
        line("quarantines", self.quarantines());
        line("membership_flips", self.membership_flips());
        line("checkpoints", self.checkpoints());
        line("controller_restores", self.controller_restores());
        line("sched_arrivals", self.sched_arrivals());
        line("sched_starts", self.sched_starts());
        line("sched_finishes", self.sched_finishes());
        line("sched_evictions", self.sched_evictions());
        line("fault_edges", self.fault_edges());
        line("provision_power_ons", self.provision_power_ons());
        line("provision_power_offs", self.provision_power_offs());
        line("request_milestones", self.request_milestones());
        line("frames_sent", self.frames_sent());
        line("frames_dropped", self.frames_dropped());
        line("mode_changes", self.mode_changes());
        line("budget_shocks", self.budget_shocks());
        line("invariant_violations", self.invariant_violations());
        line("sleep_transitions", self.sleep_transitions());
        line("wake_starts", self.wake_starts());
        line("wake_dones", self.wake_dones());
        line("predictor_samples", self.predictor_samples());
        line("shard_grants", self.shard_grants());
        let mut hist = |k: &str, h: &Histogram| {
            if h.count() > 0 {
                out.push_str(&format!("  {k:<22} {}\n", h.summary_line()));
            }
        };
        hist("budget_slack_w", &self.budget_slack_w);
        hist("cap_churn", &self.cap_churn);
        hist("cycle_us", &self.cycle_us);
        out
    }
}

impl Default for ObsRegistry {
    fn default() -> Self {
        ObsRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{HealthKind, SchedKind};

    #[test]
    fn histogram_buckets_and_moments() {
        let h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 0.9, 5.0, 50.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(50.0));
        assert!((h.mean().unwrap() - 56.4 / 4.0).abs() < 1e-12);
        let buckets = h.buckets();
        assert_eq!(buckets[0].1, 2); // <= 1.0
        assert_eq!(buckets[1].1, 1); // <= 10.0
        assert_eq!(buckets[2].1, 1); // overflow
    }

    #[test]
    fn histogram_nonfinite_goes_to_overflow_only() {
        let h = Histogram::new(&[1.0]);
        h.record(f64::NAN);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), None);
        assert_eq!(h.buckets()[1].1, 1);
    }

    #[test]
    fn registry_folds_every_counter() {
        let reg = ObsRegistry::from_events(&crate::codec::tests_support::one_of_each());
        assert_eq!(reg.events(), 25);
        assert_eq!(reg.cap_deltas(), 1);
        assert_eq!(reg.priority_flips(), 1);
        assert_eq!(reg.restores(), 1);
        assert_eq!(reg.readjust_distributed(), 1);
        assert_eq!(reg.readjust_equalized(), 0);
        assert_eq!(reg.cap_repairs(), 1);
        assert_eq!(reg.guard_transitions(), 1);
        assert_eq!(reg.quarantines(), 1);
        assert_eq!(reg.membership_flips(), 1);
        assert_eq!(reg.checkpoints(), 1);
        assert_eq!(reg.controller_restores(), 1);
        assert_eq!(reg.sched_starts(), 1);
        assert_eq!(reg.fault_edges(), 1);
        assert_eq!(reg.provision_power_ons(), 1);
        assert_eq!(reg.provision_power_offs(), 0);
        assert_eq!(reg.request_milestones(), 1);
        assert_eq!(reg.frames_sent(), 64);
        assert_eq!(reg.frames_dropped(), 4);
        assert_eq!(reg.mode_changes(), 1);
        assert_eq!(reg.budget_shocks(), 1);
        assert_eq!(reg.invariant_violations(), 1);
        assert_eq!(reg.sleep_transitions(), 1);
        assert_eq!(reg.wake_starts(), 1);
        assert_eq!(reg.wake_dones(), 1);
        assert_eq!(reg.predictor_samples(), 1);
        assert_eq!(reg.shard_grants(), 1);
        assert_eq!(reg.budget_slack_w().count(), 1);
        assert_eq!(reg.cap_churn().count(), 1);
        // one_of_each's PhaseEnd is ObserveClassify, not SimCycle.
        assert_eq!(reg.cycle_us().count(), 0);
    }

    #[test]
    fn non_quarantine_transitions_counted_separately() {
        let reg = ObsRegistry::new();
        reg.record(&Event::GuardHealth {
            cycle: 1,
            unit: 0,
            state: HealthKind::Suspect,
        });
        assert_eq!(reg.guard_transitions(), 1);
        assert_eq!(reg.quarantines(), 0);
    }

    #[test]
    fn sched_kinds_routed() {
        let reg = ObsRegistry::new();
        for kind in [SchedKind::Arrived, SchedKind::Finished, SchedKind::Evicted] {
            reg.record(&Event::SchedJob {
                cycle: 1,
                job: 1,
                nodes: 1,
                kind,
            });
        }
        assert_eq!(reg.sched_arrivals(), 1);
        assert_eq!(reg.sched_finishes(), 1);
        assert_eq!(reg.sched_evictions(), 1);
        assert_eq!(reg.sched_starts(), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let reg = ObsRegistry::from_events(&crate::codec::tests_support::one_of_each());
        reg.reset();
        assert_eq!(reg.events(), 0);
        assert_eq!(reg.frames_sent(), 0);
        assert_eq!(reg.budget_slack_w().count(), 0);
    }

    #[test]
    fn render_lists_nonzero_counters() {
        let reg = ObsRegistry::from_events(&crate::codec::tests_support::one_of_each());
        let text = reg.render(7);
        assert!(text.contains("events"));
        assert!(text.contains("dropped (ring)"));
        assert!(text.contains("budget_slack_w"));
        assert!(!text.contains("readjust_equalized"));
    }
}
