//! Streaming segmented trace storage: spill the ring to disk, forever.
//!
//! A [`RingSink`](crate::sink::RingSink) retains the **last** `capacity`
//! events of a run — the right tool for golden traces and postmortems, but
//! at a million units a single interesting cycle can emit more events than
//! any reasonable ring holds, and long campaigns want the *whole* stream,
//! not its tail. [`SegmentSink`] provides that: events stage in a
//! preallocated [`EventRing`] and every time the ring fills, its contents
//! spill to the next numbered **segment file** in a directory. The run's
//! full event stream is the concatenation of its segments.
//!
//! Segment file layout (one segment per file):
//!
//! ```text
//! length   u64 LE            byte length of the payload that follows
//! payload  DPSO trace        a complete self-describing trace
//!                            (schema table + events + FNV-1a trailer)
//! ```
//!
//! Each payload is a full [`codec`] trace, so every segment is
//! independently decodable, carries the schema it was written with, and is
//! integrity-checked by its own FNV trailer. The length prefix makes a
//! crash-truncated tail segment detectable *before* the checksum pass: a
//! file shorter than its prefix claims is reported as truncated, cleanly,
//! rather than as a confusing checksum mismatch.
//!
//! The spill path allocates nothing per event and nothing per segment
//! after construction: the staging ring, the event scratch buffer and the
//! encode buffer are all preallocated in [`SegmentSink::new`], and
//! [`codec::encode_into`] reuses the encode buffer's capacity. Disk I/O
//! happens at most once per `capacity` events, never per event.
//!
//! File names are `seg-<seq>.dpso` with a zero-padded sequence number, so
//! lexicographic order *is* write order and [`read_segment_dir`] can
//! reassemble the stream with a plain name sort.

use std::cell::{Cell, RefCell};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::codec::{self, Trace};
use crate::event::Event;
use crate::registry::ObsRegistry;
use crate::ring::EventRing;
use crate::sink::TraceSink;

/// File extension of segment files.
pub const SEGMENT_EXT: &str = "dpso";

/// Upper bound on the encoded size of one event: 1 tag byte plus the
/// widest field layout (`ControlPlaneDelta`, five u64s = 40 bytes), with
/// headroom for future variants. Used only to size the encode buffer.
const MAX_EVENT_BYTES: usize = 48;

/// File name of the segment with the given sequence number.
pub fn segment_name(seq: u64) -> String {
    format!("seg-{seq:08}.{SEGMENT_EXT}")
}

/// A sink that streams the event stream to numbered segment files.
///
/// Implements [`TraceSink`], so it attaches anywhere a
/// [`SinkHandle`](crate::sink::SinkHandle) goes. Like every sink it also
/// keeps a live [`ObsRegistry`]. Emission is infallible by trait contract;
/// spill I/O failures are counted in [`SegmentSink::io_errors`] and the
/// affected events are discarded (the staging ring is cleared either way),
/// so a full disk degrades the trace instead of panicking the decision
/// loop.
#[derive(Debug)]
pub struct SegmentSink {
    dir: PathBuf,
    /// Staging ring; one segment = one ring's worth of events.
    ring: EventRing,
    registry: ObsRegistry,
    timing: bool,
    /// Preallocated event scratch for draining the ring.
    scratch: RefCell<Vec<Event>>,
    /// Preallocated encode buffer, reused across segments.
    buf: RefCell<Vec<u8>>,
    /// Sequence number of the next segment file.
    seq: Cell<u64>,
    io_errors: Cell<u64>,
    last_error: RefCell<Option<String>>,
}

impl SegmentSink {
    /// Creates a sink spilling segments of `capacity` events into `dir`
    /// (created if absent). All buffers are sized here; the emit and spill
    /// paths never allocate afterwards.
    pub fn new(dir: impl Into<PathBuf>, capacity: usize) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let capacity = capacity.max(1);
        // Frame overhead (magic, version, schema table, counters, trailer)
        // is the size of an empty trace.
        let overhead = codec::encode(&[], 0).len();
        Ok(SegmentSink {
            dir,
            ring: EventRing::new(capacity),
            registry: ObsRegistry::new(),
            timing: false,
            scratch: RefCell::new(Vec::with_capacity(capacity)),
            buf: RefCell::new(Vec::with_capacity(overhead + capacity * MAX_EVENT_BYTES)),
            seq: Cell::new(0),
            io_errors: Cell::new(0),
            last_error: RefCell::new(None),
        })
    }

    /// Enables nondeterministic timing spans (profiling configuration).
    pub fn with_timing(mut self) -> Self {
        self.timing = true;
        self
    }

    /// The directory segments are written into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of segment files written so far.
    pub fn segments_written(&self) -> u64 {
        self.seq.get()
    }

    /// Number of segment writes that failed (events discarded).
    pub fn io_errors(&self) -> u64 {
        self.io_errors.get()
    }

    /// The most recent spill I/O error, if any.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.borrow().clone()
    }

    /// The live registry, updated on every emit.
    pub fn registry(&self) -> &ObsRegistry {
        &self.registry
    }

    /// Spills any staged events to a final (possibly short) segment.
    /// Call at end of run; dropping the sink does **not** flush.
    pub fn flush(&self) {
        if !self.ring.is_empty() {
            self.spill();
        }
    }

    fn spill(&self) {
        let mut scratch = self.scratch.borrow_mut();
        let mut buf = self.buf.borrow_mut();
        self.ring.copy_to(&mut scratch);
        codec::encode_into(&mut buf, &scratch, 0);
        let path = self.dir.join(segment_name(self.seq.get()));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&path)?;
            f.write_all(&(buf.len() as u64).to_le_bytes())?;
            f.write_all(&buf)?;
            Ok(())
        };
        match write() {
            Ok(()) => {
                self.seq.set(self.seq.get() + 1);
            }
            Err(e) => {
                self.io_errors.set(self.io_errors.get() + 1);
                *self.last_error.borrow_mut() = Some(format!("{}: {e}", path.display()));
            }
        }
        self.ring.clear();
    }
}

impl TraceSink for SegmentSink {
    fn enabled(&self) -> bool {
        true
    }

    fn timing(&self) -> bool {
        self.timing
    }

    fn emit(&self, event: Event) {
        self.registry.record(&event);
        self.ring.push(event);
        if self.ring.len() == self.ring.capacity() {
            self.spill();
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------------
// Reading segments back.

/// Decodes one segment frame (length prefix + DPSO payload). Any
/// truncation, length mismatch, or payload corruption is a clean `Err`.
pub fn decode_segment(bytes: &[u8]) -> Result<Trace, String> {
    if bytes.len() < 8 {
        return Err(format!(
            "truncated segment: {} byte(s), need 8 for the length prefix",
            bytes.len()
        ));
    }
    let (prefix, payload) = bytes.split_at(8);
    let len = u64::from_le_bytes(prefix.try_into().unwrap());
    if (payload.len() as u64) < len {
        return Err(format!(
            "truncated segment: prefix claims {len} payload byte(s), {} present",
            payload.len()
        ));
    }
    if (payload.len() as u64) > len {
        return Err(format!(
            "{} trailing byte(s) after the segment payload",
            payload.len() as u64 - len
        ));
    }
    codec::decode(payload)
}

/// The segment files of a directory, sorted into write order. Errors if
/// the directory is unreadable or holds no segments.
pub fn segment_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == SEGMENT_EXT)
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("seg-"))
        })
        .collect();
    if files.is_empty() {
        return Err(format!("{}: no seg-*.{SEGMENT_EXT} files", dir.display()));
    }
    // Zero-padded sequence numbers make name order write order.
    files.sort();
    Ok(files)
}

/// Reads every segment of a directory and reassembles the full stream:
/// events concatenated in write order, `dropped` summed across segments.
pub fn read_segment_dir(dir: &Path) -> Result<Trace, String> {
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for path in segment_files(dir)? {
        let bytes = fs::read(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let seg = decode_segment(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
        events.extend_from_slice(&seg.events);
        dropped += seg.dropped;
    }
    Ok(Trace { events, dropped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::tests_support::one_of_each;

    fn tmp_dir(tag: &str) -> PathBuf {
        // Under target/ so `cargo clean` collects test droppings.
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/obs-segment-tests")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spills_on_capacity_and_flushes_tail() {
        let dir = tmp_dir("spill");
        let sink = SegmentSink::new(&dir, 10).unwrap();
        let events = one_of_each(); // 24 events -> 2 full segments + 4 staged
        for e in &events {
            sink.emit(*e);
        }
        assert_eq!(sink.segments_written(), 2);
        sink.flush();
        assert_eq!(sink.segments_written(), 3);
        sink.flush(); // idempotent on an empty ring
        assert_eq!(sink.segments_written(), 3);
        assert_eq!(sink.io_errors(), 0);

        let merged = read_segment_dir(&dir).unwrap();
        assert_eq!(merged.events, events);
        assert_eq!(merged.dropped, 0);
        assert_eq!(sink.registry().events(), events.len() as u64);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_files_sort_in_write_order() {
        let dir = tmp_dir("order");
        let sink = SegmentSink::new(&dir, 2);
        let sink = sink.unwrap();
        for c in 0..25u64 {
            sink.emit(Event::Restored { cycle: c });
        }
        sink.flush();
        let files = segment_files(&dir).unwrap();
        assert_eq!(files.len(), 13);
        let merged = read_segment_dir(&dir).unwrap();
        let cycles: Vec<u64> = merged.events.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, (0..25).collect::<Vec<_>>());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_path_does_not_allocate_after_construction() {
        let dir = tmp_dir("alloc");
        let sink = SegmentSink::new(&dir, 8).unwrap();
        let scratch_ptr = sink.scratch.borrow().as_ptr();
        let buf_ptr = sink.buf.borrow().as_ptr();
        let buf_cap = sink.buf.borrow().capacity();
        for c in 0..64u64 {
            sink.emit(Event::ControlPlaneDelta {
                cycle: c,
                sent: 1,
                delivered: 1,
                dropped: 0,
                retries: 0,
            });
        }
        assert_eq!(sink.segments_written(), 8);
        assert_eq!(scratch_ptr, sink.scratch.borrow().as_ptr());
        assert_eq!(buf_ptr, sink.buf.borrow().as_ptr());
        assert_eq!(buf_cap, sink.buf.borrow().capacity());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_segment_is_a_clean_error() {
        let payload = codec::encode(&one_of_each(), 0);
        let mut frame = (payload.len() as u64).to_le_bytes().to_vec();
        frame.extend_from_slice(&payload);
        assert!(decode_segment(&frame).is_ok());
        for cut in 0..frame.len() {
            let err = decode_segment(&frame[..cut]).unwrap_err();
            assert!(!err.is_empty());
        }
        // Extra bytes after the payload are rejected too.
        frame.push(0);
        let err = decode_segment(&frame).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }

    #[test]
    fn empty_dir_and_missing_dir_are_errors() {
        let dir = tmp_dir("empty");
        assert!(read_segment_dir(&dir).is_err());
        fs::create_dir_all(&dir).unwrap();
        let err = read_segment_dir(&dir).unwrap_err();
        assert!(err.contains("no seg-"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn io_error_is_counted_not_panicked() {
        let dir = tmp_dir("ioerr");
        let sink = SegmentSink::new(&dir, 2).unwrap();
        // Make the target directory unusable by replacing it with a file.
        fs::remove_dir_all(&dir).unwrap();
        fs::write(&dir, b"not a directory").unwrap();
        sink.emit(Event::Restored { cycle: 0 });
        sink.emit(Event::Restored { cycle: 1 });
        assert_eq!(sink.segments_written(), 0);
        assert_eq!(sink.io_errors(), 1);
        assert!(sink.last_error().is_some());
        // The ring was cleared, so the sink keeps accepting events.
        sink.emit(Event::Restored { cycle: 2 });
        fs::remove_file(&dir).unwrap();
    }
}
