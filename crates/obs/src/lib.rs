//! Structured observability for the DPS suite (`dps-obs`).
//!
//! DPS's decisions are path-dependent — Kalman state, bounded peak
//! histories, the MIMD step sequence — so a regression can hide inside a
//! multi-thousand-cycle run whose aggregate metrics barely move. This crate
//! is the substrate that makes such runs inspectable and testable:
//!
//! * [`event`] — a common, typed vocabulary of per-cycle events shared by
//!   every layer: manager phase decisions (cap deltas, priority flips,
//!   restores, readjust outcomes, NaN-cap repairs), telemetry-guard health
//!   transitions, membership churn, checkpoint and control-plane activity,
//!   scheduler job lifecycle, and sensor/actuator fault-window edges. Every
//!   event is plain-old-data (`Copy`, no heap), so recording one is a
//!   couple of stores.
//! * [`ring`] — a preallocated, lock-free ring of events. No mutex, no
//!   allocation after construction: emission is an index bump and a slot
//!   store through [`Cell`](std::cell::Cell). When the ring is full the
//!   oldest event is overwritten and a `dropped_events` counter advances.
//! * [`sink`] — the [`TraceSink`] trait the instrumented layers emit
//!   through. The default [`NoopSink`] discards everything behind a single
//!   predictable branch (`enabled() == false`), so an uninstrumented run
//!   pays nothing measurable; [`RingSink`] records into a ring and keeps a
//!   live [`ObsRegistry`].
//! * [`codec`] — a compact self-describing binary trace format (schema
//!   table in the header, FNV-1a checksum trailer) plus JSONL export.
//!   Traces are byte-stable for a fixed seed, which is what turns pinned
//!   end-to-end runs into golden regression oracles (`tests/golden/`).
//! * [`registry`] — counters and fixed-bucket histograms (cycle latency,
//!   budget slack, cap churn, fault counts), updatable through `&self` and
//!   rebuildable from a decoded event stream.
//! * [`segment`] — streaming segmented storage: [`SegmentSink`] spills the
//!   staging ring into numbered, length-prefixed, individually
//!   checksummed segment files, so arbitrarily long runs keep their whole
//!   event stream on disk instead of only the ring's tail.
//!
//! Layering: `dps-obs` sits at the bottom of the workspace (it depends on
//! nothing) so `dps-core`, `dps-cluster` and `dps-sched` can all emit
//! through the same [`SinkHandle`] without dependency cycles.

#![warn(missing_docs)]

pub mod codec;
pub mod event;
pub mod registry;
pub mod ring;
pub mod segment;
pub mod sink;

pub use event::{
    Event, FaultDomain, HealthKind, InvariantKind, ModeKind, PhaseKind, ProvisionKind,
    ReadjustKind, SchedKind,
};
pub use registry::{Histogram, ObsRegistry};
pub use ring::EventRing;
pub use segment::SegmentSink;
pub use sink::{NoopSink, RingSink, SinkHandle, TraceSink};
