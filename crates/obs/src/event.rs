//! The typed cycle-event vocabulary shared by every instrumented layer.
//!
//! Design constraints, in order:
//!
//! 1. **Plain old data.** Every variant is `Copy` with fixed-width fields —
//!    no strings, no vectors — so events live in a preallocated ring slot
//!    and recording one never allocates.
//! 2. **Decision-complete.** The stream must reconstruct *what the
//!    controller decided and why the run unfolded as it did*: every cap
//!    change, priority flip, restore/readjust outcome, guard transition,
//!    churn flip, checkpoint, control-plane delta, scheduler lifecycle
//!    event and fault-window edge is an event. Wall-clock timing is *not*
//!    part of the decision record: span events ([`Event::PhaseEnd`]) are
//!    only emitted when a sink opts into timing, so a pinned-seed trace is
//!    byte-stable across machines and build modes.
//! 3. **Self-describing.** [`schema`] enumerates every variant's name and
//!    field layout; the binary codec embeds it so a trace file can be
//!    decoded (or at least inventoried) without this exact build.

/// Which manager/simulator phase a span event measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// The stateless MIMD temporary allocation (Alg. 1).
    Mimd,
    /// The fused Kalman observe + dynamics classify pass (§4.3.2, Alg. 2).
    ObserveClassify,
    /// Restore + readjust (Algs. 3–4) plus guard cap pinning.
    Readjust,
    /// The whole `assign_caps` call.
    Assign,
    /// One full simulator cycle (plant + control plane + manager + jobs).
    SimCycle,
}

/// How the cap-readjusting module resolved a non-restored cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadjustKind {
    /// Leftover budget was distributed to high-priority units.
    Distributed,
    /// No leftover: high-priority caps were equalized at their mean.
    Equalized,
}

/// Telemetry-guard health, mirrored from `dps-core`'s state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthKind {
    /// Telemetry and actuation look sane.
    Healthy,
    /// Recent bad cycle; full trust pending a clean streak.
    Suspect,
    /// Persistent fault: pinned at the fallback cap.
    Quarantined,
    /// Fault cleared; still pinned until a sustained clean streak.
    Probation,
}

/// Scheduler job-lifecycle event kinds, mirrored from `dps-sched`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// The job entered the queue.
    Arrived,
    /// The job started on its allocated nodes.
    Started,
    /// The job completed.
    Finished,
    /// The job was killed for overrunning its walltime.
    Evicted,
}

/// Which fault path a fault-window edge belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDomain {
    /// Telemetry (power-reading) path.
    Sensor,
    /// Cap-write (actuator) path.
    Actuator,
}

/// Direction of an elastic-provisioner fleet-size change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvisionKind {
    /// Nodes were powered on to absorb rising load.
    PowerOn,
    /// Nodes were powered off after the hysteresis window expired.
    PowerOff,
}

/// A rung of the cluster's degradation ladder, mirrored from `dps-core`'s
/// operating-mode state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeKind {
    /// Full trust: the manager's decisions reach the hardware.
    Normal,
    /// Confidence lost: readjustment frozen, last-known-good caps held.
    Degraded,
    /// Telemetry-blind failsafe: uniform proportional caps.
    SafeMode,
}

/// Which safety check an invariant-monitor violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// The requested caps summed past the effective budget.
    RequestedBudget,
    /// A requested cap left the `[min_cap, max_cap]` range.
    CapBounds,
    /// The caps in force at the hardware summed past the budget for longer
    /// than the readback grace window.
    AppliedBudget,
    /// A guard-isolated unit held a cap above its fallback pin.
    GuardConsistency,
    /// A shard's caps summed past its grant, or the grants summed past the
    /// cluster budget (hierarchical tree invariant).
    ShardBudget,
}

/// One structured observability event.
///
/// `cycle` is the decision-cycle index the event belongs to (the manager
/// counts its `assign_caps` calls; the simulator counts timesteps — the two
/// agree because the loop calls the manager exactly once per cycle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A simulator cycle began at simulated time `time_s`.
    CycleStart {
        /// Decision-cycle index.
        cycle: u64,
        /// Simulated time at the start of the cycle (seconds).
        time_s: f64,
    },
    /// A timed phase finished (only emitted by sinks with timing enabled).
    PhaseEnd {
        /// Decision-cycle index.
        cycle: u64,
        /// Which phase the span measures.
        phase: PhaseKind,
        /// Wall-clock duration in nanoseconds.
        nanos: u64,
    },
    /// A unit's cap left `assign_caps` different from how it entered.
    CapDelta {
        /// Decision-cycle index.
        cycle: u64,
        /// Flat unit index.
        unit: u32,
        /// Cap on entry (W).
        from_w: f64,
        /// Cap on exit (W).
        to_w: f64,
    },
    /// A unit's priority classification flipped this cycle.
    PriorityFlip {
        /// Decision-cycle index.
        cycle: u64,
        /// Flat unit index.
        unit: u32,
        /// The new priority (true = high).
        high: bool,
    },
    /// Alg. 3 fired: every cap snapped back to the constant allocation.
    Restored {
        /// Decision-cycle index.
        cycle: u64,
    },
    /// Alg. 4's outcome on a non-restored cycle with high-priority units.
    Readjusted {
        /// Decision-cycle index.
        cycle: u64,
        /// Distribution or equalization.
        kind: ReadjustKind,
        /// Watts distributed, or the equalized cap value.
        watts: f64,
    },
    /// A non-finite incoming cap was repaired to the constant cap.
    CapRepair {
        /// Decision-cycle index.
        cycle: u64,
        /// Flat unit index.
        unit: u32,
    },
    /// The telemetry guard moved a unit to a new health state.
    GuardHealth {
        /// Decision-cycle index.
        cycle: u64,
        /// Flat unit index.
        unit: u32,
        /// The state entered this cycle.
        state: HealthKind,
    },
    /// Scheduler-driven occupancy churn reset a unit's learned state.
    MembershipFlip {
        /// Decision-cycle index (the cycle about to run).
        cycle: u64,
        /// Flat unit index.
        unit: u32,
        /// Whether the unit now hosts a job.
        active: bool,
    },
    /// The watchdog checkpointed the manager.
    CheckpointTaken {
        /// Decision-cycle index.
        cycle: u64,
        /// Snapshot size in bytes.
        bytes: u64,
    },
    /// A crashed controller was replaced and restored from a snapshot.
    ControllerRestored {
        /// Decision-cycle index.
        cycle: u64,
    },
    /// Framed-control-plane frame accounting for one cycle (deltas of the
    /// cumulative [`CtrlStats`] counters).
    ///
    /// [`CtrlStats`]: https://docs.rs/dps-ctrl
    ControlPlaneDelta {
        /// Decision-cycle index.
        cycle: u64,
        /// Frames handed to the transport this cycle.
        sent: u64,
        /// Frames delivered this cycle.
        delivered: u64,
        /// Frames lost (drop + partition + corruption) this cycle.
        dropped: u64,
        /// Request retries this cycle.
        retries: u64,
    },
    /// A scheduler job-lifecycle event (admission, start, finish, evict).
    SchedJob {
        /// Decision-cycle index.
        cycle: u64,
        /// Job submission identifier.
        job: u32,
        /// Node count involved.
        nodes: u32,
        /// What happened.
        kind: SchedKind,
    },
    /// A scripted sensor/actuator fault window opened or closed on a unit.
    FaultEdge {
        /// Decision-cycle index.
        cycle: u64,
        /// Flat unit index.
        unit: u32,
        /// Sensor or actuator path.
        domain: FaultDomain,
        /// Whether a fault is now active on that path.
        active: bool,
    },
    /// A simulator cycle finished.
    CycleEnd {
        /// Decision-cycle index.
        cycle: u64,
        /// Budget minus the sum of assigned caps (W).
        budget_slack_w: f64,
        /// Units whose caps changed this cycle (cap churn).
        caps_changed: u32,
        /// Jobs waiting in the scheduler queue (0 without a scheduler).
        queue_depth: u32,
    },
    /// The elastic provisioner changed how many nodes are powered.
    Provision {
        /// Decision-cycle index (the cycle about to run).
        cycle: u64,
        /// Power-on or power-off.
        kind: ProvisionKind,
        /// Nodes flipped by this decision.
        nodes: u32,
        /// Powered nodes after the decision took effect.
        active_nodes: u32,
        /// Fleet utilization that triggered the decision (offered work over
        /// powered serving capacity; may exceed 1 under overload).
        utilization: f64,
    },
    /// Cumulative request-serving totals crossed a reporting threshold.
    RequestMilestone {
        /// Decision-cycle index.
        cycle: u64,
        /// Requests served since the run began.
        served: u64,
        /// Served requests that met the latency SLO.
        slo_ok: u64,
        /// Requests still queued when the milestone was crossed.
        backlog: u64,
    },
    /// The cluster moved along the degradation ladder.
    ModeChange {
        /// Decision-cycle index.
        cycle: u64,
        /// The rung being left.
        from: ModeKind,
        /// The rung entered this cycle.
        to: ModeKind,
    },
    /// The effective cluster budget changed (schedule step, brownout ramp
    /// sample, demand-response window edge, or a chaos shock).
    BudgetShock {
        /// Decision-cycle index.
        cycle: u64,
        /// Budget before the change (W).
        from_w: f64,
        /// Budget in force from this cycle (W).
        to_w: f64,
    },
    /// The always-on invariant monitor saw a safety check fail.
    InvariantViolation {
        /// Decision-cycle index.
        cycle: u64,
        /// Which check failed.
        kind: InvariantKind,
        /// The offending value (a Watts sum or a single cap).
        value: f64,
        /// The bound it violated.
        limit: f64,
    },
    /// An idle unit moved along the sleep-state ladder (state `0` is awake;
    /// sleep levels are 1-based catalog indices).
    SleepTransition {
        /// Decision-cycle index.
        cycle: u64,
        /// Flat unit index.
        unit: u32,
        /// Sleep level being left.
        from_state: u32,
        /// Sleep level entered this cycle.
        to_state: u32,
    },
    /// The provisioner asked a sleeping unit to wake; it stays out of the
    /// serving fleet until the latency elapses.
    WakeStart {
        /// Decision-cycle index.
        cycle: u64,
        /// Flat unit index.
        unit: u32,
        /// Sleep level the wake leaves (1-based).
        state: u32,
        /// Wake latency charged (seconds).
        latency_s: f64,
    },
    /// A pending wake completed and the unit rejoined the serving fleet.
    WakeDone {
        /// Decision-cycle index.
        cycle: u64,
        /// Flat unit index.
        unit: u32,
        /// Sleep level the unit woke from (1-based).
        state: u32,
        /// Wake energy charged to the ledger (Joules).
        energy_j: f64,
    },
    /// The next-arrival predictor's forecast, paired with the realised gap
    /// once the unit was woken (for offline calibration studies).
    PredictorSample {
        /// Decision-cycle index.
        cycle: u64,
        /// Flat unit index.
        unit: u32,
        /// Predicted idle-gap length at demotion time (seconds).
        predicted_s: f64,
        /// Realised idle-gap length (seconds).
        actual_s: f64,
    },
    /// The sharded manager's top-level allocator (re)granted a shard its
    /// slice of the cluster budget. Emitted once per shard per cycle, only
    /// when the tree has more than one shard — a one-shard tree must stay
    /// byte-identical to the flat manager.
    ShardGrant {
        /// Decision-cycle index.
        cycle: u64,
        /// Shard index within the tree.
        shard: u32,
        /// Units currently assigned to the shard.
        units: u32,
        /// Budget granted to the shard this cycle (W).
        grant_w: f64,
    },
}

impl Event {
    /// The decision-cycle index the event belongs to.
    pub fn cycle(&self) -> u64 {
        match *self {
            Event::CycleStart { cycle, .. }
            | Event::PhaseEnd { cycle, .. }
            | Event::CapDelta { cycle, .. }
            | Event::PriorityFlip { cycle, .. }
            | Event::Restored { cycle }
            | Event::Readjusted { cycle, .. }
            | Event::CapRepair { cycle, .. }
            | Event::GuardHealth { cycle, .. }
            | Event::MembershipFlip { cycle, .. }
            | Event::CheckpointTaken { cycle, .. }
            | Event::ControllerRestored { cycle }
            | Event::ControlPlaneDelta { cycle, .. }
            | Event::SchedJob { cycle, .. }
            | Event::FaultEdge { cycle, .. }
            | Event::CycleEnd { cycle, .. }
            | Event::Provision { cycle, .. }
            | Event::RequestMilestone { cycle, .. }
            | Event::ModeChange { cycle, .. }
            | Event::BudgetShock { cycle, .. }
            | Event::InvariantViolation { cycle, .. }
            | Event::SleepTransition { cycle, .. }
            | Event::WakeStart { cycle, .. }
            | Event::WakeDone { cycle, .. }
            | Event::PredictorSample { cycle, .. }
            | Event::ShardGrant { cycle, .. } => cycle,
        }
    }

    /// The codec tag (also the index into [`schema::EVENTS`]).
    pub fn tag(&self) -> u8 {
        match self {
            Event::CycleStart { .. } => 0,
            Event::PhaseEnd { .. } => 1,
            Event::CapDelta { .. } => 2,
            Event::PriorityFlip { .. } => 3,
            Event::Restored { .. } => 4,
            Event::Readjusted { .. } => 5,
            Event::CapRepair { .. } => 6,
            Event::GuardHealth { .. } => 7,
            Event::MembershipFlip { .. } => 8,
            Event::CheckpointTaken { .. } => 9,
            Event::ControllerRestored { .. } => 10,
            Event::ControlPlaneDelta { .. } => 11,
            Event::SchedJob { .. } => 12,
            Event::FaultEdge { .. } => 13,
            Event::CycleEnd { .. } => 14,
            Event::Provision { .. } => 15,
            Event::RequestMilestone { .. } => 16,
            Event::ModeChange { .. } => 17,
            Event::BudgetShock { .. } => 18,
            Event::InvariantViolation { .. } => 19,
            Event::SleepTransition { .. } => 20,
            Event::WakeStart { .. } => 21,
            Event::WakeDone { .. } => 22,
            Event::PredictorSample { .. } => 23,
            Event::ShardGrant { .. } => 24,
        }
    }

    /// The event's schema name (e.g. `"cap_delta"`).
    pub fn name(&self) -> &'static str {
        schema::EVENTS[self.tag() as usize].name
    }
}

macro_rules! enum_codes {
    ($ty:ident, $($variant:ident => $name:literal),+ $(,)?) => {
        impl $ty {
            /// The wire code of this variant.
            pub fn code(self) -> u8 {
                let mut i = 0u8;
                $(if let $ty::$variant = self { return i; } i += 1;)+
                let _ = i;
                unreachable!()
            }
            /// Decodes a wire code.
            pub fn from_code(code: u8) -> Result<Self, String> {
                let mut i = 0u8;
                $(if code == i { return Ok($ty::$variant); } i += 1;)+
                let _ = i;
                Err(format!(concat!("invalid ", stringify!($ty), " code {}"), code))
            }
            /// The variant's schema name.
            pub fn name(self) -> &'static str {
                match self { $($ty::$variant => $name),+ }
            }
            /// Every variant's schema name, in wire-code order.
            pub const NAMES: &'static [&'static str] = &[$($name),+];
        }
    };
}

enum_codes!(PhaseKind,
    Mimd => "mimd",
    ObserveClassify => "observe_classify",
    Readjust => "readjust",
    Assign => "assign",
    SimCycle => "sim_cycle",
);
enum_codes!(ReadjustKind, Distributed => "distributed", Equalized => "equalized");
enum_codes!(HealthKind,
    Healthy => "healthy",
    Suspect => "suspect",
    Quarantined => "quarantined",
    Probation => "probation",
);
enum_codes!(SchedKind,
    Arrived => "arrived",
    Started => "started",
    Finished => "finished",
    Evicted => "evicted",
);
enum_codes!(FaultDomain, Sensor => "sensor", Actuator => "actuator");
enum_codes!(ProvisionKind, PowerOn => "power_on", PowerOff => "power_off");
enum_codes!(ModeKind,
    Normal => "normal",
    Degraded => "degraded",
    SafeMode => "safe_mode",
);
enum_codes!(InvariantKind,
    RequestedBudget => "requested_budget",
    CapBounds => "cap_bounds",
    AppliedBudget => "applied_budget",
    GuardConsistency => "guard_consistency",
    ShardBudget => "shard_budget",
);

/// The static event schema the binary codec embeds in every trace header.
pub mod schema {
    /// Wire type of one event field.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FieldType {
        /// Little-endian `u64`.
        U64,
        /// Little-endian `u32`.
        U32,
        /// `f64` by bit pattern.
        F64,
        /// One byte, `0` or `1`.
        Bool,
        /// One byte indexing the named variant list.
        Enum(&'static [&'static str]),
    }

    impl FieldType {
        /// The one-byte wire code of the field type.
        pub fn code(self) -> u8 {
            match self {
                FieldType::U64 => 0,
                FieldType::U32 => 1,
                FieldType::F64 => 2,
                FieldType::Bool => 3,
                FieldType::Enum(_) => 4,
            }
        }

        /// Encoded size of a value of this type, in bytes.
        pub fn size(self) -> usize {
            match self {
                FieldType::U64 | FieldType::F64 => 8,
                FieldType::U32 => 4,
                FieldType::Bool | FieldType::Enum(_) => 1,
            }
        }
    }

    /// One event variant's schema entry.
    #[derive(Debug, Clone, Copy)]
    pub struct EventSchema {
        /// Snake-case event name (also the JSONL `"event"` value).
        pub name: &'static str,
        /// Field names and wire types, in encode order.
        pub fields: &'static [(&'static str, FieldType)],
    }

    use super::{
        FaultDomain, HealthKind, InvariantKind, ModeKind, PhaseKind, ProvisionKind, ReadjustKind,
        SchedKind,
    };
    use FieldType::*;

    /// Every event variant, indexed by codec tag.
    pub const EVENTS: &[EventSchema] = &[
        EventSchema {
            name: "cycle_start",
            fields: &[("cycle", U64), ("time_s", F64)],
        },
        EventSchema {
            name: "phase_end",
            fields: &[
                ("cycle", U64),
                ("phase", Enum(PhaseKind::NAMES)),
                ("nanos", U64),
            ],
        },
        EventSchema {
            name: "cap_delta",
            fields: &[
                ("cycle", U64),
                ("unit", U32),
                ("from_w", F64),
                ("to_w", F64),
            ],
        },
        EventSchema {
            name: "priority_flip",
            fields: &[("cycle", U64), ("unit", U32), ("high", Bool)],
        },
        EventSchema {
            name: "restored",
            fields: &[("cycle", U64)],
        },
        EventSchema {
            name: "readjusted",
            fields: &[
                ("cycle", U64),
                ("kind", Enum(ReadjustKind::NAMES)),
                ("watts", F64),
            ],
        },
        EventSchema {
            name: "cap_repair",
            fields: &[("cycle", U64), ("unit", U32)],
        },
        EventSchema {
            name: "guard_health",
            fields: &[
                ("cycle", U64),
                ("unit", U32),
                ("state", Enum(HealthKind::NAMES)),
            ],
        },
        EventSchema {
            name: "membership_flip",
            fields: &[("cycle", U64), ("unit", U32), ("active", Bool)],
        },
        EventSchema {
            name: "checkpoint_taken",
            fields: &[("cycle", U64), ("bytes", U64)],
        },
        EventSchema {
            name: "controller_restored",
            fields: &[("cycle", U64)],
        },
        EventSchema {
            name: "control_plane_delta",
            fields: &[
                ("cycle", U64),
                ("sent", U64),
                ("delivered", U64),
                ("dropped", U64),
                ("retries", U64),
            ],
        },
        EventSchema {
            name: "sched_job",
            fields: &[
                ("cycle", U64),
                ("job", U32),
                ("nodes", U32),
                ("kind", Enum(SchedKind::NAMES)),
            ],
        },
        EventSchema {
            name: "fault_edge",
            fields: &[
                ("cycle", U64),
                ("unit", U32),
                ("domain", Enum(FaultDomain::NAMES)),
                ("active", Bool),
            ],
        },
        EventSchema {
            name: "cycle_end",
            fields: &[
                ("cycle", U64),
                ("budget_slack_w", F64),
                ("caps_changed", U32),
                ("queue_depth", U32),
            ],
        },
        EventSchema {
            name: "provision",
            fields: &[
                ("cycle", U64),
                ("kind", Enum(ProvisionKind::NAMES)),
                ("nodes", U32),
                ("active_nodes", U32),
                ("utilization", F64),
            ],
        },
        EventSchema {
            name: "request_milestone",
            fields: &[
                ("cycle", U64),
                ("served", U64),
                ("slo_ok", U64),
                ("backlog", U64),
            ],
        },
        EventSchema {
            name: "mode_change",
            fields: &[
                ("cycle", U64),
                ("from", Enum(ModeKind::NAMES)),
                ("to", Enum(ModeKind::NAMES)),
            ],
        },
        EventSchema {
            name: "budget_shock",
            fields: &[("cycle", U64), ("from_w", F64), ("to_w", F64)],
        },
        EventSchema {
            name: "invariant_violation",
            fields: &[
                ("cycle", U64),
                ("kind", Enum(InvariantKind::NAMES)),
                ("value", F64),
                ("limit", F64),
            ],
        },
        EventSchema {
            name: "sleep_transition",
            fields: &[
                ("cycle", U64),
                ("unit", U32),
                ("from_state", U32),
                ("to_state", U32),
            ],
        },
        EventSchema {
            name: "wake_start",
            fields: &[
                ("cycle", U64),
                ("unit", U32),
                ("state", U32),
                ("latency_s", F64),
            ],
        },
        EventSchema {
            name: "wake_done",
            fields: &[
                ("cycle", U64),
                ("unit", U32),
                ("state", U32),
                ("energy_j", F64),
            ],
        },
        EventSchema {
            name: "predictor_sample",
            fields: &[
                ("cycle", U64),
                ("unit", U32),
                ("predicted_s", F64),
                ("actual_s", F64),
            ],
        },
        EventSchema {
            name: "shard_grant",
            fields: &[
                ("cycle", U64),
                ("shard", U32),
                ("units", U32),
                ("grant_w", F64),
            ],
        },
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_index_schema() {
        let samples = crate::codec::tests_support::one_of_each();
        assert_eq!(samples.len(), schema::EVENTS.len());
        for e in &samples {
            assert_eq!(e.name(), schema::EVENTS[e.tag() as usize].name);
        }
    }

    #[test]
    fn enum_codes_roundtrip() {
        for code in 0..PhaseKind::NAMES.len() as u8 {
            assert_eq!(PhaseKind::from_code(code).unwrap().code(), code);
        }
        for code in 0..HealthKind::NAMES.len() as u8 {
            assert_eq!(HealthKind::from_code(code).unwrap().code(), code);
        }
        for code in 0..SchedKind::NAMES.len() as u8 {
            assert_eq!(SchedKind::from_code(code).unwrap().code(), code);
        }
        for code in 0..ProvisionKind::NAMES.len() as u8 {
            assert_eq!(ProvisionKind::from_code(code).unwrap().code(), code);
        }
        for code in 0..ModeKind::NAMES.len() as u8 {
            assert_eq!(ModeKind::from_code(code).unwrap().code(), code);
        }
        for code in 0..InvariantKind::NAMES.len() as u8 {
            assert_eq!(InvariantKind::from_code(code).unwrap().code(), code);
        }
        assert!(HealthKind::from_code(99).is_err());
        assert_eq!(ModeKind::SafeMode.name(), "safe_mode");
        assert_eq!(InvariantKind::AppliedBudget.name(), "applied_budget");
        assert_eq!(FaultDomain::Sensor.name(), "sensor");
        assert_eq!(ReadjustKind::Equalized.code(), 1);
        assert_eq!(ProvisionKind::PowerOff.name(), "power_off");
    }

    #[test]
    fn cycle_accessor_covers_all_variants() {
        for (i, e) in crate::codec::tests_support::one_of_each()
            .iter()
            .enumerate()
        {
            assert_eq!(e.cycle(), i as u64 + 1, "{e:?}");
        }
    }
}
