//! The self-describing binary trace format, plus JSONL export.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    b"DPSO"                         4 bytes
//! version  u8                              currently 1
//! schema   tag count, then per tag:        names + field layouts
//!            name (u8 len + utf8)
//!            field count u8, per field:
//!              name (u8 len + utf8)
//!              type code u8 (u64/u32/f64/bool/enum)
//!              enum only: variant count u8 + variant names
//! dropped  u64                             events lost to ring overwrite
//! count    u64                             events that follow
//! events   count × (tag u8 + fields)       fixed width per tag
//! check    u64                             FNV-1a over everything above
//! ```
//!
//! The embedded schema makes a trace file inventoriable without this exact
//! build, and lets [`decode`] reject traces written by a different event
//! vocabulary with a precise "schema mismatch" error instead of
//! misinterpreting bytes. Floats are encoded by bit pattern, so encoding
//! is lossless and byte-stable — the property the golden-trace suite
//! pins. Every decode failure is a clean `Err(String)`; no input, however
//! truncated or corrupt, panics (property-tested).

use crate::event::schema::{self, FieldType};
use crate::event::{
    Event, FaultDomain, HealthKind, InvariantKind, ModeKind, PhaseKind, ProvisionKind,
    ReadjustKind, SchedKind,
};

/// File magic: "DPSO" (DPS Observability).
pub const MAGIC: [u8; 4] = *b"DPSO";
/// Current format version.
pub const VERSION: u8 = 1;

/// A decoded trace: the retained events plus the ring's drop counter.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events the ring overwrote before export.
    pub dropped: u64,
}

// ---------------------------------------------------------------------------
// Byte-level helpers (same FNV-1a parameters as dps-core's checkpoint codec).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
    fn name(&mut self, s: &str) {
        debug_assert!(s.len() <= u8::MAX as usize);
        self.buf.push(s.len() as u8);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn seal(mut self) -> Vec<u8> {
        let check = fnv1a(&self.buf);
        self.buf.extend_from_slice(&check.to_le_bytes());
        self.buf
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "truncated trace: needed {n} byte(s) for {what} at offset {}, \
                 only {} remain",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }
    fn u32(&mut self, what: &str) -> Result<u32, String> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }
    fn u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }
    fn f64(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64(what)?))
    }
    fn bool(&mut self, what: &str) -> Result<bool, String> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("invalid bool byte {b} for {what}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Schema table.

fn write_schema(w: &mut Writer) {
    w.u8(schema::EVENTS.len() as u8);
    for ev in schema::EVENTS {
        w.name(ev.name);
        w.u8(ev.fields.len() as u8);
        for (fname, ftype) in ev.fields {
            w.name(fname);
            w.u8(ftype.code());
            if let FieldType::Enum(variants) = ftype {
                w.u8(variants.len() as u8);
                for v in *variants {
                    w.name(v);
                }
            }
        }
    }
}

/// The exact schema-table bytes this build writes (and requires on read).
fn schema_bytes() -> Vec<u8> {
    let mut w = Writer::new();
    write_schema(&mut w);
    w.buf
}

// ---------------------------------------------------------------------------
// Encode.

fn write_event(w: &mut Writer, e: &Event) {
    w.u8(e.tag());
    match *e {
        Event::CycleStart { cycle, time_s } => {
            w.u64(cycle);
            w.f64(time_s);
        }
        Event::PhaseEnd {
            cycle,
            phase,
            nanos,
        } => {
            w.u64(cycle);
            w.u8(phase.code());
            w.u64(nanos);
        }
        Event::CapDelta {
            cycle,
            unit,
            from_w,
            to_w,
        } => {
            w.u64(cycle);
            w.u32(unit);
            w.f64(from_w);
            w.f64(to_w);
        }
        Event::PriorityFlip { cycle, unit, high } => {
            w.u64(cycle);
            w.u32(unit);
            w.bool(high);
        }
        Event::Restored { cycle } => {
            w.u64(cycle);
        }
        Event::Readjusted { cycle, kind, watts } => {
            w.u64(cycle);
            w.u8(kind.code());
            w.f64(watts);
        }
        Event::CapRepair { cycle, unit } => {
            w.u64(cycle);
            w.u32(unit);
        }
        Event::GuardHealth { cycle, unit, state } => {
            w.u64(cycle);
            w.u32(unit);
            w.u8(state.code());
        }
        Event::MembershipFlip {
            cycle,
            unit,
            active,
        } => {
            w.u64(cycle);
            w.u32(unit);
            w.bool(active);
        }
        Event::CheckpointTaken { cycle, bytes } => {
            w.u64(cycle);
            w.u64(bytes);
        }
        Event::ControllerRestored { cycle } => {
            w.u64(cycle);
        }
        Event::ControlPlaneDelta {
            cycle,
            sent,
            delivered,
            dropped,
            retries,
        } => {
            w.u64(cycle);
            w.u64(sent);
            w.u64(delivered);
            w.u64(dropped);
            w.u64(retries);
        }
        Event::SchedJob {
            cycle,
            job,
            nodes,
            kind,
        } => {
            w.u64(cycle);
            w.u32(job);
            w.u32(nodes);
            w.u8(kind.code());
        }
        Event::FaultEdge {
            cycle,
            unit,
            domain,
            active,
        } => {
            w.u64(cycle);
            w.u32(unit);
            w.u8(domain.code());
            w.bool(active);
        }
        Event::CycleEnd {
            cycle,
            budget_slack_w,
            caps_changed,
            queue_depth,
        } => {
            w.u64(cycle);
            w.f64(budget_slack_w);
            w.u32(caps_changed);
            w.u32(queue_depth);
        }
        Event::Provision {
            cycle,
            kind,
            nodes,
            active_nodes,
            utilization,
        } => {
            w.u64(cycle);
            w.u8(kind.code());
            w.u32(nodes);
            w.u32(active_nodes);
            w.f64(utilization);
        }
        Event::RequestMilestone {
            cycle,
            served,
            slo_ok,
            backlog,
        } => {
            w.u64(cycle);
            w.u64(served);
            w.u64(slo_ok);
            w.u64(backlog);
        }
        Event::ModeChange { cycle, from, to } => {
            w.u64(cycle);
            w.u8(from.code());
            w.u8(to.code());
        }
        Event::BudgetShock {
            cycle,
            from_w,
            to_w,
        } => {
            w.u64(cycle);
            w.f64(from_w);
            w.f64(to_w);
        }
        Event::InvariantViolation {
            cycle,
            kind,
            value,
            limit,
        } => {
            w.u64(cycle);
            w.u8(kind.code());
            w.f64(value);
            w.f64(limit);
        }
        Event::SleepTransition {
            cycle,
            unit,
            from_state,
            to_state,
        } => {
            w.u64(cycle);
            w.u32(unit);
            w.u32(from_state);
            w.u32(to_state);
        }
        Event::WakeStart {
            cycle,
            unit,
            state,
            latency_s,
        } => {
            w.u64(cycle);
            w.u32(unit);
            w.u32(state);
            w.f64(latency_s);
        }
        Event::WakeDone {
            cycle,
            unit,
            state,
            energy_j,
        } => {
            w.u64(cycle);
            w.u32(unit);
            w.u32(state);
            w.f64(energy_j);
        }
        Event::PredictorSample {
            cycle,
            unit,
            predicted_s,
            actual_s,
        } => {
            w.u64(cycle);
            w.u32(unit);
            w.f64(predicted_s);
            w.f64(actual_s);
        }
        Event::ShardGrant {
            cycle,
            shard,
            units,
            grant_w,
        } => {
            w.u64(cycle);
            w.u32(shard);
            w.u32(units);
            w.f64(grant_w);
        }
    }
}

/// Encodes an event stream (plus the ring's drop counter) as a trace file.
pub fn encode(events: &[Event], dropped: u64) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(&mut out, events, dropped);
    out
}

/// Encodes into a caller-owned buffer, reusing its capacity.
///
/// `out` is cleared first; after the first call sized it, subsequent calls
/// of similar size perform **no allocation**. This is the spill path of
/// [`SegmentSink`](crate::segment::SegmentSink), which must not touch the
/// allocator per segment. Byte-for-byte identical to [`encode`].
pub fn encode_into(out: &mut Vec<u8>, events: &[Event], dropped: u64) {
    out.clear();
    let mut w = Writer {
        buf: std::mem::take(out),
    };
    w.buf.extend_from_slice(&MAGIC);
    w.u8(VERSION);
    write_schema(&mut w);
    w.u64(dropped);
    w.u64(events.len() as u64);
    for e in events {
        write_event(&mut w, e);
    }
    *out = w.seal();
}

// ---------------------------------------------------------------------------
// Decode.

fn read_event(r: &mut Reader<'_>) -> Result<Event, String> {
    let tag = r.u8("event tag")?;
    let e = match tag {
        0 => Event::CycleStart {
            cycle: r.u64("cycle")?,
            time_s: r.f64("time_s")?,
        },
        1 => Event::PhaseEnd {
            cycle: r.u64("cycle")?,
            phase: PhaseKind::from_code(r.u8("phase")?)?,
            nanos: r.u64("nanos")?,
        },
        2 => Event::CapDelta {
            cycle: r.u64("cycle")?,
            unit: r.u32("unit")?,
            from_w: r.f64("from_w")?,
            to_w: r.f64("to_w")?,
        },
        3 => Event::PriorityFlip {
            cycle: r.u64("cycle")?,
            unit: r.u32("unit")?,
            high: r.bool("high")?,
        },
        4 => Event::Restored {
            cycle: r.u64("cycle")?,
        },
        5 => Event::Readjusted {
            cycle: r.u64("cycle")?,
            kind: ReadjustKind::from_code(r.u8("kind")?)?,
            watts: r.f64("watts")?,
        },
        6 => Event::CapRepair {
            cycle: r.u64("cycle")?,
            unit: r.u32("unit")?,
        },
        7 => Event::GuardHealth {
            cycle: r.u64("cycle")?,
            unit: r.u32("unit")?,
            state: HealthKind::from_code(r.u8("state")?)?,
        },
        8 => Event::MembershipFlip {
            cycle: r.u64("cycle")?,
            unit: r.u32("unit")?,
            active: r.bool("active")?,
        },
        9 => Event::CheckpointTaken {
            cycle: r.u64("cycle")?,
            bytes: r.u64("bytes")?,
        },
        10 => Event::ControllerRestored {
            cycle: r.u64("cycle")?,
        },
        11 => Event::ControlPlaneDelta {
            cycle: r.u64("cycle")?,
            sent: r.u64("sent")?,
            delivered: r.u64("delivered")?,
            dropped: r.u64("dropped")?,
            retries: r.u64("retries")?,
        },
        12 => Event::SchedJob {
            cycle: r.u64("cycle")?,
            job: r.u32("job")?,
            nodes: r.u32("nodes")?,
            kind: SchedKind::from_code(r.u8("kind")?)?,
        },
        13 => Event::FaultEdge {
            cycle: r.u64("cycle")?,
            unit: r.u32("unit")?,
            domain: FaultDomain::from_code(r.u8("domain")?)?,
            active: r.bool("active")?,
        },
        14 => Event::CycleEnd {
            cycle: r.u64("cycle")?,
            budget_slack_w: r.f64("budget_slack_w")?,
            caps_changed: r.u32("caps_changed")?,
            queue_depth: r.u32("queue_depth")?,
        },
        15 => Event::Provision {
            cycle: r.u64("cycle")?,
            kind: ProvisionKind::from_code(r.u8("kind")?)?,
            nodes: r.u32("nodes")?,
            active_nodes: r.u32("active_nodes")?,
            utilization: r.f64("utilization")?,
        },
        16 => Event::RequestMilestone {
            cycle: r.u64("cycle")?,
            served: r.u64("served")?,
            slo_ok: r.u64("slo_ok")?,
            backlog: r.u64("backlog")?,
        },
        17 => Event::ModeChange {
            cycle: r.u64("cycle")?,
            from: ModeKind::from_code(r.u8("from")?)?,
            to: ModeKind::from_code(r.u8("to")?)?,
        },
        18 => Event::BudgetShock {
            cycle: r.u64("cycle")?,
            from_w: r.f64("from_w")?,
            to_w: r.f64("to_w")?,
        },
        19 => Event::InvariantViolation {
            cycle: r.u64("cycle")?,
            kind: InvariantKind::from_code(r.u8("kind")?)?,
            value: r.f64("value")?,
            limit: r.f64("limit")?,
        },
        20 => Event::SleepTransition {
            cycle: r.u64("cycle")?,
            unit: r.u32("unit")?,
            from_state: r.u32("from_state")?,
            to_state: r.u32("to_state")?,
        },
        21 => Event::WakeStart {
            cycle: r.u64("cycle")?,
            unit: r.u32("unit")?,
            state: r.u32("state")?,
            latency_s: r.f64("latency_s")?,
        },
        22 => Event::WakeDone {
            cycle: r.u64("cycle")?,
            unit: r.u32("unit")?,
            state: r.u32("state")?,
            energy_j: r.f64("energy_j")?,
        },
        23 => Event::PredictorSample {
            cycle: r.u64("cycle")?,
            unit: r.u32("unit")?,
            predicted_s: r.f64("predicted_s")?,
            actual_s: r.f64("actual_s")?,
        },
        24 => Event::ShardGrant {
            cycle: r.u64("cycle")?,
            shard: r.u32("shard")?,
            units: r.u32("units")?,
            grant_w: r.f64("grant_w")?,
        },
        t => return Err(format!("unknown event tag {t}")),
    };
    Ok(e)
}

/// Decodes a trace file. Any malformed, truncated, or corrupt input yields
/// a descriptive `Err`; no input panics.
pub fn decode(bytes: &[u8]) -> Result<Trace, String> {
    if bytes.len() < MAGIC.len() + 1 + 8 {
        return Err(format!(
            "trace too short: {} byte(s), minimum header is {}",
            bytes.len(),
            MAGIC.len() + 1 + 8
        ));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().unwrap());
    let actual = fnv1a(body);
    if stored != actual {
        return Err(format!(
            "trace checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        ));
    }

    let mut r = Reader::new(body);
    let magic = r.take(4, "magic")?;
    if magic != MAGIC {
        return Err(format!("bad magic {magic:?}, expected {MAGIC:?}"));
    }
    let version = r.u8("version")?;
    if version != VERSION {
        return Err(format!(
            "unsupported trace version {version}, this build reads {VERSION}"
        ));
    }

    let expected_schema = schema_bytes();
    let found = r.take(expected_schema.len(), "schema table")?;
    if found != expected_schema.as_slice() {
        return Err(
            "schema mismatch: trace was written with a different event vocabulary".to_string(),
        );
    }

    let dropped = r.u64("dropped counter")?;
    let count = r.u64("event count")?;
    // Cheapest possible consistency bound: every event is ≥ 9 bytes
    // (tag + cycle), so a count the remaining bytes cannot hold is corrupt.
    let remaining = body.len() - r.pos;
    if count > (remaining / 9) as u64 {
        return Err(format!(
            "event count {count} impossible for {remaining} remaining byte(s)"
        ));
    }
    let mut events = Vec::with_capacity(count as usize);
    for i in 0..count {
        events.push(read_event(&mut r).map_err(|e| format!("event {i}: {e}"))?);
    }
    if r.pos != body.len() {
        return Err(format!(
            "{} trailing byte(s) after the last event",
            body.len() - r.pos
        ));
    }
    Ok(Trace { events, dropped })
}

// ---------------------------------------------------------------------------
// JSONL export.

fn json_f64(out: &mut String, v: f64) {
    // JSON has no NaN/Inf; represent non-finite values as null.
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Keep integral floats readable ("120.0", not "120").
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        out.push_str("null");
    }
}

fn json_event(out: &mut String, e: &Event) {
    out.push_str("{\"event\":\"");
    out.push_str(e.name());
    out.push('"');
    let num = |out: &mut String, k: &str, v: u64| {
        out.push_str(",\"");
        out.push_str(k);
        out.push_str("\":");
        out.push_str(&v.to_string());
    };
    let fl = |out: &mut String, k: &str, v: f64| {
        out.push_str(",\"");
        out.push_str(k);
        out.push_str("\":");
        json_f64(out, v);
    };
    let st = |out: &mut String, k: &str, v: &str| {
        out.push_str(",\"");
        out.push_str(k);
        out.push_str("\":\"");
        out.push_str(v);
        out.push('"');
    };
    let bo = |out: &mut String, k: &str, v: bool| {
        out.push_str(",\"");
        out.push_str(k);
        out.push_str("\":");
        out.push_str(if v { "true" } else { "false" });
    };
    num(out, "cycle", e.cycle());
    match *e {
        Event::CycleStart { time_s, .. } => fl(out, "time_s", time_s),
        Event::PhaseEnd { phase, nanos, .. } => {
            st(out, "phase", phase.name());
            num(out, "nanos", nanos);
        }
        Event::CapDelta {
            unit, from_w, to_w, ..
        } => {
            num(out, "unit", unit as u64);
            fl(out, "from_w", from_w);
            fl(out, "to_w", to_w);
        }
        Event::PriorityFlip { unit, high, .. } => {
            num(out, "unit", unit as u64);
            bo(out, "high", high);
        }
        Event::Restored { .. } | Event::ControllerRestored { .. } => {}
        Event::Readjusted { kind, watts, .. } => {
            st(out, "kind", kind.name());
            fl(out, "watts", watts);
        }
        Event::CapRepair { unit, .. } => num(out, "unit", unit as u64),
        Event::GuardHealth { unit, state, .. } => {
            num(out, "unit", unit as u64);
            st(out, "state", state.name());
        }
        Event::MembershipFlip { unit, active, .. } => {
            num(out, "unit", unit as u64);
            bo(out, "active", active);
        }
        Event::CheckpointTaken { bytes, .. } => num(out, "bytes", bytes),
        Event::ControlPlaneDelta {
            sent,
            delivered,
            dropped,
            retries,
            ..
        } => {
            num(out, "sent", sent);
            num(out, "delivered", delivered);
            num(out, "dropped", dropped);
            num(out, "retries", retries);
        }
        Event::SchedJob {
            job, nodes, kind, ..
        } => {
            num(out, "job", job as u64);
            num(out, "nodes", nodes as u64);
            st(out, "kind", kind.name());
        }
        Event::FaultEdge {
            unit,
            domain,
            active,
            ..
        } => {
            num(out, "unit", unit as u64);
            st(out, "domain", domain.name());
            bo(out, "active", active);
        }
        Event::CycleEnd {
            budget_slack_w,
            caps_changed,
            queue_depth,
            ..
        } => {
            fl(out, "budget_slack_w", budget_slack_w);
            num(out, "caps_changed", caps_changed as u64);
            num(out, "queue_depth", queue_depth as u64);
        }
        Event::Provision {
            kind,
            nodes,
            active_nodes,
            utilization,
            ..
        } => {
            st(out, "kind", kind.name());
            num(out, "nodes", nodes as u64);
            num(out, "active_nodes", active_nodes as u64);
            fl(out, "utilization", utilization);
        }
        Event::RequestMilestone {
            served,
            slo_ok,
            backlog,
            ..
        } => {
            num(out, "served", served);
            num(out, "slo_ok", slo_ok);
            num(out, "backlog", backlog);
        }
        Event::ModeChange { from, to, .. } => {
            st(out, "from", from.name());
            st(out, "to", to.name());
        }
        Event::BudgetShock { from_w, to_w, .. } => {
            fl(out, "from_w", from_w);
            fl(out, "to_w", to_w);
        }
        Event::InvariantViolation {
            kind, value, limit, ..
        } => {
            st(out, "kind", kind.name());
            fl(out, "value", value);
            fl(out, "limit", limit);
        }
        Event::SleepTransition {
            unit,
            from_state,
            to_state,
            ..
        } => {
            num(out, "unit", unit as u64);
            num(out, "from_state", from_state as u64);
            num(out, "to_state", to_state as u64);
        }
        Event::WakeStart {
            unit,
            state,
            latency_s,
            ..
        } => {
            num(out, "unit", unit as u64);
            num(out, "state", state as u64);
            fl(out, "latency_s", latency_s);
        }
        Event::WakeDone {
            unit,
            state,
            energy_j,
            ..
        } => {
            num(out, "unit", unit as u64);
            num(out, "state", state as u64);
            fl(out, "energy_j", energy_j);
        }
        Event::PredictorSample {
            unit,
            predicted_s,
            actual_s,
            ..
        } => {
            num(out, "unit", unit as u64);
            fl(out, "predicted_s", predicted_s);
            fl(out, "actual_s", actual_s);
        }
        Event::ShardGrant {
            shard,
            units,
            grant_w,
            ..
        } => {
            num(out, "shard", shard as u64);
            num(out, "units", units as u64);
            fl(out, "grant_w", grant_w);
        }
    }
    out.push('}');
}

/// Renders a decoded trace as JSONL: one event object per line, preceded by
/// a meta line carrying the format version and drop counter.
pub fn to_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"meta\":\"dps-obs\",\"version\":{VERSION},\"dropped\":{},\"events\":{}}}\n",
        trace.dropped,
        trace.events.len()
    ));
    for e in &trace.events {
        json_event(&mut out, e);
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------

/// Sample-event constructors shared by unit tests, integration tests and
/// property tests. Not part of the public API surface.
#[doc(hidden)]
pub mod tests_support {
    use super::*;

    /// One event of every variant, with `cycle` = tag index + 1 so tests
    /// can tell them apart.
    pub fn one_of_each() -> Vec<Event> {
        vec![
            Event::CycleStart {
                cycle: 1,
                time_s: 0.25,
            },
            Event::PhaseEnd {
                cycle: 2,
                phase: PhaseKind::ObserveClassify,
                nanos: 123_456,
            },
            Event::CapDelta {
                cycle: 3,
                unit: 7,
                from_w: 120.0,
                to_w: 95.5,
            },
            Event::PriorityFlip {
                cycle: 4,
                unit: 8,
                high: true,
            },
            Event::Restored { cycle: 5 },
            Event::Readjusted {
                cycle: 6,
                kind: ReadjustKind::Distributed,
                watts: 44.25,
            },
            Event::CapRepair { cycle: 7, unit: 2 },
            Event::GuardHealth {
                cycle: 8,
                unit: 3,
                state: HealthKind::Quarantined,
            },
            Event::MembershipFlip {
                cycle: 9,
                unit: 4,
                active: false,
            },
            Event::CheckpointTaken {
                cycle: 10,
                bytes: 4096,
            },
            Event::ControllerRestored { cycle: 11 },
            Event::ControlPlaneDelta {
                cycle: 12,
                sent: 64,
                delivered: 60,
                dropped: 4,
                retries: 2,
            },
            Event::SchedJob {
                cycle: 13,
                job: 41,
                nodes: 16,
                kind: SchedKind::Started,
            },
            Event::FaultEdge {
                cycle: 14,
                unit: 5,
                domain: FaultDomain::Sensor,
                active: true,
            },
            Event::CycleEnd {
                cycle: 15,
                budget_slack_w: 12.5,
                caps_changed: 9,
                queue_depth: 3,
            },
            Event::Provision {
                cycle: 16,
                kind: ProvisionKind::PowerOn,
                nodes: 2,
                active_nodes: 6,
                utilization: 0.85,
            },
            Event::RequestMilestone {
                cycle: 17,
                served: 100_000,
                slo_ok: 98_750,
                backlog: 1_200,
            },
            Event::ModeChange {
                cycle: 18,
                from: ModeKind::Normal,
                to: ModeKind::Degraded,
            },
            Event::BudgetShock {
                cycle: 19,
                from_w: 960.0,
                to_w: 720.0,
            },
            Event::InvariantViolation {
                cycle: 20,
                kind: InvariantKind::RequestedBudget,
                value: 961.5,
                limit: 960.0,
            },
            Event::SleepTransition {
                cycle: 21,
                unit: 6,
                from_state: 1,
                to_state: 2,
            },
            Event::WakeStart {
                cycle: 22,
                unit: 6,
                state: 2,
                latency_s: 0.5,
            },
            Event::WakeDone {
                cycle: 23,
                unit: 6,
                state: 2,
                energy_j: 40.0,
            },
            Event::PredictorSample {
                cycle: 24,
                unit: 6,
                predicted_s: 28.5,
                actual_s: 31.0,
            },
            Event::ShardGrant {
                cycle: 25,
                shard: 3,
                units: 4096,
                grant_w: 450_560.0,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_one_of_each() {
        let events = tests_support::one_of_each();
        let bytes = encode(&events, 17);
        let trace = decode(&bytes).unwrap();
        assert_eq!(trace.dropped, 17);
        assert_eq!(trace.events, events);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = encode(&[], 0);
        let trace = decode(&bytes).unwrap();
        assert!(trace.events.is_empty());
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_capacity() {
        let events = tests_support::one_of_each();
        let mut buf = Vec::new();
        encode_into(&mut buf, &events, 5);
        assert_eq!(buf, encode(&events, 5));
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        encode_into(&mut buf, &events[..4], 0);
        assert_eq!(buf, encode(&events[..4], 0));
        assert_eq!(buf.capacity(), cap, "smaller re-encode must not reallocate");
        assert_eq!(ptr, buf.as_ptr(), "buffer storage must be reused");
    }

    #[test]
    fn encoding_is_deterministic() {
        let events = tests_support::one_of_each();
        assert_eq!(encode(&events, 3), encode(&events, 3));
    }

    #[test]
    fn nan_caps_survive_binary_roundtrip() {
        let events = vec![Event::CapDelta {
            cycle: 1,
            unit: 0,
            from_w: f64::NAN,
            to_w: 100.0,
        }];
        let trace = decode(&encode(&events, 0)).unwrap();
        match trace.events[0] {
            Event::CapDelta { from_w, .. } => assert!(from_w.is_nan()),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = encode(&tests_support::one_of_each(), 0);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = decode(&bytes).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn truncation_is_a_clean_error() {
        let bytes = encode(&tests_support::one_of_each(), 0);
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(!err.is_empty());
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut w = Writer::new();
        w.buf.extend_from_slice(b"NOPE");
        w.u8(VERSION);
        let bytes = w.seal();
        let err = decode(&bytes).unwrap_err();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn bad_version_rejected() {
        let mut w = Writer::new();
        w.buf.extend_from_slice(&MAGIC);
        w.u8(200);
        let bytes = w.seal();
        let err = decode(&bytes).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn foreign_schema_rejected() {
        // Valid frame, but a one-event schema table this build doesn't use.
        let mut w = Writer::new();
        w.buf.extend_from_slice(&MAGIC);
        w.u8(VERSION);
        w.u8(1);
        w.name("other_event");
        w.u8(0);
        w.u64(0);
        w.u64(0);
        let bytes = w.seal();
        let err = decode(&bytes).unwrap_err();
        assert!(err.contains("schema") || err.contains("truncated"), "{err}");
    }

    #[test]
    fn jsonl_has_one_line_per_event_plus_meta() {
        let events = tests_support::one_of_each();
        let trace = Trace {
            events: events.clone(),
            dropped: 2,
        };
        let jsonl = to_jsonl(&trace);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), events.len() + 1);
        assert!(lines[0].contains("\"dropped\":2"));
        for (line, e) in lines[1..].iter().zip(&events) {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(
                line.contains(&format!("\"event\":\"{}\"", e.name())),
                "{line}"
            );
        }
        // Every key/value pair is well-formed enough to contain no raw NaN.
        assert!(!jsonl.contains("NaN"));
    }

    #[test]
    fn jsonl_nonfinite_floats_become_null() {
        let trace = Trace {
            events: vec![Event::CapDelta {
                cycle: 1,
                unit: 0,
                from_w: f64::NAN,
                to_w: f64::INFINITY,
            }],
            dropped: 0,
        };
        let jsonl = to_jsonl(&trace);
        assert!(jsonl.contains("\"from_w\":null"), "{jsonl}");
        assert!(jsonl.contains("\"to_w\":null"), "{jsonl}");
    }
}
