//! A preallocated, lock-free ring buffer of [`Event`]s.
//!
//! The ring is the storage backend of [`RingSink`](crate::sink::RingSink).
//! It allocates exactly once (at construction) and records through
//! [`Cell`]s, so pushing an event from the hot decision loop is two index
//! bumps and a 48-byte slot store — no mutex, no branch on capacity growth,
//! no allocator traffic. When the ring is full the **oldest** event is
//! overwritten and [`EventRing::dropped`] advances, so a bounded trace of
//! the most recent activity survives arbitrarily long runs and the loss is
//! observable rather than silent.
//!
//! The ring is intentionally single-threaded (`Cell`, not atomics): the DPS
//! decision loop is sequential, and the parallel classify phase never
//! emits. This keeps the fast path free of fences. The type is therefore
//! `!Sync`, which the compiler enforces.

use std::cell::Cell;

use crate::event::Event;

/// Fixed-capacity overwrite-oldest ring of trace events.
#[derive(Debug)]
pub struct EventRing {
    slots: Box<[Cell<Event>]>,
    /// Number of live events (≤ capacity).
    len: Cell<usize>,
    /// Slot index the next push writes to.
    next: Cell<usize>,
    /// Events overwritten because the ring was full.
    dropped: Cell<u64>,
}

impl EventRing {
    /// Creates a ring holding up to `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let filler = Event::Restored { cycle: 0 };
        let slots: Vec<Cell<Event>> = (0..capacity).map(|_| Cell::new(filler)).collect();
        EventRing {
            slots: slots.into_boxed_slice(),
            len: Cell::new(0),
            next: Cell::new(0),
            dropped: Cell::new(0),
        }
    }

    /// Maximum number of events the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.len.get()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len.get() == 0
    }

    /// Events lost to overwrite because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Records an event, overwriting the oldest if the ring is full.
    #[inline]
    pub fn push(&self, event: Event) {
        let cap = self.slots.len();
        let next = self.next.get();
        self.slots[next].set(event);
        self.next.set(if next + 1 == cap { 0 } else { next + 1 });
        let len = self.len.get();
        if len < cap {
            self.len.set(len + 1);
        } else {
            self.dropped.set(self.dropped.get() + 1);
        }
    }

    /// Copies the retained events out, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.len.get());
        self.copy_to(&mut out);
        out
    }

    /// Copies the retained events (oldest first) into a caller-owned
    /// buffer, reusing its capacity. The buffer is cleared first; if the
    /// caller preallocated at least [`EventRing::capacity`] slots, the copy
    /// performs no allocation — the property the segment-spill path relies
    /// on.
    pub fn copy_to(&self, out: &mut Vec<Event>) {
        out.clear();
        let cap = self.slots.len();
        let len = self.len.get();
        let next = self.next.get();
        // Oldest element: `next` walked past it if we've wrapped, else slot 0.
        let start = if len == cap { next } else { 0 };
        for i in 0..len {
            let idx = start + i;
            let idx = if idx >= cap { idx - cap } else { idx };
            out.push(self.slots[idx].get());
        }
    }

    /// Clears the retained events and the dropped counter.
    pub fn clear(&self) {
        self.len.set(0);
        self.next.set(0);
        self.dropped.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marker(cycle: u64) -> Event {
        Event::Restored { cycle }
    }

    #[test]
    fn push_below_capacity_keeps_order() {
        let ring = EventRing::new(4);
        assert!(ring.is_empty());
        for c in 0..3 {
            ring.push(marker(c));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 0);
        let cycles: Vec<u64> = ring.snapshot().iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
    }

    #[test]
    fn overflow_overwrites_oldest_and_counts() {
        let ring = EventRing::new(3);
        for c in 0..7 {
            ring.push(marker(c));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 4);
        let cycles: Vec<u64> = ring.snapshot().iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![4, 5, 6]);
    }

    #[test]
    fn exact_capacity_boundary() {
        let ring = EventRing::new(2);
        ring.push(marker(10));
        ring.push(marker(11));
        assert_eq!(ring.dropped(), 0);
        assert_eq!(
            ring.snapshot()
                .iter()
                .map(|e| e.cycle())
                .collect::<Vec<_>>(),
            vec![10, 11]
        );
        ring.push(marker(12));
        assert_eq!(ring.dropped(), 1);
        assert_eq!(
            ring.snapshot()
                .iter()
                .map(|e| e.cycle())
                .collect::<Vec<_>>(),
            vec![11, 12]
        );
    }

    #[test]
    fn clear_resets_everything() {
        let ring = EventRing::new(2);
        for c in 0..5 {
            ring.push(marker(c));
        }
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        assert!(ring.snapshot().is_empty());
        ring.push(marker(9));
        assert_eq!(ring.snapshot().len(), 1);
    }

    #[test]
    fn copy_to_reuses_buffer_without_allocating() {
        let ring = EventRing::new(4);
        for c in 0..6 {
            ring.push(marker(c));
        }
        let mut buf = Vec::with_capacity(ring.capacity());
        let ptr = buf.as_ptr();
        ring.copy_to(&mut buf);
        assert_eq!(
            buf.iter().map(|e| e.cycle()).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
        assert_eq!(ptr, buf.as_ptr(), "preallocated buffer must be reused");
        assert_eq!(buf, ring.snapshot());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = EventRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(marker(1));
        ring.push(marker(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.snapshot()[0].cycle(), 2);
    }
}
