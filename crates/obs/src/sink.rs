//! The emission interface instrumented layers record through.
//!
//! Every instrumented crate holds a [`SinkHandle`] and calls
//! [`SinkHandle::emit`] at its emission points. The handle is a shared
//! pointer to a [`TraceSink`]; the default target is [`NoopSink`], whose
//! `enabled()` returns `false` so hot paths can skip even *computing* an
//! event (diffing caps, snapshotting priorities) behind one predictable
//! branch. That is what makes the uninstrumented configuration cost
//! nothing measurable — the acceptance bar is ≤ 2% on the 16384-unit step
//! bench, and the observed cost is below timer noise.
//!
//! [`RingSink`] is the recording implementation: events land in an
//! [`EventRing`] and simultaneously update a live [`ObsRegistry`]. Timing
//! spans ([`Event::PhaseEnd`]) are only emitted when the sink opts in via
//! [`TraceSink::timing`], because wall-clock durations are nondeterministic
//! and would break golden-trace byte stability.

use std::fmt;
use std::rc::Rc;

use crate::codec;
use crate::event::Event;
use crate::registry::ObsRegistry;
use crate::ring::EventRing;

/// A destination for trace events.
pub trait TraceSink {
    /// Whether emission points should record at all. Callers are expected
    /// to consult this before doing any per-event work (diffs, snapshots).
    fn enabled(&self) -> bool {
        false
    }

    /// Whether nondeterministic timing spans should be emitted. Golden
    /// traces keep this off so pinned-seed runs are byte-stable.
    fn timing(&self) -> bool {
        false
    }

    /// Records one event.
    fn emit(&self, _event: Event) {}

    /// Concrete-type access for [`SinkHandle::as_ring`]. Sinks that want
    /// to be reachable through a handle return `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// The do-nothing sink: disabled, discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {}

/// A recording sink: ring storage plus a live counters/histograms registry.
#[derive(Debug)]
pub struct RingSink {
    ring: EventRing,
    registry: ObsRegistry,
    timing: bool,
    /// The ring's drop counter as of the last `CycleEnd`, so overflow is
    /// flagged once per cycle rather than once per overwritten event.
    last_dropped: std::cell::Cell<u64>,
}

impl RingSink {
    /// Creates a recording sink retaining up to `capacity` events, with
    /// timing spans disabled (the golden-trace configuration).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            ring: EventRing::new(capacity),
            registry: ObsRegistry::new(),
            timing: false,
            last_dropped: std::cell::Cell::new(0),
        }
    }

    /// Enables nondeterministic timing spans (profiling configuration).
    pub fn with_timing(mut self) -> Self {
        self.timing = true;
        self
    }

    /// The underlying event ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// The live registry, updated on every emit.
    pub fn registry(&self) -> &ObsRegistry {
        &self.registry
    }

    /// Encodes the retained events as a self-describing binary trace.
    pub fn export(&self) -> Vec<u8> {
        codec::encode(&self.ring.snapshot(), self.ring.dropped())
    }
}

impl TraceSink for RingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn timing(&self) -> bool {
        self.timing
    }

    fn emit(&self, event: Event) {
        self.registry.record(&event);
        self.ring.push(event);
        // Cycle-boundary overflow check: if the ring overwrote anything
        // since the previous CycleEnd, flag the cycle once. Kept off the
        // per-event path — a single compare at each cycle end.
        if let Event::CycleEnd { .. } = event {
            let dropped = self.ring.dropped();
            if dropped > self.last_dropped.get() {
                self.registry.note_ring_overflow();
                self.last_dropped.set(dropped);
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// A cheaply clonable handle to a shared [`TraceSink`].
///
/// Instrumented structs store one of these; attaching a sink to a manager
/// and its simulator means cloning the same handle into both, so a single
/// [`RingSink`] sees the interleaved stream. `Rc` (not `Arc`) is deliberate:
/// the decision loop is single-threaded, and the parallel classify phase
/// emits nothing, so handles never cross threads.
#[derive(Clone)]
pub struct SinkHandle(Rc<dyn TraceSink>);

impl SinkHandle {
    /// Wraps a sink implementation in a shared handle.
    pub fn new(sink: Rc<dyn TraceSink>) -> Self {
        SinkHandle(sink)
    }

    /// A handle to the do-nothing sink.
    pub fn noop() -> Self {
        SinkHandle(Rc::new(NoopSink))
    }

    /// A handle recording into a fresh [`RingSink`] of `capacity` events.
    /// Keep a clone to read the ring/registry back after the run.
    pub fn recording(capacity: usize) -> Self {
        SinkHandle(Rc::new(RingSink::new(capacity)))
    }

    /// Whether emission points should record at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.enabled()
    }

    /// Whether nondeterministic timing spans should be emitted.
    #[inline]
    pub fn timing(&self) -> bool {
        self.0.timing()
    }

    /// Records one event.
    #[inline]
    pub fn emit(&self, event: Event) {
        self.0.emit(event);
    }

    /// Downcast-free access to a [`RingSink`] created via
    /// [`SinkHandle::recording`]: exports the retained events as a binary
    /// trace, or `None` if the handle wraps some other sink type.
    pub fn export(&self) -> Option<Vec<u8>> {
        self.as_ring().map(|r| r.export())
    }

    /// The wrapped [`RingSink`], if that is what this handle points at.
    pub fn as_ring(&self) -> Option<&RingSink> {
        self.0.as_any().and_then(|a| a.downcast_ref::<RingSink>())
    }

    /// The wrapped [`SegmentSink`](crate::segment::SegmentSink), if that
    /// is what this handle points at.
    /// Use it to [`flush`](crate::segment::SegmentSink::flush) the final
    /// partial segment at end of run.
    pub fn as_segment(&self) -> Option<&crate::segment::SegmentSink> {
        self.0
            .as_any()
            .and_then(|a| a.downcast_ref::<crate::segment::SegmentSink>())
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SinkHandle")
            .field("enabled", &self.enabled())
            .field("timing", &self.timing())
            .finish()
    }
}

impl Default for SinkHandle {
    fn default() -> Self {
        SinkHandle::noop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_discards() {
        let h = SinkHandle::default();
        assert!(!h.enabled());
        assert!(!h.timing());
        h.emit(Event::Restored { cycle: 1 });
        assert!(h.as_ring().is_none());
        assert!(h.export().is_none());
    }

    #[test]
    fn recording_handle_shares_one_ring() {
        let h = SinkHandle::recording(16);
        let h2 = h.clone();
        assert!(h.enabled());
        h.emit(Event::Restored { cycle: 1 });
        h2.emit(Event::CapRepair { cycle: 2, unit: 7 });
        let ring = h.as_ring().unwrap().ring();
        assert_eq!(ring.len(), 2);
        let reg = h.as_ring().unwrap().registry();
        assert_eq!(reg.events(), 2);
        assert_eq!(reg.restores(), 1);
        assert_eq!(reg.cap_repairs(), 1);
    }

    #[test]
    fn timing_flag_propagates() {
        let h = SinkHandle::new(Rc::new(RingSink::new(4).with_timing()));
        assert!(h.timing());
        assert!(!SinkHandle::recording(4).timing());
    }

    #[test]
    fn export_roundtrips_through_codec() {
        let h = SinkHandle::recording(8);
        h.emit(Event::CycleStart {
            cycle: 0,
            time_s: 0.5,
        });
        h.emit(Event::CycleEnd {
            cycle: 0,
            budget_slack_w: 12.0,
            caps_changed: 3,
            queue_depth: 0,
        });
        let bytes = h.export().unwrap();
        let decoded = crate::codec::decode(&bytes).unwrap();
        assert_eq!(decoded.events.len(), 2);
        assert_eq!(decoded.dropped, 0);
    }

    #[test]
    fn ring_overflow_flagged_once_per_cycle() {
        let h = SinkHandle::recording(4);
        let cycle_end = |cycle| Event::CycleEnd {
            cycle,
            budget_slack_w: 0.0,
            caps_changed: 0,
            queue_depth: 0,
        };
        // Cycle 0: 3 events + CycleEnd fill the ring exactly; no overflow.
        for _ in 0..3 {
            h.emit(Event::Restored { cycle: 0 });
        }
        h.emit(cycle_end(0));
        assert_eq!(h.as_ring().unwrap().registry().ring_overflows(), 0);
        // Cycle 1: many overwrites, still one overflow flag.
        for _ in 0..10 {
            h.emit(Event::Restored { cycle: 1 });
        }
        h.emit(cycle_end(1));
        assert_eq!(h.as_ring().unwrap().registry().ring_overflows(), 1);
        // Cycle 2: CycleEnd itself overwrites -> a second flag.
        h.emit(cycle_end(2));
        assert_eq!(h.as_ring().unwrap().registry().ring_overflows(), 2);
    }

    #[test]
    fn debug_format_is_stable() {
        let s = format!("{:?}", SinkHandle::noop());
        assert!(s.contains("enabled: false"), "{s}");
    }
}
