//! Property tests for the `dps-obs` codec and ring.
//!
//! The codec is the persistence layer under the golden-trace suite, so its
//! contract is checked adversarially here: arbitrary event sequences must
//! round-trip bit-exactly (including NaN and infinite floats), any
//! truncation or byte corruption must surface as a clean `Err` — never a
//! panic or a silently wrong decode — and the ring must degrade by
//! dropping the *oldest* events while counting every drop.

use dps_obs::codec::{decode, encode};
use dps_obs::segment::decode_segment;
use dps_obs::{
    Event, EventRing, FaultDomain, HealthKind, PhaseKind, ProvisionKind, ReadjustKind, SchedKind,
};
use proptest::prelude::*;

/// Frames a trace the way `SegmentSink` writes a segment file:
/// a u64 LE length prefix followed by the DPSO payload.
fn frame_segment(payload: &[u8]) -> Vec<u8> {
    let mut frame = (payload.len() as u64).to_le_bytes().to_vec();
    frame.extend_from_slice(payload);
    frame
}

/// Deterministically maps generated scalars onto one of the 17 variants.
/// `sel` spreads f64 payloads over the special values the codec must
/// preserve bit-exactly.
fn build_event(tag: u8, a: u64, b: u64, x: f64, sel: u8, flag: bool) -> Event {
    let cycle = a % 100_000;
    let unit = (b % 4096) as u32;
    let f = match sel % 6 {
        0 => x,
        1 => f64::NAN,
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        4 => -0.0,
        _ => x * 1e-6,
    };
    match tag % 17 {
        0 => Event::CycleStart { cycle, time_s: f },
        1 => Event::PhaseEnd {
            cycle,
            phase: PhaseKind::from_code((b % 5) as u8).unwrap(),
            nanos: b,
        },
        2 => Event::CapDelta {
            cycle,
            unit,
            from_w: f,
            to_w: x,
        },
        3 => Event::PriorityFlip {
            cycle,
            unit,
            high: flag,
        },
        4 => Event::Restored { cycle },
        5 => Event::Readjusted {
            cycle,
            kind: ReadjustKind::from_code((b % 2) as u8).unwrap(),
            watts: f,
        },
        6 => Event::CapRepair { cycle, unit },
        7 => Event::GuardHealth {
            cycle,
            unit,
            state: HealthKind::from_code((b % 4) as u8).unwrap(),
        },
        8 => Event::MembershipFlip {
            cycle,
            unit,
            active: flag,
        },
        9 => Event::CheckpointTaken { cycle, bytes: b },
        10 => Event::ControllerRestored { cycle },
        11 => Event::ControlPlaneDelta {
            cycle,
            sent: a,
            delivered: b,
            dropped: a % 17,
            retries: b % 13,
        },
        12 => Event::SchedJob {
            cycle,
            job: unit,
            nodes: (a % 64) as u32,
            kind: SchedKind::from_code((b % 4) as u8).unwrap(),
        },
        13 => Event::FaultEdge {
            cycle,
            unit,
            domain: if flag {
                FaultDomain::Sensor
            } else {
                FaultDomain::Actuator
            },
            active: flag,
        },
        14 => Event::CycleEnd {
            cycle,
            budget_slack_w: f,
            caps_changed: unit,
            queue_depth: (b % 1000) as u32,
        },
        15 => Event::Provision {
            cycle,
            kind: ProvisionKind::from_code((b % 2) as u8).unwrap(),
            nodes: (a % 64) as u32,
            active_nodes: (b % 64) as u32,
            utilization: f,
        },
        _ => Event::RequestMilestone {
            cycle,
            served: a,
            slo_ok: b,
            backlog: a % 10_000,
        },
    }
}

fn events_from(parts: &[(u8, u64, u64, f64, u8, bool)]) -> Vec<Event> {
    parts
        .iter()
        .map(|&(tag, a, b, x, sel, flag)| build_event(tag, a, b, x, sel, flag))
        .collect()
}

proptest! {
    /// Arbitrary event sequences round-trip bit-exactly. Equality is
    /// checked on the re-encoded bytes, which compares f64 payloads by
    /// bits and therefore holds for NaN too.
    #[test]
    fn roundtrip_arbitrary_sequences(
        parts in prop::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), -1e9f64..1e9, any::<u8>(), any::<bool>()),
            0..300,
        ),
        dropped in any::<u64>(),
    ) {
        let events = events_from(&parts);
        let bytes = encode(&events, dropped);
        let trace = decode(&bytes).map_err(|e| e.to_string())?;
        prop_assert_eq!(trace.events.len(), events.len());
        prop_assert_eq!(trace.dropped, dropped);
        // Bit-exact comparison through re-encoding.
        prop_assert_eq!(encode(&trace.events, trace.dropped), bytes);
    }

    /// Every strict prefix of a valid trace fails to decode with a clean
    /// error — never a panic, never a silent partial result.
    #[test]
    fn truncated_decode_is_a_clean_error(
        parts in prop::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), -1e6f64..1e6, any::<u8>(), any::<bool>()),
            1..60,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        let events = events_from(&parts);
        let bytes = encode(&events, 7);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(
            decode(&bytes[..cut]).is_err(),
            "decoding a {cut}-byte prefix of a {}-byte trace must fail",
            bytes.len()
        );
    }

    /// Flipping any single byte breaks the checksum (or a structural
    /// check); a corrupted trace can never decode successfully.
    #[test]
    fn single_byte_corruption_is_detected(
        parts in prop::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), -1e6f64..1e6, any::<u8>(), any::<bool>()),
            1..40,
        ),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let events = events_from(&parts);
        let mut bytes = encode(&events, 0);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        prop_assert!(
            decode(&bytes).is_err(),
            "flipping byte {pos} by {flip:#04x} went undetected"
        );
    }

    /// Segment frames round-trip bit-exactly, including NaN / infinite
    /// float payloads (compared through re-encoding, i.e. by bits).
    #[test]
    fn segment_roundtrip_arbitrary_sequences(
        parts in prop::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), -1e9f64..1e9, any::<u8>(), any::<bool>()),
            0..200,
        ),
    ) {
        let events = events_from(&parts);
        let payload = encode(&events, 0);
        let frame = frame_segment(&payload);
        let seg = decode_segment(&frame).map_err(|e| e.to_string())?;
        prop_assert_eq!(seg.events.len(), events.len());
        prop_assert_eq!(encode(&seg.events, seg.dropped), payload);
    }

    /// A crash-truncated tail segment — any strict prefix of a valid
    /// frame — decodes to a clean `Err`, never a panic or partial result.
    #[test]
    fn truncated_tail_segment_is_a_clean_error(
        parts in prop::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), -1e6f64..1e6, any::<u8>(), any::<bool>()),
            1..60,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        let events = events_from(&parts);
        let frame = frame_segment(&encode(&events, 0));
        let cut = ((frame.len() - 1) as f64 * cut_frac) as usize;
        let err = decode_segment(&frame[..cut]).expect_err("prefix must not decode");
        prop_assert!(!err.is_empty());
    }

    /// The ring keeps the newest `capacity` events in push order and counts
    /// exactly the overflowed ones in `dropped`.
    #[test]
    fn ring_overflow_drops_oldest_and_counts(
        capacity in 1usize..48,
        count in 0usize..200,
    ) {
        let ring = EventRing::new(capacity);
        for i in 0..count {
            ring.push(Event::Restored { cycle: i as u64 });
        }
        prop_assert_eq!(ring.len(), count.min(capacity));
        prop_assert_eq!(ring.dropped(), count.saturating_sub(capacity) as u64);
        let snapshot = ring.snapshot();
        let first_kept = count.saturating_sub(capacity);
        for (k, ev) in snapshot.iter().enumerate() {
            prop_assert_eq!(*ev, Event::Restored { cycle: (first_kept + k) as u64 });
        }
    }
}
