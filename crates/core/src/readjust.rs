//! The cap-readjusting module (paper Algs. 3 and 4).
//!
//! Runs after the stateless module and refines its temporary allocation
//! using the priorities:
//!
//! * **Restore** (Alg. 3): if *no* unit is consuming meaningfully against
//!   the constant cap, every cap snaps back to the constant cap — "such
//!   restoration makes sure there is headroom for any unit's incoming
//!   tasks".
//! * **Readjust** (Alg. 4):
//!   * leftover budget is assigned to high-priority units with weights
//!     inversely proportional to their current caps ("units with lower caps
//!     currently will get allocated more additional budget");
//!   * with no leftover budget, the caps of all high-priority units are
//!     **equalized** at their mean — forcing "a relatively high
//!     instantaneous fairness" and repairing the stateless module's
//!     random-order inequities. Low-priority units are untouched, and since
//!     they cannot have gained budget, the equalized cap is never below the
//!     constant cap — the lower-bound guarantee.

use crate::budget::{
    debug_assert_budget, distribute_weighted_into, DistributeScratch, BUDGET_EPSILON,
};
use crate::manager::UnitLimits;
use dps_sim_core::units::Watts;

/// Reusable buffers for [`readjust`] so the per-cycle pass allocates
/// nothing in steady state. One instance lives in the manager and is
/// threaded through every cycle.
#[derive(Debug, Clone, Default)]
pub struct ReadjustScratch {
    high: Vec<usize>,
    weights: Vec<f64>,
    before: Vec<f64>,
    distribute: DistributeScratch,
}

/// Alg. 3: restores every cap to `initial_cap` when no unit's power exceeds
/// `initial_cap * restore_threshold`. Returns whether restoration happened.
pub fn restore(
    measured: &[Watts],
    caps: &mut [Watts],
    changed: &mut [bool],
    initial_cap: Watts,
    restore_threshold: f64,
) -> bool {
    let busy = measured
        .iter()
        .any(|&p| p > initial_cap * restore_threshold);
    if busy {
        return false;
    }
    for (cap, flag) in caps.iter_mut().zip(changed.iter_mut()) {
        if (*cap - initial_cap).abs() > BUDGET_EPSILON {
            *cap = initial_cap;
            *flag = true;
        }
    }
    true
}

/// How one [`readjust`] pass resolved — the per-cycle decision record the
/// observability layer traces (`dps-obs`'s `Readjusted` event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadjustOutcome {
    /// Alg. 3 restored this cycle, so Alg. 4 never ran (line 3).
    Skipped,
    /// No unit is high priority; there is nothing to feed.
    NoHighPriority,
    /// Leftover budget was distributed to the high-priority units.
    Distributed {
        /// Watts of leftover budget spent.
        spent: Watts,
    },
    /// High-priority caps were equalized at their (clamped) mean.
    Equalized {
        /// The cap every high-priority unit now holds.
        at: Watts,
    },
}

/// Alg. 4: spends leftover budget on high-priority units (weights ∝ 1/cap)
/// or, when what is left is negligible (below `equalize_below` Watts),
/// equalizes the high-priority caps at their mean.
///
/// `restored` short-circuits the whole pass (Alg. 4 line 3).
#[allow(clippy::too_many_arguments)] // mirrors Alg. 4's parameter list plus the reusable scratch
pub fn readjust(
    caps: &mut [Watts],
    changed: &mut [bool],
    priorities: &[bool],
    total_budget: Watts,
    limits: UnitLimits,
    restored: bool,
    equalize_below: Watts,
    scratch: &mut ReadjustScratch,
) -> ReadjustOutcome {
    if restored {
        return ReadjustOutcome::Skipped;
    }
    // Non-finite caps would poison the budget sums and the 1/cap weights
    // below; the manager repairs them before any module runs (see
    // `DpsManager::assign_caps`), so by this point they must all be finite.
    debug_assert!(
        caps.iter().all(|c| c.is_finite()),
        "readjust fed non-finite caps: {caps:?}"
    );
    let ReadjustScratch {
        high,
        weights,
        before,
        distribute,
    } = scratch;
    high.clear();
    high.extend((0..caps.len()).filter(|&u| priorities[u]));
    if high.is_empty() {
        return ReadjustOutcome::NoHighPriority;
    }

    let avail = total_budget - caps.iter().sum::<f64>();
    let outcome;
    if avail > equalize_below.max(BUDGET_EPSILON) {
        // Lower-capped units weighted heavier: weight ∝ 1/cap (caps have a
        // positive floor at min_cap so the weights are finite).
        weights.clear();
        weights.extend(high.iter().map(|&u| 1.0 / caps[u].max(1.0)));
        before.clear();
        before.extend(high.iter().map(|&u| caps[u]));
        distribute_weighted_into(caps, high, weights, avail, limits.max_cap, distribute);
        for (k, &u) in high.iter().enumerate() {
            if (caps[u] - before[k]).abs() > BUDGET_EPSILON {
                changed[u] = true;
            }
        }
        outcome = ReadjustOutcome::Distributed { spent: avail };
    } else {
        // Equalize all high-priority caps at their mean (Alg. 4 l.19-29).
        let budget_high: f64 = high.iter().map(|&u| caps[u]).sum();
        let equal = limits.clamp(budget_high / high.len() as f64);
        for &u in high.iter() {
            if (caps[u] - equal).abs() > BUDGET_EPSILON {
                caps[u] = equal;
                changed[u] = true;
            }
        }
        outcome = ReadjustOutcome::Equalized { at: equal };
    }
    debug_assert_budget(caps, total_budget, limits);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: UnitLimits = UnitLimits {
        min_cap: 40.0,
        max_cap: 165.0,
    };
    const INITIAL: Watts = 110.0;

    #[test]
    fn restore_when_all_quiet() {
        let measured = [30.0, 50.0, 20.0];
        let mut caps = [165.0, 45.0, 120.0];
        let mut changed = [false; 3];
        let restored = restore(&measured, &mut caps, &mut changed, INITIAL, 0.90);
        assert!(restored);
        assert_eq!(caps, [INITIAL; 3]);
        assert_eq!(changed, [true, true, true]);
    }

    #[test]
    fn no_restore_when_any_unit_busy() {
        let measured = [30.0, 105.0, 20.0]; // 105 > 110*0.90
        let mut caps = [165.0, 45.0, 120.0];
        let mut changed = [false; 3];
        assert!(!restore(&measured, &mut caps, &mut changed, INITIAL, 0.90));
        assert_eq!(caps, [165.0, 45.0, 120.0]);
        assert_eq!(changed, [false; 3]);
    }

    #[test]
    fn restore_skips_already_initial_caps() {
        let measured = [10.0, 10.0];
        let mut caps = [INITIAL, 80.0];
        let mut changed = [false; 2];
        restore(&measured, &mut caps, &mut changed, INITIAL, 0.90);
        assert!(!changed[0], "unchanged cap not flagged");
        assert!(changed[1]);
    }

    #[test]
    fn readjust_skipped_after_restore() {
        let mut caps = [110.0, 110.0];
        let mut changed = [false; 2];
        readjust(
            &mut caps,
            &mut changed,
            &[true, true],
            220.0,
            LIMITS,
            true,
            0.0,
            &mut ReadjustScratch::default(),
        );
        assert_eq!(caps, [110.0, 110.0]);
    }

    #[test]
    fn leftover_budget_flows_to_high_priority() {
        // Budget 330, caps sum 250 → 80 leftover; only unit 1 is high.
        let mut caps = [110.0, 80.0, 60.0];
        let mut changed = [false; 3];
        readjust(
            &mut caps,
            &mut changed,
            &[false, true, false],
            330.0,
            LIMITS,
            false,
            0.0,
            &mut ReadjustScratch::default(),
        );
        assert!(
            (caps[1] - 160.0).abs() < 1e-9,
            "unit 1 gets all 80: {}",
            caps[1]
        );
        assert_eq!(caps[0], 110.0);
        assert_eq!(caps[2], 60.0);
        assert_eq!(changed, [false, true, false]);
    }

    #[test]
    fn lower_caps_weighted_heavier() {
        // Two high-priority units at 50 and 100 W; 90 W leftover.
        // Weights 1/50 : 1/100 = 2 : 1 → grants 60 and 30.
        let mut caps = [50.0, 100.0];
        let mut changed = [false; 2];
        readjust(
            &mut caps,
            &mut changed,
            &[true, true],
            240.0,
            LIMITS,
            false,
            0.0,
            &mut ReadjustScratch::default(),
        );
        assert!((caps[0] - 110.0).abs() < 1e-9, "{:?}", caps);
        assert!((caps[1] - 130.0).abs() < 1e-9, "{:?}", caps);
    }

    #[test]
    fn leftover_respects_tdp_with_spill() {
        // Unit 0 nearly saturated: most of the leftover spills to unit 1.
        let mut caps = [160.0, 60.0];
        let mut changed = [false; 2];
        readjust(
            &mut caps,
            &mut changed,
            &[true, true],
            280.0,
            LIMITS,
            false,
            0.0,
            &mut ReadjustScratch::default(),
        );
        assert!(caps[0] <= 165.0 + 1e-9);
        let sum: f64 = caps.iter().sum();
        assert!((sum - 280.0).abs() < 1e-6, "full budget spent: {sum}");
    }

    #[test]
    fn exhausted_budget_equalizes_high_priority() {
        // No leftover: the two high-priority units (150, 70) equalize at 110;
        // the low-priority unit keeps its cap.
        let mut caps = [150.0, 70.0, 110.0];
        let mut changed = [false; 3];
        readjust(
            &mut caps,
            &mut changed,
            &[true, true, false],
            330.0,
            LIMITS,
            false,
            0.0,
            &mut ReadjustScratch::default(),
        );
        assert_eq!(caps, [110.0, 110.0, 110.0]);
        assert_eq!(changed, [true, true, false]);
    }

    #[test]
    fn equalization_preserves_budget() {
        let mut caps = [165.0, 45.0, 110.0, 120.0];
        let total: f64 = caps.iter().sum();
        let mut changed = [false; 4];
        readjust(
            &mut caps,
            &mut changed,
            &[true, true, false, true],
            total,
            LIMITS,
            false,
            0.0,
            &mut ReadjustScratch::default(),
        );
        let new_total: f64 = caps.iter().sum();
        assert!((new_total - total).abs() < 1e-6);
        // (165+45+120)/3 = 110.
        assert_eq!(caps[0], 110.0);
        assert_eq!(caps[1], 110.0);
        assert_eq!(caps[3], 110.0);
    }

    #[test]
    fn lower_bound_guarantee_after_equalization() {
        // Lemma from §4.3.4: when the budget is exhausted, low-priority
        // units hold at most the constant cap each (they cannot have gained
        // budget), so the equalized high-priority cap is ≥ the constant cap.
        let n = 4;
        let budget = 440.0; // constant cap 110
                            // Worst case consistent with the invariant: low units at 110.
        let mut caps = [110.0, 110.0, 150.0, 70.0];
        let mut changed = [false; 4];
        readjust(
            &mut caps,
            &mut changed,
            &[false, false, true, true],
            budget,
            LIMITS,
            false,
            0.0,
            &mut ReadjustScratch::default(),
        );
        let constant = budget / n as f64;
        assert!(caps[2] >= constant - 1e-9);
        assert!(caps[3] >= constant - 1e-9);
    }

    #[test]
    fn negligible_leftover_triggers_equalization() {
        // 4 W leftover on a 330 W budget with a 10 W slack: treated as
        // exhausted → equalize instead of dripping Watts into the imbalance.
        let mut caps = [160.0, 60.0, 106.0];
        let mut changed = [false; 3];
        readjust(
            &mut caps,
            &mut changed,
            &[true, true, false],
            330.0,
            LIMITS,
            false,
            10.0,
            &mut ReadjustScratch::default(),
        );
        assert_eq!(caps[0], 110.0);
        assert_eq!(caps[1], 110.0);
        assert_eq!(caps[2], 106.0);
    }

    #[test]
    fn leftover_above_slack_still_distributed() {
        let mut caps = [100.0, 100.0];
        let mut changed = [false; 2];
        readjust(
            &mut caps,
            &mut changed,
            &[true, true],
            240.0,
            LIMITS,
            false,
            10.0,
            &mut ReadjustScratch::default(),
        );
        let sum: f64 = caps.iter().sum();
        assert!((sum - 240.0).abs() < 1e-6, "40 W leftover spent: {sum}");
    }

    #[test]
    fn no_high_priority_units_noop() {
        let mut caps = [80.0, 90.0];
        let mut changed = [false; 2];
        let outcome = readjust(
            &mut caps,
            &mut changed,
            &[false, false],
            300.0,
            LIMITS,
            false,
            0.0,
            &mut ReadjustScratch::default(),
        );
        assert_eq!(caps, [80.0, 90.0]);
        assert_eq!(outcome, ReadjustOutcome::NoHighPriority);
    }

    #[test]
    fn outcome_reports_each_branch() {
        let mut scratch = ReadjustScratch::default();
        // Restored → skipped.
        let mut caps = [110.0, 110.0];
        let mut changed = [false; 2];
        assert_eq!(
            readjust(
                &mut caps,
                &mut changed,
                &[true, true],
                220.0,
                LIMITS,
                true,
                0.0,
                &mut scratch,
            ),
            ReadjustOutcome::Skipped
        );
        // Leftover → distributed, reporting the Watts spent.
        let mut caps = [110.0, 80.0, 60.0];
        let mut changed = [false; 3];
        assert_eq!(
            readjust(
                &mut caps,
                &mut changed,
                &[false, true, false],
                330.0,
                LIMITS,
                false,
                0.0,
                &mut scratch,
            ),
            ReadjustOutcome::Distributed { spent: 80.0 }
        );
        // Exhausted → equalized, reporting the common cap.
        let mut caps = [150.0, 70.0, 110.0];
        let mut changed = [false; 3];
        assert_eq!(
            readjust(
                &mut caps,
                &mut changed,
                &[true, true, false],
                330.0,
                LIMITS,
                false,
                0.0,
                &mut scratch,
            ),
            ReadjustOutcome::Equalized { at: 110.0 }
        );
    }
}
