//! Struct-of-arrays storage for the manager's per-unit dynamic state.
//!
//! [`UnitState`] keeps one unit's Kalman filter, history rings and rolling
//! statistics behind several heap allocations; a `Vec<UnitState>` therefore
//! scatters the hot observe/classify pass across the heap, and at 10⁵–10⁶
//! units the pass is bound by cache misses, not arithmetic. [`UnitColumns`]
//! stores the same state as parallel flat columns — Kalman scalars, one
//! flat ring arena for the power/duration histories, rolling-moment
//! scalars, the cached derivative and the classification flags — so a
//! decision cycle walks contiguous memory and the `parallel` feature can
//! shard the store at unit boundaries without locks ([`ColsChunk`]).
//!
//! Every per-unit operation replicates the corresponding [`UnitState`]
//! arithmetic *operation for operation* (same floating-point evaluation
//! order), so decisions are bit-identical to the array-of-structs layout;
//! the equivalence tests and the committed pre-refactor golden traces and
//! checkpoint fixtures pin this. [`UnitColumns::materialize`] reconstructs
//! an owned [`UnitState`] for the introspection API, and the checkpoint
//! helpers read/write the exact v2 per-unit wire format, so snapshots
//! written by the per-unit-struct build restore unchanged.

use crate::checkpoint::{ByteReader, ByteWriter};
use crate::config::{DpsConfig, StatsMode};
use crate::history::UnitState;
use crate::priority::{classify_dynamics, Dynamics};
use dps_sim_core::signal;
use dps_sim_core::units::{Seconds, Watts};

/// Physical index of logical position `i` (oldest = 0) in a flat ring of
/// capacity `cap` holding `len` values whose oldest sample sits at `head`.
/// Matches [`dps_sim_core::ring::RingBuffer`]: `head` stays 0 until the
/// first wrap, so before that physical == logical.
#[inline(always)]
pub(crate) fn ring_phys(cap: usize, len: usize, head: usize, i: usize) -> usize {
    if len < cap {
        i
    } else {
        // head < cap and i < len == cap, so one wrap suffices — a
        // conditional subtract, not an integer division, on the hot path.
        let idx = head + i;
        if idx >= cap {
            idx - cap
        } else {
            idx
        }
    }
}

/// The column store: one flat `Vec` per [`UnitState`] field, plus the
/// config scalars the per-unit math needs (frozen at construction, exactly
/// as `UnitState` freezes them).
#[derive(Debug, Clone)]
pub(crate) struct UnitColumns {
    n: usize,
    /// History window capacity (`DpsConfig::history_len`).
    h: usize,
    mode: StatsMode,
    kalman_q: f64,
    kalman_r: f64,
    peak_prominence: f64,
    deriv_window: usize,
    /// `RollingMoments` resync period: `(4 * h).max(8)`.
    resync_every: u32,
    // Kalman filter state (`KalmanFilter`): estimate present / value /
    // error variance / last gain.
    k_has: Vec<bool>,
    k_est: Vec<f64>,
    k_var: Vec<f64>,
    k_gain: Vec<f64>,
    // History rings, `n × h` flat arenas. Both rings always advance in
    // lockstep, so one len/head pair serves both.
    hist_power: Vec<f64>,
    hist_dur: Vec<f64>,
    hist_len: Vec<u32>,
    hist_head: Vec<u32>,
    // Rolling moments (`RollingMoments`): Σ(x-offset), Σ(x-offset)²,
    // offset, pushes until exact resync. The length column is `hist_len`.
    m_sum: Vec<f64>,
    m_sumsq: Vec<f64>,
    m_offset: Vec<f64>,
    m_until: Vec<u32>,
    // Prominent-peak run-length encoding (`PeakTracker`), flattened: run
    // values and multiplicities live in `n × 2h` arenas with each unit's
    // live runs *dense* at `[head, head + len)` (a window of `h` samples
    // has at most `h` runs). Front pops advance `head`; appends write at
    // `head + len` and compact back to the arena start only when they
    // would run off the end — amortized O(1), and the recount scan gets a
    // contiguous slice with no wrap arithmetic.
    pk_val: Vec<f64>,
    pk_mult: Vec<u32>,
    pk_len: Vec<u32>,
    pk_head: Vec<u32>,
    /// Cached prominent-peak count per unit (`PeakTracker::count`).
    pk_count: Vec<u32>,
    // Cached windowed derivative (`Option<f64>` split into value + flag so
    // the hot columns stay POD).
    deriv: Vec<f64>,
    deriv_ok: Vec<bool>,
    // Classification flags.
    high_freq: Vec<bool>,
    priority: Vec<bool>,
}

impl UnitColumns {
    /// Fresh columns for `n` units, freezing the same config scalars
    /// [`UnitState::new`] freezes.
    pub(crate) fn new(n: usize, config: &DpsConfig) -> Self {
        let h = config.history_len;
        let resync_every = (4 * h).max(8) as u32;
        Self {
            n,
            h,
            mode: config.stats_mode,
            kalman_q: config.kalman_q,
            kalman_r: config.kalman_r,
            peak_prominence: config.peak_prominence,
            deriv_window: config.deriv_window,
            resync_every,
            k_has: vec![false; n],
            k_est: vec![0.0; n],
            k_var: vec![0.0; n],
            k_gain: vec![0.0; n],
            hist_power: vec![0.0; n * h],
            hist_dur: vec![0.0; n * h],
            hist_len: vec![0; n],
            hist_head: vec![0; n],
            m_sum: vec![0.0; n],
            m_sumsq: vec![0.0; n],
            m_offset: vec![0.0; n],
            m_until: vec![resync_every; n],
            pk_val: vec![0.0; n * 2 * h],
            pk_mult: vec![0; n * 2 * h],
            pk_len: vec![0; n],
            pk_head: vec![0; n],
            pk_count: vec![0; n],
            deriv: vec![0.0; n],
            deriv_ok: vec![false; n],
            high_freq: vec![false; n],
            priority: vec![false; n],
        }
    }

    /// Number of units.
    pub(crate) fn len(&self) -> usize {
        self.n
    }

    /// The priority column (what the manager copies into its flag buffer).
    pub(crate) fn priorities(&self) -> &[bool] {
        &self.priority
    }

    /// Overwrites one unit's priority (guard isolation surrenders it).
    pub(crate) fn set_priority(&mut self, u: usize, v: bool) {
        self.priority[u] = v;
    }

    /// Most recent power estimate (0 before any observation), replicating
    /// [`UnitState::latest_estimate`].
    pub(crate) fn latest_estimate(&self, u: usize) -> Watts {
        let len = self.hist_len[u] as usize;
        if len == 0 {
            return 0.0;
        }
        let head = self.hist_head[u] as usize;
        self.hist_power[u * self.h + ring_phys(self.h, len, head, len - 1)]
    }

    /// Clears one unit back to construction state, replicating
    /// [`UnitState::reset`] plus the filter reset.
    pub(crate) fn reset_unit(&mut self, u: usize) {
        self.k_has[u] = false;
        self.k_est[u] = 0.0;
        self.k_var[u] = 0.0;
        self.k_gain[u] = 0.0;
        self.hist_len[u] = 0;
        self.hist_head[u] = 0;
        self.m_sum[u] = 0.0;
        self.m_sumsq[u] = 0.0;
        self.m_offset[u] = 0.0;
        self.m_until[u] = self.resync_every;
        self.pk_len[u] = 0;
        self.pk_head[u] = 0;
        self.pk_count[u] = 0;
        self.deriv[u] = 0.0;
        self.deriv_ok[u] = false;
        self.high_freq[u] = false;
        self.priority[u] = false;
    }

    /// Clears every unit back to construction state.
    pub(crate) fn reset_all(&mut self) {
        for u in 0..self.n {
            self.reset_unit(u);
        }
    }

    /// A mutable view over all units — the entry point for the fused
    /// observe/classify pass (and, under `parallel`, for splitting).
    pub(crate) fn chunk_mut(&mut self) -> ColsChunk<'_> {
        ColsChunk {
            h: self.h,
            mode: self.mode,
            kalman_q: self.kalman_q,
            kalman_r: self.kalman_r,
            peak_prominence: self.peak_prominence,
            deriv_window: self.deriv_window,
            resync_every: self.resync_every,
            k_has: &mut self.k_has,
            k_est: &mut self.k_est,
            k_var: &mut self.k_var,
            k_gain: &mut self.k_gain,
            hist_power: &mut self.hist_power,
            hist_dur: &mut self.hist_dur,
            hist_len: &mut self.hist_len,
            hist_head: &mut self.hist_head,
            m_sum: &mut self.m_sum,
            m_sumsq: &mut self.m_sumsq,
            m_offset: &mut self.m_offset,
            m_until: &mut self.m_until,
            pk_val: &mut self.pk_val,
            pk_mult: &mut self.pk_mult,
            pk_len: &mut self.pk_len,
            pk_head: &mut self.pk_head,
            pk_count: &mut self.pk_count,
            deriv: &mut self.deriv,
            deriv_ok: &mut self.deriv_ok,
            high_freq: &mut self.high_freq,
            priority: &mut self.priority,
        }
    }

    /// Reconstructs an owned [`UnitState`] for the introspection API, via
    /// the same restore path a checkpoint uses (write the histories, rebuild
    /// the derived statistics, then overlay the path-dependent accumulator
    /// internals in incremental mode).
    pub(crate) fn materialize(&self, u: usize, config: &DpsConfig) -> UnitState {
        let mut s = UnitState::new(config);
        s.filter
            .restore_state(
                self.k_has[u].then_some(self.k_est[u]),
                self.k_var[u],
                self.k_gain[u],
            )
            .expect("column Kalman state is always a valid filter state");
        let base = u * self.h;
        let len = self.hist_len[u] as usize;
        let head = self.hist_head[u] as usize;
        for i in 0..len {
            let p = base + ring_phys(self.h, len, head, i);
            s.power_history.push(self.hist_power[p]);
            s.duration_history.push(self.hist_dur[p]);
        }
        s.high_freq = self.high_freq[u];
        s.priority = self.priority[u];
        s.rebuild_stats();
        if self.mode == StatsMode::Incremental {
            s.restore_moments(
                self.m_sum[u],
                self.m_sumsq[u],
                self.m_offset[u],
                self.m_until[u],
            );
        }
        s
    }

    /// Writes one unit in the v2 per-unit checkpoint wire format —
    /// byte-identical to what the per-unit-struct manager emitted.
    pub(crate) fn encode_unit(&self, u: usize, w: &mut ByteWriter) {
        w.put_bool(self.k_has[u]);
        w.put_f64(if self.k_has[u] { self.k_est[u] } else { 0.0 });
        w.put_f64(self.k_var[u]);
        w.put_f64(self.k_gain[u]);
        let base = u * self.h;
        let len = self.hist_len[u] as usize;
        let head = self.hist_head[u] as usize;
        // Same bytes as `put_f64_slice` over the logically-ordered window.
        w.put_usize(len);
        for i in 0..len {
            w.put_f64(self.hist_power[base + ring_phys(self.h, len, head, i)]);
        }
        w.put_usize(len);
        for i in 0..len {
            w.put_f64(self.hist_dur[base + ring_phys(self.h, len, head, i)]);
        }
        w.put_bool(self.high_freq[u]);
        w.put_bool(self.priority[u]);
        w.put_f64(self.m_sum[u]);
        w.put_f64(self.m_sumsq[u]);
        w.put_f64(self.m_offset[u]);
        w.put_u32(self.m_until[u]);
    }

    /// Reads one unit from the v2 per-unit wire format, with the same
    /// validation the `KalmanFilter`/ring restore path applied.
    /// `snapshot_incremental` is the snapshot's recorded stats mode; the
    /// accumulator internals are only adopted when both the snapshot and
    /// this store are incremental, otherwise the exact resync performed
    /// here stands (matching `UnitState::rebuild_stats` + conditional
    /// `restore_moments`).
    pub(crate) fn decode_unit(
        &mut self,
        u: usize,
        r: &mut ByteReader<'_>,
        snapshot_incremental: bool,
    ) -> Result<(), String> {
        let has_est = r.get_bool()?;
        let est = r.get_f64()?;
        let variance = r.get_f64()?;
        let gain = r.get_f64()?;
        if has_est && !est.is_finite() {
            return Err(format!("estimate must be finite, got {est}"));
        }
        if !variance.is_finite() || variance < 0.0 {
            return Err(format!(
                "error variance must be finite and non-negative, got {variance}"
            ));
        }
        if !gain.is_finite() || !(0.0..=1.0).contains(&gain) {
            return Err(format!("gain must lie in [0, 1], got {gain}"));
        }
        let powers = r.get_f64_vec(self.h)?;
        let durations = r.get_f64_vec(self.h)?;
        if powers.len() != durations.len() {
            return Err(format!(
                "history lengths diverge: {} powers, {} durations",
                powers.len(),
                durations.len()
            ));
        }
        self.k_has[u] = has_est;
        self.k_est[u] = if has_est { est } else { 0.0 };
        self.k_var[u] = variance;
        self.k_gain[u] = gain;
        let base = u * self.h;
        self.hist_head[u] = 0;
        self.hist_len[u] = powers.len() as u32;
        self.hist_power[base..base + powers.len()].copy_from_slice(&powers);
        self.hist_dur[base..base + durations.len()].copy_from_slice(&durations);
        self.high_freq[u] = r.get_bool()?;
        self.priority[u] = r.get_bool()?;
        let m_sum = r.get_f64()?;
        let m_sumsq = r.get_f64()?;
        let m_offset = r.get_f64()?;
        let m_until = r.get_u32()?;
        self.chunk_mut().rebuild_stats(u);
        if snapshot_incremental && self.mode == StatsMode::Incremental {
            self.m_sum[u] = m_sum;
            self.m_sumsq[u] = m_sumsq;
            self.m_offset[u] = m_offset;
            self.m_until[u] = m_until.clamp(1, self.resync_every);
        }
        Ok(())
    }
}

/// A mutable borrow of a contiguous unit range of [`UnitColumns`]. Unit
/// indices are chunk-local; [`ColsChunk::split_at`] shards the store for
/// the scoped worker threads of the `parallel` feature.
pub(crate) struct ColsChunk<'a> {
    h: usize,
    mode: StatsMode,
    kalman_q: f64,
    kalman_r: f64,
    peak_prominence: f64,
    deriv_window: usize,
    resync_every: u32,
    k_has: &'a mut [bool],
    k_est: &'a mut [f64],
    k_var: &'a mut [f64],
    k_gain: &'a mut [f64],
    hist_power: &'a mut [f64],
    hist_dur: &'a mut [f64],
    hist_len: &'a mut [u32],
    hist_head: &'a mut [u32],
    m_sum: &'a mut [f64],
    m_sumsq: &'a mut [f64],
    m_offset: &'a mut [f64],
    m_until: &'a mut [u32],
    pk_val: &'a mut [f64],
    pk_mult: &'a mut [u32],
    pk_len: &'a mut [u32],
    pk_head: &'a mut [u32],
    pk_count: &'a mut [u32],
    deriv: &'a mut [f64],
    deriv_ok: &'a mut [bool],
    high_freq: &'a mut [bool],
    priority: &'a mut [bool],
}

impl<'a> ColsChunk<'a> {
    /// Number of units in this chunk.
    #[cfg(feature = "parallel")]
    pub(crate) fn units(&self) -> usize {
        self.k_has.len()
    }

    /// Splits the chunk at `units`, every column included (histories at
    /// `units * h`).
    #[cfg(feature = "parallel")]
    pub(crate) fn split_at(self, units: usize) -> (ColsChunk<'a>, ColsChunk<'a>) {
        let (k_has_a, k_has_b) = self.k_has.split_at_mut(units);
        let (k_est_a, k_est_b) = self.k_est.split_at_mut(units);
        let (k_var_a, k_var_b) = self.k_var.split_at_mut(units);
        let (k_gain_a, k_gain_b) = self.k_gain.split_at_mut(units);
        let (hp_a, hp_b) = self.hist_power.split_at_mut(units * self.h);
        let (hd_a, hd_b) = self.hist_dur.split_at_mut(units * self.h);
        let (hl_a, hl_b) = self.hist_len.split_at_mut(units);
        let (hh_a, hh_b) = self.hist_head.split_at_mut(units);
        let (ms_a, ms_b) = self.m_sum.split_at_mut(units);
        let (mq_a, mq_b) = self.m_sumsq.split_at_mut(units);
        let (mo_a, mo_b) = self.m_offset.split_at_mut(units);
        let (mu_a, mu_b) = self.m_until.split_at_mut(units);
        let (pv_a, pv_b) = self.pk_val.split_at_mut(units * 2 * self.h);
        let (pm_a, pm_b) = self.pk_mult.split_at_mut(units * 2 * self.h);
        let (pl_a, pl_b) = self.pk_len.split_at_mut(units);
        let (ph_a, ph_b) = self.pk_head.split_at_mut(units);
        let (pc_a, pc_b) = self.pk_count.split_at_mut(units);
        let (dv_a, dv_b) = self.deriv.split_at_mut(units);
        let (dk_a, dk_b) = self.deriv_ok.split_at_mut(units);
        let (hf_a, hf_b) = self.high_freq.split_at_mut(units);
        let (pr_a, pr_b) = self.priority.split_at_mut(units);
        (
            ColsChunk {
                h: self.h,
                mode: self.mode,
                kalman_q: self.kalman_q,
                kalman_r: self.kalman_r,
                peak_prominence: self.peak_prominence,
                deriv_window: self.deriv_window,
                resync_every: self.resync_every,
                k_has: k_has_a,
                k_est: k_est_a,
                k_var: k_var_a,
                k_gain: k_gain_a,
                hist_power: hp_a,
                hist_dur: hd_a,
                hist_len: hl_a,
                hist_head: hh_a,
                m_sum: ms_a,
                m_sumsq: mq_a,
                m_offset: mo_a,
                m_until: mu_a,
                pk_val: pv_a,
                pk_mult: pm_a,
                pk_len: pl_a,
                pk_head: ph_a,
                pk_count: pc_a,
                deriv: dv_a,
                deriv_ok: dk_a,
                high_freq: hf_a,
                priority: pr_a,
            },
            ColsChunk {
                h: self.h,
                mode: self.mode,
                kalman_q: self.kalman_q,
                kalman_r: self.kalman_r,
                peak_prominence: self.peak_prominence,
                deriv_window: self.deriv_window,
                resync_every: self.resync_every,
                k_has: k_has_b,
                k_est: k_est_b,
                k_var: k_var_b,
                k_gain: k_gain_b,
                hist_power: hp_b,
                hist_dur: hd_b,
                hist_len: hl_b,
                hist_head: hh_b,
                m_sum: ms_b,
                m_sumsq: mq_b,
                m_offset: mo_b,
                m_until: mu_b,
                pk_val: pv_b,
                pk_mult: pm_b,
                pk_len: pl_b,
                pk_head: ph_b,
                pk_count: pc_b,
                deriv: dv_b,
                deriv_ok: dk_b,
                high_freq: hf_b,
                priority: pr_b,
            },
        )
    }

    #[inline(always)]
    fn hist_power_at(&self, u: usize, i: usize) -> f64 {
        let len = self.hist_len[u] as usize;
        let head = self.hist_head[u] as usize;
        self.hist_power[u * self.h + ring_phys(self.h, len, head, i)]
    }

    #[inline(always)]
    fn hist_dur_at(&self, u: usize, i: usize) -> f64 {
        let len = self.hist_len[u] as usize;
        let head = self.hist_head[u] as usize;
        self.hist_dur[u * self.h + ring_phys(self.h, len, head, i)]
    }

    /// [`UnitState::observe`]: Kalman-filter one raw measurement and append
    /// the estimate, with non-finite skip-and-hold.
    pub(crate) fn observe(&mut self, u: usize, measured: Watts, dt: Seconds) {
        if !measured.is_finite() {
            let held = self.latest_estimate(u);
            if self.hist_len[u] > 0 {
                self.record(u, held, dt);
            }
            return;
        }
        let estimate = self.kalman_update(u, measured);
        self.record(u, estimate, dt);
    }

    /// [`dps_sim_core::kalman::KalmanFilter::update`] for a finite `z`.
    #[inline]
    fn kalman_update(&mut self, u: usize, z: f64) -> f64 {
        if !self.k_has[u] {
            self.k_has[u] = true;
            self.k_est[u] = z;
            self.k_var[u] = self.kalman_r;
            self.k_gain[u] = 1.0;
            z
        } else {
            let p_prior = self.k_var[u] + self.kalman_q;
            let k = p_prior / (p_prior + self.kalman_r);
            let x_new = self.k_est[u] + k * (z - self.k_est[u]);
            self.k_var[u] = (1.0 - k) * p_prior;
            self.k_est[u] = x_new;
            self.k_gain[u] = k;
            x_new
        }
    }

    /// [`UnitState`]'s `record`: push both rings, keep the incremental
    /// statistics current.
    fn record(&mut self, u: usize, estimate: f64, dt: Seconds) {
        let evicted = self.push_history(u, estimate, dt);
        if self.mode == StatsMode::Incremental {
            self.moments_push(u, estimate, evicted);
            self.peaks_push(u, estimate, evicted);
            let d = self.compute_derivative(u);
            self.deriv_ok[u] = d.is_some();
            self.deriv[u] = d.unwrap_or(0.0);
        }
    }

    /// `PeakTracker::push` over the flat run arena: the evict shortens the
    /// front run (popping it if emptied), the added estimate extends or
    /// appends the back run, and the count is recomputed only when the
    /// run-*value* sequence changed (the count is a function of run values
    /// alone).
    fn peaks_push(&mut self, u: usize, added: f64, evicted: Option<f64>) {
        let base = u * 2 * self.h;
        let mut len = self.pk_len[u] as usize;
        let mut head = self.pk_head[u] as usize;
        let mut shape_changed = false;
        if evicted.is_some() && len > 0 {
            let front = base + head;
            self.pk_mult[front] -= 1;
            if self.pk_mult[front] == 0 {
                head += 1;
                self.pk_head[u] = head as u32;
                len -= 1;
                shape_changed = true;
            }
        }
        if len > 0 {
            let back = base + head + len - 1;
            if self.pk_val[back] == added {
                self.pk_mult[back] += 1;
                self.pk_len[u] = len as u32;
                if shape_changed {
                    self.pk_count[u] = self.peaks_recount(u);
                }
                return;
            }
        }
        if head + len == 2 * self.h {
            // Appending would run off the arena: slide the live runs back
            // to the start. Head advances at most once per push, so this
            // O(len) copy amortizes to O(1).
            self.pk_val[base..base + 2 * self.h].copy_within(head..head + len, 0);
            self.pk_mult[base..base + 2 * self.h].copy_within(head..head + len, 0);
            head = 0;
            self.pk_head[u] = 0;
        }
        let slot = base + head + len;
        self.pk_val[slot] = added;
        self.pk_mult[slot] = 1;
        self.pk_len[u] = (len + 1) as u32;
        self.pk_count[u] = self.peaks_recount(u);
    }

    /// `PeakTracker::recount` over the run arena, with a monotone early
    /// exit: a side's running minimum only decreases as its scan widens, so
    /// the moment it sits `peak_prominence` below the candidate that side
    /// is settled and the scan can stop (and a failed left side skips the
    /// right scan). The count is identical to the full scan — only the
    /// number of runs inspected changes.
    fn peaks_recount(&self, u: usize) -> u32 {
        let r = self.pk_len[u] as usize;
        if r < 3 {
            return 0;
        }
        let start = u * 2 * self.h + self.pk_head[u] as usize;
        let vals = &self.pk_val[start..start + r];
        let p = self.peak_prominence;
        let mut count = 0;
        // Roll prev/cur/next through the local-maximum scan so each run
        // value is fetched once, not three times.
        let mut prev = vals[0];
        let mut cur = vals[1];
        for i in 1..r - 1 {
            let next = vals[i + 1];
            let pv = cur;
            let is_max = prev < pv && next < pv;
            prev = cur;
            cur = next;
            if !is_max {
                continue;
            }
            // Prominence with a monotone early exit: a side's running
            // minimum only decreases as its scan widens, so the moment it
            // sits `p` below the candidate the side is settled (and a
            // failed left side skips the right scan). The count is
            // identical to the full scan — only runs inspected changes.
            let mut left_ok = false;
            let mut j = i;
            while j > 0 {
                j -= 1;
                let v = vals[j];
                if v > pv {
                    break;
                }
                if pv - v >= p {
                    left_ok = true;
                    break;
                }
            }
            if !left_ok {
                continue;
            }
            let mut j = i;
            while j + 1 < r {
                j += 1;
                let v = vals[j];
                if v > pv {
                    break;
                }
                if pv - v >= p {
                    count += 1;
                    break;
                }
            }
        }
        count
    }

    /// `PeakTracker::rebuild`: re-derive the run encoding from the window
    /// contents (oldest first, laid down head-0) and recount.
    fn peaks_rebuild(&mut self, u: usize) {
        let hbase = u * self.h;
        let pbase = u * 2 * self.h;
        let len = self.hist_len[u] as usize;
        let head = self.hist_head[u] as usize;
        let mut runs = 0usize;
        for i in 0..len {
            let v = self.hist_power[hbase + ring_phys(self.h, len, head, i)];
            if runs > 0 && self.pk_val[pbase + runs - 1] == v {
                self.pk_mult[pbase + runs - 1] += 1;
            } else {
                self.pk_val[pbase + runs] = v;
                self.pk_mult[pbase + runs] = 1;
                runs += 1;
            }
        }
        self.pk_head[u] = 0;
        self.pk_len[u] = runs as u32;
        self.pk_count[u] = self.peaks_recount(u);
    }

    /// Ring push for both histories (lockstep, shared len/head). Returns
    /// the evicted power value, exactly as `RingBuffer::push` does.
    fn push_history(&mut self, u: usize, power: f64, dt: f64) -> Option<f64> {
        let base = u * self.h;
        let len = self.hist_len[u] as usize;
        if len < self.h {
            self.hist_power[base + len] = power;
            self.hist_dur[base + len] = dt;
            self.hist_len[u] = (len + 1) as u32;
            None
        } else {
            let head = self.hist_head[u] as usize;
            let evicted = self.hist_power[base + head];
            self.hist_power[base + head] = power;
            self.hist_dur[base + head] = dt;
            let next = head + 1;
            self.hist_head[u] = if next == self.h { 0 } else { next } as u32;
            Some(evicted)
        }
    }

    /// [`dps_sim_core::rolling::RollingMoments::push`].
    fn moments_push(&mut self, u: usize, added: f64, evicted: Option<f64>) {
        let a = added - self.m_offset[u];
        match evicted {
            Some(old) => {
                let e = old - self.m_offset[u];
                self.m_sum[u] += a - e;
                self.m_sumsq[u] += a * a - e * e;
            }
            None => {
                self.m_sum[u] += a;
                self.m_sumsq[u] += a * a;
            }
        }
        self.m_until[u] = self.m_until[u].saturating_sub(1);
        if self.m_until[u] == 0 {
            self.moments_resync(u);
        }
    }

    /// [`dps_sim_core::rolling::RollingMoments::resync`]: exact recompute
    /// from the window, oldest first.
    fn moments_resync(&mut self, u: usize) {
        let len = self.hist_len[u] as usize;
        let offset = if len == 0 {
            0.0
        } else {
            self.hist_power_at(u, 0)
        };
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for i in 0..len {
            let c = self.hist_power_at(u, i) - offset;
            sum += c;
            sumsq += c * c;
        }
        self.m_offset[u] = offset;
        self.m_sum[u] = sum;
        self.m_sumsq[u] = sumsq;
        self.m_until[u] = self.resync_every;
    }

    /// [`UnitState`]'s `compute_derivative`: same clamping, same
    /// oldest-to-newest duration summation.
    fn compute_derivative(&self, u: usize) -> Option<f64> {
        let len = self.hist_len[u] as usize;
        if len < 2 || self.deriv_window < 1 {
            return None;
        }
        let w = self.deriv_window.min(len - 1);
        let newest = self.hist_power_at(u, len - 1);
        let oldest = self.hist_power_at(u, len - 1 - w);
        let mut dt = 0.0;
        for i in (len - w)..len {
            dt += self.hist_dur_at(u, i);
        }
        if dt <= 0.0 {
            return None;
        }
        Some((newest - oldest) / dt)
    }

    /// [`UnitState::latest_estimate`].
    pub(crate) fn latest_estimate(&self, u: usize) -> Watts {
        let len = self.hist_len[u] as usize;
        if len == 0 {
            return 0.0;
        }
        self.hist_power_at(u, len - 1)
    }

    /// [`UnitState::history_std`].
    fn history_std(&self, u: usize) -> f64 {
        match self.mode {
            StatsMode::Incremental => {
                let len = self.hist_len[u] as usize;
                if len == 0 {
                    return 0.0;
                }
                let n = len as f64;
                let centered_mean = self.m_sum[u] / n;
                (self.m_sumsq[u] / n - centered_mean * centered_mean)
                    .max(0.0)
                    .sqrt()
            }
            StatsMode::Rescan => self.rescan_std(u),
        }
    }

    /// `RingBuffer::std_dev` over the window (two passes, oldest first).
    fn rescan_std(&self, u: usize) -> f64 {
        let len = self.hist_len[u] as usize;
        if len == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..len {
            sum += self.hist_power_at(u, i);
        }
        let mean = sum / len as f64;
        let mut var = 0.0;
        for i in 0..len {
            var += (self.hist_power_at(u, i) - mean).powi(2);
        }
        (var / len as f64).sqrt()
    }

    /// [`UnitState::prominent_peak_count`]; the rescan arm runs the signal
    /// kernel straight off the ring via the index variant instead of a
    /// scratch copy — same values, same order, same count.
    fn prominent_peak_count(&self, u: usize) -> usize {
        match self.mode {
            StatsMode::Incremental => self.pk_count[u] as usize,
            StatsMode::Rescan => signal::count_prominent_peaks_at(
                self.hist_len[u] as usize,
                |i| self.hist_power_at(u, i),
                self.peak_prominence,
            ),
        }
    }

    /// [`UnitState::derivative`].
    fn derivative(&self, u: usize) -> Option<f64> {
        match self.mode {
            StatsMode::Incremental => self.deriv_ok[u].then(|| self.deriv[u]),
            StatsMode::Rescan => signal::windowed_derivative_at(
                self.hist_len[u] as usize,
                |i| self.hist_power_at(u, i),
                |i| self.hist_dur_at(u, i),
                self.deriv_window,
            ),
        }
    }

    /// Applies Alg. 2 to one unit in place via the shared
    /// [`classify_dynamics`] logic.
    pub(crate) fn classify(&mut self, u: usize, cap: Watts, config: &DpsConfig) {
        classify_dynamics(&mut ChunkUnit { c: self, u }, cap, config);
    }

    /// [`UnitState::rebuild_stats`]: exact resync of every derived
    /// statistic from the window contents (restore path).
    pub(crate) fn rebuild_stats(&mut self, u: usize) {
        self.moments_resync(u);
        self.peaks_rebuild(u);
        let d = self.compute_derivative(u);
        self.deriv_ok[u] = d.is_some();
        self.deriv[u] = d.unwrap_or(0.0);
    }
}

/// One unit of a [`ColsChunk`], presented through the [`Dynamics`] trait so
/// [`classify_dynamics`] runs the identical decision logic over columns.
struct ChunkUnit<'a, 'b> {
    c: &'b mut ColsChunk<'a>,
    u: usize,
}

impl Dynamics for ChunkUnit<'_, '_> {
    fn prominent_peak_count(&mut self) -> usize {
        self.c.prominent_peak_count(self.u)
    }
    fn history_std(&mut self) -> f64 {
        self.c.history_std(self.u)
    }
    fn latest_estimate(&mut self) -> f64 {
        self.c.latest_estimate(self.u)
    }
    fn derivative(&mut self) -> Option<f64> {
        self.c.derivative(self.u)
    }
    fn high_freq(&self) -> bool {
        self.c.high_freq[self.u]
    }
    fn set_high_freq(&mut self, v: bool) {
        self.c.high_freq[self.u] = v;
    }
    fn set_priority(&mut self, v: bool) {
        self.c.priority[self.u] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::classify_unit;

    /// Drives a column store and a `Vec<UnitState>` mirror with the same
    /// measurement/cap stream and asserts bit-identical state.
    fn assert_mirrors(cols: &UnitColumns, mirror: &[UnitState], config: &DpsConfig, step: usize) {
        for (u, m) in mirror.iter().enumerate() {
            let mut mat = cols.materialize(u, config);
            let (est_a, var_a, gain_a) = mat.filter.state();
            let (est_b, var_b, gain_b) = m.filter.state();
            assert_eq!(
                est_a.map(f64::to_bits),
                est_b.map(f64::to_bits),
                "estimate diverged: unit {u} step {step}"
            );
            assert_eq!(var_a.to_bits(), var_b.to_bits(), "unit {u} step {step}");
            assert_eq!(gain_a.to_bits(), gain_b.to_bits(), "unit {u} step {step}");
            assert_eq!(
                mat.power_history.as_vec(),
                m.power_history.as_vec(),
                "history diverged: unit {u} step {step}"
            );
            assert_eq!(
                mat.history_std().to_bits(),
                m.history_std().to_bits(),
                "std diverged: unit {u} step {step}"
            );
            assert_eq!(
                mat.derivative().map(f64::to_bits),
                m.clone().derivative().map(f64::to_bits),
                "derivative diverged: unit {u} step {step}"
            );
            assert_eq!(mat.high_freq, m.high_freq, "unit {u} step {step}");
            assert_eq!(mat.priority, m.priority, "unit {u} step {step}");
        }
    }

    fn drive(
        cols: &mut UnitColumns,
        mirror: &mut [UnitState],
        config: &DpsConfig,
        z: &[f64],
        caps: &[f64],
    ) {
        let mut c = cols.chunk_mut();
        for u in 0..mirror.len() {
            c.observe(u, z[u], 1.0);
            c.classify(u, caps[u], config);
            mirror[u].observe(z[u], 1.0);
            classify_unit(&mut mirror[u], caps[u], config);
        }
    }

    #[test]
    fn columns_match_unit_state_through_noise_and_nan() {
        use dps_sim_core::rng::RngStream;
        for mode in [StatsMode::Incremental, StatsMode::Rescan] {
            let config = DpsConfig::default().with_stats_mode(mode);
            let n = 3;
            let mut cols = UnitColumns::new(n, &config);
            let mut mirror: Vec<UnitState> = (0..n).map(|_| UnitState::new(&config)).collect();
            let mut rng = RngStream::new(11, "columns/equiv");
            for step in 0..300 {
                let z: Vec<f64> = (0..n)
                    .map(|u| {
                        if (step + u) % 23 == 7 {
                            f64::NAN
                        } else {
                            50.0 + rng.range(0.0..100.0)
                        }
                    })
                    .collect();
                let caps = vec![110.0, 140.0, 95.0];
                drive(&mut cols, &mut mirror, &config, &z, &caps);
                assert_mirrors(&cols, &mirror, &config, step);
            }
        }
    }

    #[test]
    fn column_reset_equals_per_unit_reset() {
        let config = DpsConfig::default();
        let n = 2;
        let mut cols = UnitColumns::new(n, &config);
        let mut mirror: Vec<UnitState> = (0..n).map(|_| UnitState::new(&config)).collect();
        for step in 0..60 {
            let z = vec![
                80.0 + (step % 9) as f64 * 11.0,
                120.0 - (step % 5) as f64 * 7.0,
            ];
            drive(&mut cols, &mut mirror, &config, &z, &[165.0, 165.0]);
        }
        cols.reset_unit(0);
        mirror[0].reset();
        mirror[0].filter.reset();
        assert_mirrors(&cols, &mirror, &config, usize::MAX);
        // And the reset unit behaves like a fresh one from here on.
        for step in 0..40 {
            let z = vec![60.0 + (step % 4) as f64 * 25.0, 90.0];
            drive(&mut cols, &mut mirror, &config, &z, &[165.0, 165.0]);
            assert_mirrors(&cols, &mirror, &config, step);
        }
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_exact() {
        let config = DpsConfig::default();
        let n = 2;
        let mut cols = UnitColumns::new(n, &config);
        let mut mirror: Vec<UnitState> = (0..n).map(|_| UnitState::new(&config)).collect();
        for step in 0..90 {
            let z = vec![
                70.0 + (step % 11) as f64 * 9.0,
                130.0 - (step % 6) as f64 * 13.0,
            ];
            drive(&mut cols, &mut mirror, &config, &z, &[150.0, 150.0]);
        }
        let mut w = ByteWriter::new();
        for u in 0..n {
            cols.encode_unit(u, &mut w);
        }
        let bytes = w.seal();
        let mut restored = UnitColumns::new(n, &config);
        let mut r = ByteReader::open(&bytes).unwrap();
        for u in 0..n {
            restored.decode_unit(u, &mut r, true).unwrap();
        }
        r.finish().unwrap();
        // The restored store continues bit-identically.
        for step in 0..80 {
            let z = vec![100.0 + (step % 7) as f64 * 6.0, 85.0];
            drive(&mut restored, &mut mirror, &config, &z, &[150.0, 150.0]);
            assert_mirrors(&restored, &mirror, &config, step);
        }
    }
}
