//! A model-based baseline (PoDD/PANN-lite).
//!
//! The paper's related work (§2.2) covers managers that *model* workload
//! power demand and allocate against predictions — PowerShift (offline
//! models), PoDD (online models), PANN (neural allocation). This manager
//! implements the archetype with the cheapest credible demand model: per
//! unit it learns the workload's demand profile online as
//!
//! * an EWMA of power observed while *unconstrained* (below the cap, power
//!   equals demand), and
//! * a slowly decaying **historical peak** — the model's memory that this
//!   unit's application has hot phases even when it is currently quiet.
//!
//! It then allocates the budget demand-proportionally against the
//! *predicted* demand (the oracle's rule, with the model substituted for
//! ground truth). Its failure modes are exactly the paper's critique of
//! model-based systems: predictions lag workload changes, and a unit whose
//! history misrepresents its future (new phase structure, first-ever hot
//! phase) is misallocated until the model catches up.

use crate::budget::{debug_assert_budget, distribute_weighted};
use crate::manager::{check_new_budget, ManagerKind, PowerManager, UnitLimits};
use dps_sim_core::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Tunables for the online demand model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictiveConfig {
    /// EWMA smoothing factor for unconstrained power, in (0, 1].
    pub ewma_alpha: f64,
    /// Per-cycle decay of the historical peak, in (0, 1]. 0.999 forgets a
    /// peak with a ~17-minute half-life at 1 s cycles.
    pub peak_decay: f64,
    /// Power above `cap × this` counts as constrained (demand unobservable).
    pub pinned_threshold: f64,
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        Self {
            ewma_alpha: 0.3,
            peak_decay: 0.999,
            pinned_threshold: 0.95,
        }
    }
}

impl PredictiveConfig {
    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.ewma_alpha && self.ewma_alpha <= 1.0) {
            return Err("ewma_alpha must be in (0,1]".into());
        }
        if !(0.0 < self.peak_decay && self.peak_decay <= 1.0) {
            return Err("peak_decay must be in (0,1]".into());
        }
        if !(0.5..=1.0).contains(&self.pinned_threshold) {
            return Err("pinned_threshold must be in [0.5,1]".into());
        }
        Ok(())
    }
}

/// Per-unit learned demand model.
#[derive(Debug, Clone, Default)]
struct DemandModel {
    ewma: Option<f64>,
    peak: f64,
}

impl DemandModel {
    /// Updates the model with one observation and returns the predicted
    /// demand.
    fn observe(&mut self, measured: Watts, cap: Watts, cfg: &PredictiveConfig) -> Watts {
        let constrained = measured > cap * cfg.pinned_threshold;
        if !constrained {
            // Unconstrained: power is demand; learn from it.
            self.ewma = Some(match self.ewma {
                None => measured,
                Some(prev) => cfg.ewma_alpha * measured + (1.0 - cfg.ewma_alpha) * prev,
            });
        }
        self.peak = (self.peak * cfg.peak_decay).max(measured);
        let base = self.ewma.unwrap_or(measured);
        if constrained {
            // Demand is at least the cap; the model believes the unit wants
            // what it has historically wanted when hot.
            self.peak.max(cap)
        } else {
            // Anticipate recurring hot phases: blend the quiet-time demand
            // with the remembered peak.
            base.max(0.5 * self.peak)
        }
    }
}

/// Model-based demand-proportional allocator.
///
/// ```
/// use dps_core::manager::{PowerManager, UnitLimits};
/// use dps_core::{PredictiveConfig, PredictiveManager};
///
/// let mut m = PredictiveManager::new(2, 220.0, UnitLimits::xeon_gold_6240(),
///                                    PredictiveConfig::default());
/// let mut caps = vec![110.0, 110.0];
/// // The model learns unit 0 demands ~100 W and unit 1 ~30 W...
/// for _ in 0..20 {
///     m.assign_caps(&[100.0_f64.min(caps[0]), 30.0_f64.min(caps[1])], &mut caps, 1.0);
/// }
/// // ...and allocates against the prediction.
/// assert!(m.predicted()[0] > m.predicted()[1]);
/// assert!(caps[0] > caps[1]);
/// ```
#[derive(Debug, Clone)]
pub struct PredictiveManager {
    config: PredictiveConfig,
    limits: UnitLimits,
    total_budget: Watts,
    models: Vec<DemandModel>,
    /// Scratch buffer of predicted demands.
    predicted: Vec<Watts>,
}

impl PredictiveManager {
    /// Creates the manager.
    ///
    /// # Panics
    /// Panics on an invalid config.
    pub fn new(
        num_units: usize,
        total_budget: Watts,
        limits: UnitLimits,
        config: PredictiveConfig,
    ) -> Self {
        config.validate().expect("invalid predictive config");
        limits
            .check_feasible(total_budget, num_units)
            .expect("infeasible budget");
        Self {
            config,
            limits,
            total_budget,
            models: vec![DemandModel::default(); num_units],
            predicted: vec![0.0; num_units],
        }
    }

    /// Latest predicted demands (diagnostics).
    pub fn predicted(&self) -> &[Watts] {
        &self.predicted
    }
}

impl PowerManager for PredictiveManager {
    fn kind(&self) -> ManagerKind {
        ManagerKind::Predictive
    }

    fn num_units(&self) -> usize {
        self.models.len()
    }

    fn total_budget(&self) -> Watts {
        self.total_budget
    }

    fn set_budget(&mut self, new_budget: Watts) -> Result<(), String> {
        check_new_budget(new_budget, self.models.len(), self.limits)?;
        self.total_budget = new_budget;
        Ok(())
    }

    fn assign_caps(&mut self, measured: &[Watts], caps: &mut [Watts], _dt: Seconds) {
        let n = caps.len();
        assert_eq!(measured.len(), n);
        for u in 0..n {
            self.predicted[u] = self.models[u]
                .observe(measured[u], caps[u], &self.config)
                .clamp(0.0, self.limits.max_cap);
        }
        // Oracle rule against predictions: everyone floored at min_cap,
        // remaining budget split proportional to predicted demand above the
        // floor, clamp-spill redistributed.
        let floor = self.limits.min_cap;
        for c in caps.iter_mut() {
            *c = floor;
        }
        let spendable = self.total_budget - floor * n as f64;
        if spendable > 0.0 {
            let selected: Vec<usize> = (0..n).collect();
            let weights: Vec<f64> = self
                .predicted
                .iter()
                .map(|&d| (d - floor).max(1.0))
                .collect();
            distribute_weighted(caps, &selected, &weights, spendable, self.limits.max_cap);
        }
        debug_assert_budget(caps, self.total_budget, self.limits);
    }

    fn reset(&mut self) {
        for m in &mut self.models {
            *m = DemandModel::default();
        }
        self.predicted.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: UnitLimits = UnitLimits {
        min_cap: 40.0,
        max_cap: 165.0,
    };

    fn manager(n: usize, budget: Watts) -> PredictiveManager {
        PredictiveManager::new(n, budget, LIMITS, PredictiveConfig::default())
    }

    #[test]
    fn learns_unconstrained_demand() {
        let mut m = manager(2, 220.0);
        let mut caps = vec![110.0, 110.0];
        for _ in 0..30 {
            m.assign_caps(
                &[100.0f64.min(caps[0]), 30.0f64.min(caps[1])],
                &mut caps,
                1.0,
            );
        }
        // Predicted demands should separate the hot and cold units.
        assert!(m.predicted()[0] > 80.0, "{:?}", m.predicted());
        assert!(m.predicted()[1] < 60.0);
        assert!(caps[0] > caps[1], "{caps:?}");
    }

    #[test]
    fn remembers_hot_phase_through_quiet_period() {
        let mut m = manager(2, 220.0);
        let mut caps = vec![110.0, 110.0];
        // Unit 0 runs hot for a while...
        for _ in 0..30 {
            m.assign_caps(
                &[150.0f64.min(caps[0]), 80.0f64.min(caps[1])],
                &mut caps,
                1.0,
            );
        }
        // ...then goes quiet. The model keeps allocating it a premium.
        for _ in 0..10 {
            m.assign_caps(&[50.0, 80.0f64.min(caps[1])], &mut caps, 1.0);
        }
        assert!(
            m.predicted()[0] > 60.0,
            "peak memory should persist: {:?}",
            m.predicted()
        );
        assert!(
            m.predicted()[0] > m.predicted()[1] - 25.0,
            "history premium should keep unit 0 competitive: {:?}",
            m.predicted()
        );
    }

    #[test]
    fn budget_respected_always() {
        let mut m = manager(5, 550.0);
        let mut caps = vec![110.0; 5];
        let mut rng = dps_sim_core::RngStream::new(4, "pred-churn");
        for _ in 0..300 {
            let measured: Vec<f64> = caps
                .iter()
                .map(|&c| rng.range(10.0..165.0_f64).min(c))
                .collect();
            m.assign_caps(&measured, &mut caps, 1.0);
            assert!(caps.iter().sum::<f64>() <= 550.0 + 1e-6);
        }
    }

    #[test]
    fn stale_model_misallocates_new_phase() {
        // The model-based brittleness: unit 1's first-ever hot phase gets a
        // poor allocation because history says it is cold.
        let mut m = manager(2, 220.0);
        let mut caps = vec![110.0, 110.0];
        for _ in 0..60 {
            m.assign_caps(&[150.0f64.min(caps[0]), 25.0], &mut caps, 1.0);
        }
        let starved_cap = caps[1];
        // Unit 1 suddenly wants everything; its first capped cycle.
        m.assign_caps(
            &[150.0f64.min(caps[0]), 165.0f64.min(caps[1])],
            &mut caps,
            1.0,
        );
        assert!(
            caps[1] < starved_cap + 25.0,
            "model should lag the phase change: {starved_cap} -> {}",
            caps[1]
        );
    }

    #[test]
    fn reset_forgets_history() {
        let mut m = manager(1, 110.0);
        let mut caps = vec![110.0];
        for _ in 0..20 {
            m.assign_caps(&[100.0], &mut caps, 1.0);
        }
        m.reset();
        assert_eq!(m.predicted()[0], 0.0);
    }

    #[test]
    fn kind_is_predictive() {
        assert_eq!(manager(1, 110.0).kind(), ManagerKind::Predictive);
    }
}
