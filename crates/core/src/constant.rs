//! Constant allocation: every unit gets the same static cap.
//!
//! "Constant allocation systems assign an equal power budget to each node.
//! This approach is simple to implement and clearly respects the
//! cluster-wide power budget. However, it is rarely optimal as it cannot
//! shift power dynamically based on demand" (§1). It is the baseline every
//! figure normalises to — and the lower bound DPS guarantees.

use crate::manager::{check_new_budget, constant_cap, ManagerKind, PowerManager, UnitLimits};
use dps_sim_core::units::{Seconds, Watts};

/// The equal-static-cap policy.
#[derive(Debug, Clone)]
pub struct ConstantManager {
    num_units: usize,
    total_budget: Watts,
    limits: UnitLimits,
    cap: Watts,
}

impl ConstantManager {
    /// Creates the policy; the per-unit cap is `budget / n` clamped to the
    /// unit limits.
    pub fn new(num_units: usize, total_budget: Watts, limits: UnitLimits) -> Self {
        limits
            .check_feasible(total_budget, num_units)
            .expect("infeasible budget");
        let cap = constant_cap(total_budget, num_units, limits);
        Self {
            num_units,
            total_budget,
            limits,
            cap,
        }
    }

    /// The static per-unit cap.
    pub fn cap(&self) -> Watts {
        self.cap
    }
}

impl PowerManager for ConstantManager {
    fn kind(&self) -> ManagerKind {
        ManagerKind::Constant
    }

    fn num_units(&self) -> usize {
        self.num_units
    }

    fn total_budget(&self) -> Watts {
        self.total_budget
    }

    fn set_budget(&mut self, new_budget: Watts) -> Result<(), String> {
        check_new_budget(new_budget, self.num_units, self.limits)?;
        self.total_budget = new_budget;
        self.cap = constant_cap(new_budget, self.num_units, self.limits);
        Ok(())
    }

    fn assign_caps(&mut self, _measured: &[Watts], caps: &mut [Watts], _dt: Seconds) {
        caps.fill(self.cap);
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_caps_equal_share() {
        let mut m = ConstantManager::new(20, 2200.0, UnitLimits::xeon_gold_6240());
        let mut caps = vec![0.0; 20];
        m.assign_caps(&[50.0; 20], &mut caps, 1.0);
        assert!(caps.iter().all(|&c| (c - 110.0).abs() < 1e-9));
    }

    #[test]
    fn ignores_measurements() {
        let mut m = ConstantManager::new(2, 220.0, UnitLimits::xeon_gold_6240());
        let mut caps = vec![0.0, 0.0];
        m.assign_caps(&[165.0, 0.0], &mut caps, 1.0);
        assert_eq!(caps[0], caps[1]);
    }

    #[test]
    fn budget_respected() {
        let m = ConstantManager::new(7, 777.0, UnitLimits::xeon_gold_6240());
        assert!(m.cap() * 7.0 <= 777.0 + 1e-9);
    }

    #[test]
    fn kind_and_accessors() {
        let m = ConstantManager::new(4, 440.0, UnitLimits::xeon_gold_6240());
        assert_eq!(m.kind(), ManagerKind::Constant);
        assert_eq!(m.num_units(), 4);
        assert_eq!(m.total_budget(), 440.0);
        assert!(m.priorities().is_none());
    }
}
