//! The power-manager interface.
//!
//! A manager is a pure control policy: per decision cycle it receives the
//! latest per-unit power measurements and rewrites the per-unit caps. It
//! never talks to hardware directly (the cluster crate owns that), which is
//! what lets the same policy run against simulated RAPL here and real RAPL
//! in a deployment.

use crate::guard::{GuardStats, HealthState};
use dps_sim_core::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Static per-unit capping limits the manager must respect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitLimits {
    /// Lowest settable cap (RAPL minimum operating power).
    pub min_cap: Watts,
    /// Highest settable cap (TDP).
    pub max_cap: Watts,
}

impl UnitLimits {
    /// The paper's socket: caps in `[40, 165]` W.
    pub fn xeon_gold_6240() -> Self {
        Self {
            min_cap: 40.0,
            max_cap: 165.0,
        }
    }

    /// Clamps a cap into the unit's settable range.
    #[inline]
    pub fn clamp(&self, cap: Watts) -> Watts {
        dps_sim_core::units::clamp_power(cap, self.min_cap, self.max_cap)
    }

    /// Checks that `total_budget` can cover `num_units` at the minimum cap —
    /// below that no policy can satisfy both the budget and the hardware
    /// floor, so every manager constructor enforces it.
    pub fn check_feasible(&self, total_budget: Watts, num_units: usize) -> Result<(), String> {
        let floor = self.min_cap * num_units as f64;
        if total_budget + 1e-9 < floor {
            return Err(format!(
                "budget {total_budget:.1} W cannot cover {num_units} units at the \
                 {:.0} W minimum cap ({floor:.1} W required)",
                self.min_cap
            ));
        }
        Ok(())
    }
}

/// Which manager a run used — keys for result tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ManagerKind {
    /// Equal static caps.
    Constant,
    /// Stateless MIMD (the SLURM power plugin comparator).
    Slurm,
    /// The Dynamic Power Scheduler.
    Dps,
    /// Perfect-knowledge demand-proportional allocation.
    Oracle,
    /// PShifter-style PI headroom equalizer (related-work baseline, §2.2).
    Feedback,
    /// PoDD/PANN-lite online demand model (related-work baseline, §2.2).
    Predictive,
    /// Argo-style two-level stateless manager (related-work baseline, §2.3).
    TwoLevel,
    /// Q-DPM model-free Q-learning with continuous-time state aggregation.
    Qdpm,
    /// Hierarchical sharded DPS: independent per-shard DPS instances under
    /// a top-level budget allocator.
    Sharded,
}

impl ManagerKind {
    /// All implemented managers, in report order.
    pub const ALL: [ManagerKind; 8] = [
        ManagerKind::Constant,
        ManagerKind::Slurm,
        ManagerKind::TwoLevel,
        ManagerKind::Feedback,
        ManagerKind::Predictive,
        ManagerKind::Qdpm,
        ManagerKind::Dps,
        ManagerKind::Oracle,
    ];
}

impl std::fmt::Display for ManagerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ManagerKind::Constant => "Constant",
            ManagerKind::Slurm => "SLURM",
            ManagerKind::Dps => "DPS",
            ManagerKind::Oracle => "Oracle",
            ManagerKind::Feedback => "Feedback",
            ManagerKind::Predictive => "Predictive",
            ManagerKind::TwoLevel => "TwoLevel",
            ManagerKind::Qdpm => "QDPM",
            ManagerKind::Sharded => "Sharded",
        };
        f.write_str(s)
    }
}

/// One shard of a hierarchical manager's allocation tree, as exposed for
/// per-level budget-invariant checking: the contiguous flat-unit range the
/// shard owns and the budget it was granted for the cycle that just ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSpan {
    /// First flat unit index owned by the shard.
    pub start: usize,
    /// One past the last flat unit index owned by the shard.
    pub end: usize,
    /// Budget granted to the shard for the last cycle (W).
    pub grant: Watts,
}

impl ShardSpan {
    /// Number of units the shard owns.
    pub fn units(&self) -> usize {
        self.end - self.start
    }
}

/// A cluster-level power-cap policy.
///
/// Contract: after [`PowerManager::assign_caps`] returns, every cap lies in
/// its unit's `[min_cap, max_cap]` and the caps sum to at most the cluster
/// budget (up to floating-point slack). `debug_assert_budget` in
/// [`crate::budget`] checks this in tests.
pub trait PowerManager {
    /// Which policy this is.
    fn kind(&self) -> ManagerKind;

    /// Number of managed units.
    fn num_units(&self) -> usize;

    /// The cluster-wide power budget in Watts.
    fn total_budget(&self) -> Watts;

    /// Rebases the manager on a new cluster-wide budget mid-run (facility
    /// brownout, demand-response window, budget restoration). The manager
    /// must refresh every budget-derived internal quantity so that the very
    /// next [`PowerManager::assign_caps`] call produces caps summing to at
    /// most `new_budget` — the bounded-cycles-to-compliance guarantee the
    /// dynamic-budget tests pin is **one cycle** for every shipped manager.
    /// Rejects non-finite or infeasible budgets (below `n × min_cap`)
    /// without changing any state.
    fn set_budget(&mut self, new_budget: Watts) -> Result<(), String>;

    /// One decision cycle: observe `measured` (one sample per unit, the
    /// possibly noisy average power of the last window) and rewrite `caps`
    /// in place. `dt` is the cycle period in seconds.
    fn assign_caps(&mut self, measured: &[Watts], caps: &mut [Watts], dt: Seconds);

    /// Ground-truth demand feed for oracle-class managers; realistic
    /// managers ignore it (default no-op). The cluster simulator calls this
    /// before `assign_caps` every cycle.
    fn observe_demands(&mut self, _demands: &[Watts]) {}

    /// Occupancy update from the scheduler layer: `active[u]` says whether
    /// unit `u` currently hosts a job. Called whenever membership changes
    /// (jobs starting, finishing, or evicted), before the cycle's
    /// `assign_caps`. Stateful managers should drop per-unit learned state
    /// for units whose occupancy flipped — the unit's power dynamics belong
    /// to a different (or no) job now. Default no-op for stateless managers.
    fn observe_membership(&mut self, _active: &[bool]) {}

    /// Per-unit priority flags after the last cycle (DPS logs these in the
    /// artifact's per-cycle records); `None` for managers without priorities.
    fn priorities(&self) -> Option<&[bool]> {
        None
    }

    /// Cap readback after programming: `applied` is the per-unit cap the
    /// hardware reports to be in force. The cluster loop calls this right
    /// after writing the caps so managers with write verification (the
    /// telemetry guard) can detect silently dropped or mangled writes.
    /// Default no-op for managers that trust their actuators.
    fn observe_applied(&mut self, _applied: &[Watts]) {}

    /// Per-unit telemetry health after the last cycle; `None` for managers
    /// without health gating.
    fn health(&self) -> Option<&[HealthState]> {
        None
    }

    /// Cumulative guard counters (rejected samples, quarantines, ...);
    /// `None` for managers without health gating.
    fn guard_stats(&self) -> Option<GuardStats> {
        None
    }

    /// Serializes the manager's dynamic state for crash recovery; `None`
    /// for managers without checkpoint support.
    fn checkpoint(&self) -> Option<Vec<u8>> {
        None
    }

    /// Serializes into a caller-provided buffer, reusing its allocation —
    /// the periodic-watchdog variant of [`PowerManager::checkpoint`].
    /// Returns `false` (leaving `out` untouched) for managers without
    /// checkpoint support. The default delegates to `checkpoint`;
    /// checkpointing managers should override it allocation-free.
    fn checkpoint_into(&self, out: &mut Vec<u8>) -> bool {
        match self.checkpoint() {
            Some(snap) => {
                *out = snap;
                true
            }
            None => false,
        }
    }

    /// Restores dynamic state from a [`PowerManager::checkpoint`] blob.
    /// Default: unsupported.
    fn restore(&mut self, _snapshot: &[u8]) -> Result<(), String> {
        Err("this manager does not support checkpoint/restore".into())
    }

    /// Hierarchical managers expose their per-shard unit spans and budget
    /// grants so external monitors can re-check budget safety at every
    /// tree level (shard caps sum ≤ shard grant, grants sum ≤ cluster
    /// budget); `None` for flat managers.
    fn shard_view(&self) -> Option<&[ShardSpan]> {
        None
    }

    /// Attaches a structured trace sink (`dps-obs`): instrumented managers
    /// emit their per-cycle decision events (cap deltas, priority flips,
    /// restore/readjust outcomes, guard transitions, ...) through it.
    /// Default no-op for uninstrumented managers. Attaching resets the
    /// manager's trace cycle counter to the next `assign_caps` call.
    fn attach_trace(&mut self, _sink: dps_obs::SinkHandle) {}

    /// Resets all internal state (between repetitions).
    fn reset(&mut self);
}

/// Shared precondition for [`PowerManager::set_budget`] implementations:
/// the new budget must be finite, positive, and able to cover every unit at
/// its minimum cap. Returns a descriptive error and leaves the manager
/// untouched otherwise.
pub fn check_new_budget(
    new_budget: Watts,
    num_units: usize,
    limits: UnitLimits,
) -> Result<(), String> {
    if !new_budget.is_finite() || new_budget <= 0.0 {
        return Err(format!(
            "new budget must be finite and positive, got {new_budget}"
        ));
    }
    limits.check_feasible(new_budget, num_units)
}

/// The equal-share cap: `budget / n`, clamped to unit limits — both the
/// constant-allocation policy and the "initial cap" DPS restores to.
pub fn constant_cap(total_budget: Watts, num_units: usize, limits: UnitLimits) -> Watts {
    assert!(num_units > 0, "need at least one unit");
    limits.clamp(total_budget / num_units as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_clamp() {
        let l = UnitLimits::xeon_gold_6240();
        assert_eq!(l.clamp(200.0), 165.0);
        assert_eq!(l.clamp(10.0), 40.0);
        assert_eq!(l.clamp(110.0), 110.0);
        assert_eq!(l.clamp(f64::NAN), 40.0);
    }

    #[test]
    fn constant_cap_paper_setup() {
        // 20 sockets × 165 W TDP at a 66.7 % budget → 110 W per socket.
        let budget = 20.0 * 165.0 * 2.0 / 3.0;
        let cap = constant_cap(budget, 20, UnitLimits::xeon_gold_6240());
        assert!((cap - 110.0).abs() < 1e-9);
    }

    #[test]
    fn constant_cap_clamped_to_tdp() {
        let cap = constant_cap(10_000.0, 2, UnitLimits::xeon_gold_6240());
        assert_eq!(cap, 165.0);
    }

    #[test]
    fn kind_display() {
        assert_eq!(ManagerKind::Dps.to_string(), "DPS");
        assert_eq!(ManagerKind::Slurm.to_string(), "SLURM");
        assert_eq!(ManagerKind::Constant.to_string(), "Constant");
        assert_eq!(ManagerKind::Oracle.to_string(), "Oracle");
        assert_eq!(ManagerKind::Qdpm.to_string(), "QDPM");
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn constant_cap_zero_units_panics() {
        constant_cap(100.0, 0, UnitLimits::xeon_gold_6240());
    }
}
