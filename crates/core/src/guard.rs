//! Telemetry health gating: the guard in front of the Kalman history.
//!
//! Real RAPL deployments see sensors that stick, drop out, drift, or return
//! garbage, and cap writes that are silently dropped by firmware. DPS's
//! pipeline (stateless MIMD → Kalman history → priorities → readjust) trusts
//! its measurements; a single stuck 160 W reading would pin a dead socket
//! "high priority" forever and starve honest units. This module wraps the
//! manager with:
//!
//! * **measurement sanitation** — non-finite rejection, a plausibility range
//!   gate (catches corrupted-counter decodes that are kilowatts out of
//!   range), and an innovation gate on the jump from the last accepted
//!   sample (catches isolated spike bursts);
//! * **stuck-sensor detection** — a zero-variance window over the raw
//!   readings (real sensors carry noise; a frozen value is a fault);
//! * **actuator write verification** — the cluster loop reads the applied
//!   caps back after programming and feeds them to
//!   [`TelemetryGuard::observe_applied`]; a mismatch beyond the verify
//!   tolerance marks the actuator suspect;
//! * a per-unit **health state machine**
//!   `Healthy → Suspect → Quarantined → Probation → Healthy`: quarantined
//!   and probation units fall back to the constant-allocation cap (the
//!   paper's lower bound) and surrender their priority, so the freed budget
//!   flows to healthy units through the ordinary readjust pass;
//! * a **believed-cap budget invariant** — for units whose actuator is
//!   suspect, the guard accounts `max(requested, last readback)` against the
//!   budget and shrinks healthy units' caps if needed, so the *applied* caps
//!   sum stays within budget even while a rogue actuator ignores writes.
//!
//! Degradation guarantees (see DESIGN.md for the taxonomy):
//!
//! * sensor faults never violate the budget, and healthy units keep the
//!   constant-allocation lower bound;
//! * dropped / delayed cap writes keep Σ applied ≤ budget every cycle
//!   (beliefs only ever over-estimate the in-force cap);
//! * cap writes clamped *upwards* by faulty firmware can exceed the budget
//!   for at most the one cycle before the first readback exposes them, after
//!   which healthy units are shrunk to compensate — budget safety is
//!   restored at the cost of the fairness floor, which is the right trade
//!   when hardware is actively lying.

use crate::columns::ring_phys;
use crate::manager::UnitLimits;
use dps_sim_core::units::Watts;
use serde::{Deserialize, Serialize};

/// Per-unit health as judged by the telemetry guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HealthState {
    /// Telemetry and actuation look sane.
    Healthy,
    /// At least one recent bad cycle; full trust pending a clean streak.
    Suspect,
    /// Persistent fault: unit pinned at the fallback cap, priority revoked.
    Quarantined,
    /// Fault cleared; unit stays pinned until a sustained clean streak.
    Probation,
}

impl HealthState {
    /// Whether the unit is isolated (pinned at the fallback cap, no
    /// priority): quarantined or on probation.
    #[inline]
    pub fn is_isolated(self) -> bool {
        matches!(self, HealthState::Quarantined | HealthState::Probation)
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Quarantined => "quarantined",
            HealthState::Probation => "probation",
        };
        f.write_str(s)
    }
}

/// Tuning for the telemetry guard. All thresholds are deliberately coarse:
/// the guard is a tripwire against *implausible* telemetry, not a second
/// filter — the Kalman filter already owns ordinary noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuardConfig {
    /// Master switch; `false` reproduces the unguarded paper pipeline.
    pub enabled: bool,
    /// Readings below `-range_margin` W are rejected (true power is
    /// non-negative; the margin tolerates zero-mean measurement noise).
    pub range_margin: Watts,
    /// Readings above `max_cap * range_factor` are rejected. Corrupted
    /// energy-counter decodes land orders of magnitude out of range.
    pub range_factor: f64,
    /// Reject a reading that jumps more than this from the last accepted
    /// sample. Must stay above the largest legitimate one-cycle swing
    /// (idle → TDP ≈ 165 W on the paper's sockets), so it only catches
    /// spikes well outside the physical envelope.
    pub innovation_limit: Watts,
    /// Consecutive raw readings that must be byte-identical (within
    /// [`GuardConfig::stuck_epsilon`]) to declare the sensor stuck.
    /// `0` disables stuck detection (required when measurements are
    /// noise-free, e.g. `NoiseModel::None`, where repeats are legitimate).
    pub stuck_window: usize,
    /// Spread below which a full window counts as zero-variance.
    pub stuck_epsilon: Watts,
    /// Consecutive bad cycles before a suspect unit is quarantined.
    pub quarantine_after: u32,
    /// Consecutive clean cycles a quarantined unit needs to enter probation.
    pub probation_after: u32,
    /// Consecutive clean cycles on probation before full readmission.
    pub readmit_after: u32,
    /// Write-verification tolerance: readback may differ from the request by
    /// this much before the actuator is flagged (must absorb control-plane
    /// quantization, e.g. the 0.1 W framed-wire grid).
    pub verify_epsilon: Watts,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            range_margin: 5.0,
            range_factor: 1.5,
            innovation_limit: 200.0,
            stuck_window: 8,
            stuck_epsilon: 1e-6,
            quarantine_after: 3,
            probation_after: 5,
            readmit_after: 10,
            verify_epsilon: 0.5,
        }
    }
}

impl GuardConfig {
    /// Validates threshold consistency.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.range_margin.is_finite() && self.range_margin >= 0.0) {
            return Err(format!(
                "range_margin must be >= 0, got {}",
                self.range_margin
            ));
        }
        if !(self.range_factor.is_finite() && self.range_factor >= 1.0) {
            return Err(format!(
                "range_factor must be >= 1, got {}",
                self.range_factor
            ));
        }
        if !(self.innovation_limit.is_finite() && self.innovation_limit > 0.0) {
            return Err(format!(
                "innovation_limit must be positive, got {}",
                self.innovation_limit
            ));
        }
        if !(self.stuck_epsilon.is_finite() && self.stuck_epsilon >= 0.0) {
            return Err(format!(
                "stuck_epsilon must be >= 0, got {}",
                self.stuck_epsilon
            ));
        }
        if self.quarantine_after == 0 || self.probation_after == 0 || self.readmit_after == 0 {
            return Err("state-machine streaks must be >= 1".into());
        }
        if !(self.verify_epsilon.is_finite() && self.verify_epsilon >= 0.0) {
            return Err(format!(
                "verify_epsilon must be >= 0, got {}",
                self.verify_epsilon
            ));
        }
        Ok(())
    }
}

/// Counters the guard accumulates over a run (experiment tables report
/// these per fault class).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardStats {
    /// Measurements rejected by the non-finite / range / innovation gates.
    pub rejected_samples: u64,
    /// Cycles on which a zero-variance window tripped stuck detection.
    pub stuck_trips: u64,
    /// Cap-write readbacks that disagreed with the request.
    pub write_mismatches: u64,
    /// Transitions into `Quarantined`.
    pub quarantine_entries: u64,
    /// Transitions from `Probation` back to `Healthy`.
    pub readmissions: u64,
    /// Cycles on which believed caps exceeded the budget even after
    /// shrinking every honest unit to its floor (rogue actuators hold more
    /// than the guard can compensate for).
    pub saturated_cycles: u64,
}

/// The telemetry guard wrapping one manager's measurement and cap streams.
///
/// Lifecycle per decision cycle (driven by [`crate::DpsManager`]):
///
/// 1. [`TelemetryGuard::sanitize`] — gate the raw measurements, advance each
///    unit's health machine (folding in last cycle's readback verdict);
/// 2. the ordinary DPS pipeline runs on the sanitized measurements;
/// 3. [`TelemetryGuard::pin_caps`] — isolated units are pinned at the
///    fallback cap, reclaiming from healthy units above it if the sum would
///    exceed the budget;
/// 4. [`TelemetryGuard::finish_cycle`] — believed-cap budget enforcement and
///    request bookkeeping for the next write verification;
/// 5. after the cluster loop programs the caps it reads them back and calls
///    [`TelemetryGuard::observe_applied`].
#[derive(Debug, Clone)]
pub struct TelemetryGuard {
    config: GuardConfig,
    limits: UnitLimits,
    total_budget: Watts,
    /// The constant-allocation cap isolated units fall back to.
    fallback_cap: Watts,
    /// Authoritative per-unit health state. Like [`crate::DpsManager`]'s
    /// decision core, the guard stores its per-unit bookkeeping as parallel
    /// flat columns (struct-of-arrays) so `sanitize` walks cache-linear
    /// memory at million-unit scale.
    health: Vec<HealthState>,
    bad_streak: Vec<u32>,
    good_streak: Vec<u32>,
    /// Last accepted measurement — substituted for rejected readings.
    held: Vec<Watts>,
    has_held: Vec<bool>,
    /// Recent finite raw readings for zero-variance stuck detection: a flat
    /// `n × stuck_window.max(1)` arena, one ring per unit addressed via
    /// [`ring_phys`] with `recent_len` / `recent_head`.
    recent: Vec<f64>,
    recent_len: Vec<u32>,
    recent_head: Vec<u32>,
    /// Verdict from the last cap-write readback, consumed next cycle.
    actuator_bad: Vec<bool>,
    /// Actuator currently distrusted (set on mismatch, cleared on a clean
    /// readback) — gates the believed-cap budget accounting.
    actuator_suspect: Vec<bool>,
    sanitized: Vec<Watts>,
    /// Caps requested last cycle (what write verification checks against).
    requested: Vec<Watts>,
    /// Upper bound on the cap currently in force per unit.
    believed: Vec<Watts>,
    /// No readback has arrived yet: trust requests (write verification and
    /// believed-cap enforcement stay off so a guard-wrapped manager driven
    /// without readbacks behaves exactly like the paper pipeline).
    has_readback: bool,
    stats: GuardStats,
}

impl TelemetryGuard {
    /// Creates a guard for `num_units` units sharing `total_budget`.
    ///
    /// # Panics
    /// Panics on an invalid config.
    pub fn new(
        num_units: usize,
        total_budget: Watts,
        limits: UnitLimits,
        fallback_cap: Watts,
        config: GuardConfig,
    ) -> Self {
        config.validate().expect("invalid guard config");
        Self {
            config,
            limits,
            total_budget,
            fallback_cap,
            health: vec![HealthState::Healthy; num_units],
            bad_streak: vec![0; num_units],
            good_streak: vec![0; num_units],
            held: vec![0.0; num_units],
            has_held: vec![false; num_units],
            recent: vec![0.0; num_units * config.stuck_window.max(1)],
            recent_len: vec![0; num_units],
            recent_head: vec![0; num_units],
            actuator_bad: vec![false; num_units],
            actuator_suspect: vec![false; num_units],
            sanitized: vec![0.0; num_units],
            requested: vec![f64::NAN; num_units],
            believed: vec![fallback_cap; num_units],
            has_readback: false,
            stats: GuardStats::default(),
        }
    }

    /// Per-unit stuck-detection ring capacity (the arena stride).
    #[inline]
    fn window(&self) -> usize {
        self.config.stuck_window.max(1)
    }

    /// Pushes one finite raw reading into `unit`'s stuck-detection ring
    /// (overwrite-oldest once full, exactly like `RingBuffer::push`).
    #[inline]
    fn recent_push(&mut self, unit: usize, value: f64) {
        let win = self.window();
        let base = unit * win;
        let len = self.recent_len[unit] as usize;
        if len < win {
            self.recent[base + len] = value;
            self.recent_len[unit] = (len + 1) as u32;
        } else {
            let head = self.recent_head[unit] as usize;
            self.recent[base + head] = value;
            self.recent_head[unit] = ((head + 1) % win) as u32;
        }
    }

    /// The config in effect.
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// Current per-unit health states.
    pub fn health(&self) -> &[HealthState] {
        &self.health
    }

    /// Whether `unit` is currently isolated (pinned, no priority).
    #[inline]
    pub fn is_isolated(&self, unit: usize) -> bool {
        self.health[unit].is_isolated()
    }

    /// Run counters.
    pub fn stats(&self) -> &GuardStats {
        &self.stats
    }

    /// Upper bound on the cap currently in force per unit (the believed-cap
    /// budget invariant accounts suspect actuators at this value).
    pub fn believed(&self) -> &[Watts] {
        &self.believed
    }

    /// Rebases the guard onto a new budget after a dynamic budget change.
    ///
    /// `new_fallback` is the constant-allocation cap under the new budget
    /// (what isolated units are pinned to from the next cycle on). Detector
    /// state, health machines, and actuator beliefs all carry over: a
    /// believed cap describes what the hardware is holding, which a budget
    /// change does not alter. The next [`TelemetryGuard::finish_cycle`]
    /// enforces the believed-cap invariant against the new budget.
    pub fn set_budget(&mut self, new_budget: Watts, new_fallback: Watts) {
        self.total_budget = new_budget;
        self.fallback_cap = new_fallback;
        // Units that never saw a request or readback are still accounted at
        // the fallback; keep that accounting coherent with the new budget.
        for u in 0..self.health.len() {
            if !self.actuator_suspect[u] && !self.requested[u].is_finite() {
                self.believed[u] = new_fallback;
            }
        }
    }

    /// Gates one cycle of measurements. Rejected readings are replaced by
    /// the unit's last accepted value (skip-and-hold, matching the history
    /// layer's own non-finite policy). Also advances the health state
    /// machine with this cycle's verdict (sensor gates + stuck detection +
    /// last readback's write-verification result).
    pub fn sanitize(&mut self, measured: &[Watts]) -> &[Watts] {
        let n = self.health.len();
        assert_eq!(measured.len(), n, "one reading per unit");
        if !self.config.enabled {
            self.sanitized.copy_from_slice(measured);
            return &self.sanitized;
        }
        let hi = self.limits.max_cap * self.config.range_factor;
        let lo = -self.config.range_margin;
        let win = self.window();
        for (u, &raw) in measured.iter().enumerate() {
            // Fold in the actuator verdict from the last readback.
            let mut bad = std::mem::take(&mut self.actuator_bad[u]);

            // Sensor gates: non-finite, plausibility range, innovation.
            let sensor_ok = raw.is_finite()
                && raw >= lo
                && raw <= hi
                && !(self.has_held[u] && (raw - self.held[u]).abs() > self.config.innovation_limit);
            if !sensor_ok {
                bad = true;
                self.stats.rejected_samples += 1;
            }

            // Stuck detection on the raw (finite) stream: plausible but
            // frozen values pass the gates yet betray a dead sensor.
            if raw.is_finite() && self.config.stuck_window > 0 {
                self.recent_push(u, raw);
                if self.recent_len[u] as usize == self.config.stuck_window {
                    // Min/max are order-insensitive: scan the arena slots
                    // physically (the ring is full, so all `win` are live).
                    let base = u * win;
                    let mut mn = f64::INFINITY;
                    let mut mx = f64::NEG_INFINITY;
                    for &v in &self.recent[base..base + win] {
                        mn = mn.min(v);
                        mx = mx.max(v);
                    }
                    if mx - mn <= self.config.stuck_epsilon {
                        bad = true;
                        self.stats.stuck_trips += 1;
                    }
                }
            }

            self.sanitized[u] = if sensor_ok {
                self.held[u] = raw;
                self.has_held[u] = true;
                raw
            } else {
                self.held[u] // 0.0 before the first accepted sample
            };

            // Advance the health state machine.
            if bad {
                self.bad_streak[u] += 1;
                self.good_streak[u] = 0;
                match self.health[u] {
                    HealthState::Healthy | HealthState::Suspect => {
                        if self.bad_streak[u] >= self.config.quarantine_after {
                            self.health[u] = HealthState::Quarantined;
                            self.stats.quarantine_entries += 1;
                        } else {
                            self.health[u] = HealthState::Suspect;
                        }
                    }
                    HealthState::Probation => self.health[u] = HealthState::Quarantined,
                    HealthState::Quarantined => {}
                }
            } else {
                self.good_streak[u] += 1;
                self.bad_streak[u] = 0;
                match self.health[u] {
                    HealthState::Healthy => {}
                    HealthState::Suspect => self.health[u] = HealthState::Healthy,
                    HealthState::Quarantined => {
                        if self.good_streak[u] >= self.config.probation_after {
                            self.health[u] = HealthState::Probation;
                            self.good_streak[u] = 0;
                        }
                    }
                    HealthState::Probation => {
                        if self.good_streak[u] >= self.config.readmit_after {
                            self.health[u] = HealthState::Healthy;
                            self.stats.readmissions += 1;
                        }
                    }
                }
            }
        }
        &self.sanitized
    }

    /// Pins every isolated unit at the fallback cap. If pinning pushes the
    /// sum over the budget, the overshoot is reclaimed proportionally from
    /// healthy units holding more than the fallback — which always suffices
    /// (`n * fallback <= budget`) and never pushes a healthy unit below the
    /// constant-allocation lower bound.
    pub fn pin_caps(&mut self, caps: &mut [Watts], changed: &mut [bool]) {
        if !self.config.enabled {
            return;
        }
        let eps = crate::budget::BUDGET_EPSILON;
        let mut any_isolated = false;
        for (u, state) in self.health.iter().enumerate() {
            if state.is_isolated() && (caps[u] - self.fallback_cap).abs() > eps {
                caps[u] = self.fallback_cap;
                changed[u] = true;
                any_isolated = true;
            } else if state.is_isolated() {
                any_isolated = true;
            }
        }
        if !any_isolated {
            return;
        }
        let need = caps.iter().sum::<f64>() - self.total_budget;
        if need <= eps {
            return;
        }
        // Reclaim proportionally from healthy headroom above the fallback.
        let headroom: f64 = self
            .health
            .iter()
            .enumerate()
            .filter(|(_, state)| !state.is_isolated())
            .map(|(u, _)| (caps[u] - self.fallback_cap).max(0.0))
            .sum();
        if headroom <= 0.0 {
            return; // cannot happen while pins only raise toward fallback
        }
        let scale = (need / headroom).min(1.0);
        for (u, state) in self.health.iter().enumerate() {
            if state.is_isolated() {
                continue;
            }
            let give = (caps[u] - self.fallback_cap).max(0.0) * scale;
            if give > eps {
                caps[u] -= give;
                changed[u] = true;
            }
        }
    }

    /// End-of-cycle bookkeeping: enforce the believed-cap budget (suspect
    /// actuators are accounted at `max(request, last readback)`; honest
    /// units shrink to compensate, first to the fallback cap, then toward
    /// the hardware floor) and record the requests for the next write
    /// verification.
    pub fn finish_cycle(&mut self, caps: &mut [Watts], changed: &mut [bool]) {
        if !self.config.enabled {
            return;
        }
        let eps = crate::budget::BUDGET_EPSILON;
        if self.has_readback {
            let believed_sum: f64 = self
                .actuator_suspect
                .iter()
                .enumerate()
                .map(|(u, &suspect)| {
                    if suspect {
                        caps[u].max(self.believed[u])
                    } else {
                        caps[u]
                    }
                })
                .sum();
            let mut excess = believed_sum - self.total_budget;
            if excess > eps {
                // Pass 1: shrink honest units above the fallback cap.
                excess -= shrink_proportionally(caps, changed, excess, self.fallback_cap, |u| {
                    !self.actuator_suspect[u]
                });
            }
            if excess > eps {
                // Pass 2: shrink every honest unit toward the hardware floor.
                excess -= shrink_proportionally(caps, changed, excess, self.limits.min_cap, |u| {
                    !self.actuator_suspect[u]
                });
            }
            if excess > eps {
                self.stats.saturated_cycles += 1;
            }
        }
        for (u, &cap) in caps.iter().enumerate() {
            self.requested[u] = cap;
            self.believed[u] = if self.actuator_suspect[u] {
                self.believed[u].max(cap)
            } else {
                cap
            };
        }
    }

    /// Write verification: `applied` is the per-unit cap read back from the
    /// hardware after programming. A readback that disagrees with the
    /// request beyond the verify tolerance marks the actuator suspect and
    /// counts as a bad cycle for the health machine; a clean readback
    /// restores actuation trust (the health machine still demands its
    /// probation streak before un-pinning the unit).
    pub fn observe_applied(&mut self, applied: &[Watts]) {
        if !self.config.enabled {
            return;
        }
        assert_eq!(applied.len(), self.health.len(), "one readback per unit");
        self.has_readback = true;
        for (u, &got) in applied.iter().enumerate() {
            if !got.is_finite() {
                // A garbage readback is itself actuator evidence.
                self.actuator_bad[u] = true;
                self.actuator_suspect[u] = true;
                self.stats.write_mismatches += 1;
                continue;
            }
            let req = self.requested[u];
            if req.is_finite() && (got - req).abs() > self.config.verify_epsilon {
                self.actuator_bad[u] = true;
                self.actuator_suspect[u] = true;
                self.stats.write_mismatches += 1;
                // The in-force cap is whichever is higher: what the hardware
                // admits to, or the request that may still land late.
                self.believed[u] = got.max(req);
            } else {
                self.actuator_suspect[u] = false;
                self.believed[u] = got;
            }
        }
    }

    /// Serializes the guard's dynamic state into a snapshot payload.
    pub(crate) fn encode(&self, w: &mut crate::checkpoint::ByteWriter) {
        w.put_bool(self.has_readback);
        for v in [
            self.stats.rejected_samples,
            self.stats.stuck_trips,
            self.stats.write_mismatches,
            self.stats.quarantine_entries,
            self.stats.readmissions,
            self.stats.saturated_cycles,
        ] {
            w.put_u64(v);
        }
        let win = self.window();
        for u in 0..self.health.len() {
            w.put_u8(match self.health[u] {
                HealthState::Healthy => 0,
                HealthState::Suspect => 1,
                HealthState::Quarantined => 2,
                HealthState::Probation => 3,
            });
            w.put_u32(self.bad_streak[u]);
            w.put_u32(self.good_streak[u]);
            w.put_f64(self.held[u]);
            w.put_bool(self.has_held[u]);
            // Recent ring in logical (oldest-first) order — byte-identical
            // to the former `put_f64_slice(&recent.as_vec())`.
            let len = self.recent_len[u] as usize;
            let head = self.recent_head[u] as usize;
            let base = u * win;
            w.put_usize(len);
            for i in 0..len {
                w.put_f64(self.recent[base + ring_phys(win, len, head, i)]);
            }
            w.put_bool(self.actuator_bad[u]);
            w.put_bool(self.actuator_suspect[u]);
        }
        w.put_f64_slice(&self.requested);
        w.put_f64_slice(&self.believed);
    }

    /// Restores dynamic state from a snapshot payload written by
    /// [`TelemetryGuard::encode`] onto a guard with the same shape.
    pub(crate) fn decode(
        &mut self,
        r: &mut crate::checkpoint::ByteReader<'_>,
    ) -> Result<(), String> {
        let n = self.health.len();
        self.has_readback = r.get_bool()?;
        self.stats = GuardStats {
            rejected_samples: r.get_u64()?,
            stuck_trips: r.get_u64()?,
            write_mismatches: r.get_u64()?,
            quarantine_entries: r.get_u64()?,
            readmissions: r.get_u64()?,
            saturated_cycles: r.get_u64()?,
        };
        let ring_cap = self.config.stuck_window.max(1);
        for u in 0..n {
            let state = match r.get_u8()? {
                0 => HealthState::Healthy,
                1 => HealthState::Suspect,
                2 => HealthState::Quarantined,
                3 => HealthState::Probation,
                b => return Err(format!("invalid health-state byte {b:#x}")),
            };
            let bad_streak = r.get_u32()?;
            let good_streak = r.get_u32()?;
            let held = r.get_f64()?;
            let has_held = r.get_bool()?;
            let recent_vals = r.get_f64_vec(ring_cap)?;
            let actuator_bad = r.get_bool()?;
            let actuator_suspect = r.get_bool()?;
            self.health[u] = state;
            self.bad_streak[u] = bad_streak;
            self.good_streak[u] = good_streak;
            self.held[u] = held;
            self.has_held[u] = has_held;
            // Lay the ring down sequentially (head 0) — logical order is
            // preserved, matching a fresh `RingBuffer` re-pushed in order.
            let base = u * ring_cap;
            for (i, v) in recent_vals.iter().enumerate() {
                self.recent[base + i] = *v;
            }
            self.recent_len[u] = recent_vals.len() as u32;
            self.recent_head[u] = 0;
            self.actuator_bad[u] = actuator_bad;
            self.actuator_suspect[u] = actuator_suspect;
        }
        let requested = r.get_f64_vec(n)?;
        let believed = r.get_f64_vec(n)?;
        if requested.len() != n || believed.len() != n {
            return Err(format!(
                "cap-belief vectors sized {}/{} for {n} units",
                requested.len(),
                believed.len()
            ));
        }
        self.requested = requested;
        self.believed = believed;
        Ok(())
    }

    /// Resets one unit's health machine to a fresh `Healthy` state (unit
    /// churn: a socket joining or leaving scheduler management). The old
    /// occupant's streaks, held sample, and actuator suspicion describe a
    /// job that is gone; the believed cap falls back to the constant
    /// allocation until the next readback. Cumulative [`GuardStats`] are
    /// deliberately kept — they count run-wide incidents, not tenancies.
    pub fn reset_unit(&mut self, unit: usize) {
        self.health[unit] = HealthState::Healthy;
        self.bad_streak[unit] = 0;
        self.good_streak[unit] = 0;
        self.held[unit] = 0.0;
        self.has_held[unit] = false;
        // Stale arena slots are unreachable at len 0: every slot is written
        // before the full-window min/max scan can observe it.
        self.recent_len[unit] = 0;
        self.recent_head[unit] = 0;
        self.actuator_bad[unit] = false;
        self.actuator_suspect[unit] = false;
        self.sanitized[unit] = 0.0;
        self.requested[unit] = f64::NAN;
        self.believed[unit] = self.fallback_cap;
    }

    /// Resets all detector and belief state (between repetitions).
    pub fn reset(&mut self) {
        self.health.fill(HealthState::Healthy);
        self.bad_streak.fill(0);
        self.good_streak.fill(0);
        self.held.fill(0.0);
        self.has_held.fill(false);
        self.recent_len.fill(0);
        self.recent_head.fill(0);
        self.actuator_bad.fill(false);
        self.actuator_suspect.fill(false);
        self.sanitized.fill(0.0);
        self.requested.fill(f64::NAN);
        self.believed.fill(self.fallback_cap);
        self.has_readback = false;
        self.stats = GuardStats::default();
    }
}

/// Shrinks `caps[u]` toward `floor` for units selected by `keep`,
/// proportionally to their headroom above the floor, until `amount` Watts
/// are recovered or the headroom is exhausted. Returns the Watts recovered.
fn shrink_proportionally(
    caps: &mut [Watts],
    changed: &mut [bool],
    amount: Watts,
    floor: Watts,
    keep: impl Fn(usize) -> bool,
) -> Watts {
    let eps = crate::budget::BUDGET_EPSILON;
    let headroom: f64 = (0..caps.len())
        .filter(|&u| keep(u))
        .map(|u| (caps[u] - floor).max(0.0))
        .sum();
    if headroom <= eps {
        return 0.0;
    }
    let scale = (amount / headroom).min(1.0);
    let mut recovered = 0.0;
    for u in 0..caps.len() {
        if !keep(u) {
            continue;
        }
        let give = (caps[u] - floor).max(0.0) * scale;
        if give > eps {
            caps[u] -= give;
            changed[u] = true;
            recovered += give;
        }
    }
    recovered
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: UnitLimits = UnitLimits {
        min_cap: 40.0,
        max_cap: 165.0,
    };

    fn guard(n: usize, cfg: GuardConfig) -> TelemetryGuard {
        TelemetryGuard::new(n, 110.0 * n as f64, LIMITS, 110.0, cfg)
    }

    fn cfg() -> GuardConfig {
        GuardConfig {
            stuck_window: 4,
            quarantine_after: 2,
            probation_after: 2,
            readmit_after: 3,
            ..GuardConfig::default()
        }
    }

    /// Feeds `reading` with a deterministic wiggle so stuck detection stays
    /// quiet on healthy units.
    fn wiggle(base: f64, t: usize) -> f64 {
        base + 0.2 * ((t % 5) as f64 - 2.0)
    }

    #[test]
    fn clean_stream_stays_healthy_and_untouched() {
        let mut g = guard(2, cfg());
        for t in 0..50 {
            let m = [wiggle(100.0, t), wiggle(60.0, t + 3)];
            let s = g.sanitize(&m).to_vec();
            assert_eq!(s, m, "sanitized must equal raw for clean input");
        }
        assert_eq!(g.health(), &[HealthState::Healthy; 2]);
        assert_eq!(g.stats().rejected_samples, 0);
    }

    #[test]
    fn non_finite_readings_are_held_and_quarantine() {
        let mut g = guard(1, cfg());
        g.sanitize(&[95.0]);
        for i in 0..4 {
            let s = g.sanitize(&[f64::NAN]);
            assert_eq!(s[0], 95.0, "cycle {i}: hold last accepted value");
        }
        assert_eq!(g.health()[0], HealthState::Quarantined);
        assert!(g.is_isolated(0));
    }

    #[test]
    fn range_gate_rejects_corrupted_counter_decodes() {
        let mut g = guard(1, cfg());
        g.sanitize(&[110.0]);
        let s = g.sanitize(&[262_144.0]); // corrupted-counter scale
        assert_eq!(s[0], 110.0);
        assert_eq!(g.health()[0], HealthState::Suspect);
        assert_eq!(g.stats().rejected_samples, 1);
    }

    #[test]
    fn single_clean_cycle_clears_suspect() {
        let mut g = guard(1, cfg());
        g.sanitize(&[100.0]);
        g.sanitize(&[-900.0]);
        assert_eq!(g.health()[0], HealthState::Suspect);
        g.sanitize(&[101.0]);
        assert_eq!(g.health()[0], HealthState::Healthy);
    }

    #[test]
    fn legitimate_full_swing_passes_innovation_gate() {
        let mut g = guard(1, cfg());
        g.sanitize(&[15.0]);
        let s = g.sanitize(&[165.0]); // idle → TDP in one cycle is physical
        assert_eq!(s[0], 165.0);
        assert_eq!(g.health()[0], HealthState::Healthy);
    }

    #[test]
    fn spike_beyond_innovation_limit_rejected() {
        let mut g = guard(1, cfg());
        g.sanitize(&[30.0]);
        let s = g.sanitize(&[245.0]); // +215 jump: beyond any physical swing
        assert_eq!(s[0], 30.0);
        assert_eq!(g.stats().rejected_samples, 1);
    }

    #[test]
    fn stuck_sensor_detected_by_zero_variance_window() {
        let mut g = guard(1, cfg());
        for t in 0..3 {
            g.sanitize(&[wiggle(90.0, t)]);
        }
        // Frozen at a perfectly plausible value.
        for _ in 0..6 {
            g.sanitize(&[120.0]);
        }
        assert_eq!(g.health()[0], HealthState::Quarantined);
        assert!(g.stats().stuck_trips > 0);
    }

    #[test]
    fn stuck_detection_disabled_with_zero_window() {
        let mut g = guard(
            1,
            GuardConfig {
                stuck_window: 0,
                ..cfg()
            },
        );
        for _ in 0..50 {
            g.sanitize(&[120.0]);
        }
        assert_eq!(g.health()[0], HealthState::Healthy);
    }

    #[test]
    fn quarantine_then_probation_then_readmission() {
        let mut g = guard(1, cfg());
        g.sanitize(&[100.0]);
        for _ in 0..3 {
            g.sanitize(&[f64::INFINITY]);
        }
        assert_eq!(g.health()[0], HealthState::Quarantined);
        // probation_after=2 clean cycles → Probation (still isolated).
        for t in 0..2 {
            g.sanitize(&[wiggle(100.0, t)]);
        }
        assert_eq!(g.health()[0], HealthState::Probation);
        assert!(g.is_isolated(0));
        // readmit_after=3 more clean cycles → Healthy.
        for t in 2..5 {
            g.sanitize(&[wiggle(100.0, t)]);
        }
        assert_eq!(g.health()[0], HealthState::Healthy);
        assert_eq!(g.stats().readmissions, 1);
    }

    #[test]
    fn bad_cycle_during_probation_returns_to_quarantine() {
        let mut g = guard(1, cfg());
        g.sanitize(&[100.0]);
        for _ in 0..3 {
            g.sanitize(&[f64::NAN]);
        }
        for t in 0..2 {
            g.sanitize(&[wiggle(100.0, t)]);
        }
        assert_eq!(g.health()[0], HealthState::Probation);
        g.sanitize(&[f64::NAN]);
        assert_eq!(g.health()[0], HealthState::Quarantined);
    }

    #[test]
    fn pin_caps_reclaims_from_healthy_above_fallback() {
        let mut g = guard(3, cfg());
        // Quarantine unit 0.
        g.sanitize(&[100.0, 100.0, 100.0]);
        for _ in 0..3 {
            g.sanitize(&[f64::NAN, wiggle(100.0, 1), wiggle(100.0, 2)]);
        }
        assert!(g.is_isolated(0));
        // MIMD left unit 0 low and unit 1 holding the grabbed budget.
        let mut caps = [45.0, 165.0, 110.0];
        let mut changed = [false; 3];
        g.pin_caps(&mut caps, &mut changed);
        assert_eq!(caps[0], 110.0, "isolated unit pinned at fallback");
        // Sum was 45+165+110=320 ≤ 330; pin pushes to 385 → 55 reclaimed
        // from unit 1 (the only healthy unit above fallback).
        assert!((caps[1] - 110.0).abs() < 1e-9, "{caps:?}");
        assert!((caps[2] - 110.0).abs() < 1e-9, "{caps:?}");
        assert!(caps.iter().sum::<f64>() <= 330.0 + 1e-9);
        assert!(caps[1] >= 110.0 - 1e-9, "healthy never below fallback");
    }

    #[test]
    fn write_mismatch_marks_actuator_suspect_and_feeds_state_machine() {
        let mut g = guard(2, cfg());
        let mut caps = [110.0, 110.0];
        let mut changed = [false; 2];
        g.sanitize(&[wiggle(100.0, 0), wiggle(100.0, 1)]);
        g.finish_cycle(&mut caps, &mut changed);
        // Hardware silently kept unit 0 at 165 W.
        g.observe_applied(&[165.0, 110.0]);
        assert_eq!(g.stats().write_mismatches, 1);
        // Next sanitize consumes the verdict: unit 0 goes suspect.
        g.sanitize(&[wiggle(100.0, 2), wiggle(100.0, 3)]);
        assert_eq!(g.health()[0], HealthState::Suspect);
        assert_eq!(g.health()[1], HealthState::Healthy);
    }

    #[test]
    fn believed_budget_shrinks_honest_units_under_rogue_actuator() {
        let mut g = guard(2, cfg());
        let mut caps = [110.0, 110.0];
        let mut changed = [false; 2];
        g.sanitize(&[wiggle(100.0, 0), wiggle(100.0, 1)]);
        g.finish_cycle(&mut caps, &mut changed);
        // Unit 0's actuator is stuck at 165 W and ignores the 110 W request.
        g.observe_applied(&[165.0, 110.0]);
        g.sanitize(&[wiggle(100.0, 2), wiggle(100.0, 3)]);
        let mut caps = [110.0, 110.0];
        let mut changed = [false; 2];
        g.finish_cycle(&mut caps, &mut changed);
        // Believed: unit 0 at 165 (readback), unit 1 honest at its request.
        // 165 + caps[1] ≤ 220 → unit 1 shrunk to 55.
        assert_eq!(caps[0], 110.0, "keep requesting the fallback");
        assert!(
            caps[1] <= 55.0 + 1e-9,
            "honest unit absorbs the excess: {caps:?}"
        );
        assert!(caps[1] >= LIMITS.min_cap - 1e-9);
    }

    #[test]
    fn clean_readback_restores_actuation_trust() {
        let mut g = guard(2, cfg());
        let mut caps = [110.0, 110.0];
        let mut changed = [false; 2];
        g.sanitize(&[wiggle(100.0, 0), wiggle(100.0, 1)]);
        g.finish_cycle(&mut caps, &mut changed);
        g.observe_applied(&[165.0, 110.0]); // mismatch
        g.sanitize(&[wiggle(100.0, 2), wiggle(100.0, 3)]);
        let mut caps = [110.0, 110.0];
        g.finish_cycle(&mut caps, &mut [false; 2]);
        g.observe_applied(&[caps[0], 110.0]); // write landed: trust restored
        g.sanitize(&[wiggle(100.0, 4), wiggle(100.0, 5)]);
        let mut caps = [110.0, 110.0];
        g.finish_cycle(&mut caps, &mut [false; 2]);
        assert_eq!(
            caps,
            [110.0, 110.0],
            "no believed-cap shrinking once trusted"
        );
    }

    #[test]
    fn quantized_readback_within_tolerance_is_clean() {
        let mut g = guard(1, cfg());
        let mut caps = [110.04];
        g.sanitize(&[100.0]);
        g.finish_cycle(&mut caps, &mut [false]);
        g.observe_applied(&[110.0]); // 0.04 W rounding ≪ verify_epsilon
        g.sanitize(&[100.2]);
        assert_eq!(g.health()[0], HealthState::Healthy);
        assert_eq!(g.stats().write_mismatches, 0);
    }

    #[test]
    fn disabled_guard_is_transparent() {
        let mut g = guard(
            2,
            GuardConfig {
                enabled: false,
                ..cfg()
            },
        );
        let m = [f64::NAN, 500.0];
        let s = g.sanitize(&m);
        assert!(s[0].is_nan());
        assert_eq!(s[1], 500.0);
        let mut caps = [160.0, 60.0];
        let mut changed = [false; 2];
        g.pin_caps(&mut caps, &mut changed);
        g.finish_cycle(&mut caps, &mut changed);
        assert_eq!(caps, [160.0, 60.0]);
        assert_eq!(changed, [false; 2]);
    }

    #[test]
    fn reset_clears_all_state() {
        let mut g = guard(1, cfg());
        g.sanitize(&[100.0]);
        for _ in 0..3 {
            g.sanitize(&[f64::NAN]);
        }
        assert!(g.is_isolated(0));
        g.reset();
        assert_eq!(g.health()[0], HealthState::Healthy);
        assert_eq!(g.stats(), &GuardStats::default());
        let s = g.sanitize(&[80.0]);
        assert_eq!(s[0], 80.0);
    }

    #[test]
    fn validate_rejects_nonsense() {
        assert!(GuardConfig {
            range_factor: 0.5,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(GuardConfig {
            quarantine_after: 0,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(GuardConfig {
            verify_epsilon: -1.0,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(cfg().validate().is_ok());
    }
}
