//! The DPS power managers — the paper's primary contribution.
//!
//! Four cluster-level power managers share one interface
//! ([`manager::PowerManager`]): every decision cycle they observe per-unit
//! power measurements and assign per-unit power caps whose sum respects the
//! cluster-wide budget.
//!
//! * [`constant`] — **Constant allocation**: every unit gets
//!   `budget / n` forever. The robust baseline every figure normalises to.
//! * [`stateless`] — the **stateless MIMD module** (paper Alg. 1), a
//!   Multiplicative-Increase-Multiplicative-Decrease controller "inspired by
//!   SLURM's power management system". Standalone it is the SLURM
//!   comparator; inside DPS it produces the temporary allocation the
//!   readjusting module refines.
//! * [`dps`] — the **Dynamic Power Scheduler**: stateless module + Kalman-
//!   filtered power history (§4.3.2) + priority module over *power dynamics*
//!   (Alg. 2: prominent-peak frequency, windowed first derivative) + cap
//!   restore/readjust (Algs. 3–4) that guarantees the constant-allocation
//!   lower bound.
//! * [`oracle`] — a perfect-knowledge allocator that sees true demand and
//!   distributes the budget demand-proportionally (the paper's oracle for
//!   the low-utility study).
//!
//! Three further baselines implement the related-work archetypes the paper
//! positions itself against (§2): [`feedback`] (a PShifter-style PI
//! headroom equalizer), [`predictive`] (a PoDD/PANN-lite online demand
//! model feeding demand-proportional allocation) and [`twolevel`] (an
//! Argo-style node→socket stateless hierarchy).
//!
//! Module inventory: [`config`] holds every tunable with the paper's
//! defaults; [`history`] is the per-unit state DPS tracks (the *only* state —
//! "the state is simply the recent power usage changes"); [`priority`],
//! [`readjust`] implement Algs. 2–4; [`budget`] has the shared
//! budget-arithmetic helpers and invariant checks; [`guard`] adds the
//! telemetry health gate (sensor sanitation, quarantine/readmission state
//! machine, actuator write verification); [`mode`] is the cluster-level
//! graceful-degradation ladder (`Normal → Degraded → SafeMode`) driven by a
//! per-cycle confidence report; [`checkpoint`] serializes the DPS manager
//! for crash recovery.

#![warn(missing_docs)]

pub mod budget;
pub mod checkpoint;
mod columns;
pub mod config;
pub mod constant;
pub mod dps;
pub mod feedback;
pub mod guard;
pub mod history;
pub mod manager;
pub mod mode;
pub mod oracle;
pub mod predictive;
pub mod priority;
pub mod qdpm;
pub mod readjust;
pub mod sharded;
pub mod stateless;
pub mod twolevel;

pub use config::{DpsConfig, MimdConfig};
pub use constant::ConstantManager;
pub use dps::DpsManager;
pub use feedback::{FeedbackConfig, FeedbackManager};
pub use guard::{GuardConfig, GuardStats, HealthState, TelemetryGuard};
pub use manager::{ManagerKind, PowerManager, ShardSpan, UnitLimits};
pub use mode::{ConfidenceReport, ModeConfig, ModeMachine, OperatingMode};
pub use oracle::OracleManager;
pub use predictive::{PredictiveConfig, PredictiveManager};
pub use qdpm::{QdpmConfig, QdpmManager};
pub use sharded::{allocate_grants, AllocatorConfig, ShardedManager};
pub use stateless::SlurmManager;
pub use twolevel::TwoLevelManager;
