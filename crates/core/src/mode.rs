//! Operating-mode ladder: graceful degradation under lost telemetry trust.
//!
//! The guard ([`crate::TelemetryGuard`]) defends against *individual* rogue
//! sensors and actuators. When faults stop being individual — a rack's
//! telemetry aggregator browns out, the control plane starts dropping half
//! its frames — per-unit quarantine is the wrong tool: the manager is now
//! steering on a minority of trustworthy inputs and every "adaptive"
//! decision amplifies noise. This module adds the missing cluster-level
//! reflex, a three-rung ladder driven by a per-cycle confidence report:
//!
//! * **Normal** — full adaptive pipeline.
//! * **Degraded** — readjustment frozen; the cluster holds the last caps
//!   computed while confidence was good (those provably satisfied the
//!   budget, and frozen caps cannot chase corrupted telemetry).
//! * **SafeMode** — zero sensor trust: uniform constant-allocation caps
//!   (`budget / n`, clamped to the hardware window), which satisfy the
//!   budget invariant by construction with no telemetry input at all.
//!
//! Descent is immediate (a collapsing signal must not wait out a streak);
//! re-ascent is hysteretic and one rung at a time: `recover_after`
//! consecutive clean cycles climb `SafeMode → Degraded`, and the same
//! streak again climbs `Degraded → Normal`. The asymmetry is deliberate —
//! flapping between modes is itself a failure mode, and the cost of staying
//! one rung too low for a few cycles is bounded (constant allocation is the
//! paper's lower-bound baseline, not an outage).

use serde::{Deserialize, Serialize};

/// The cluster-level operating mode (severity-ordered: higher is worse).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OperatingMode {
    /// Full adaptive pipeline; telemetry is trusted.
    Normal,
    /// Readjustment frozen at the last-known-good caps.
    Degraded,
    /// Telemetry-blind uniform proportional caps.
    SafeMode,
}

impl OperatingMode {
    /// Trace vocabulary for this mode.
    pub fn to_obs(self) -> dps_obs::ModeKind {
        match self {
            OperatingMode::Normal => dps_obs::ModeKind::Normal,
            OperatingMode::Degraded => dps_obs::ModeKind::Degraded,
            OperatingMode::SafeMode => dps_obs::ModeKind::SafeMode,
        }
    }

    /// One rung up the ladder (toward `Normal`); identity at the top.
    fn ascend(self) -> Self {
        match self {
            OperatingMode::Normal | OperatingMode::Degraded => OperatingMode::Normal,
            OperatingMode::SafeMode => OperatingMode::Degraded,
        }
    }
}

impl std::fmt::Display for OperatingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OperatingMode::Normal => "normal",
            OperatingMode::Degraded => "degraded",
            OperatingMode::SafeMode => "safe_mode",
        };
        f.write_str(s)
    }
}

/// One cycle's evidence about how much the control pipeline can be trusted.
///
/// Fractions outside `[0, 1]` (including NaN — e.g. a division by a zero
/// unit count during total churn) are clamped to the *pessimistic* end:
/// a confidence report the cluster cannot even compute is itself evidence
/// of trouble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceReport {
    /// Fraction of managed units currently isolated by the telemetry guard
    /// (quarantined or on probation). `0.0` when no guard is attached.
    pub quarantined_frac: f64,
    /// Fraction of units whose control-plane frames went stale or missing
    /// this cycle (gather misses / delayed apply). `0.0` on a direct plane.
    pub stale_frac: f64,
    /// This cycle brushed a budget invariant (an applied-power reading over
    /// the believed budget, within the grace window).
    pub near_miss: bool,
}

impl ConfidenceReport {
    /// A fully clean cycle.
    pub fn clean() -> Self {
        Self {
            quarantined_frac: 0.0,
            stale_frac: 0.0,
            near_miss: false,
        }
    }
}

/// Thresholds for the mode ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModeConfig {
    /// Master switch; `false` pins the machine at `Normal` (the pre-ladder
    /// behaviour, byte-identical traces).
    pub enabled: bool,
    /// Quarantined-unit fraction at or above which `Degraded` is entered.
    pub degrade_quarantine_frac: f64,
    /// Quarantined-unit fraction at or above which `SafeMode` is entered.
    pub safe_quarantine_frac: f64,
    /// Stale-frame fraction at or above which `Degraded` is entered.
    pub degrade_stale_frac: f64,
    /// Stale-frame fraction at or above which `SafeMode` is entered.
    pub safe_stale_frac: f64,
    /// Consecutive invariant near-misses that force `Degraded`.
    pub near_miss_degrade: u32,
    /// Consecutive invariant near-misses that force `SafeMode`.
    pub near_miss_safe: u32,
    /// Consecutive clean cycles required to climb one rung.
    pub recover_after: u32,
}

impl Default for ModeConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            degrade_quarantine_frac: 0.35,
            safe_quarantine_frac: 0.6,
            degrade_stale_frac: 0.5,
            safe_stale_frac: 0.8,
            near_miss_degrade: 3,
            near_miss_safe: 8,
            recover_after: 12,
        }
    }
}

impl ModeConfig {
    /// Validates threshold ordering and ranges.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("degrade_quarantine_frac", self.degrade_quarantine_frac),
            ("safe_quarantine_frac", self.safe_quarantine_frac),
            ("degrade_stale_frac", self.degrade_stale_frac),
            ("safe_stale_frac", self.safe_stale_frac),
        ] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
        }
        if self.degrade_quarantine_frac > self.safe_quarantine_frac {
            return Err("degrade_quarantine_frac must not exceed safe_quarantine_frac".into());
        }
        if self.degrade_stale_frac > self.safe_stale_frac {
            return Err("degrade_stale_frac must not exceed safe_stale_frac".into());
        }
        if self.near_miss_degrade == 0 || self.near_miss_safe < self.near_miss_degrade {
            return Err("need 1 <= near_miss_degrade <= near_miss_safe".into());
        }
        if self.recover_after == 0 {
            return Err("recover_after must be >= 1".into());
        }
        Ok(())
    }
}

/// The hysteretic mode state machine. Descends immediately when confidence
/// collapses; re-ascends one rung per sustained clean streak.
#[derive(Debug, Clone)]
pub struct ModeMachine {
    config: ModeConfig,
    mode: OperatingMode,
    /// Consecutive cycles with `near_miss` set.
    near_miss_streak: u32,
    /// Consecutive cycles whose evidence supported a higher rung.
    clean_streak: u32,
}

impl ModeMachine {
    /// Creates the machine in `Normal`.
    ///
    /// # Panics
    /// Panics on an invalid config.
    pub fn new(config: ModeConfig) -> Self {
        config.validate().expect("invalid mode config");
        Self {
            config,
            mode: OperatingMode::Normal,
            near_miss_streak: 0,
            clean_streak: 0,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> OperatingMode {
        self.mode
    }

    /// The config in effect.
    pub fn config(&self) -> &ModeConfig {
        &self.config
    }

    /// Consecutive invariant near-misses observed so far.
    pub fn near_miss_streak(&self) -> u32 {
        self.near_miss_streak
    }

    /// The mode the evidence alone calls for, ignoring hysteresis.
    fn target(&self, report: &ConfidenceReport) -> OperatingMode {
        // Pessimistic clamp: an incomputable fraction reads as 1.0.
        let q = if report.quarantined_frac.is_finite() {
            report.quarantined_frac.clamp(0.0, 1.0)
        } else {
            1.0
        };
        let s = if report.stale_frac.is_finite() {
            report.stale_frac.clamp(0.0, 1.0)
        } else {
            1.0
        };
        if q >= self.config.safe_quarantine_frac
            || s >= self.config.safe_stale_frac
            || self.near_miss_streak >= self.config.near_miss_safe
        {
            OperatingMode::SafeMode
        } else if q >= self.config.degrade_quarantine_frac
            || s >= self.config.degrade_stale_frac
            || self.near_miss_streak >= self.config.near_miss_degrade
        {
            OperatingMode::Degraded
        } else {
            OperatingMode::Normal
        }
    }

    /// Feeds one cycle's confidence report. Returns `Some((from, to))` when
    /// the mode changed this cycle.
    pub fn step(&mut self, report: &ConfidenceReport) -> Option<(OperatingMode, OperatingMode)> {
        if !self.config.enabled {
            return None;
        }
        if report.near_miss {
            self.near_miss_streak += 1;
        } else {
            self.near_miss_streak = 0;
        }
        let target = self.target(report);
        let from = self.mode;
        if target > self.mode {
            // Worse: descend immediately, all the way to the target.
            self.mode = target;
            self.clean_streak = 0;
        } else if target < self.mode {
            // Better: climb only after a sustained clean streak, one rung.
            self.clean_streak += 1;
            if self.clean_streak >= self.config.recover_after {
                self.mode = self.mode.ascend();
                self.clean_streak = 0;
            }
        } else {
            self.clean_streak = 0;
        }
        (self.mode != from).then_some((from, self.mode))
    }

    /// Resets to `Normal` with cleared streaks (between repetitions).
    pub fn reset(&mut self) {
        self.mode = OperatingMode::Normal;
        self.near_miss_streak = 0;
        self.clean_streak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quarantine(frac: f64) -> ConfidenceReport {
        ConfidenceReport {
            quarantined_frac: frac,
            ..ConfidenceReport::clean()
        }
    }

    fn stale(frac: f64) -> ConfidenceReport {
        ConfidenceReport {
            stale_frac: frac,
            ..ConfidenceReport::clean()
        }
    }

    fn near_miss() -> ConfidenceReport {
        ConfidenceReport {
            near_miss: true,
            ..ConfidenceReport::clean()
        }
    }

    #[test]
    fn clean_reports_stay_normal() {
        let mut m = ModeMachine::new(ModeConfig::default());
        for _ in 0..100 {
            assert_eq!(m.step(&ConfidenceReport::clean()), None);
        }
        assert_eq!(m.mode(), OperatingMode::Normal);
    }

    #[test]
    fn severity_order_matches_ladder() {
        assert!(OperatingMode::Normal < OperatingMode::Degraded);
        assert!(OperatingMode::Degraded < OperatingMode::SafeMode);
    }

    #[test]
    fn quarantine_fraction_descends_one_or_two_rungs() {
        let mut m = ModeMachine::new(ModeConfig::default());
        assert_eq!(
            m.step(&quarantine(0.4)),
            Some((OperatingMode::Normal, OperatingMode::Degraded))
        );
        // Collapse deepens: straight to SafeMode without a Degraded dwell.
        assert_eq!(
            m.step(&quarantine(0.7)),
            Some((OperatingMode::Degraded, OperatingMode::SafeMode))
        );
        // And a fresh machine facing total collapse skips Degraded.
        let mut m2 = ModeMachine::new(ModeConfig::default());
        assert_eq!(
            m2.step(&quarantine(1.0)),
            Some((OperatingMode::Normal, OperatingMode::SafeMode))
        );
    }

    #[test]
    fn stale_frames_descend() {
        let mut m = ModeMachine::new(ModeConfig::default());
        assert_eq!(m.step(&stale(0.25)), None);
        assert_eq!(
            m.step(&stale(0.5)),
            Some((OperatingMode::Normal, OperatingMode::Degraded))
        );
    }

    #[test]
    fn near_miss_streak_escalates_and_resets() {
        let cfg = ModeConfig::default();
        let mut m = ModeMachine::new(cfg);
        for _ in 0..cfg.near_miss_degrade - 1 {
            assert_eq!(m.step(&near_miss()), None);
        }
        assert_eq!(
            m.step(&near_miss()),
            Some((OperatingMode::Normal, OperatingMode::Degraded))
        );
        // A clean cycle resets the streak; further near-misses count anew.
        m.step(&ConfidenceReport::clean());
        assert_eq!(m.near_miss_streak(), 0);
        for _ in 0..cfg.near_miss_safe {
            m.step(&near_miss());
        }
        assert_eq!(m.mode(), OperatingMode::SafeMode);
    }

    #[test]
    fn reascent_is_hysteretic_and_one_rung() {
        let cfg = ModeConfig::default();
        let mut m = ModeMachine::new(cfg);
        m.step(&quarantine(0.9));
        assert_eq!(m.mode(), OperatingMode::SafeMode);
        // recover_after - 1 clean cycles: still SafeMode.
        for _ in 0..cfg.recover_after - 1 {
            assert_eq!(m.step(&ConfidenceReport::clean()), None);
        }
        assert_eq!(
            m.step(&ConfidenceReport::clean()),
            Some((OperatingMode::SafeMode, OperatingMode::Degraded))
        );
        // The streak restarts for the next rung.
        for _ in 0..cfg.recover_after - 1 {
            assert_eq!(m.step(&ConfidenceReport::clean()), None);
        }
        assert_eq!(
            m.step(&ConfidenceReport::clean()),
            Some((OperatingMode::Degraded, OperatingMode::Normal))
        );
    }

    #[test]
    fn dirty_cycle_restarts_recovery_streak() {
        let cfg = ModeConfig::default();
        let mut m = ModeMachine::new(cfg);
        m.step(&quarantine(0.5));
        assert_eq!(m.mode(), OperatingMode::Degraded);
        for _ in 0..cfg.recover_after - 1 {
            m.step(&ConfidenceReport::clean());
        }
        // Evidence still calling for Degraded zeroes the streak.
        m.step(&quarantine(0.5));
        for _ in 0..cfg.recover_after - 1 {
            assert_eq!(m.step(&ConfidenceReport::clean()), None);
        }
        assert_eq!(m.mode(), OperatingMode::Degraded);
        assert!(m.step(&ConfidenceReport::clean()).is_some());
    }

    #[test]
    fn non_finite_fractions_read_pessimistically() {
        let mut m = ModeMachine::new(ModeConfig::default());
        assert_eq!(
            m.step(&quarantine(f64::NAN)),
            Some((OperatingMode::Normal, OperatingMode::SafeMode))
        );
    }

    #[test]
    fn disabled_machine_never_moves() {
        let mut m = ModeMachine::new(ModeConfig {
            enabled: false,
            ..ModeConfig::default()
        });
        for _ in 0..20 {
            assert_eq!(m.step(&quarantine(1.0)), None);
        }
        assert_eq!(m.mode(), OperatingMode::Normal);
    }

    #[test]
    fn reset_returns_to_normal() {
        let mut m = ModeMachine::new(ModeConfig::default());
        m.step(&quarantine(0.9));
        m.reset();
        assert_eq!(m.mode(), OperatingMode::Normal);
        assert_eq!(m.near_miss_streak(), 0);
    }

    #[test]
    fn validate_rejects_nonsense() {
        assert!(ModeConfig {
            degrade_quarantine_frac: 0.8,
            safe_quarantine_frac: 0.5,
            ..ModeConfig::default()
        }
        .validate()
        .is_err());
        assert!(ModeConfig {
            near_miss_degrade: 0,
            ..ModeConfig::default()
        }
        .validate()
        .is_err());
        assert!(ModeConfig {
            recover_after: 0,
            ..ModeConfig::default()
        }
        .validate()
        .is_err());
        assert!(ModeConfig {
            degrade_stale_frac: f64::NAN,
            ..ModeConfig::default()
        }
        .validate()
        .is_err());
        assert!(ModeConfig::default().validate().is_ok());
    }

    #[test]
    fn obs_mapping_is_total() {
        assert_eq!(OperatingMode::Normal.to_obs(), dps_obs::ModeKind::Normal);
        assert_eq!(
            OperatingMode::Degraded.to_obs(),
            dps_obs::ModeKind::Degraded
        );
        assert_eq!(
            OperatingMode::SafeMode.to_obs(),
            dps_obs::ModeKind::SafeMode
        );
    }
}
