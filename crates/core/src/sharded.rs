//! Hierarchical sharded DPS: a two-level allocation tree.
//!
//! The flat [`DpsManager`] treats the fleet as one budget pool; beyond a few
//! hundred thousand units its decision cycle is dominated by the global
//! passes (MIMD visit order, readjust equalization) that must see every
//! unit. [`ShardedManager`] partitions the fleet into contiguous shards,
//! each an *independent* DPS instance over its own unit slice, and puts a
//! lightweight top-level allocator above them that trades budget between
//! shards once per cycle using aggregate power-dynamics signals:
//!
//! * **demand** — the shard's NaN-robust measured-power sum (dropped-out
//!   sensors must not poison a whole shard's claim);
//! * **demand derivative** — an EWMA of the cycle-over-cycle demand slope,
//!   so a shard ramping into a phase change is granted lead-time headroom
//!   before it saturates;
//! * **priority pressure** — how many of the shard's units the DPS priority
//!   module classified as dynamically active last cycle.
//!
//! Budget safety holds at **every level of the tree, every cycle**: each
//! shard's caps sum to at most its grant (the shard's own DPS contract),
//! and the grants sum to at most the cluster budget (the allocator's
//! water-fill conserves it exactly). [`PowerManager::shard_view`] exposes
//! the spans and grants so external monitors re-check both levels.
//!
//! A single-shard tree is the flat manager: construction hands the parent
//! RNG stream through unchanged and every call delegates, so
//! `ShardedManager` with one shard is **bit-identical** to [`DpsManager`]
//! on caps, priorities, traces and checkpoints (the differential harness in
//! `tests/sharded_equivalence.rs` pins this). Multi-shard trees derive one
//! child RNG stream per shard and, with the `parallel` feature, run the
//! shards on scoped worker threads without locks — shards share no state.

use crate::budget::{debug_assert_budget, BUDGET_EPSILON};
use crate::checkpoint::{ByteReader, ByteWriter};
use crate::config::DpsConfig;
use crate::dps::DpsManager;
use crate::guard::{GuardConfig, GuardStats, HealthState};
use crate::manager::{check_new_budget, ManagerKind, PowerManager, ShardSpan, UnitLimits};
use dps_obs::{Event, SinkHandle};
use dps_sim_core::rng::RngStream;
use dps_sim_core::units::{Seconds, Watts};

/// Tag distinguishing hierarchical snapshots from flat ones: `"SHRD"` as a
/// little-endian u32, written right after the common `DPSC` header. A flat
/// snapshot stores its unit count there instead, so each reader rejects the
/// other's blobs with a clean error rather than misparsing.
pub const SHARD_TAG: u32 = u32::from_le_bytes(*b"SHRD");
/// Sharded snapshot format version (the embedded per-shard blobs carry the
/// flat format's own version independently).
pub const SHARD_VERSION: u32 = 1;

/// Tunables for the top-level inter-shard budget allocator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocatorConfig {
    /// Smoothing factor for the per-shard demand-derivative EWMA (0 = frozen,
    /// 1 = raw slope).
    pub ewma_alpha: f64,
    /// How many seconds of the (positive) demand slope to pre-grant — the
    /// lead time a ramping shard gets before it would saturate.
    pub lead_time_s: f64,
    /// Extra claimed Watts per unit the shard's priority module flagged as
    /// dynamically active last cycle.
    pub priority_boost_w: f64,
    /// Fractional headroom granted on top of measured demand.
    pub headroom_frac: f64,
    /// Skip the regrant entirely when no shard's grant would move by more
    /// than this relative amount — `set_budget` resets shard-internal
    /// budget-derived state, so churning grants on noise is not free. The
    /// skip is all-or-nothing: applying only some of a water-fill's grants
    /// could transiently overshoot the cluster budget.
    pub regrant_deadband: f64,
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        Self {
            ewma_alpha: 0.3,
            lead_time_s: 3.0,
            priority_boost_w: 10.0,
            headroom_frac: 0.1,
            regrant_deadband: 1e-3,
        }
    }
}

impl AllocatorConfig {
    /// Validates every field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.ewma_alpha.is_finite() && (0.0..=1.0).contains(&self.ewma_alpha)) {
            return Err(format!(
                "ewma_alpha must be in [0, 1], got {}",
                self.ewma_alpha
            ));
        }
        for (name, v) in [
            ("lead_time_s", self.lead_time_s),
            ("priority_boost_w", self.priority_boost_w),
            ("headroom_frac", self.headroom_frac),
            ("regrant_deadband", self.regrant_deadband),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be finite and non-negative, got {v}"));
            }
        }
        Ok(())
    }
}

/// Splits `budget` into per-shard grants by weighted water-fill.
///
/// Every grant starts at its shard's floor (`min_cap × units` — below that
/// the shard's own DPS cannot satisfy its hardware minimums); the budget
/// above the floor sum is distributed proportionally to `weights`, spilling
/// a saturated shard's overflow back into the pool until either the budget
/// or every ceiling is exhausted. Non-finite or non-positive weights claim
/// nothing; if no shard claims anything, the surplus is split equally so
/// budget is never stranded.
///
/// Guarantees (the allocator's proptest contract):
/// * conservation — `Σ grants == min(budget, Σ ceilings)` up to float slack,
///   and never above `budget`;
/// * floors — `grants[s] ≥ floors[s]` for every shard;
/// * ceilings — `grants[s] ≤ ceilings[s]` for every shard.
///
/// # Panics
/// Panics when the slices disagree in length, when a floor exceeds its
/// ceiling, or (debug only) when the floors alone exceed the budget.
pub fn allocate_grants(
    budget: Watts,
    floors: &[Watts],
    ceilings: &[Watts],
    weights: &[f64],
    grants: &mut [Watts],
) {
    let k = floors.len();
    assert!(k > 0, "need at least one shard");
    assert_eq!(ceilings.len(), k, "one ceiling per shard");
    assert_eq!(weights.len(), k, "one weight per shard");
    assert_eq!(grants.len(), k, "one grant slot per shard");
    let mut floor_sum = 0.0;
    let mut ceil_sum = 0.0;
    for s in 0..k {
        assert!(
            floors[s] <= ceilings[s] + BUDGET_EPSILON,
            "shard {s} floor {} above its ceiling {}",
            floors[s],
            ceilings[s]
        );
        floor_sum += floors[s];
        ceil_sum += ceilings[s];
    }
    debug_assert!(
        floor_sum <= budget + BUDGET_EPSILON,
        "floors ({floor_sum}) exceed the budget ({budget})"
    );
    grants.copy_from_slice(floors);
    let mut leftover = budget.min(ceil_sum) - floor_sum;
    // Each round either exhausts the leftover or saturates at least one
    // shard, so k+1 rounds always suffice.
    let mut rounds = 0;
    while leftover > BUDGET_EPSILON && rounds <= k {
        rounds += 1;
        let mut total_w = 0.0;
        for s in 0..k {
            if grants[s] < ceilings[s] - BUDGET_EPSILON
                && weights[s].is_finite()
                && weights[s] > 0.0
            {
                total_w += weights[s];
            }
        }
        let mut given = 0.0;
        if total_w > 0.0 {
            for s in 0..k {
                let w = weights[s];
                if grants[s] >= ceilings[s] - BUDGET_EPSILON || !(w.is_finite() && w > 0.0) {
                    continue;
                }
                let add = (leftover * w / total_w).min(ceilings[s] - grants[s]);
                grants[s] += add;
                given += add;
            }
        } else {
            // Nothing claims the surplus: split it equally over whatever
            // capacity remains instead of stranding budget.
            let open = (0..k)
                .filter(|&s| grants[s] < ceilings[s] - BUDGET_EPSILON)
                .count();
            if open == 0 {
                break;
            }
            let share = leftover / open as f64;
            for s in 0..k {
                if grants[s] < ceilings[s] - BUDGET_EPSILON {
                    let add = share.min(ceilings[s] - grants[s]);
                    grants[s] += add;
                    given += add;
                }
            }
        }
        if given <= BUDGET_EPSILON {
            break;
        }
        leftover -= given;
    }
    // Float-drift backstop: conservation must hold exactly enough that the
    // shards' own `set_budget` feasibility checks and the cluster-level
    // invariant monitor never see an overshoot.
    let total: f64 = grants.iter().sum();
    if total > budget {
        let mut excess = total - budget;
        for s in 0..k {
            if excess <= 0.0 {
                break;
            }
            let cut = excess.min(grants[s] - floors[s]);
            grants[s] -= cut;
            excess -= cut;
        }
    }
}

/// Hierarchical sharded DPS manager (see the module docs).
#[derive(Debug, Clone)]
pub struct ShardedManager {
    shards: Vec<DpsManager>,
    spans: Vec<ShardSpan>,
    limits: UnitLimits,
    total_budget: Watts,
    num_units: usize,
    alloc: AllocatorConfig,
    /// Static per-shard grant bounds: `min_cap × units` / `max_cap × units`.
    floors: Vec<Watts>,
    ceilings: Vec<Watts>,
    /// Allocator signal state.
    prev_demand: Vec<Watts>,
    deriv_ewma: Vec<f64>,
    primed: bool,
    /// Per-cycle scratch (no heap churn in steady state).
    weights: Vec<f64>,
    new_grants: Vec<Watts>,
    /// Concatenated per-shard priority flags (multi-shard trees only).
    all_priorities: Vec<bool>,
    active: Vec<bool>,
    sink: SinkHandle,
    trace_cycle: u64,
}

impl ShardedManager {
    /// Creates a sharded manager with the default [`AllocatorConfig`] and no
    /// telemetry guard. Units are split into `num_shards` near-equal
    /// contiguous spans; the budget starts proportionally split.
    ///
    /// # Panics
    /// Panics on an invalid config, an infeasible budget, zero shards, or
    /// more shards than units.
    pub fn new(
        num_units: usize,
        total_budget: Watts,
        limits: UnitLimits,
        config: DpsConfig,
        num_shards: usize,
        rng: RngStream,
    ) -> Self {
        Self::build(
            num_units,
            total_budget,
            limits,
            config,
            None,
            num_shards,
            rng,
        )
    }

    /// [`ShardedManager::new`] with a [`crate::TelemetryGuard`] in front of
    /// every shard's measurement and cap streams.
    ///
    /// # Panics
    /// Panics on an invalid config (manager or guard) or shard count.
    pub fn with_guard(
        num_units: usize,
        total_budget: Watts,
        limits: UnitLimits,
        config: DpsConfig,
        guard: GuardConfig,
        num_shards: usize,
        rng: RngStream,
    ) -> Self {
        Self::build(
            num_units,
            total_budget,
            limits,
            config,
            Some(guard),
            num_shards,
            rng,
        )
    }

    fn build(
        num_units: usize,
        total_budget: Watts,
        limits: UnitLimits,
        config: DpsConfig,
        guard: Option<GuardConfig>,
        num_shards: usize,
        rng: RngStream,
    ) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        assert!(
            num_shards <= num_units,
            "cannot split {num_units} units into {num_shards} shards"
        );
        config.validate().expect("invalid DPS config");
        limits
            .check_feasible(total_budget, num_units)
            .expect("infeasible budget");
        let base = num_units / num_shards;
        let rem = num_units % num_shards;
        let mut shards = Vec::with_capacity(num_shards);
        let mut spans = Vec::with_capacity(num_shards);
        let mut floors = Vec::with_capacity(num_shards);
        let mut ceilings = Vec::with_capacity(num_shards);
        let mut start = 0usize;
        let mut granted = 0.0;
        for s in 0..num_shards {
            let units = base + usize::from(s < rem);
            let end = start + units;
            // Last shard absorbs the float remainder so the grants sum to
            // the budget exactly; a proportional share always covers the
            // shard's floor because the cluster budget covers the fleet's.
            let grant = if s + 1 == num_shards {
                total_budget - granted
            } else {
                total_budget * units as f64 / num_units as f64
            };
            granted += grant;
            // A one-shard tree *is* the flat manager: hand the parent
            // stream through unchanged so every RNG draw matches the flat
            // construction bit for bit. Multi-shard trees give each shard
            // its own derived stream.
            let shard_rng = if num_shards == 1 {
                rng.clone()
            } else {
                rng.child(&format!("shard/{s}"))
            };
            let shard = match guard {
                Some(g) => DpsManager::with_guard(units, grant, limits, config, g, shard_rng),
                None => DpsManager::new(units, grant, limits, config, shard_rng),
            };
            shards.push(shard);
            spans.push(ShardSpan { start, end, grant });
            floors.push(limits.min_cap * units as f64);
            ceilings.push(limits.max_cap * units as f64);
            start = end;
        }
        Self {
            shards,
            spans,
            limits,
            total_budget,
            num_units,
            alloc: AllocatorConfig::default(),
            floors,
            ceilings,
            prev_demand: vec![0.0; num_shards],
            deriv_ewma: vec![0.0; num_shards],
            primed: false,
            weights: vec![0.0; num_shards],
            new_grants: vec![0.0; num_shards],
            all_priorities: vec![false; num_units],
            active: vec![true; num_units],
            sink: SinkHandle::noop(),
            trace_cycle: 0,
        }
    }

    /// Replaces the allocator tunables (builder style).
    ///
    /// # Panics
    /// Panics on an invalid config.
    pub fn with_allocator(mut self, alloc: AllocatorConfig) -> Self {
        alloc.validate().expect("invalid allocator config");
        self.alloc = alloc;
        self
    }

    /// Number of shards in the tree.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard DPS instances (read-only, for tests and inspection).
    pub fn shards(&self) -> &[DpsManager] {
        &self.shards
    }

    /// The allocator tunables in effect.
    pub fn allocator(&self) -> &AllocatorConfig {
        &self.alloc
    }

    /// One allocator pass: refresh the per-shard signals from this cycle's
    /// measurements, water-fill the budget into new grants, and apply them
    /// (unless inside the deadband). Multi-shard trees only.
    fn reallocate(&mut self, measured: &[Watts], dt: Seconds) {
        let k = self.shards.len();
        for s in 0..k {
            let span = self.spans[s];
            let mut demand = 0.0;
            for &m in &measured[span.start..span.end] {
                // NaN dropouts and garbage negatives claim nothing; the
                // shard's own guard handles the per-unit consequences.
                if m.is_finite() && m > 0.0 {
                    demand += m;
                }
            }
            let deriv = if self.primed && dt > 0.0 {
                (demand - self.prev_demand[s]) / dt
            } else {
                0.0
            };
            self.deriv_ewma[s] = if self.primed {
                self.alloc.ewma_alpha * deriv + (1.0 - self.alloc.ewma_alpha) * self.deriv_ewma[s]
            } else {
                0.0
            };
            self.prev_demand[s] = demand;
            let prio = self.shards[s]
                .priorities()
                .map_or(0, |p| p.iter().filter(|&&x| x).count());
            let target = demand * (1.0 + self.alloc.headroom_frac)
                + self.deriv_ewma[s].max(0.0) * self.alloc.lead_time_s
                + self.alloc.priority_boost_w * prio as f64;
            let w = (target - self.floors[s]).max(0.0);
            self.weights[s] = if w.is_finite() { w } else { 0.0 };
        }
        self.primed = true;
        allocate_grants(
            self.total_budget,
            &self.floors,
            &self.ceilings,
            &self.weights,
            &mut self.new_grants,
        );
        let mut max_rel = 0.0f64;
        for s in 0..k {
            let rel = (self.new_grants[s] - self.spans[s].grant).abs()
                / self.spans[s].grant.abs().max(1.0);
            max_rel = max_rel.max(rel);
        }
        if max_rel < self.alloc.regrant_deadband {
            return;
        }
        let tracing = self.sink.enabled();
        for s in 0..k {
            let g = self.new_grants[s];
            self.shards[s]
                .set_budget(g)
                .expect("water-filled grants never fall below a shard's floor");
            self.spans[s].grant = g;
            if tracing {
                self.sink.emit(Event::ShardGrant {
                    cycle: self.trace_cycle,
                    shard: s as u32,
                    units: self.spans[s].units() as u32,
                    grant_w: g,
                });
            }
        }
    }

    /// Runs every shard's decision cycle over its unit slice.
    fn run_shards(&mut self, measured: &[Watts], caps: &mut [Watts], dt: Seconds) {
        #[cfg(feature = "parallel")]
        if self.shards.len() > 1 && self.num_units >= self.shards[0].config().parallel_threshold {
            self.run_shards_parallel(measured, caps, dt);
            return;
        }
        for (shard, span) in self.shards.iter_mut().zip(&self.spans) {
            shard.assign_caps(
                &measured[span.start..span.end],
                &mut caps[span.start..span.end],
                dt,
            );
        }
    }

    /// Lock-free parallel shard execution: shards own disjoint unit slices
    /// and share no state, so each runs on its own scoped thread. The
    /// per-shard arithmetic is the same code as the serial path, so the
    /// results are bit-identical by construction.
    #[cfg(feature = "parallel")]
    fn run_shards_parallel(&mut self, measured: &[Watts], caps: &mut [Watts], dt: Seconds) {
        // `DpsManager` is !Send only because its trace sink is an `Rc`.
        // Multi-shard trees never forward the attached sink to their shards
        // (`attach_trace` forwards only in the one-shard tree, which never
        // reaches this path), so each shard still holds the uniquely-owned
        // no-op sink it was constructed with — no `Rc` refcount is ever
        // touched from two threads. The pointer wrapper asserts exactly
        // that; each pointer targets a *distinct* shard, so no aliasing.
        struct SendMgr(*mut DpsManager);
        unsafe impl Send for SendMgr {}
        let mut jobs = Vec::with_capacity(self.shards.len());
        let mut m_rest = measured;
        let mut c_rest = caps;
        for (shard, span) in self.shards.iter_mut().zip(&self.spans) {
            let (m, m_tail) = m_rest.split_at(span.units());
            let (c, c_tail) = std::mem::take(&mut c_rest).split_at_mut(span.units());
            m_rest = m_tail;
            c_rest = c_tail;
            jobs.push((SendMgr(shard as *mut DpsManager), m, c));
        }
        std::thread::scope(|scope| {
            for (mgr, m, c) in jobs {
                scope.spawn(move || {
                    // Whole-variable use: edition-2021 precise capture must
                    // move `SendMgr` itself, not its !Send pointer field.
                    let mgr = mgr;
                    // SAFETY: exclusive &mut access for the scope's duration
                    // (see SendMgr above); the scope joins before the
                    // borrows this pointer was minted from expire.
                    unsafe { (*mgr.0).assign_caps(m, c, dt) };
                });
            }
        });
    }

    /// Serializes a multi-shard tree: `SHRD` tag + version + shape +
    /// allocator signal state + one embedded, independently sealed flat
    /// snapshot per shard (each carries its shard's grant as its budget).
    fn write_sharded_snapshot(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(SHARD_TAG);
        w.put_u32(SHARD_VERSION);
        w.put_usize(self.shards.len());
        w.put_usize(self.num_units);
        w.put_f64(self.total_budget);
        w.put_f64_slice(&self.prev_demand);
        w.put_f64_slice(&self.deriv_ewma);
        w.put_bool(self.primed);
        for shard in &self.shards {
            let blob = shard.checkpoint().expect("DPS shards always checkpoint");
            w.put_bytes(&blob);
        }
        w.seal()
    }
}

impl PowerManager for ShardedManager {
    fn kind(&self) -> ManagerKind {
        ManagerKind::Sharded
    }

    fn num_units(&self) -> usize {
        self.num_units
    }

    fn total_budget(&self) -> Watts {
        self.total_budget
    }

    fn set_budget(&mut self, new_budget: Watts) -> Result<(), String> {
        check_new_budget(new_budget, self.num_units, self.limits)?;
        if self.shards.len() == 1 {
            self.shards[0].set_budget(new_budget)?;
        } else {
            // Proportional-by-units re-split so the very next cycle's caps
            // already respect the new budget (the one-cycle compliance
            // contract); the allocator refines the split from the next
            // cycle's signals.
            let k = self.shards.len();
            let mut granted = 0.0;
            for s in 0..k {
                let g = if s + 1 == k {
                    new_budget - granted
                } else {
                    new_budget * self.spans[s].units() as f64 / self.num_units as f64
                };
                granted += g;
                self.shards[s].set_budget(g)?;
                self.spans[s].grant = g;
            }
        }
        self.total_budget = new_budget;
        if self.shards.len() == 1 {
            self.spans[0].grant = new_budget;
        }
        Ok(())
    }

    fn assign_caps(&mut self, measured: &[Watts], caps: &mut [Watts], dt: Seconds) {
        assert_eq!(measured.len(), self.num_units, "one measurement per unit");
        assert_eq!(caps.len(), self.num_units, "one cap per unit");
        if self.shards.len() == 1 {
            // The one-shard tree is the flat manager, verbatim.
            self.shards[0].assign_caps(measured, caps, dt);
            self.trace_cycle += 1;
            return;
        }
        self.reallocate(measured, dt);
        self.run_shards(measured, caps, dt);
        for (shard, span) in self.shards.iter().zip(&self.spans) {
            if let Some(p) = shard.priorities() {
                self.all_priorities[span.start..span.end].copy_from_slice(p);
            }
        }
        self.trace_cycle += 1;
        debug_assert_budget(caps, self.total_budget, self.limits);
    }

    fn priorities(&self) -> Option<&[bool]> {
        if self.shards.len() == 1 {
            self.shards[0].priorities()
        } else {
            Some(&self.all_priorities)
        }
    }

    fn observe_membership(&mut self, active: &[bool]) {
        assert_eq!(
            active.len(),
            self.num_units,
            "membership mask must cover every unit"
        );
        if self.shards.len() == 1 {
            self.shards[0].observe_membership(active);
            self.active.copy_from_slice(active);
            return;
        }
        // Top level owns the trace (global unit indices); the shards hold
        // no-op sinks, so forwarding the slices below emits nothing twice.
        let tracing = self.sink.enabled();
        for (u, (&now, was)) in active.iter().zip(self.active.iter_mut()).enumerate() {
            if now == *was {
                continue;
            }
            *was = now;
            self.all_priorities[u] = false;
            if tracing {
                self.sink.emit(Event::MembershipFlip {
                    cycle: self.trace_cycle,
                    unit: u as u32,
                    active: now,
                });
            }
        }
        for (shard, span) in self.shards.iter_mut().zip(&self.spans) {
            shard.observe_membership(&active[span.start..span.end]);
        }
    }

    fn observe_applied(&mut self, applied: &[Watts]) {
        if self.shards.len() == 1 {
            self.shards[0].observe_applied(applied);
            return;
        }
        for (shard, span) in self.shards.iter_mut().zip(&self.spans) {
            shard.observe_applied(&applied[span.start..span.end]);
        }
    }

    fn health(&self) -> Option<&[HealthState]> {
        // Multi-shard trees report no fleet-level health view: each shard's
        // guard pins believed caps to the *shard's* fallback (its grant
        // divided by its units), which legitimately differs from the
        // cluster-level constant cap a flat consistency check expects.
        if self.shards.len() == 1 {
            self.shards[0].health()
        } else {
            None
        }
    }

    fn guard_stats(&self) -> Option<GuardStats> {
        let mut any = false;
        let mut acc = GuardStats::default();
        for shard in &self.shards {
            if let Some(s) = shard.guard_stats() {
                any = true;
                acc.rejected_samples += s.rejected_samples;
                acc.stuck_trips += s.stuck_trips;
                acc.write_mismatches += s.write_mismatches;
                acc.quarantine_entries += s.quarantine_entries;
                acc.readmissions += s.readmissions;
                acc.saturated_cycles += s.saturated_cycles;
            }
        }
        any.then_some(acc)
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        if self.shards.len() == 1 {
            // Flat format: a one-shard tree's snapshots are interchangeable
            // with the flat manager's.
            self.shards[0].checkpoint()
        } else {
            Some(self.write_sharded_snapshot())
        }
    }

    fn checkpoint_into(&self, out: &mut Vec<u8>) -> bool {
        if self.shards.len() == 1 {
            self.shards[0].checkpoint_into(out)
        } else {
            *out = self.write_sharded_snapshot();
            true
        }
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), String> {
        if self.shards.len() == 1 {
            // Flat snapshots restore a one-shard tree directly; a sharded
            // blob fails the flat reader's unit-count check (the SHRD tag
            // parses as an absurd unit count) without touching state.
            self.shards[0].restore(snapshot)?;
            self.total_budget = self.shards[0].total_budget();
            self.spans[0].grant = self.total_budget;
            return Ok(());
        }
        let mut r = ByteReader::open(snapshot)?;
        let tag = r.get_u32()?;
        if tag != SHARD_TAG {
            return Err(
                "snapshot is not a sharded-manager snapshot (flat snapshots only restore \
                 single-shard trees)"
                    .into(),
            );
        }
        let ver = r.get_u32()?;
        if ver != SHARD_VERSION {
            return Err(format!(
                "unsupported sharded snapshot version {ver} (expected {SHARD_VERSION})"
            ));
        }
        let k = r.get_usize()?;
        if k != self.shards.len() {
            return Err(format!(
                "snapshot has {k} shards, manager has {} — cross-shard-count restore is \
                 not supported",
                self.shards.len()
            ));
        }
        let n = r.get_usize()?;
        if n != self.num_units {
            return Err(format!(
                "snapshot has {n} units, manager has {}",
                self.num_units
            ));
        }
        let budget = r.get_f64()?;
        check_new_budget(budget, n, self.limits)
            .map_err(|e| format!("snapshot budget rejected: {e}"))?;
        let prev_demand = r.get_f64_vec(k)?;
        let deriv_ewma = r.get_f64_vec(k)?;
        if prev_demand.len() != k || deriv_ewma.len() != k {
            return Err("allocator signal vectors do not match the shard count".into());
        }
        let primed = r.get_bool()?;
        // Restore into clones; commit only after every shard decodes, so a
        // torn blob leaves the tree untouched (the flat manager's own
        // all-or-nothing contract, lifted one level).
        let mut fresh = self.shards.clone();
        for (s, shard) in fresh.iter_mut().enumerate() {
            let blob = r.get_bytes(snapshot.len())?;
            shard.restore(blob).map_err(|e| format!("shard {s}: {e}"))?;
        }
        r.finish()?;
        let granted: f64 = fresh.iter().map(|m| m.total_budget()).sum();
        if granted > budget + BUDGET_EPSILON * k as f64 {
            return Err(format!(
                "restored shard grants sum to {granted:.3} W, above the {budget:.3} W \
                 cluster budget"
            ));
        }
        for (span, shard) in self.spans.iter_mut().zip(&fresh) {
            span.grant = shard.total_budget();
        }
        self.shards = fresh;
        self.total_budget = budget;
        self.prev_demand = prev_demand;
        self.deriv_ewma = deriv_ewma;
        self.primed = primed;
        Ok(())
    }

    fn shard_view(&self) -> Option<&[ShardSpan]> {
        Some(&self.spans)
    }

    fn attach_trace(&mut self, sink: SinkHandle) {
        self.trace_cycle = 0;
        if self.shards.len() == 1 {
            // One-shard tree: the shard emits the full flat event stream.
            self.shards[0].attach_trace(sink.clone());
        }
        // Multi-shard trees keep no-op sinks on the shards (their unit
        // indices are shard-local) and emit only tree-level events —
        // inter-shard grants and global-index membership flips — here.
        self.sink = sink;
    }

    fn reset(&mut self) {
        let k = self.shards.len();
        let mut granted = 0.0;
        for s in 0..k {
            // Back to the proportional split, so repetitions of a run are
            // reproducible regardless of where the allocator had drifted.
            let g = if s + 1 == k {
                self.total_budget - granted
            } else {
                self.total_budget * self.spans[s].units() as f64 / self.num_units as f64
            };
            granted += g;
            self.shards[s]
                .set_budget(g)
                .expect("proportional re-split is always feasible");
            self.spans[s].grant = g;
            self.shards[s].reset();
        }
        self.prev_demand.fill(0.0);
        self.deriv_ewma.fill(0.0);
        self.primed = false;
        self.weights.fill(0.0);
        self.new_grants.fill(0.0);
        self.all_priorities.fill(false);
        self.active.fill(true);
        self.trace_cycle = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DpsConfig;

    const LIMITS: UnitLimits = UnitLimits {
        min_cap: 40.0,
        max_cap: 165.0,
    };

    fn sharded(n: usize, budget: Watts, k: usize) -> ShardedManager {
        ShardedManager::new(
            n,
            budget,
            LIMITS,
            DpsConfig::default(),
            k,
            RngStream::new(11, "sharded-test"),
        )
    }

    fn flat(n: usize, budget: Watts) -> DpsManager {
        DpsManager::new(
            n,
            budget,
            LIMITS,
            DpsConfig::default(),
            RngStream::new(11, "sharded-test"),
        )
    }

    /// A deterministic demand program with ramps, quiet phases, and (when
    /// `faults` is set) NaN dropouts on a couple of units.
    fn demand(t: usize, u: usize, n: usize, faults: bool) -> f64 {
        if faults && t % 7 == 3 && u.is_multiple_of(5) {
            return f64::NAN;
        }
        let phase = (t / 20) % 3;
        match phase {
            0 => 50.0 + 10.0 * ((t % 20) as f64) * ((u % 3) as f64) / 3.0,
            1 => {
                if u < n / 2 {
                    150.0
                } else {
                    45.0
                }
            }
            _ => 60.0,
        }
    }

    fn drive_both(
        a: &mut dyn PowerManager,
        b: &mut dyn PowerManager,
        n: usize,
        cycles: usize,
        faults: bool,
    ) {
        let mut caps_a = vec![a.total_budget() / n as f64; n];
        let mut caps_b = caps_a.clone();
        for t in 0..cycles {
            if t == cycles / 2 {
                // Mid-run churn: unit 1 vacates, then returns two cycles on.
                let mut mask = vec![true; n];
                mask[1] = false;
                a.observe_membership(&mask);
                b.observe_membership(&mask);
            }
            if t == cycles / 2 + 2 {
                a.observe_membership(&vec![true; n]);
                b.observe_membership(&vec![true; n]);
            }
            let measured: Vec<f64> = (0..n)
                .map(|u| {
                    let d = demand(t, u, n, faults);
                    if d.is_nan() {
                        d
                    } else {
                        d.min(caps_a[u])
                    }
                })
                .collect();
            a.assign_caps(&measured, &mut caps_a, 1.0);
            b.assign_caps(&measured, &mut caps_b, 1.0);
            for u in 0..n {
                assert_eq!(
                    caps_a[u].to_bits(),
                    caps_b[u].to_bits(),
                    "cycle {t} unit {u}: {} vs {}",
                    caps_a[u],
                    caps_b[u]
                );
            }
            assert_eq!(a.priorities(), b.priorities(), "cycle {t} priorities");
        }
    }

    #[test]
    fn one_shard_tree_is_bit_identical_to_flat() {
        let n = 6;
        let mut flat_mgr = flat(n, 660.0);
        let mut tree = sharded(n, 660.0, 1);
        drive_both(&mut flat_mgr, &mut tree, n, 80, true);
        // Checkpoints are interchangeable flat-format blobs.
        let a = flat_mgr.checkpoint().unwrap();
        let b = tree.checkpoint().unwrap();
        assert_eq!(a, b, "one-shard checkpoint must be the flat snapshot");
        // Cross-restore both ways.
        tree.restore(&a).unwrap();
        flat_mgr.restore(&b).unwrap();
    }

    #[test]
    fn allocator_conserves_budget_and_respects_bounds() {
        let floors = [80.0, 120.0, 40.0];
        let ceilings = [330.0, 495.0, 165.0];
        let mut grants = [0.0; 3];
        allocate_grants(600.0, &floors, &ceilings, &[1.0, 3.0, 0.0], &mut grants);
        let total: f64 = grants.iter().sum();
        assert!((total - 600.0).abs() < 1e-6, "conservation: {total}");
        for s in 0..3 {
            assert!(grants[s] >= floors[s] - 1e-9, "floor {s}");
            assert!(grants[s] <= ceilings[s] + 1e-9, "ceiling {s}");
        }
        // The heavy-weight shard got the bigger surplus share.
        assert!(grants[1] - floors[1] > grants[0] - floors[0]);
    }

    #[test]
    fn allocator_spills_past_saturated_shards() {
        // Shard 0's ceiling is barely above its floor: nearly all of its
        // weighted claim must spill into shard 1.
        let floors = [40.0, 40.0];
        let ceilings = [45.0, 165.0];
        let mut grants = [0.0; 2];
        allocate_grants(200.0, &floors, &ceilings, &[100.0, 1.0], &mut grants);
        assert!((grants[0] - 45.0).abs() < 1e-6);
        assert!((grants[1] - 155.0).abs() < 1e-6);
    }

    #[test]
    fn allocator_handles_degenerate_weights() {
        let floors = [40.0, 40.0];
        let ceilings = [165.0, 165.0];
        let mut grants = [0.0; 2];
        // NaN / zero weights: surplus split equally, nothing stranded.
        allocate_grants(200.0, &floors, &ceilings, &[f64::NAN, 0.0], &mut grants);
        let total: f64 = grants.iter().sum();
        assert!((total - 200.0).abs() < 1e-6);
        assert!((grants[0] - grants[1]).abs() < 1e-6);
    }

    #[test]
    fn multi_shard_budget_safe_at_every_level_every_cycle() {
        let n = 12;
        let budget = 12.0 * 110.0;
        let mut tree = sharded(n, budget, 3);
        let mut caps = vec![110.0; n];
        for t in 0..120 {
            let measured: Vec<f64> = (0..n).map(|u| demand(t, u, n, true).min(caps[u])).collect();
            tree.assign_caps(&measured, &mut caps, 1.0);
            let spans = tree.shard_view().unwrap();
            let mut grant_sum = 0.0;
            for (s, sp) in spans.iter().enumerate() {
                let shard_caps: f64 = caps[sp.start..sp.end].iter().sum();
                assert!(
                    shard_caps <= sp.grant + BUDGET_EPSILON,
                    "cycle {t} shard {s}: caps {shard_caps} > grant {}",
                    sp.grant
                );
                assert!(sp.grant.is_finite() && sp.grant >= 0.0);
                grant_sum += sp.grant;
            }
            assert!(
                grant_sum <= budget + BUDGET_EPSILON,
                "cycle {t}: grants {grant_sum} > budget {budget}"
            );
        }
    }

    #[test]
    fn allocator_shifts_budget_toward_the_hot_shard() {
        let n = 12;
        let mut tree = sharded(n, 12.0 * 110.0, 3);
        let mut caps = vec![110.0; n];
        // Shard 2 (units 8..12) runs hot at its cap; the others idle.
        for _ in 0..40 {
            let measured: Vec<f64> = (0..n)
                .map(|u| {
                    if u >= 8 {
                        caps[u]
                    } else {
                        45.0_f64.min(caps[u])
                    }
                })
                .collect();
            tree.assign_caps(&measured, &mut caps, 1.0);
        }
        let spans = tree.shard_view().unwrap();
        assert!(
            spans[2].grant > spans[0].grant + 20.0,
            "hot shard grant {} should exceed idle shard grant {}",
            spans[2].grant,
            spans[0].grant
        );
    }

    #[test]
    fn sharded_checkpoint_roundtrip_is_bit_exact() {
        let n = 12;
        let mut tree = sharded(n, 12.0 * 110.0, 3);
        let mut caps = vec![110.0; n];
        for t in 0..40 {
            let measured: Vec<f64> = (0..n)
                .map(|u| demand(t, u, n, false).min(caps[u]))
                .collect();
            tree.assign_caps(&measured, &mut caps, 1.0);
        }
        let snap = tree.checkpoint().unwrap();
        let mut restored = sharded(n, 12.0 * 110.0, 3);
        restored.restore(&snap).unwrap();
        let mut caps_r = caps.clone();
        for t in 40..80 {
            let measured: Vec<f64> = (0..n)
                .map(|u| demand(t, u, n, false).min(caps[u]))
                .collect();
            tree.assign_caps(&measured, &mut caps, 1.0);
            restored.assign_caps(&measured, &mut caps_r, 1.0);
            for u in 0..n {
                assert_eq!(caps[u].to_bits(), caps_r[u].to_bits(), "cycle {t} unit {u}");
            }
        }
        assert_eq!(tree.checkpoint().unwrap(), restored.checkpoint().unwrap());
    }

    #[test]
    fn cross_shape_restores_rejected_cleanly() {
        let n = 12;
        let three = sharded(n, 12.0 * 110.0, 3);
        let snap3 = three.checkpoint().unwrap();

        // Different shard count.
        let mut two = sharded(n, 12.0 * 110.0, 2);
        let err = two.restore(&snap3).unwrap_err();
        assert!(err.contains("shards"), "{err}");

        // Flat blob into a multi-shard tree.
        let flat_mgr = flat(n, 12.0 * 110.0);
        let mut three_mut = sharded(n, 12.0 * 110.0, 3);
        let err = three_mut
            .restore(&flat_mgr.checkpoint().unwrap())
            .unwrap_err();
        assert!(err.contains("not a sharded"), "{err}");

        // Sharded blob into a flat manager (and a one-shard tree).
        let mut flat_mut = flat(n, 12.0 * 110.0);
        assert!(flat_mut.restore(&snap3).is_err());
        let mut one = sharded(n, 12.0 * 110.0, 1);
        assert!(one.restore(&snap3).is_err());

        // Rejected restores leave the target untouched: it still runs.
        let mut caps = vec![110.0; n];
        two.assign_caps(&vec![60.0; n], &mut caps, 1.0);
    }

    #[test]
    fn set_budget_complies_within_one_cycle() {
        let n = 12;
        let mut tree = sharded(n, 12.0 * 150.0, 3);
        let mut caps = vec![150.0; n];
        for t in 0..20 {
            let measured: Vec<f64> = (0..n)
                .map(|u| demand(t, u, n, false).min(caps[u]))
                .collect();
            tree.assign_caps(&measured, &mut caps, 1.0);
        }
        let shocked = 12.0 * 70.0;
        tree.set_budget(shocked).unwrap();
        let measured: Vec<f64> = caps.iter().map(|&c| c.min(120.0)).collect();
        tree.assign_caps(&measured, &mut caps, 1.0);
        let total: f64 = caps.iter().sum();
        assert!(
            total <= shocked + BUDGET_EPSILON,
            "caps {total} must respect the shocked budget {shocked} after one cycle"
        );
        // Infeasible budgets are rejected without state change.
        assert!(tree.set_budget(12.0 * 39.0).is_err());
        assert_eq!(tree.total_budget(), shocked);
    }

    #[test]
    fn reset_reproduces_the_run() {
        let n = 12;
        let mut tree = sharded(n, 12.0 * 110.0, 4);
        let run = |tree: &mut ShardedManager| {
            let mut caps = vec![110.0; n];
            let mut out = Vec::new();
            for t in 0..50 {
                let measured: Vec<f64> =
                    (0..n).map(|u| demand(t, u, n, true).min(caps[u])).collect();
                tree.assign_caps(&measured, &mut caps, 1.0);
                out.extend(caps.iter().map(|c| c.to_bits()));
            }
            out
        };
        let first = run(&mut tree);
        tree.reset();
        let second = run(&mut tree);
        assert_eq!(first, second);
    }

    #[test]
    fn guard_stats_aggregate_across_shards() {
        let n = 12;
        let mut tree = ShardedManager::with_guard(
            n,
            12.0 * 110.0,
            LIMITS,
            DpsConfig::default(),
            GuardConfig::default(),
            3,
            RngStream::new(13, "sharded-guard-test"),
        );
        let mut caps = vec![110.0; n];
        for t in 0..30 {
            // Unit 0 reports NaN every cycle: its shard's guard racks up
            // rejected samples.
            let measured: Vec<f64> = (0..n)
                .map(|u| {
                    if u == 0 {
                        f64::NAN
                    } else {
                        demand(t, u, n, false).min(caps[u])
                    }
                })
                .collect();
            tree.assign_caps(&measured, &mut caps, 1.0);
        }
        let stats = tree.guard_stats().expect("guarded tree reports stats");
        assert!(stats.rejected_samples > 0);
        assert!(
            tree.health().is_none(),
            "multi-shard trees expose no flat health view"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        sharded(4, 440.0, 0);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn more_shards_than_units_panics() {
        sharded(2, 220.0, 3);
    }
}
