//! The oracle: a perfect model-based allocator.
//!
//! The paper's low-utility study compares against "an oracle" — the
//! idealised model-based system of Fig. 1 that knows each unit's power
//! demand and allocates accordingly. In the simulator the oracle receives
//! the ground-truth demand each cycle (via
//! [`crate::manager::PowerManager::observe_demands`]) and allocates:
//!
//! * demand fits in the budget → every unit gets its demand plus an even
//!   share of the slack (headroom for the next phase);
//! * demand exceeds the budget → demand-proportional scaling, i.e. every
//!   unit receives the same *fraction* of its demand — exactly the
//!   satisfaction-equalizing split that maximises the paper's fairness
//!   metric (Eq. 1–2).

use crate::budget::{debug_assert_budget, distribute_weighted};
use crate::manager::{check_new_budget, ManagerKind, PowerManager, UnitLimits};
use dps_sim_core::units::{Seconds, Watts};

/// Perfect-knowledge demand-proportional manager.
#[derive(Debug, Clone)]
pub struct OracleManager {
    num_units: usize,
    total_budget: Watts,
    limits: UnitLimits,
    demands: Vec<Watts>,
}

impl OracleManager {
    /// Creates the oracle.
    pub fn new(num_units: usize, total_budget: Watts, limits: UnitLimits) -> Self {
        limits
            .check_feasible(total_budget, num_units)
            .expect("infeasible budget");
        Self {
            num_units,
            total_budget,
            limits,
            demands: vec![0.0; num_units],
        }
    }
}

impl PowerManager for OracleManager {
    fn kind(&self) -> ManagerKind {
        ManagerKind::Oracle
    }

    fn num_units(&self) -> usize {
        self.num_units
    }

    fn total_budget(&self) -> Watts {
        self.total_budget
    }

    fn set_budget(&mut self, new_budget: Watts) -> Result<(), String> {
        check_new_budget(new_budget, self.num_units, self.limits)?;
        self.total_budget = new_budget;
        Ok(())
    }

    fn observe_demands(&mut self, demands: &[Watts]) {
        self.demands.clear();
        self.demands.extend_from_slice(demands);
    }

    fn assign_caps(&mut self, _measured: &[Watts], caps: &mut [Watts], _dt: Seconds) {
        assert_eq!(caps.len(), self.num_units);
        assert_eq!(
            self.demands.len(),
            self.num_units,
            "oracle needs observe_demands before assign_caps"
        );
        let total_demand: f64 = self
            .demands
            .iter()
            .map(|&d| d.max(self.limits.min_cap))
            .sum();

        if total_demand <= self.total_budget {
            // Grant every demand, then spread the slack evenly for headroom.
            for (cap, &d) in caps.iter_mut().zip(&self.demands) {
                *cap = self.limits.clamp(d);
            }
            let slack = self.total_budget - caps.iter().sum::<f64>();
            let all: Vec<usize> = (0..self.num_units).collect();
            let weights = vec![1.0; self.num_units];
            distribute_weighted(caps, &all, &weights, slack, self.limits.max_cap);
        } else {
            // Equal-satisfaction scaling: cap_u = demand_u × (budget share),
            // floored at min_cap with the floor cost re-absorbed by scaling
            // the rest (water-fill down).
            let mut scale = self.total_budget / total_demand;
            // Two refinement rounds are enough: min_cap floors only ever
            // grow the fixed set.
            for _ in 0..3 {
                let mut floored = 0.0;
                let mut scalable = 0.0;
                for &d in &self.demands {
                    let want = d.max(self.limits.min_cap) * scale;
                    if want <= self.limits.min_cap {
                        floored += self.limits.min_cap;
                    } else {
                        scalable += d.max(self.limits.min_cap);
                    }
                }
                if scalable <= 0.0 {
                    break;
                }
                scale = (self.total_budget - floored) / scalable;
            }
            for (cap, &d) in caps.iter_mut().zip(&self.demands) {
                *cap = self
                    .limits
                    .clamp((d.max(self.limits.min_cap) * scale).max(self.limits.min_cap));
            }
        }
        debug_assert_budget(caps, self.total_budget, self.limits);
    }

    fn reset(&mut self) {
        self.demands.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: UnitLimits = UnitLimits {
        min_cap: 40.0,
        max_cap: 165.0,
    };

    fn oracle(n: usize, budget: Watts) -> OracleManager {
        OracleManager::new(n, budget, LIMITS)
    }

    #[test]
    fn under_budget_grants_demand_plus_headroom() {
        let mut m = oracle(2, 220.0);
        m.observe_demands(&[60.0, 100.0]);
        let mut caps = vec![0.0; 2];
        m.assign_caps(&[0.0; 2], &mut caps, 1.0);
        assert!(caps[0] >= 60.0 && caps[1] >= 100.0, "{caps:?}");
        let sum: f64 = caps.iter().sum();
        assert!((sum - 220.0).abs() < 1e-6, "slack fully distributed: {sum}");
    }

    #[test]
    fn over_budget_scales_proportionally() {
        let mut m = oracle(2, 220.0);
        m.observe_demands(&[160.0, 120.0]);
        let mut caps = vec![0.0; 2];
        m.assign_caps(&[0.0; 2], &mut caps, 1.0);
        // Equal satisfaction: caps proportional to demand.
        let r0 = caps[0] / 160.0;
        let r1 = caps[1] / 120.0;
        assert!((r0 - r1).abs() < 1e-6, "satisfaction must match: {caps:?}");
        assert!((caps.iter().sum::<f64>() - 220.0).abs() < 1e-6);
    }

    #[test]
    fn min_cap_floor_respected() {
        let mut m = oracle(3, 150.0);
        m.observe_demands(&[160.0, 5.0, 5.0]);
        let mut caps = vec![0.0; 3];
        m.assign_caps(&[0.0; 3], &mut caps, 1.0);
        assert!(caps.iter().all(|&c| c >= 40.0 - 1e-9), "{caps:?}");
        assert!(caps.iter().sum::<f64>() <= 150.0 + 1e-6);
    }

    #[test]
    fn equal_demands_equal_caps() {
        let mut m = oracle(4, 440.0);
        m.observe_demands(&[150.0; 4]);
        let mut caps = vec![0.0; 4];
        m.assign_caps(&[0.0; 4], &mut caps, 1.0);
        for c in &caps {
            assert!((c - 110.0).abs() < 1e-6, "{caps:?}");
        }
    }

    #[test]
    fn tdp_clamps_headroom() {
        let mut m = oracle(2, 400.0);
        m.observe_demands(&[50.0, 50.0]);
        let mut caps = vec![0.0; 2];
        m.assign_caps(&[0.0; 2], &mut caps, 1.0);
        assert!(caps.iter().all(|&c| c <= 165.0 + 1e-9));
    }

    #[test]
    fn fig1_end_state_balanced() {
        // Fig. 1 T4: both nodes demand max; the perfect model splits evenly.
        let mut m = oracle(2, 220.0);
        m.observe_demands(&[165.0, 165.0]);
        let mut caps = vec![0.0; 2];
        m.assign_caps(&[0.0; 2], &mut caps, 1.0);
        assert!((caps[0] - 110.0).abs() < 1e-6 && (caps[1] - 110.0).abs() < 1e-6);
    }

    #[test]
    fn kind_is_oracle() {
        assert_eq!(oracle(1, 110.0).kind(), ManagerKind::Oracle);
    }
}
