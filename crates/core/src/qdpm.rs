//! Q-DPM: a model-free Q-learning power manager.
//!
//! The learned baseline from "Q-DPM" (PAPERS.md): each unit runs tabular
//! Q-learning over an aggregated continuous-time state — the unit's
//! utilization of its current cap, discretized into a handful of bins —
//! with a discrete action space of cap levels between the unit limits.
//! Decision cycles have variable length, so the update discounts by
//! `gamma^dt` and integrates the reward rate over the window (the
//! continuous-time SMDP form of the update), rather than assuming unit
//! steps.
//!
//! The reward trades delivered power (a throughput proxy: the measurement
//! normalised by TDP) against the cap spent, so a saturated unit learns to
//! hold a high cap while an idle one learns to give its Watts up. Q-values
//! are initialised optimistically in proportion to the cap level, which
//! makes the untrained manager behave like the constant allocator —
//! budget-safe from the first cycle — and lets learning *lower* caps only
//! where the reward says the power is not being used.
//!
//! Budget safety is not learned, it is enforced: the greedy/exploratory
//! per-unit choices pass through [`enforce_budget`] before leaving
//! `assign_caps`, so the one-cycle [`PowerManager::set_budget`] compliance
//! contract holds no matter what the tables contain. Everything is seeded
//! ([`RngStream`]) and checkpointable bit-for-bit ([`crate::checkpoint`]).

use crate::budget::{debug_assert_budget, enforce_budget};
use crate::checkpoint::{ByteReader, ByteWriter};
use crate::manager::{check_new_budget, ManagerKind, PowerManager, UnitLimits};
use dps_obs::{Event, SinkHandle};
use dps_sim_core::rng::{RngStream, RngStreamState};
use dps_sim_core::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Q-DPM tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QdpmConfig {
    /// Discrete cap levels spanning `[min_cap, max_cap]` (the actions).
    pub levels: usize,
    /// Utilization bins aggregating the continuous state.
    pub util_bins: usize,
    /// Learning rate.
    pub alpha: f64,
    /// Per-second discount factor (`gamma^dt` over a window of `dt`).
    pub gamma: f64,
    /// Initial ε-greedy exploration probability (per unit).
    pub epsilon: f64,
    /// Multiplicative ε decay per decision.
    pub epsilon_decay: f64,
    /// Exploration floor.
    pub epsilon_min: f64,
    /// Reward weight on delivered power; `1 − perf_weight` weighs the cap
    /// spent. Must leave delivery dominant (`> 0.5`) or the manager would
    /// be rewarded for starving saturated units.
    pub perf_weight: f64,
    /// Optimistic initialisation scale: level `a`'s initial Q-value is
    /// `optimism × a / (levels − 1)`, favouring high caps until the data
    /// argues otherwise.
    pub optimism: f64,
}

impl Default for QdpmConfig {
    fn default() -> Self {
        Self {
            levels: 8,
            util_bins: 6,
            alpha: 0.1,
            gamma: 0.9,
            epsilon: 0.2,
            epsilon_decay: 0.995,
            epsilon_min: 0.01,
            perf_weight: 0.8,
            optimism: 10.0,
        }
    }
}

impl QdpmConfig {
    /// Validates the tunables.
    pub fn validate(&self) -> Result<(), String> {
        if self.levels < 2 {
            return Err(format!("levels must be ≥ 2, got {}", self.levels));
        }
        if self.util_bins == 0 {
            return Err("util_bins must be ≥ 1".to_string());
        }
        if !(self.alpha.is_finite() && 0.0 < self.alpha && self.alpha <= 1.0) {
            return Err(format!("alpha must be in (0,1], got {}", self.alpha));
        }
        if !(self.gamma.is_finite() && 0.0 < self.gamma && self.gamma < 1.0) {
            return Err(format!("gamma must be in (0,1), got {}", self.gamma));
        }
        for (name, eps) in [("epsilon", self.epsilon), ("epsilon_min", self.epsilon_min)] {
            if !(eps.is_finite() && (0.0..=1.0).contains(&eps)) {
                return Err(format!("{name} must be in [0,1], got {eps}"));
            }
        }
        if !(self.epsilon_decay.is_finite()
            && 0.0 < self.epsilon_decay
            && self.epsilon_decay <= 1.0)
        {
            return Err(format!(
                "epsilon_decay must be in (0,1], got {}",
                self.epsilon_decay
            ));
        }
        if !(self.perf_weight.is_finite() && 0.5 < self.perf_weight && self.perf_weight <= 1.0) {
            return Err(format!(
                "perf_weight must be in (0.5, 1], got {}",
                self.perf_weight
            ));
        }
        if !(self.optimism.is_finite() && self.optimism >= 0.0) {
            return Err(format!("optimism must be ≥ 0, got {}", self.optimism));
        }
        Ok(())
    }
}

/// One unit's learning state.
#[derive(Debug, Clone)]
struct UnitQ {
    /// Row-major `util_bins × levels` Q-table.
    q: Vec<f64>,
    /// The (state bin, action) behind the previous cycle's cap, if any.
    last: Option<(usize, usize)>,
    /// Current exploration probability.
    epsilon: f64,
}

impl UnitQ {
    fn fresh(config: &QdpmConfig) -> Self {
        let mut q = Vec::with_capacity(config.util_bins * config.levels);
        for _bin in 0..config.util_bins {
            for a in 0..config.levels {
                q.push(config.optimism * a as f64 / (config.levels - 1) as f64);
            }
        }
        Self {
            q,
            last: None,
            epsilon: config.epsilon,
        }
    }
}

/// The Q-DPM manager (see the module docs).
#[derive(Debug, Clone)]
pub struct QdpmManager {
    config: QdpmConfig,
    limits: UnitLimits,
    total_budget: Watts,
    units: Vec<UnitQ>,
    /// Managed-membership mask; inactive units hold the floor cap and
    /// their learning state is reset on re-entry.
    active: Vec<bool>,
    rng: RngStream,
    rng_initial: RngStream,
    sink: SinkHandle,
    trace_cycle: u64,
    /// Pre-decision cap snapshot for trace diffing (tracing only).
    scratch_trace_caps: Vec<Watts>,
}

impl QdpmManager {
    /// Creates the manager.
    ///
    /// # Panics
    /// Panics on an invalid config or an infeasible budget.
    pub fn new(
        num_units: usize,
        total_budget: Watts,
        limits: UnitLimits,
        config: QdpmConfig,
        rng: RngStream,
    ) -> Self {
        config.validate().expect("invalid qdpm config");
        limits
            .check_feasible(total_budget, num_units)
            .expect("infeasible budget");
        Self {
            config,
            limits,
            total_budget,
            units: (0..num_units).map(|_| UnitQ::fresh(&config)).collect(),
            active: vec![true; num_units],
            rng_initial: rng.clone(),
            rng,
            sink: SinkHandle::noop(),
            trace_cycle: 0,
            scratch_trace_caps: Vec::new(),
        }
    }

    /// The config in effect.
    pub fn config(&self) -> &QdpmConfig {
        &self.config
    }

    /// The Q-table of one unit (row-major `util_bins × levels`), for
    /// inspection in tests and reports.
    pub fn q_table(&self, unit: usize) -> &[f64] {
        &self.units[unit].q
    }

    /// Maps an action index to its cap level.
    fn level_cap(&self, action: usize) -> Watts {
        self.limits.min_cap
            + (self.limits.max_cap - self.limits.min_cap) * action as f64
                / (self.config.levels - 1) as f64
    }

    /// Discretizes a utilization fraction into a state bin.
    fn bin(&self, util: f64) -> usize {
        ((util.clamp(0.0, 1.0) * self.config.util_bins as f64) as usize)
            .min(self.config.util_bins - 1)
    }

    fn greedy(&self, unit: usize, bin: usize) -> usize {
        let row = &self.units[unit].q[bin * self.config.levels..(bin + 1) * self.config.levels];
        let mut best = 0;
        for (a, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = a;
            }
        }
        best
    }

    /// Serializes every piece of dynamic state (see [`crate::checkpoint`]).
    fn write_snapshot_into(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::reusing(std::mem::take(out));
        // Shape fields: verified (not applied) on restore.
        w.put_usize(self.units.len());
        w.put_usize(self.config.levels);
        w.put_usize(self.config.util_bins);
        w.put_f64(self.total_budget);
        let rs = self.rng.state();
        w.put_u64(rs.seed);
        w.put_u64(rs.label_hash);
        w.put_u64(rs.draws);
        for (unit, &act) in self.units.iter().zip(&self.active) {
            w.put_bool(act);
            w.put_f64(unit.epsilon);
            match unit.last {
                Some((bin, action)) => {
                    w.put_bool(true);
                    w.put_usize(bin);
                    w.put_usize(action);
                }
                None => {
                    w.put_bool(false);
                    w.put_usize(0);
                    w.put_usize(0);
                }
            }
            w.put_f64_slice(&unit.q);
        }
        *out = w.seal();
    }

    fn read_snapshot(&mut self, snapshot: &[u8]) -> Result<(), String> {
        let mut r = ByteReader::open(snapshot)?;
        let n = r.get_usize()?;
        if n != self.units.len() {
            return Err(format!(
                "snapshot has {n} units, manager has {}",
                self.units.len()
            ));
        }
        let levels = r.get_usize()?;
        let util_bins = r.get_usize()?;
        if levels != self.config.levels || util_bins != self.config.util_bins {
            return Err(format!(
                "snapshot table shape {util_bins}×{levels} does not match the \
                 configured {}×{}",
                self.config.util_bins, self.config.levels
            ));
        }
        let budget = r.get_f64()?;
        check_new_budget(budget, n, self.limits)
            .map_err(|e| format!("snapshot budget rejected: {e}"))?;
        let rng_state = RngStreamState {
            seed: r.get_u64()?,
            label_hash: r.get_u64()?,
            draws: r.get_u64()?,
        };
        let cells = levels * util_bins;
        let mut units = Vec::with_capacity(n);
        let mut active = Vec::with_capacity(n);
        for _ in 0..n {
            active.push(r.get_bool()?);
            let epsilon = r.get_f64()?;
            if !(epsilon.is_finite() && (0.0..=1.0).contains(&epsilon)) {
                return Err(format!("snapshot epsilon {epsilon} out of range"));
            }
            let has_last = r.get_bool()?;
            let bin = r.get_usize()?;
            let action = r.get_usize()?;
            if has_last && (bin >= util_bins || action >= levels) {
                return Err(format!(
                    "snapshot last (bin {bin}, action {action}) out of table bounds"
                ));
            }
            let q = r.get_f64_vec(cells)?;
            if q.len() != cells {
                return Err(format!(
                    "snapshot Q-table has {} cells, expected {cells}",
                    q.len()
                ));
            }
            units.push(UnitQ {
                q,
                last: has_last.then_some((bin, action)),
                epsilon,
            });
        }
        r.finish()?;
        self.total_budget = budget;
        self.rng = RngStream::restore(rng_state);
        self.units = units;
        self.active = active;
        Ok(())
    }
}

impl PowerManager for QdpmManager {
    fn kind(&self) -> ManagerKind {
        ManagerKind::Qdpm
    }

    fn num_units(&self) -> usize {
        self.units.len()
    }

    fn total_budget(&self) -> Watts {
        self.total_budget
    }

    fn set_budget(&mut self, new_budget: Watts) -> Result<(), String> {
        check_new_budget(new_budget, self.units.len(), self.limits)?;
        self.total_budget = new_budget;
        Ok(())
    }

    fn assign_caps(&mut self, measured: &[Watts], caps: &mut [Watts], dt: Seconds) {
        assert_eq!(measured.len(), self.units.len());
        assert_eq!(caps.len(), self.units.len());
        let tracing = self.sink.enabled();
        if tracing {
            self.scratch_trace_caps.clear();
            self.scratch_trace_caps.extend_from_slice(caps);
        }

        let span = self.limits.max_cap;
        let discount = self.config.gamma.powf(dt.max(1e-9));
        for u in 0..self.units.len() {
            if !self.active[u] {
                // Unmanaged units park at the floor; no learning, no rng
                // draws, so the managed units' streams are unperturbed.
                caps[u] = self.limits.min_cap;
                continue;
            }
            let prev_cap = caps[u].clamp(self.limits.min_cap, self.limits.max_cap);
            let z = measured[u].clamp(0.0, span);
            let util = z / prev_cap;
            let bin = self.bin(util);

            // Continuous-time TD(0) backup on the previous (state, action):
            // reward rate integrated over the window, future discounted by
            // gamma^dt.
            let reward_rate = self.config.perf_weight * (z / span)
                - (1.0 - self.config.perf_weight) * (prev_cap / span);
            let best_next = {
                let g = self.greedy(u, bin);
                self.units[u].q[bin * self.config.levels + g]
            };
            if let Some((s, a)) = self.units[u].last {
                let idx = s * self.config.levels + a;
                let old = self.units[u].q[idx];
                self.units[u].q[idx] =
                    old + self.config.alpha * (reward_rate * dt + discount * best_next - old);
            }

            // ε-greedy action for the coming window. The uniform draw is
            // taken unconditionally so the stream advances one value per
            // managed unit per cycle plus one per exploration.
            let explore = self.rng.uniform() < self.units[u].epsilon;
            let action = if explore {
                self.rng.range(0..self.config.levels)
            } else {
                self.greedy(u, bin)
            };
            self.units[u].epsilon =
                (self.units[u].epsilon * self.config.epsilon_decay).max(self.config.epsilon_min);
            self.units[u].last = Some((bin, action));
            caps[u] = self.level_cap(action);
        }

        // Learned preferences propose, the budget disposes: scale the
        // above-floor portion so the sum meets the budget exactly when
        // over, and leave under-budget allocations alone.
        enforce_budget(caps, self.total_budget, self.limits);
        debug_assert_budget(caps, self.total_budget, self.limits);

        if tracing {
            for (u, (&now, &before)) in caps.iter().zip(&self.scratch_trace_caps).enumerate() {
                if now.to_bits() != before.to_bits() {
                    self.sink.emit(Event::CapDelta {
                        cycle: self.trace_cycle,
                        unit: u as u32,
                        from_w: before,
                        to_w: now,
                    });
                }
            }
            self.trace_cycle += 1;
        }
    }

    fn observe_membership(&mut self, active: &[bool]) {
        assert_eq!(
            active.len(),
            self.units.len(),
            "membership mask must cover every unit"
        );
        let tracing = self.sink.enabled();
        for (u, (&now, was)) in active.iter().zip(self.active.iter_mut()).enumerate() {
            if now == *was {
                continue;
            }
            // The table describes the previous tenancy; a rejoining (or
            // vacated) unit learns from scratch, exactly as at
            // construction.
            self.units[u] = UnitQ::fresh(&self.config);
            *was = now;
            if tracing {
                self.sink.emit(Event::MembershipFlip {
                    cycle: self.trace_cycle,
                    unit: u as u32,
                    active: now,
                });
            }
        }
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        self.write_snapshot_into(&mut out);
        Some(out)
    }

    fn checkpoint_into(&self, out: &mut Vec<u8>) -> bool {
        self.write_snapshot_into(out);
        true
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), String> {
        self.read_snapshot(snapshot)
    }

    fn attach_trace(&mut self, sink: SinkHandle) {
        self.sink = sink;
        self.trace_cycle = 0;
    }

    fn reset(&mut self) {
        for unit in &mut self.units {
            *unit = UnitQ::fresh(&self.config);
        }
        self.active.fill(true);
        self.rng = self.rng_initial.clone();
        self.trace_cycle = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::check_budget;

    const LIMITS: UnitLimits = UnitLimits {
        min_cap: 40.0,
        max_cap: 165.0,
    };

    fn manager(n: usize, budget: f64, seed: u64) -> QdpmManager {
        QdpmManager::new(
            n,
            budget,
            LIMITS,
            QdpmConfig::default(),
            RngStream::new(seed, "qdpm-test"),
        )
    }

    #[test]
    fn untrained_manager_is_budget_safe_from_the_first_cycle() {
        let mut m = manager(4, 440.0, 1);
        let mut caps = vec![110.0; 4];
        for step in 0..50 {
            let measured: Vec<f64> = caps.iter().map(|c: &f64| c.min(150.0)).collect();
            m.assign_caps(&measured, &mut caps, 1.0);
            check_budget(&caps, 440.0, LIMITS).unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
    }

    #[test]
    fn idle_units_learn_to_give_up_their_watts() {
        let mut m = manager(2, 330.0, 7);
        let mut caps = vec![165.0, 165.0];
        // Unit 0 saturated, unit 1 idle: after training, unit 0 must hold
        // the clearly larger cap.
        for _ in 0..600 {
            let measured = [caps[0], 5.0_f64.min(caps[1])];
            m.assign_caps(&measured, &mut caps, 1.0);
        }
        assert!(
            caps[0] > caps[1] + 20.0,
            "learning never shifted power: {caps:?}"
        );
    }

    #[test]
    fn same_seed_same_trajectory() {
        let mut a = manager(3, 330.0, 11);
        let mut b = manager(3, 330.0, 11);
        let mut caps_a = vec![110.0; 3];
        let mut caps_b = vec![110.0; 3];
        for step in 0..200 {
            let measured = [
                (step as f64 * 7.0) % 160.0,
                ((step as f64 * 13.0) % 160.0).min(caps_a[1]),
                30.0,
            ];
            a.assign_caps(&measured, &mut caps_a, 1.0);
            b.assign_caps(&measured, &mut caps_b, 1.0);
            assert_eq!(caps_a, caps_b, "diverged at step {step}");
        }
    }

    #[test]
    fn set_budget_validates_and_applies() {
        let mut m = manager(4, 440.0, 3);
        assert!(m.set_budget(f64::NAN).is_err());
        assert!(m.set_budget(100.0).is_err(), "below the floor");
        assert_eq!(m.total_budget(), 440.0);
        m.set_budget(330.0).unwrap();
        let mut caps = vec![165.0; 4];
        m.assign_caps(&[150.0; 4], &mut caps, 1.0);
        assert!(caps.iter().sum::<f64>() <= 330.0 + 1e-6);
    }

    #[test]
    fn checkpoint_restore_is_bit_identical() {
        let mut m = manager(3, 330.0, 5);
        let mut caps = vec![110.0; 3];
        for step in 0..80 {
            let measured = [(step as f64 * 11.0) % 160.0, 140.0, 20.0];
            m.assign_caps(&measured, &mut caps, 1.0);
        }
        let snap = m.checkpoint().unwrap();
        let mut restored = manager(3, 330.0, 999); // different seed: must not matter
        restored.restore(&snap).unwrap();

        let mut caps_r = caps.clone();
        for step in 0..120 {
            let measured = [(step as f64 * 17.0) % 160.0, 60.0, 150.0];
            m.assign_caps(&measured, &mut caps, 1.0);
            restored.assign_caps(&measured, &mut caps_r, 1.0);
            assert_eq!(caps, caps_r, "diverged at step {step}");
        }
    }

    #[test]
    fn corrupt_and_misshapen_snapshots_are_rejected() {
        let m = manager(3, 330.0, 5);
        let snap = m.checkpoint().unwrap();
        let mut bad = snap.clone();
        bad[10] ^= 0xFF;
        assert!(manager(3, 330.0, 5).restore(&bad).is_err());
        assert!(manager(4, 440.0, 5).restore(&snap).is_err(), "unit count");
        let mut other_shape = QdpmManager::new(
            3,
            330.0,
            LIMITS,
            QdpmConfig {
                levels: 4,
                ..QdpmConfig::default()
            },
            RngStream::new(5, "qdpm-test"),
        );
        assert!(other_shape.restore(&snap).is_err(), "table shape");
    }

    #[test]
    fn membership_flip_resets_the_units_learning_state() {
        let mut m = manager(2, 220.0, 13);
        let mut caps = vec![110.0; 2];
        for _ in 0..100 {
            let measured = [caps[0], 5.0_f64.min(caps[1])];
            m.assign_caps(&measured, &mut caps, 1.0);
        }
        let trained = m.q_table(1).to_vec();
        let fresh = UnitQ::fresh(&QdpmConfig::default()).q;
        assert_ne!(trained, fresh, "unit 1 never learned anything");

        // Vacate and readmit unit 1: its table must be factory-fresh while
        // unit 0 keeps its learning.
        let trained0 = m.q_table(0).to_vec();
        m.observe_membership(&[true, false]);
        m.observe_membership(&[true, true]);
        assert_eq!(m.q_table(1), &fresh[..]);
        assert_eq!(m.q_table(0), &trained0[..]);
    }

    #[test]
    fn inactive_units_hold_the_floor_cap() {
        let mut m = manager(3, 330.0, 17);
        m.observe_membership(&[true, false, true]);
        let mut caps = vec![110.0; 3];
        m.assign_caps(&[120.0, 0.0, 120.0], &mut caps, 1.0);
        assert_eq!(caps[1], LIMITS.min_cap);
    }

    #[test]
    fn reset_replays_the_identical_trajectory() {
        let mut m = manager(2, 220.0, 19);
        let run = |m: &mut QdpmManager| {
            let mut caps = vec![110.0; 2];
            for step in 0..60 {
                let measured = [(step as f64 * 9.0) % 160.0, 80.0];
                m.assign_caps(&measured, &mut caps, 1.0);
            }
            caps
        };
        let first = run(&mut m);
        m.reset();
        let second = run(&mut m);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "invalid qdpm config")]
    fn invalid_config_is_rejected() {
        QdpmManager::new(
            2,
            220.0,
            LIMITS,
            QdpmConfig {
                levels: 1,
                ..QdpmConfig::default()
            },
            RngStream::new(1, "bad"),
        );
    }
}
