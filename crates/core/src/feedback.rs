//! A feedback-control baseline (PShifter-style).
//!
//! The paper's related work (§2.2) covers feedback-based power shifters —
//! "PShifter: Feedback-Based Dynamic Power Shifting within HPC Jobs"
//! (Gholkar et al., HPDC '18) and cluster-level feedback control (Wang &
//! Chen, HPCA '08). This manager implements that archetype: a
//! proportional–integral controller per unit drives every unit's *headroom*
//! (cap − power) toward the cluster mean, shifting Watts from units with
//! slack to units pressed against their caps.
//!
//! Like DPS it is model-free; unlike DPS it is *level*-based feedback: it
//! reacts to the current imbalance with first-order dynamics and has no
//! notion of where power is heading, so it trades convergence speed against
//! oscillation through its gains.

use crate::budget::{debug_assert_budget, distribute_weighted, enforce_budget, BUDGET_EPSILON};
use crate::manager::{check_new_budget, ManagerKind, PowerManager, UnitLimits};
use dps_sim_core::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// PI gains and limits for the feedback manager.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackConfig {
    /// Proportional gain on the headroom error (per cycle).
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Anti-windup clamp on the integral term (Watts).
    pub integral_clamp: f64,
    /// Per-cycle integral leak in (0, 1]: stale windup from a past slack
    /// period decays away instead of grinding a now-pinned unit's cap down
    /// forever (error is ~0 at the pin, so without the leak the integral
    /// never unwinds).
    pub integral_decay: f64,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        Self {
            kp: 0.4,
            ki: 0.05,
            integral_clamp: 100.0,
            integral_decay: 0.95,
        }
    }
}

impl FeedbackConfig {
    /// Validates gain ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.kp && self.kp <= 1.0) {
            return Err(format!("kp must be in (0,1], got {}", self.kp));
        }
        if !(0.0 <= self.ki && self.ki <= 1.0) {
            return Err(format!("ki must be in [0,1], got {}", self.ki));
        }
        if self.integral_clamp <= 0.0 {
            return Err("integral_clamp must be positive".into());
        }
        if !(0.0 < self.integral_decay && self.integral_decay <= 1.0) {
            return Err("integral_decay must be in (0,1]".into());
        }
        Ok(())
    }
}

/// Headroom-equalizing PI power shifter.
///
/// ```
/// use dps_core::manager::{PowerManager, UnitLimits};
/// use dps_core::{FeedbackConfig, FeedbackManager};
///
/// let mut fb = FeedbackManager::new(2, 220.0, UnitLimits::xeon_gold_6240(),
///                                   FeedbackConfig::default());
/// let mut caps = vec![110.0, 110.0];
/// // Unit 0 pressed against its cap, unit 1 mostly idle: Watts shift.
/// for _ in 0..10 {
///     let measured = [caps[0] - 1.0, 30.0_f64.min(caps[1])];
///     fb.assign_caps(&measured, &mut caps, 1.0);
/// }
/// assert!(caps[0] > caps[1]);
/// assert!(caps.iter().sum::<f64>() <= 220.0 + 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct FeedbackManager {
    config: FeedbackConfig,
    limits: UnitLimits,
    total_budget: Watts,
    /// Integral state per unit.
    integral: Vec<f64>,
}

impl FeedbackManager {
    /// Creates the manager.
    ///
    /// # Panics
    /// Panics on an invalid config.
    pub fn new(
        num_units: usize,
        total_budget: Watts,
        limits: UnitLimits,
        config: FeedbackConfig,
    ) -> Self {
        config.validate().expect("invalid feedback config");
        limits
            .check_feasible(total_budget, num_units)
            .expect("infeasible budget");
        Self {
            config,
            limits,
            total_budget,
            integral: vec![0.0; num_units],
        }
    }

    /// The config in effect.
    pub fn config(&self) -> &FeedbackConfig {
        &self.config
    }
}

impl PowerManager for FeedbackManager {
    fn kind(&self) -> ManagerKind {
        ManagerKind::Feedback
    }

    fn num_units(&self) -> usize {
        self.integral.len()
    }

    fn total_budget(&self) -> Watts {
        self.total_budget
    }

    fn set_budget(&mut self, new_budget: Watts) -> Result<(), String> {
        check_new_budget(new_budget, self.integral.len(), self.limits)?;
        self.total_budget = new_budget;
        Ok(())
    }

    fn assign_caps(&mut self, measured: &[Watts], caps: &mut [Watts], _dt: Seconds) {
        let n = caps.len();
        assert_eq!(measured.len(), n);
        // Headroom per unit and the mean headroom (the setpoint).
        let mean_headroom = caps.iter().zip(measured).map(|(c, p)| c - p).sum::<f64>() / n as f64;

        for u in 0..n {
            let error = (caps[u] - measured[u]) - mean_headroom;
            // Positive error = this unit has above-average slack → shrink.
            self.integral[u] = (self.integral[u] * self.config.integral_decay + error)
                .clamp(-self.config.integral_clamp, self.config.integral_clamp);
            let delta = self.config.kp * error + self.config.ki * self.integral[u];
            caps[u] = self.limits.clamp(caps[u] - delta);
        }
        // Σerror = 0 keeps the sum invariant pre-clamp, but clamping is
        // asymmetric: transfers clipped at the min/max caps would otherwise
        // ratchet the allocated total away from the budget. Re-impose the
        // budget downward, then reclaim any unallocated Watts evenly (every
        // unit's headroom grows alike, so the controller's error signal is
        // unaffected).
        enforce_budget(caps, self.total_budget, self.limits);
        let slack = self.total_budget - caps.iter().sum::<f64>();
        if slack > BUDGET_EPSILON {
            let all: Vec<usize> = (0..n).collect();
            let weights = vec![1.0; n];
            distribute_weighted(caps, &all, &weights, slack, self.limits.max_cap);
        }
        debug_assert_budget(caps, self.total_budget, self.limits);
    }

    fn reset(&mut self) {
        self.integral.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: UnitLimits = UnitLimits {
        min_cap: 40.0,
        max_cap: 165.0,
    };

    fn manager(n: usize, budget: Watts) -> FeedbackManager {
        FeedbackManager::new(n, budget, LIMITS, FeedbackConfig::default())
    }

    #[test]
    fn shifts_power_toward_pressed_unit() {
        let mut m = manager(2, 220.0);
        let mut caps = vec![110.0, 110.0];
        // Unit 0 pressed (headroom ~0), unit 1 slack (headroom 80).
        for _ in 0..20 {
            let measured = [caps[0] - 0.5, 30.0f64.min(caps[1])];
            m.assign_caps(&measured, &mut caps, 1.0);
        }
        assert!(caps[0] > 140.0, "pressed unit should gain: {caps:?}");
        assert!(caps[1] < 80.0, "slack unit should shed: {caps:?}");
        assert!(caps.iter().sum::<f64>() <= 220.0 + 1e-6);
    }

    #[test]
    fn balanced_load_stays_balanced() {
        let mut m = manager(4, 440.0);
        let mut caps = vec![110.0; 4];
        for _ in 0..50 {
            let measured = [100.0; 4];
            m.assign_caps(&measured, &mut caps, 1.0);
        }
        for &c in &caps {
            assert!((c - 110.0).abs() < 1.0, "{caps:?}");
        }
    }

    #[test]
    fn budget_respected_under_churn() {
        let mut m = manager(6, 660.0);
        let mut caps = vec![110.0; 6];
        let mut rng = dps_sim_core::RngStream::new(3, "fb-churn");
        for _ in 0..300 {
            let measured: Vec<f64> = caps
                .iter()
                .map(|&c| rng.range(10.0..165.0_f64).min(c))
                .collect();
            m.assign_caps(&measured, &mut caps, 1.0);
            assert!(caps.iter().sum::<f64>() <= 660.0 + 1e-6);
            assert!(caps
                .iter()
                .all(|&c| (40.0 - 1e-9..=165.0 + 1e-9).contains(&c)));
        }
    }

    #[test]
    fn integral_clamped() {
        let mut m = manager(2, 220.0);
        let mut caps = vec![110.0, 110.0];
        // Persistent asymmetry drives the integral; it must stay clamped.
        for _ in 0..1000 {
            m.assign_caps(&[109.0f64.min(caps[0]), 20.0], &mut caps, 1.0);
        }
        for &i in &m.integral {
            assert!(i.abs() <= FeedbackConfig::default().integral_clamp + 1e-9);
        }
    }

    #[test]
    fn reset_zeroes_integral() {
        let mut m = manager(2, 220.0);
        let mut caps = vec![110.0, 110.0];
        m.assign_caps(&[109.0, 20.0], &mut caps, 1.0);
        m.reset();
        assert!(m.integral.iter().all(|&i| i == 0.0));
    }

    #[test]
    fn kind_is_feedback() {
        assert_eq!(manager(1, 110.0).kind(), ManagerKind::Feedback);
    }

    #[test]
    #[should_panic(expected = "invalid feedback config")]
    fn bad_gains_rejected() {
        FeedbackManager::new(
            1,
            110.0,
            LIMITS,
            FeedbackConfig {
                kp: 0.0,
                ..Default::default()
            },
        );
    }
}
