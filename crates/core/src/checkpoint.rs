//! Controller checkpoint/restore: a hand-rolled binary codec.
//!
//! A production DPS server is a long-running daemon; if it crashes, the
//! restarted controller must resume from its last snapshot *without ever
//! exceeding the budget* and converge back to the trajectory an
//! uninterrupted run would have taken. The snapshot covers everything
//! dynamic in [`crate::DpsManager`]: the RNG stream position (the stateless
//! module's random visit order is part of the control law), the shuffled
//! visit-order permutation itself, every unit's Kalman filter and bounded
//! power history, the priority flags, and the telemetry guard's health
//! machines and cap beliefs.
//!
//! The format is deliberately dependency-free: little-endian fixed-width
//! fields behind a magic/version header, sealed with an FNV-1a checksum so
//! a torn or bit-flipped snapshot is rejected instead of half-applied
//! (restoring from corrupted state is how a crashed controller turns into a
//! budget violation). Restore targets must be constructed with the same
//! shape (unit count, budget, config) as the checkpointed manager —
//! construction parameters are *not* serialized, only verified via the
//! shape fields in the header.

/// Snapshot format magic: `"DPSC"` as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"DPSC");
/// Current snapshot format version. v2 added the per-unit rolling-statistic
/// accumulator internals (sum/sumsq/offset/resync-clock) and the
/// stats-mode flag, so a restored controller's incremental statistics
/// continue the checkpointed trajectory bit-exactly.
pub const VERSION: u32 = 2;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Little-endian binary writer for snapshot payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Starts a payload with the magic/version header already written.
    pub fn new() -> Self {
        Self::reusing(Vec::new())
    }

    /// Starts a payload reusing `buf`'s allocation (contents are cleared) —
    /// for periodic checkpointers that must not churn the heap.
    pub fn reusing(mut buf: Vec<u8>) -> Self {
        buf.clear();
        let mut w = Self { buf };
        w.put_u32(MAGIC);
        w.put_u32(VERSION);
        w
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` by bit pattern (NaN payloads round-trip exactly).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Appends a length-prefixed raw byte blob (e.g. an embedded,
    /// independently sealed sub-snapshot).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Seals the payload with its FNV-1a checksum and returns the bytes.
    pub fn seal(mut self) -> Vec<u8> {
        let sum = fnv1a(&self.buf);
        self.put_u64(sum);
        self.buf
    }
}

/// Little-endian binary reader over a sealed snapshot.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Opens a sealed snapshot: verifies length, checksum, magic and
    /// version before any field is decoded.
    pub fn open(bytes: &'a [u8]) -> Result<Self, String> {
        if bytes.len() < 16 {
            return Err(format!("snapshot truncated: {} bytes", bytes.len()));
        }
        let (payload, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        let computed = fnv1a(payload);
        if stored != computed {
            return Err(format!(
                "snapshot checksum mismatch: stored {stored:#x}, computed {computed:#x}"
            ));
        }
        let mut r = Self {
            buf: payload,
            pos: 0,
        };
        let magic = r.get_u32()?;
        if magic != MAGIC {
            return Err(format!("bad snapshot magic {magic:#x}"));
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(format!(
                "unsupported snapshot version {version} (expected {VERSION})"
            ));
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "snapshot underrun: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`, rejecting anything but 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, String> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("invalid bool byte {b:#x}")),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` (stored as `u64`), rejecting values above
    /// `usize::MAX` on 32-bit hosts.
    pub fn get_usize(&mut self) -> Result<usize, String> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| format!("length {v} overflows usize"))
    }

    /// Reads an `f64` by bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed `f64` vector, with `max_len` guarding
    /// against a corrupted length field allocating gigabytes.
    pub fn get_f64_vec(&mut self, max_len: usize) -> Result<Vec<f64>, String> {
        let len = self.get_usize()?;
        if len > max_len {
            return Err(format!("slice length {len} exceeds bound {max_len}"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed raw byte blob, with `max_len` guarding
    /// against a corrupted length field.
    pub fn get_bytes(&mut self, max_len: usize) -> Result<&'a [u8], String> {
        let len = self.get_usize()?;
        if len > max_len {
            return Err(format!("blob length {len} exceeds bound {max_len}"));
        }
        self.take(len)
    }

    /// Whether every payload byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Errors unless the payload was consumed exactly.
    pub fn finish(self) -> Result<(), String> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(format!(
                "snapshot has {} trailing payload bytes",
                self.buf.len() - self.pos
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_field_types() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_usize(42);
        w.put_f64(-1.5e300);
        w.put_f64(f64::NAN);
        w.put_f64_slice(&[1.0, 2.5, -3.25]);
        w.put_bytes(b"nested");
        let bytes = w.seal();

        let mut r = ByteReader::open(&bytes).unwrap();
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_usize().unwrap(), 42);
        assert_eq!(r.get_f64().unwrap(), -1.5e300);
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_f64_vec(10).unwrap(), vec![1.0, 2.5, -3.25]);
        assert_eq!(r.get_bytes(64).unwrap(), b"nested");
        r.finish().unwrap();
    }

    #[test]
    fn bounded_bytes_rejects_corrupt_length() {
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xAB; 32]);
        let bytes = w.seal();
        let mut r = ByteReader::open(&bytes).unwrap();
        assert!(r.get_bytes(16).is_err());
    }

    #[test]
    fn bit_flip_rejected_by_checksum() {
        let mut w = ByteWriter::new();
        w.put_u64(123);
        let mut bytes = w.seal();
        for i in 0..bytes.len() {
            let mut copy = bytes.clone();
            copy[i] ^= 0x10;
            assert!(
                ByteReader::open(&copy).is_err(),
                "flip at byte {i} must be caught"
            );
        }
        // The pristine snapshot still opens.
        bytes.truncate(bytes.len());
        ByteReader::open(&bytes).unwrap();
    }

    #[test]
    fn truncation_rejected() {
        let mut w = ByteWriter::new();
        w.put_f64_slice(&[1.0; 8]);
        let bytes = w.seal();
        for cut in 0..bytes.len() {
            assert!(ByteReader::open(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let mut w = ByteWriter { buf: Vec::new() };
        w.put_u32(0x1234_5678);
        w.put_u32(VERSION);
        assert!(ByteReader::open(&w.seal()).unwrap_err().contains("magic"));

        let mut w = ByteWriter { buf: Vec::new() };
        w.put_u32(MAGIC);
        w.put_u32(VERSION + 1);
        assert!(ByteReader::open(&w.seal()).unwrap_err().contains("version"));
    }

    #[test]
    fn underrun_and_trailing_bytes_detected() {
        let mut w = ByteWriter::new();
        w.put_u32(5);
        let bytes = w.seal();
        let mut r = ByteReader::open(&bytes).unwrap();
        assert!(r.get_u64().is_err(), "reading past the payload must fail");

        let r = ByteReader::open(&bytes).unwrap();
        assert!(r.finish().is_err(), "unread payload must be flagged");
    }

    #[test]
    fn bounded_vec_rejects_corrupt_length() {
        let mut w = ByteWriter::new();
        w.put_usize(1_000_000);
        let bytes = w.seal();
        let mut r = ByteReader::open(&bytes).unwrap();
        assert!(r.get_f64_vec(64).is_err());
    }
}
