//! Tunables for the stateless module and DPS, with the defaults used by the
//! experiments.
//!
//! The paper publishes the *structure* of each module but not every constant
//! (the artifact's `config.py` carries them). The defaults below were chosen
//! so that on the motivational example (Fig. 1) and the workload families of
//! Fig. 2 each module behaves as the text describes: the MIMD ramps a
//! starved unit to its cap within a few cycles, LR/Linear trip the
//! high-frequency detector, and LDA's 3-second 140 W rise trips the
//! derivative detector immediately.

use serde::{Deserialize, Serialize};

/// Parameters of the stateless MIMD module (paper Alg. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MimdConfig {
    /// Increase when `power > cap * inc_threshold` (unit is pushing against
    /// its cap).
    pub inc_threshold: f64,
    /// Decrease when `power < cap * dec_threshold` (unit has headroom to
    /// spare).
    pub dec_threshold: f64,
    /// Multiplicative increase factor (`inc_percentile` in the paper's
    /// pseudocode), > 1.
    pub inc_factor: f64,
    /// Multiplicative decrease factor (`dec_percentile`), in (0, 1).
    pub dec_factor: f64,
}

impl Default for MimdConfig {
    fn default() -> Self {
        Self {
            inc_threshold: 0.95,
            dec_threshold: 0.85,
            inc_factor: 1.05,
            dec_factor: 0.90,
        }
    }
}

impl MimdConfig {
    /// Validates threshold ordering and factor ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.dec_threshold && self.dec_threshold < self.inc_threshold) {
            return Err(format!(
                "need 0 < dec_threshold < inc_threshold, got {} / {}",
                self.dec_threshold, self.inc_threshold
            ));
        }
        if self.inc_threshold > 1.0 {
            return Err("inc_threshold above 1 can never trigger".into());
        }
        if self.inc_factor <= 1.0 {
            return Err(format!("inc_factor must exceed 1, got {}", self.inc_factor));
        }
        if !(0.0 < self.dec_factor && self.dec_factor < 1.0) {
            return Err(format!(
                "dec_factor must be in (0,1), got {}",
                self.dec_factor
            ));
        }
        Ok(())
    }
}

/// How the per-unit power-dynamics statistics (peak count, std,
/// derivative) are computed each decision cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StatsMode {
    /// Rolling accumulators maintained on `observe`: O(1) amortized per
    /// unit per cycle (see `dps_sim_core::rolling`). The default.
    #[default]
    Incremental,
    /// Full-window recompute per cycle through the slice-based signal
    /// kernels — the pre-optimization reference path, kept as the
    /// equivalence oracle and benchmark baseline.
    Rescan,
}

/// All DPS tunables (paper §4.3, Algs. 2–4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpsConfig {
    /// Stateless-module parameters.
    pub mimd: MimdConfig,
    /// Length of the estimated power history per unit (the paper's default
    /// of 20 time steps, §6.5).
    pub history_len: usize,
    /// Kalman process-noise variance Q (W²/step): how fast true power can
    /// drift. High enough that 140 W/3 s application ramps are tracked.
    pub kalman_q: f64,
    /// Kalman measurement-noise variance R (W²): RAPL reading noise.
    pub kalman_r: f64,
    /// Peak prominence (W) for `count_prominent_peaks` — a power swing must
    /// exceed this to count as a phase change.
    pub peak_prominence: f64,
    /// High-frequency entry: more prominent peaks than this in the history
    /// window marks the unit high-frequency (Alg. 2 line 6). With the
    /// default 20-step window, LR/Linear-style sub-10 s phases show 2+ peaks
    /// per window while long-phase workloads show at most one, so the
    /// default is 1.
    pub pp_threshold: usize,
    /// High-frequency exit also requires history std below this (Alg. 2
    /// line 11).
    pub std_threshold: f64,
    /// Window (samples) for the first-derivative estimate (`direv_length`).
    pub deriv_window: usize,
    /// Derivative above this (W/s) marks a unit high priority (Alg. 2
    /// line 17). Must sit well below the observable rise of a *capped*
    /// unit: the MIMD floor keeps caps only ~15-20 % above a unit's
    /// low-phase power, so a starved unit ramping into its cap shows only a
    /// ~10-15 W rise spread across the derivative window.
    pub deriv_inc_threshold: f64,
    /// Derivative below this (W/s; negative) marks a unit low priority
    /// (Alg. 2 line 20).
    pub deriv_dec_threshold: f64,
    /// Restore when every unit's power is below `initial_cap * this`
    /// (Alg. 3 line 5).
    pub restore_threshold: f64,
    /// A unit whose power estimate is below this (W) can never be high
    /// priority through the pinned/derivative path: any settable cap
    /// already covers a sub-minimum draw, so extra budget cannot help it.
    /// Set to the units' minimum cap. Without the floor, the few-Watt blip
    /// of an idle workload starting its next run trips the derivative
    /// detector and the deadband then holds the phantom priority.
    pub min_active_power: f64,
    /// A unit whose power estimate exceeds `cap * pinned_threshold` is
    /// pinned against its cap and marked high priority — §4.4's "nodes that
    /// need power *now*". Without it a unit parked at a tight cap has only
    /// a few Watts of observable headroom and its demand surge would be
    /// invisible to the derivative detector.
    pub pinned_threshold: f64,
    /// Leftover budget below this fraction of the total budget counts as
    /// "no budget left" in Alg. 4, triggering equalization instead of
    /// distribution. TDP clamping almost always strands a few Watts; without
    /// this tolerance the equalization branch would be unreachable in
    /// practice and high-priority units could stay grossly imbalanced.
    pub equalize_slack: f64,
    /// How the dynamics statistics are computed (incremental accumulators
    /// vs full-window rescan). Decision trajectories are identical either
    /// way; only the per-cycle cost differs.
    pub stats_mode: StatsMode,
    /// Unit count at or above which the observe/classify phase runs on
    /// worker threads, when the crate is compiled with the `parallel`
    /// feature. Below the threshold (and always without the feature) the
    /// sequential loop is used; results are bit-identical either way.
    pub parallel_threshold: usize,
}

impl Default for DpsConfig {
    fn default() -> Self {
        Self {
            mimd: MimdConfig::default(),
            history_len: 20,
            kalman_q: 25.0,
            kalman_r: 4.0,
            peak_prominence: 30.0,
            pp_threshold: 1,
            std_threshold: 20.0,
            deriv_window: 3,
            deriv_inc_threshold: 3.0,
            deriv_dec_threshold: -3.0,
            restore_threshold: 0.90,
            min_active_power: 40.0,
            pinned_threshold: 0.95,
            equalize_slack: 0.02,
            stats_mode: StatsMode::default(),
            parallel_threshold: 256,
        }
    }
}

impl DpsConfig {
    /// Validates all fields.
    pub fn validate(&self) -> Result<(), String> {
        self.mimd.validate()?;
        if self.history_len < 2 {
            return Err("history_len must be at least 2".into());
        }
        if self.kalman_q < 0.0 || self.kalman_r < 0.0 || self.kalman_q + self.kalman_r == 0.0 {
            return Err("Kalman variances must be non-negative, not both zero".into());
        }
        if self.peak_prominence <= 0.0 {
            return Err("peak_prominence must be positive".into());
        }
        if self.std_threshold <= 0.0 {
            return Err("std_threshold must be positive".into());
        }
        if self.deriv_window < 1 || self.deriv_window >= self.history_len {
            return Err(format!(
                "deriv_window must be in [1, history_len), got {}",
                self.deriv_window
            ));
        }
        if self.deriv_inc_threshold <= 0.0 {
            return Err("deriv_inc_threshold must be positive".into());
        }
        if self.deriv_dec_threshold >= 0.0 {
            return Err("deriv_dec_threshold must be negative".into());
        }
        if !(0.0 < self.restore_threshold && self.restore_threshold <= 1.0) {
            return Err("restore_threshold must be in (0,1]".into());
        }
        if !(0.0..0.5).contains(&self.equalize_slack) {
            return Err("equalize_slack must be in [0, 0.5)".into());
        }
        // `INFINITY` is the documented "disabled" sentinel; NaN is rejected.
        if self.pinned_threshold.is_nan() || self.pinned_threshold < 0.5 {
            return Err("pinned_threshold must be at least 0.5".into());
        }
        if !(self.min_active_power.is_finite() && self.min_active_power >= 0.0) {
            return Err("min_active_power must be non-negative".into());
        }
        Ok(())
    }

    /// A config with the Kalman filter effectively disabled (ablation:
    /// measurements pass through, R→0).
    pub fn without_kalman(mut self) -> Self {
        self.kalman_r = 0.0;
        self
    }

    /// A config with high-frequency detection disabled (ablation: the
    /// peak-count gate never trips).
    pub fn without_frequency_detection(mut self) -> Self {
        self.pp_threshold = usize::MAX;
        self
    }

    /// A config with the restore step disabled (ablation: any measurable
    /// power at all counts as "busy", so Alg. 3 never fires).
    pub fn without_restore(mut self) -> Self {
        self.restore_threshold = f64::MIN_POSITIVE;
        self
    }

    /// The same config with `stats_mode` replaced — convenience for the
    /// equivalence tests and benchmarks that pit [`StatsMode::Incremental`]
    /// against the [`StatsMode::Rescan`] reference path.
    pub fn with_stats_mode(mut self, mode: StatsMode) -> Self {
        self.stats_mode = mode;
        self
    }

    /// A config with the cap-pinned "needs power now" promotion disabled
    /// (ablation: an infinite threshold can never be exceeded, leaving only
    /// the derivative and frequency signals of the literal pseudocode).
    pub fn without_pinned(mut self) -> Self {
        self.pinned_threshold = f64::INFINITY;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert_eq!(MimdConfig::default().validate(), Ok(()));
        assert_eq!(DpsConfig::default().validate(), Ok(()));
    }

    #[test]
    fn mimd_threshold_order_enforced() {
        let bad = MimdConfig {
            dec_threshold: 0.96,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn mimd_factor_ranges_enforced() {
        let bad_inc = MimdConfig {
            inc_factor: 0.9,
            ..Default::default()
        };
        assert!(bad_inc.validate().is_err());
        let bad_dec = MimdConfig {
            dec_factor: 1.5,
            ..Default::default()
        };
        assert!(bad_dec.validate().is_err());
    }

    #[test]
    fn deriv_window_must_fit_history() {
        let bad = DpsConfig {
            deriv_window: 25,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn deriv_thresholds_signs_enforced() {
        let bad = DpsConfig {
            deriv_dec_threshold: 1.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad2 = DpsConfig {
            deriv_inc_threshold: -1.0,
            ..Default::default()
        };
        assert!(bad2.validate().is_err());
    }

    #[test]
    fn ablation_constructors() {
        let no_kf = DpsConfig::default().without_kalman();
        assert_eq!(no_kf.kalman_r, 0.0);
        assert_eq!(no_kf.validate(), Ok(()));
        let no_freq = DpsConfig::default().without_frequency_detection();
        assert_eq!(no_freq.pp_threshold, usize::MAX);
        assert_eq!(no_freq.validate(), Ok(()));
        let no_restore = DpsConfig::default().without_restore();
        assert!(no_restore.restore_threshold > 0.0);
        assert_eq!(no_restore.validate(), Ok(()));
        let no_pinned = DpsConfig::default().without_pinned();
        assert!(no_pinned.pinned_threshold.is_infinite());
        assert_eq!(no_pinned.validate(), Ok(()));
    }

    #[test]
    fn config_copy_semantics() {
        let cfg = DpsConfig::default();
        let copy = cfg;
        assert_eq!(copy, cfg);
    }
}
