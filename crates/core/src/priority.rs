//! The priority module (paper Alg. 2).
//!
//! Classifies every unit's *power dynamics* into a binary priority:
//!
//! 1. **Frequency gate.** A unit whose history shows more prominent peaks
//!    than `pp_threshold` is marked *high-frequency* and pinned high
//!    priority — its phases change faster than the manager can react, so DPS
//!    "assumes they are in need of extra power" (§4.4). It leaves the
//!    high-frequency class only when both the peak count *and* the history
//!    standard deviation drop below their thresholds (the std check catches
//!    fast-changing power that happens to produce few formal peaks).
//! 2. **Cap-pinned promotion.** A low-frequency unit whose power estimate
//!    presses against its cap (`estimate > cap × pinned_threshold`) is high
//!    priority — §4.4's "nodes that **need power now**". A capped unit's
//!    observable power cannot rise above its cap, so without this signal a
//!    starved unit's demand surge is invisible to the derivative detector;
//!    conversely a cap cut by DPS's own equalization reads as a power fall
//!    even though the unit still demands maximum power.
//! 3. **Derivative classification.** Remaining units are classified by the
//!    windowed first derivative: above `deriv_inc_threshold` → high
//!    priority (power rising — "will likely need power in the near
//!    future"); below `deriv_dec_threshold` → low priority (power
//!    falling); in between the priority is *kept* — "after the power
//!    change, the unit's priority should be kept unchanged until the power
//!    changes again".

use crate::config::DpsConfig;
use crate::history::UnitState;
use dps_sim_core::units::Watts;

/// The dynamics statistics Alg. 2 consumes, abstracted over storage layout.
/// Implemented by [`UnitState`] (the per-unit reference layout) and by the
/// manager's column store's per-unit view, so both run literally the same
/// classification code — there is one copy of the decision logic to keep
/// bit-identical, not two.
pub(crate) trait Dynamics {
    fn prominent_peak_count(&mut self) -> usize;
    fn history_std(&mut self) -> f64;
    fn latest_estimate(&mut self) -> f64;
    fn derivative(&mut self) -> Option<f64>;
    fn high_freq(&self) -> bool;
    fn set_high_freq(&mut self, v: bool);
    fn set_priority(&mut self, v: bool);
}

impl Dynamics for UnitState {
    fn prominent_peak_count(&mut self) -> usize {
        UnitState::prominent_peak_count(self)
    }
    fn history_std(&mut self) -> f64 {
        UnitState::history_std(self)
    }
    fn latest_estimate(&mut self) -> f64 {
        UnitState::latest_estimate(self)
    }
    fn derivative(&mut self) -> Option<f64> {
        UnitState::derivative(self)
    }
    fn high_freq(&self) -> bool {
        self.high_freq
    }
    fn set_high_freq(&mut self, v: bool) {
        self.high_freq = v;
    }
    fn set_priority(&mut self, v: bool) {
        self.priority = v;
    }
}

/// Applies Alg. 2 to one unit's dynamics in place. `cap` is the cap
/// currently in force (before this cycle's readjustment). Units are
/// classified independently of each other, which is what lets the manager's
/// fused observe/classify phase run them on worker threads.
pub(crate) fn classify_dynamics<D: Dynamics>(d: &mut D, cap: Watts, config: &DpsConfig) {
    let pp_count = d.prominent_peak_count();

    if !d.high_freq() {
        if pp_count > config.pp_threshold {
            d.set_high_freq(true);
            d.set_priority(true);
            return;
        }
    } else if pp_count < config.pp_threshold && d.history_std() < config.std_threshold {
        d.set_high_freq(false);
        d.set_priority(false);
        return;
    }

    if !d.high_freq() {
        // A draw below the minimum settable cap is satisfied by any
        // cap: such a unit never needs extra budget.
        if d.latest_estimate() < config.min_active_power {
            d.set_priority(false);
            return;
        }
        // Need power now: pinned against the cap.
        if d.latest_estimate() > cap * config.pinned_threshold {
            d.set_priority(true);
            return;
        }
        // Will need power soon / no longer needs it: the derivative.
        let Some(deriv) = d.derivative() else {
            return;
        };
        if deriv > config.deriv_inc_threshold {
            d.set_priority(true);
        } else if deriv < config.deriv_dec_threshold {
            d.set_priority(false);
        }
        // Otherwise: hold the previous priority.
    }
}

/// Applies Alg. 2 to one unit's state in place (the [`UnitState`]
/// instantiation of the crate-internal `classify_dynamics`, which the
/// column store shares).
pub fn classify_unit(state: &mut UnitState, cap: Watts, config: &DpsConfig) {
    classify_dynamics(state, cap, config);
}

/// Applies Alg. 2 to every unit's state in place. `caps` are the caps
/// currently in force (before this cycle's readjustment).
pub fn set_priorities(states: &mut [UnitState], caps: &[Watts], config: &DpsConfig) {
    debug_assert_eq!(states.len(), caps.len());
    for (state, &cap) in states.iter_mut().zip(caps) {
        classify_unit(state, cap, config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> DpsConfig {
        DpsConfig::default()
    }

    fn fresh(config: &DpsConfig) -> UnitState {
        UnitState::new(config)
    }

    fn feed(state: &mut UnitState, powers: &[f64]) {
        for &p in powers {
            state.observe(p, 1.0);
        }
    }

    #[test]
    fn rising_power_sets_high_priority() {
        let cfg = config();
        let mut s = fresh(&cfg);
        // Fast LDA-style rise: 20 → 160 W over 3 s.
        feed(&mut s, &[20.0, 20.0, 20.0, 65.0, 110.0, 160.0]);
        set_priorities(std::slice::from_mut(&mut s), &[165.0], &cfg);
        assert!(s.priority, "fast riser must be high priority");
        assert!(!s.high_freq);
    }

    #[test]
    fn falling_power_sets_low_priority() {
        let cfg = config();
        let mut s = fresh(&cfg);
        s.priority = true; // was high
        feed(&mut s, &[160.0, 160.0, 130.0, 100.0, 70.0]);
        set_priorities(std::slice::from_mut(&mut s), &[165.0], &cfg);
        assert!(!s.priority, "fast faller must drop priority");
    }

    #[test]
    fn priority_held_in_deadband() {
        let cfg = config();
        // Stable high power after a rise: derivative ~0 → hold.
        let mut s = fresh(&cfg);
        s.priority = true;
        feed(&mut s, &[158.0, 159.0, 158.5, 159.5, 159.0]);
        set_priorities(std::slice::from_mut(&mut s), &[165.0], &cfg);
        assert!(s.priority, "priority kept until power changes again");

        // Same flat trace with prior low priority stays low.
        let mut s2 = fresh(&cfg);
        s2.priority = false;
        feed(&mut s2, &[58.0, 59.0, 58.5, 59.5, 59.0]);
        set_priorities(std::slice::from_mut(&mut s2), &[165.0], &cfg);
        assert!(!s2.priority);
    }

    #[test]
    fn high_frequency_unit_pinned_high() {
        let cfg = config();
        let mut s = fresh(&cfg);
        // LR-style square wave fills the 20-sample window with many peaks.
        for _ in 0..4 {
            feed(&mut s, &[150.0, 150.0, 30.0, 30.0, 150.0]);
        }
        set_priorities(std::slice::from_mut(&mut s), &[165.0], &cfg);
        assert!(s.high_freq, "square wave must be detected high-frequency");
        assert!(s.priority);
    }

    #[test]
    fn high_frequency_exit_requires_calm_and_low_std() {
        let cfg = config();
        let mut s = fresh(&cfg);
        s.high_freq = true;
        s.priority = true;
        // History turns flat: few peaks AND low std → exit high-frequency.
        feed(&mut s, &[80.0; 20]);
        set_priorities(std::slice::from_mut(&mut s), &[165.0], &cfg);
        assert!(!s.high_freq);
        assert!(!s.priority);
    }

    #[test]
    fn high_frequency_exit_blocked_by_high_std() {
        let cfg = config();
        let mut s = fresh(&cfg);
        s.high_freq = true;
        s.priority = true;
        // A monotone climb shows zero prominent peaks (below the threshold)
        // but a large std — the std check keeps the unit classified
        // high-frequency (Alg. 2's "sometimes the number of prominent peaks
        // can fall below the threshold yet power is still changing").
        feed(
            &mut s,
            &[
                30.0, 30.0, 40.0, 55.0, 75.0, 95.0, 115.0, 135.0, 150.0, 160.0,
            ],
        );
        assert_eq!(s.prominent_peak_count(), 0);
        set_priorities(std::slice::from_mut(&mut s), &[165.0], &cfg);
        assert!(s.high_freq, "high std must block the exit");
        assert!(s.priority);
    }

    #[test]
    fn derivative_skipped_for_high_frequency_units() {
        let cfg = config();
        let mut s = fresh(&cfg);
        s.high_freq = true;
        s.priority = true;
        // Ends falling hard — but high-frequency units keep priority even
        // while their instantaneous derivative is negative.
        for _ in 0..3 {
            feed(&mut s, &[150.0, 30.0, 150.0, 30.0]);
        }
        feed(&mut s, &[150.0, 100.0, 40.0]);
        set_priorities(std::slice::from_mut(&mut s), &[165.0], &cfg);
        assert!(
            s.priority,
            "high-frequency unit must not be demoted by derivative"
        );
    }

    #[test]
    fn idle_restart_blip_not_promoted() {
        let cfg = config();
        let mut s = fresh(&cfg);
        // A low-power workload's next run starting: 15 → 27 W. A steep
        // *relative* rise, but the unit draws less than any settable cap —
        // it must not become high priority.
        feed(&mut s, &[15.0, 15.0, 15.0, 27.0, 27.5, 27.0]);
        set_priorities(std::slice::from_mut(&mut s), &[110.0], &cfg);
        assert!(!s.priority, "sub-min-cap blip must not promote");
        // And the phantom priority cannot be held either.
        let mut s2 = fresh(&cfg);
        s2.priority = true;
        feed(&mut s2, &[27.0, 27.5, 27.0, 27.5, 27.0]);
        set_priorities(std::slice::from_mut(&mut s2), &[110.0], &cfg);
        assert!(!s2.priority, "sub-min-cap draw must drop priority");
    }

    #[test]
    fn pinned_at_cap_promoted_to_high() {
        let cfg = config();
        let mut s = fresh(&cfg);
        // Flat power right at a tight 65 W cap: no derivative signal at all,
        // but the unit visibly needs power now.
        feed(&mut s, &[64.0, 64.5, 64.0, 64.5, 64.0]);
        set_priorities(std::slice::from_mut(&mut s), &[65.0], &cfg);
        assert!(s.priority, "cap-pinned unit must be high priority");
    }

    #[test]
    fn cap_cut_fall_does_not_demote_pinned_unit() {
        let cfg = config();
        let mut s = fresh(&cfg);
        s.priority = true;
        // Equalization cut the cap 150 → 110; power follows and then sits
        // at the new cap. The fall is cap-induced, not demand-induced: the
        // pinned check must keep the unit high priority.
        feed(&mut s, &[150.0, 150.0, 150.0, 110.0, 110.0, 110.0]);
        set_priorities(std::slice::from_mut(&mut s), &[110.0], &cfg);
        assert!(s.priority, "cap-induced fall must not demote");
    }

    #[test]
    fn genuine_fall_below_cap_still_demotes() {
        let cfg = config();
        let mut s = fresh(&cfg);
        s.priority = true;
        // Demand genuinely collapsed: power drops far below the cap.
        feed(&mut s, &[150.0, 150.0, 120.0, 80.0, 50.0]);
        set_priorities(std::slice::from_mut(&mut s), &[165.0], &cfg);
        assert!(!s.priority);
    }

    #[test]
    fn empty_history_untouched() {
        let cfg = config();
        let mut s = fresh(&cfg);
        set_priorities(std::slice::from_mut(&mut s), &[165.0], &cfg);
        assert!(!s.priority);
        assert!(!s.high_freq);
    }

    #[test]
    fn mixed_population_classified_independently() {
        let cfg = config();
        let mut states = vec![fresh(&cfg), fresh(&cfg), fresh(&cfg)];
        feed(&mut states[0], &[20.0, 20.0, 80.0, 140.0, 160.0]); // riser
        feed(&mut states[1], &[160.0, 150.0, 100.0, 60.0, 40.0]); // faller
        for _ in 0..4 {
            feed(&mut states[2], &[150.0, 30.0, 150.0, 30.0, 150.0]); // jitterbug
        }
        set_priorities(&mut states, &[165.0, 165.0, 165.0], &cfg);
        assert!(states[0].priority);
        assert!(!states[1].priority);
        assert!(states[2].priority && states[2].high_freq);
    }

    #[test]
    fn frequency_detection_disabled_by_ablation() {
        let cfg = config().without_frequency_detection();
        let mut s = fresh(&cfg);
        for _ in 0..4 {
            feed(&mut s, &[150.0, 30.0, 150.0, 30.0, 150.0]);
        }
        set_priorities(std::slice::from_mut(&mut s), &[165.0], &cfg);
        assert!(!s.high_freq, "ablated config must never trip the gate");
    }
}
