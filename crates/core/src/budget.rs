//! Budget arithmetic shared by the managers.
//!
//! Every policy must uphold one invariant: caps sum to at most the cluster
//! budget. The helpers here distribute Watts under per-unit ceilings (with
//! clamp-remainder redistribution) and check the invariant.

use crate::manager::UnitLimits;
use dps_sim_core::units::Watts;

/// Numerical slack tolerated on the budget invariant (Watts).
pub const BUDGET_EPSILON: Watts = 1e-6;

/// Asserts (in debug builds) that caps respect the budget and unit limits.
pub fn debug_assert_budget(caps: &[Watts], total_budget: Watts, limits: UnitLimits) {
    debug_assert!(
        caps.iter().sum::<f64>() <= total_budget + BUDGET_EPSILON,
        "caps sum {} exceeds budget {}",
        caps.iter().sum::<f64>(),
        total_budget
    );
    for (i, &c) in caps.iter().enumerate() {
        debug_assert!(
            c >= limits.min_cap - BUDGET_EPSILON && c <= limits.max_cap + BUDGET_EPSILON,
            "cap[{i}] = {c} outside [{}, {}]",
            limits.min_cap,
            limits.max_cap
        );
    }
}

/// Checks the invariant, returning an error string (for release-mode tests).
pub fn check_budget(caps: &[Watts], total_budget: Watts, limits: UnitLimits) -> Result<(), String> {
    let sum: f64 = caps.iter().sum();
    if sum > total_budget + BUDGET_EPSILON {
        return Err(format!("caps sum {sum} exceeds budget {total_budget}"));
    }
    for (i, &c) in caps.iter().enumerate() {
        if c < limits.min_cap - BUDGET_EPSILON || c > limits.max_cap + BUDGET_EPSILON {
            return Err(format!(
                "cap[{i}] = {c} outside [{}, {}]",
                limits.min_cap, limits.max_cap
            ));
        }
    }
    Ok(())
}

/// Reusable index buffers for [`distribute_weighted_into`], so the
/// per-cycle water-filling never allocates in steady state.
#[derive(Debug, Clone, Default)]
pub struct DistributeScratch {
    active: Vec<usize>,
    next_active: Vec<usize>,
}

/// Distributes `amount` Watts of *additional* budget across the selected
/// units proportionally to `weights`, never pushing a cap above `max_cap`.
/// Clamp remainders are redistributed over the remaining unsaturated units
/// (water-filling), so the full amount is spent whenever headroom exists.
///
/// Returns the Watts actually assigned (≤ `amount`; less only when every
/// selected unit hits its ceiling).
pub fn distribute_weighted_into(
    caps: &mut [Watts],
    selected: &[usize],
    weights: &[f64],
    amount: Watts,
    max_cap: Watts,
    scratch: &mut DistributeScratch,
) -> Watts {
    assert_eq!(
        selected.len(),
        weights.len(),
        "one weight per selected unit"
    );
    if amount <= 0.0 || selected.is_empty() {
        return 0.0;
    }
    let mut remaining = amount;
    let DistributeScratch {
        active,
        next_active,
    } = scratch;
    active.clear();
    active.extend(
        (0..selected.len())
            .filter(|&k| weights[k] > 0.0 && caps[selected[k]] < max_cap - BUDGET_EPSILON),
    );

    // Water-fill: at most `active.len()` rounds since each round saturates
    // at least one unit or exhausts the remainder.
    for _ in 0..selected.len().max(1) {
        if remaining <= BUDGET_EPSILON || active.is_empty() {
            break;
        }
        let weight_sum: f64 = active.iter().map(|&k| weights[k]).sum();
        if weight_sum <= 0.0 {
            break;
        }
        next_active.clear();
        let mut spent = 0.0;
        for &k in active.iter() {
            let unit = selected[k];
            let share = remaining * weights[k] / weight_sum;
            let headroom = max_cap - caps[unit];
            let grant = share.min(headroom);
            caps[unit] += grant;
            spent += grant;
            if caps[unit] < max_cap - BUDGET_EPSILON {
                next_active.push(k);
            }
        }
        remaining -= spent;
        if next_active.len() == active.len() {
            // Nobody saturated → everything distributable was distributed.
            break;
        }
        std::mem::swap(active, next_active);
    }
    amount - remaining
}

/// Allocating convenience wrapper over [`distribute_weighted_into`] for the
/// baseline managers, whose cycle cost is not under study.
pub fn distribute_weighted(
    caps: &mut [Watts],
    selected: &[usize],
    weights: &[f64],
    amount: Watts,
    max_cap: Watts,
) -> Watts {
    let mut scratch = DistributeScratch::default();
    distribute_weighted_into(caps, selected, weights, amount, max_cap, &mut scratch)
}

/// Scales all caps down proportionally (toward `min_cap`) until they sum to
/// at most `total_budget`. A numerical safety net, not a policy: managers
/// should already respect the budget.
pub fn enforce_budget(caps: &mut [Watts], total_budget: Watts, limits: UnitLimits) {
    let sum: f64 = caps.iter().sum();
    if sum <= total_budget + BUDGET_EPSILON || sum <= 0.0 {
        return;
    }
    // Scale the above-minimum portion of each cap.
    let floor_sum = limits.min_cap * caps.len() as f64;
    let scalable = (sum - floor_sum).max(0.0);
    let target = (total_budget - floor_sum).max(0.0);
    let factor = if scalable > 0.0 {
        target / scalable
    } else {
        0.0
    };
    for c in caps.iter_mut() {
        *c = limits.min_cap + (*c - limits.min_cap).max(0.0) * factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: UnitLimits = UnitLimits {
        min_cap: 40.0,
        max_cap: 165.0,
    };

    #[test]
    fn check_budget_accepts_valid() {
        let caps = vec![110.0; 4];
        assert!(check_budget(&caps, 440.0, LIMITS).is_ok());
    }

    #[test]
    fn check_budget_rejects_over_budget() {
        let caps = vec![120.0; 4];
        assert!(check_budget(&caps, 440.0, LIMITS).is_err());
    }

    #[test]
    fn check_budget_rejects_out_of_range_cap() {
        let caps = vec![30.0, 110.0];
        assert!(check_budget(&caps, 300.0, LIMITS).is_err());
        let caps = vec![170.0, 40.0];
        assert!(check_budget(&caps, 300.0, LIMITS).is_err());
    }

    #[test]
    fn distribute_proportional_to_weights() {
        let mut caps = vec![50.0, 50.0, 50.0];
        let assigned = distribute_weighted(&mut caps, &[0, 1], &[1.0, 3.0], 40.0, 165.0);
        assert!((assigned - 40.0).abs() < 1e-9);
        assert!((caps[0] - 60.0).abs() < 1e-9);
        assert!((caps[1] - 80.0).abs() < 1e-9);
        assert_eq!(caps[2], 50.0, "unselected unit untouched");
    }

    #[test]
    fn distribute_respects_ceiling_and_redistributes() {
        let mut caps = vec![160.0, 100.0];
        // Unit 0 can only absorb 5 W; the rest must flow to unit 1.
        let assigned = distribute_weighted(&mut caps, &[0, 1], &[1.0, 1.0], 30.0, 165.0);
        assert!((assigned - 30.0).abs() < 1e-9);
        assert!((caps[0] - 165.0).abs() < 1e-9);
        assert!((caps[1] - 125.0).abs() < 1e-9);
    }

    #[test]
    fn distribute_partial_when_everything_saturates() {
        let mut caps = vec![160.0, 162.0];
        let assigned = distribute_weighted(&mut caps, &[0, 1], &[1.0, 1.0], 100.0, 165.0);
        assert!((assigned - 8.0).abs() < 1e-9, "assigned {assigned}");
        assert_eq!(caps, vec![165.0, 165.0]);
    }

    #[test]
    fn distribute_zero_amount_noop() {
        let mut caps = vec![100.0];
        assert_eq!(
            distribute_weighted(&mut caps, &[0], &[1.0], 0.0, 165.0),
            0.0
        );
        assert_eq!(caps, vec![100.0]);
    }

    #[test]
    fn distribute_empty_selection_noop() {
        let mut caps = vec![100.0];
        assert_eq!(distribute_weighted(&mut caps, &[], &[], 50.0, 165.0), 0.0);
    }

    #[test]
    fn enforce_budget_scales_down() {
        let mut caps = vec![165.0, 165.0, 40.0];
        enforce_budget(&mut caps, 330.0, LIMITS);
        let sum: f64 = caps.iter().sum();
        assert!(sum <= 330.0 + BUDGET_EPSILON, "sum {sum}");
        // Minimum-cap unit untouched; others scaled equally.
        assert_eq!(caps[2], 40.0);
        assert!((caps[0] - caps[1]).abs() < 1e-9);
        assert!(caps[0] >= 40.0);
    }

    #[test]
    fn enforce_budget_noop_when_satisfied() {
        let mut caps = vec![100.0, 100.0];
        enforce_budget(&mut caps, 300.0, LIMITS);
        assert_eq!(caps, vec![100.0, 100.0]);
    }

    #[test]
    #[should_panic(expected = "one weight per selected unit")]
    fn distribute_length_mismatch_panics() {
        let mut caps = vec![100.0];
        distribute_weighted(&mut caps, &[0], &[1.0, 2.0], 10.0, 165.0);
    }
}
