//! The Dynamic Power Scheduler — the paper's contribution assembled.
//!
//! Per decision cycle (Fig. 3's control system):
//!
//! 1. the **stateless module** turns current power into a temporary cap
//!    allocation (Alg. 1);
//! 2. the **Kalman filter** absorbs measurement noise and appends the power
//!    estimate to each unit's bounded history (§4.3.2);
//! 3. the **priority module** classifies each unit's power dynamics —
//!    prominent-peak frequency and windowed first derivative — into a binary
//!    priority (Alg. 2);
//! 4. the **cap readjusting module** restores the constant allocation when
//!    the whole system is quiet, otherwise spends leftover budget on
//!    high-priority units or equalizes their caps when the budget is
//!    exhausted (Algs. 3–4), guaranteeing the constant-allocation lower
//!    bound.

use crate::budget::debug_assert_budget;
use crate::config::DpsConfig;
use crate::history::UnitState;
use crate::manager::{constant_cap, ManagerKind, PowerManager, UnitLimits};
use crate::priority::set_priorities;
use crate::readjust::{readjust, restore};
use crate::stateless::MimdModule;
use dps_sim_core::rng::RngStream;
use dps_sim_core::units::{Seconds, Watts};

/// The model-free stateful power manager.
///
/// ```
/// use dps_core::manager::{PowerManager, UnitLimits};
/// use dps_core::{DpsConfig, DpsManager};
/// use dps_sim_core::RngStream;
///
/// // Two sockets sharing a 220 W budget (110 W constant cap each).
/// let mut dps = DpsManager::new(
///     2,
///     220.0,
///     UnitLimits::xeon_gold_6240(),
///     DpsConfig::default(),
///     RngStream::new(42, "docs"),
/// );
/// let mut caps = vec![110.0, 110.0];
///
/// // Unit 0 ramps toward its cap while unit 1 idles: after a few cycles
/// // unit 0 is high priority and holds at least the constant cap.
/// for power in [30.0, 60.0, 95.0, 109.0, 109.0] {
///     dps.assign_caps(&[power, 20.0], &mut caps, 1.0);
/// }
/// assert!(dps.priorities().unwrap()[0]);
/// assert!(caps[0] >= 110.0);
/// assert!(caps.iter().sum::<f64>() <= 220.0 + 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct DpsManager {
    config: DpsConfig,
    limits: UnitLimits,
    total_budget: Watts,
    initial_cap: Watts,
    mimd: MimdModule,
    states: Vec<UnitState>,
    rng: RngStream,
    rng_initial: RngStream,
    changed: Vec<bool>,
    /// Priority snapshot exposed for logging.
    priority_flags: Vec<bool>,
    /// Whether the last cycle ended in a restore (exposed for tests/logs).
    last_restored: bool,
}

impl DpsManager {
    /// Creates the manager.
    ///
    /// # Panics
    /// Panics on an invalid config.
    pub fn new(
        num_units: usize,
        total_budget: Watts,
        limits: UnitLimits,
        config: DpsConfig,
        rng: RngStream,
    ) -> Self {
        config.validate().expect("invalid DPS config");
        limits
            .check_feasible(total_budget, num_units)
            .expect("infeasible budget");
        let initial_cap = constant_cap(total_budget, num_units, limits);
        Self {
            mimd: MimdModule::new(config.mimd, limits, total_budget, num_units),
            states: (0..num_units).map(|_| UnitState::new(&config)).collect(),
            config,
            limits,
            total_budget,
            initial_cap,
            rng_initial: rng.clone(),
            rng,
            changed: vec![false; num_units],
            priority_flags: vec![false; num_units],
            last_restored: false,
        }
    }

    /// The config in effect.
    pub fn config(&self) -> &DpsConfig {
        &self.config
    }

    /// The constant cap DPS restores to.
    pub fn initial_cap(&self) -> Watts {
        self.initial_cap
    }

    /// Which units' caps changed in the last cycle (traffic accounting).
    pub fn changed(&self) -> &[bool] {
        &self.changed
    }

    /// Whether the last cycle restored the constant allocation.
    pub fn last_restored(&self) -> bool {
        self.last_restored
    }

    /// Latest Kalman power estimates per unit (the artifact logs these).
    pub fn estimates(&self) -> Vec<Watts> {
        self.states.iter().map(|s| s.latest_estimate()).collect()
    }

    /// Read-only access to a unit's dynamic state (for the ablation and
    /// overhead studies).
    pub fn unit_state(&self, unit: usize) -> &UnitState {
        &self.states[unit]
    }
}

impl PowerManager for DpsManager {
    fn kind(&self) -> ManagerKind {
        ManagerKind::Dps
    }

    fn num_units(&self) -> usize {
        self.states.len()
    }

    fn total_budget(&self) -> Watts {
        self.total_budget
    }

    fn assign_caps(&mut self, measured: &[Watts], caps: &mut [Watts], dt: Seconds) {
        assert_eq!(
            measured.len(),
            self.states.len(),
            "one measurement per unit"
        );

        // (1) Stateless temporary allocation on raw current power (Fig. 3:
        // the stateless module takes in current power directly).
        let mut changed = std::mem::take(&mut self.changed);
        self.mimd.apply(measured, caps, &mut changed, &mut self.rng);

        // (2) Kalman-filtered estimates extend each unit's power history.
        for (state, &z) in self.states.iter_mut().zip(measured) {
            state.observe(z, dt);
        }

        // (3) Priorities from power dynamics (and the cap-pinned "needs
        // power now" signal, judged against the temporary caps).
        set_priorities(&mut self.states, caps, &self.config);
        for (flag, state) in self.priority_flags.iter_mut().zip(&self.states) {
            *flag = state.priority;
        }

        // (4) Restore, then readjust.
        self.last_restored = restore(
            measured,
            caps,
            &mut changed,
            self.initial_cap,
            self.config.restore_threshold,
        );
        readjust(
            caps,
            &mut changed,
            &self.priority_flags,
            self.total_budget,
            self.limits,
            self.last_restored,
            self.config.equalize_slack * self.total_budget,
        );

        self.changed = changed;
        debug_assert_budget(caps, self.total_budget, self.limits);
    }

    fn priorities(&self) -> Option<&[bool]> {
        Some(&self.priority_flags)
    }

    fn reset(&mut self) {
        for s in &mut self.states {
            s.reset();
        }
        self.mimd.reset();
        self.rng = self.rng_initial.clone();
        self.changed.fill(false);
        self.priority_flags.fill(false);
        self.last_restored = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: UnitLimits = UnitLimits {
        min_cap: 40.0,
        max_cap: 165.0,
    };

    fn dps(n: usize, budget: Watts) -> DpsManager {
        DpsManager::new(
            n,
            budget,
            LIMITS,
            DpsConfig::default(),
            RngStream::new(3, "dps-test"),
        )
    }

    /// Drives the manager with a closure producing per-unit power from caps
    /// (power follows demand but never exceeds the cap).
    fn drive(
        m: &mut DpsManager,
        caps: &mut [f64],
        steps: usize,
        demand: impl Fn(usize, usize) -> f64,
    ) {
        for t in 0..steps {
            let measured: Vec<f64> = caps
                .iter()
                .enumerate()
                .map(|(u, &c)| demand(t, u).min(c))
                .collect();
            m.assign_caps(&measured, caps, 1.0);
        }
    }

    #[test]
    fn quiet_system_restores_constant_caps() {
        let mut m = dps(4, 440.0);
        let mut caps = vec![110.0; 4];
        drive(&mut m, &mut caps, 10, |_, _| 30.0);
        assert!(m.last_restored());
        assert!(caps.iter().all(|&c| (c - 110.0).abs() < 1e-9), "{caps:?}");
    }

    #[test]
    fn riser_rescued_when_budget_exhausted() {
        // The Fig. 1 scenario end-state: unit 0 grabbed everything, unit 1
        // then ramps. DPS detects the rise and equalizes; SLURM cannot.
        let mut m = dps(2, 220.0);
        let mut caps = vec![110.0, 110.0];
        // Phase 1: unit 0 hot, unit 1 idle → unit 0 accumulates budget.
        drive(
            &mut m,
            &mut caps,
            12,
            |_, u| if u == 0 { 165.0 } else { 25.0 },
        );
        assert!(
            caps[0] > 150.0,
            "unit 0 should have grabbed budget: {caps:?}"
        );
        assert!(caps[1] < 70.0);
        // Phase 2: unit 1 ramps hard to whatever it is allowed.
        drive(&mut m, &mut caps, 12, |_, _| 165.0);
        assert!(
            (caps[1] - 110.0).abs() < 10.0,
            "DPS must pull unit 1 back near the fair share: {caps:?}"
        );
        assert!(caps.iter().sum::<f64>() <= 220.0 + 1e-6);
    }

    #[test]
    fn budget_respected_under_chaotic_load() {
        let mut m = dps(8, 880.0);
        let mut caps = vec![110.0; 8];
        let mut rng = RngStream::new(77, "chaos");
        for _ in 0..400 {
            let measured: Vec<f64> = caps
                .iter()
                .map(|&c| rng.range(10.0..165.0_f64).min(c))
                .collect();
            m.assign_caps(&measured, &mut caps, 1.0);
            assert!(caps.iter().sum::<f64>() <= 880.0 + 1e-6);
            assert!(caps
                .iter()
                .all(|&c| (40.0 - 1e-9..=165.0 + 1e-9).contains(&c)));
        }
    }

    #[test]
    fn priorities_exposed_and_sized() {
        let mut m = dps(3, 330.0);
        let mut caps = vec![110.0; 3];
        m.assign_caps(&[100.0, 20.0, 80.0], &mut caps, 1.0);
        let p = m.priorities().unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn rising_unit_marked_high_priority() {
        let mut m = dps(2, 220.0);
        let mut caps = vec![110.0; 2];
        // Unit 0 ramps 20 → 160 over a few cycles; unit 1 idles.
        let ramp: [f64; 6] = [20.0, 20.0, 60.0, 105.0, 109.0, 109.0];
        for &p in &ramp {
            m.assign_caps(&[p.min(caps[0]), 20.0], &mut caps, 1.0);
        }
        assert!(m.priorities().unwrap()[0], "riser must be high priority");
        assert!(!m.priorities().unwrap()[1], "idler must be low priority");
    }

    #[test]
    fn estimates_follow_measurements() {
        let mut m = dps(1, 110.0);
        let mut caps = vec![110.0];
        for _ in 0..20 {
            m.assign_caps(&[100.0], &mut caps, 1.0);
        }
        assert!((m.estimates()[0] - 100.0).abs() < 2.0);
    }

    #[test]
    fn lower_bound_vs_constant_worst_case() {
        // High-frequency antagonistic load: power flips faster than the
        // manager reacts. DPS marks such units high priority and equalizes
        // at ≥ the constant cap — it must never park a busy unit far below
        // 110 W for long.
        let mut m = dps(2, 220.0);
        let mut caps = vec![110.0; 2];
        let mut below_count = 0;
        let mut steps = 0;
        for t in 0..200 {
            let p0: f64 = if t % 2 == 0 { 160.0 } else { 30.0 };
            let p1: f64 = if t % 2 == 1 { 160.0 } else { 30.0 };
            let measured = [p0.min(caps[0]), p1.min(caps[1])];
            m.assign_caps(&measured, &mut caps, 1.0);
            if t > 30 {
                steps += 1;
                if caps[0] < 100.0 || caps[1] < 100.0 {
                    below_count += 1;
                }
            }
        }
        assert!(
            (below_count as f64) < steps as f64 * 0.1,
            "caps parked below fair share in {below_count}/{steps} steps"
        );
    }

    #[test]
    fn reset_reproduces_run() {
        let mut m = dps(3, 330.0);
        let mut caps_a = vec![110.0; 3];
        let trace = [
            [100.0, 20.0, 80.0],
            [109.0, 25.0, 85.0],
            [109.0, 90.0, 40.0],
        ];
        for step in &trace {
            m.assign_caps(step, &mut caps_a, 1.0);
        }
        m.reset();
        let mut caps_b = vec![110.0; 3];
        for step in &trace {
            m.assign_caps(step, &mut caps_b, 1.0);
        }
        assert_eq!(caps_a, caps_b);
    }

    #[test]
    fn kind_is_dps() {
        assert_eq!(dps(1, 110.0).kind(), ManagerKind::Dps);
    }
}
