//! The Dynamic Power Scheduler — the paper's contribution assembled.
//!
//! Per decision cycle (Fig. 3's control system):
//!
//! 1. the **stateless module** turns current power into a temporary cap
//!    allocation (Alg. 1);
//! 2. the **Kalman filter** absorbs measurement noise and appends the power
//!    estimate to each unit's bounded history (§4.3.2);
//! 3. the **priority module** classifies each unit's power dynamics —
//!    prominent-peak frequency and windowed first derivative — into a binary
//!    priority (Alg. 2);
//! 4. the **cap readjusting module** restores the constant allocation when
//!    the whole system is quiet, otherwise spends leftover budget on
//!    high-priority units or equalizes their caps when the budget is
//!    exhausted (Algs. 3–4), guaranteeing the constant-allocation lower
//!    bound.

use crate::budget::{debug_assert_budget, enforce_budget};
use crate::checkpoint::{ByteReader, ByteWriter};
use crate::columns::UnitColumns;
use crate::config::{DpsConfig, StatsMode};
use crate::guard::{GuardConfig, GuardStats, HealthState, TelemetryGuard};
use crate::history::UnitState;
use crate::manager::{check_new_budget, constant_cap, ManagerKind, PowerManager, UnitLimits};
use crate::readjust::{readjust, restore, ReadjustOutcome, ReadjustScratch};
use crate::stateless::MimdModule;
use dps_obs::{Event, PhaseKind, ReadjustKind, SinkHandle};
use dps_sim_core::rng::{RngStream, RngStreamState};
use dps_sim_core::units::{Seconds, Watts};

/// The model-free stateful power manager.
///
/// ```
/// use dps_core::manager::{PowerManager, UnitLimits};
/// use dps_core::{DpsConfig, DpsManager};
/// use dps_sim_core::RngStream;
///
/// // Two sockets sharing a 220 W budget (110 W constant cap each).
/// let mut dps = DpsManager::new(
///     2,
///     220.0,
///     UnitLimits::xeon_gold_6240(),
///     DpsConfig::default(),
///     RngStream::new(42, "docs"),
/// );
/// let mut caps = vec![110.0, 110.0];
///
/// // Unit 0 ramps toward its cap while unit 1 idles: after a few cycles
/// // unit 0 is high priority and holds at least the constant cap.
/// for power in [30.0, 60.0, 95.0, 109.0, 109.0] {
///     dps.assign_caps(&[power, 20.0], &mut caps, 1.0);
/// }
/// assert!(dps.priorities().unwrap()[0]);
/// assert!(caps[0] >= 110.0);
/// assert!(caps.iter().sum::<f64>() <= 220.0 + 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct DpsManager {
    config: DpsConfig,
    limits: UnitLimits,
    total_budget: Watts,
    initial_cap: Watts,
    mimd: MimdModule,
    /// Per-unit dynamic state in struct-of-arrays layout: Kalman scalars,
    /// flat history-ring arenas, rolling-moment accumulators and the
    /// classification flags live in parallel columns so the fused
    /// observe/classify pass is cache-linear and shards at unit boundaries
    /// under the `parallel` feature.
    cols: UnitColumns,
    rng: RngStream,
    rng_initial: RngStream,
    changed: Vec<bool>,
    /// Priority snapshot exposed for logging.
    priority_flags: Vec<bool>,
    /// Scheduler-reported occupancy per unit; flips reset the unit's
    /// learned state (see [`PowerManager::observe_membership`]).
    active: Vec<bool>,
    /// Whether the last cycle ended in a restore (exposed for tests/logs).
    last_restored: bool,
    /// Optional telemetry guard (sensor sanitation, health gating, write
    /// verification). `None` reproduces the unguarded paper pipeline.
    guard: Option<TelemetryGuard>,
    /// Scratch for the sanitized measurement slice.
    scratch_measured: Vec<Watts>,
    /// Reusable buffers for the readjustment pass.
    scratch_readjust: ReadjustScratch,
    /// Indices of caps repaired by the non-finite-cap guard this cycle.
    scratch_repaired: Vec<usize>,
    /// Observability sink (`dps-obs`); the default no-op sink costs one
    /// predictable branch per cycle.
    sink: SinkHandle,
    /// Decision cycles since the sink was attached. Deliberately not
    /// checkpointed: a trace describes a controller process lifetime, so a
    /// restored-after-crash controller starts a fresh cycle count.
    trace_cycle: u64,
    /// Pre-decision cap snapshot for trace diffing (tracing only).
    scratch_trace_caps: Vec<Watts>,
    /// Pre-decision priority snapshot for trace diffing (tracing only).
    scratch_trace_prio: Vec<bool>,
    /// Last guard health emitted per unit, so transitions surface exactly
    /// once even when they happen between cycles (tracing only).
    scratch_trace_health: Vec<HealthState>,
}

impl DpsManager {
    /// Creates the manager.
    ///
    /// # Panics
    /// Panics on an invalid config.
    pub fn new(
        num_units: usize,
        total_budget: Watts,
        limits: UnitLimits,
        config: DpsConfig,
        rng: RngStream,
    ) -> Self {
        config.validate().expect("invalid DPS config");
        limits
            .check_feasible(total_budget, num_units)
            .expect("infeasible budget");
        let initial_cap = constant_cap(total_budget, num_units, limits);
        Self {
            mimd: MimdModule::new(config.mimd, limits, total_budget, num_units),
            cols: UnitColumns::new(num_units, &config),
            config,
            limits,
            total_budget,
            initial_cap,
            rng_initial: rng.clone(),
            rng,
            changed: vec![false; num_units],
            priority_flags: vec![false; num_units],
            active: vec![true; num_units],
            last_restored: false,
            guard: None,
            scratch_measured: Vec::with_capacity(num_units),
            scratch_readjust: ReadjustScratch::default(),
            scratch_repaired: Vec::new(),
            sink: SinkHandle::noop(),
            trace_cycle: 0,
            scratch_trace_caps: Vec::new(),
            scratch_trace_prio: Vec::new(),
            scratch_trace_health: Vec::new(),
        }
    }

    /// Creates the manager with a [`TelemetryGuard`] in front of its
    /// measurement and cap streams (sensor sanitation, per-unit health
    /// gating with quarantine/readmission, and actuator write verification
    /// when the cluster loop feeds readbacks to
    /// [`PowerManager::observe_applied`]).
    ///
    /// # Panics
    /// Panics on an invalid config (manager or guard).
    pub fn with_guard(
        num_units: usize,
        total_budget: Watts,
        limits: UnitLimits,
        config: DpsConfig,
        guard: GuardConfig,
        rng: RngStream,
    ) -> Self {
        let mut m = Self::new(num_units, total_budget, limits, config, rng);
        if guard.enabled {
            m.guard = Some(TelemetryGuard::new(
                num_units,
                total_budget,
                limits,
                m.initial_cap,
                guard,
            ));
        }
        m
    }

    /// The telemetry guard, when one is attached.
    pub fn guard(&self) -> Option<&TelemetryGuard> {
        self.guard.as_ref()
    }

    /// The config in effect.
    pub fn config(&self) -> &DpsConfig {
        &self.config
    }

    /// The constant cap DPS restores to.
    pub fn initial_cap(&self) -> Watts {
        self.initial_cap
    }

    /// Which units' caps changed in the last cycle (traffic accounting).
    pub fn changed(&self) -> &[bool] {
        &self.changed
    }

    /// Whether the last cycle restored the constant allocation.
    pub fn last_restored(&self) -> bool {
        self.last_restored
    }

    /// Latest Kalman power estimates per unit (the artifact logs these).
    pub fn estimates(&self) -> Vec<Watts> {
        (0..self.cols.len())
            .map(|u| self.cols.latest_estimate(u))
            .collect()
    }

    /// A unit's dynamic state (for the ablation and overhead studies),
    /// materialized out of the column store into the per-unit struct form.
    pub fn unit_state(&self, unit: usize) -> UnitState {
        self.cols.materialize(unit, &self.config)
    }

    /// The occupancy mask last reported through
    /// [`PowerManager::observe_membership`] (all-true until the scheduler
    /// reports otherwise).
    pub fn membership(&self) -> &[bool] {
        &self.active
    }

    /// Fused per-unit observe + classify phase. Every unit's Kalman update,
    /// history append and dynamics classification touches only that unit's
    /// state, so the loop is embarrassingly parallel; with the `parallel`
    /// feature and at least `parallel_threshold` units it is chunked across
    /// worker threads. The per-unit arithmetic is identical on both paths,
    /// so the results are bit-identical by construction.
    fn observe_and_classify(&mut self, measured: &[Watts], caps: &[Watts], dt: Seconds) {
        #[cfg(feature = "parallel")]
        if self.cols.len() >= self.config.parallel_threshold {
            self.observe_and_classify_parallel(measured, caps, dt);
            return;
        }
        let config = self.config;
        let mut chunk = self.cols.chunk_mut();
        for (u, (&z, &cap)) in measured.iter().zip(caps).enumerate() {
            chunk.observe(u, z, dt);
            chunk.classify(u, cap, &config);
        }
    }

    /// The threaded variant of [`DpsManager::observe_and_classify`]: the
    /// column store is split at unit boundaries into contiguous chunks
    /// handed to scoped worker threads. At least two workers are spawned so
    /// the threaded path is genuinely exercised even on single-core hosts
    /// (the phase is only entered above the configured unit-count
    /// threshold, where the spawn cost is noise).
    #[cfg(feature = "parallel")]
    fn observe_and_classify_parallel(&mut self, measured: &[Watts], caps: &[Watts], dt: Seconds) {
        let config = self.config;
        let n = self.cols.len();
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(2)
            .min(n);
        let chunk = n.div_ceil(threads);
        let mut parts = Vec::with_capacity(threads);
        let mut rest = self.cols.chunk_mut();
        while rest.units() > chunk {
            let (head, tail) = rest.split_at(chunk);
            parts.push(head);
            rest = tail;
        }
        parts.push(rest);
        std::thread::scope(|scope| {
            for ((mut part, zs), cs) in parts
                .into_iter()
                .zip(measured.chunks(chunk))
                .zip(caps.chunks(chunk))
            {
                scope.spawn(move || {
                    for (u, (&z, &cap)) in zs.iter().zip(cs).enumerate() {
                        part.observe(u, z, dt);
                        part.classify(u, cap, &config);
                    }
                });
            }
        });
    }

    /// End-of-cycle trace diffs: guard health transitions since the last
    /// emission (catching flips that happened between cycles, e.g. from
    /// write verification in [`PowerManager::observe_applied`]) and one
    /// [`Event::CapDelta`] per unit whose cap left the cycle different from
    /// the post-repair baseline. Only called while tracing.
    fn emit_cycle_diffs(&mut self, caps: &[Watts]) {
        if let Some(g) = self.guard.as_ref() {
            let health = g.health();
            if self.scratch_trace_health.len() != health.len() {
                self.scratch_trace_health.clear();
                self.scratch_trace_health
                    .resize(health.len(), HealthState::Healthy);
            }
            for (u, (&now, was)) in health
                .iter()
                .zip(self.scratch_trace_health.iter_mut())
                .enumerate()
            {
                if now != *was {
                    self.sink.emit(Event::GuardHealth {
                        cycle: self.trace_cycle,
                        unit: u as u32,
                        state: health_kind(now),
                    });
                    *was = now;
                }
            }
        }
        for (u, (&to_w, &from_w)) in caps.iter().zip(&self.scratch_trace_caps).enumerate() {
            if to_w.to_bits() != from_w.to_bits() {
                self.sink.emit(Event::CapDelta {
                    cycle: self.trace_cycle,
                    unit: u as u32,
                    from_w,
                    to_w,
                });
            }
        }
    }

    /// Serializes every piece of dynamic state (see [`crate::checkpoint`]).
    fn write_snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_snapshot_into(&mut out);
        out
    }

    /// [`DpsManager::write_snapshot`] into a caller-provided buffer whose
    /// allocation is reused — the watchdog path checkpoints every few
    /// cycles and must not churn the heap.
    fn write_snapshot_into(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::reusing(std::mem::take(out));
        // Shape fields: verified (not applied) on restore.
        w.put_usize(self.cols.len());
        w.put_f64(self.total_budget);
        let rs = self.rng.state();
        w.put_u64(rs.seed);
        w.put_u64(rs.label_hash);
        w.put_u64(rs.draws);
        w.put_bool(self.last_restored);
        // v2: whether the per-unit rolling-accumulator internals below are
        // live (Incremental mode) or stale placeholders (Rescan mode).
        w.put_bool(self.config.stats_mode == StatsMode::Incremental);
        for &c in &self.changed {
            w.put_bool(c);
        }
        for &p in &self.priority_flags {
            w.put_bool(p);
        }
        for &a in &self.active {
            w.put_bool(a);
        }
        for &o in self.mimd.order() {
            w.put_usize(o);
        }
        // v2 per-unit wire format, unchanged across the column-store
        // refactor: Kalman state, both histories in logical order, flags,
        // then the rolling-moment internals (path-dependent — the drifted
        // sums and the resync clock cannot be rebuilt from the window; the
        // peak runs and cached derivative can, and are rebuilt on restore).
        for u in 0..self.cols.len() {
            self.cols.encode_unit(u, &mut w);
        }
        match &self.guard {
            Some(g) => {
                w.put_bool(true);
                g.encode(&mut w);
            }
            None => w.put_bool(false),
        }
        *out = w.seal();
    }

    /// Restores a [`DpsManager::write_snapshot`] blob onto a manager
    /// constructed with the same shape (unit count, config, guard
    /// presence). The snapshot's budget is *adopted* — it is part of the
    /// checkpointed state (dynamic budget schedules change it at runtime),
    /// so the restored controller resumes under the budget it was
    /// checkpointed with; the caller re-applies the currently scheduled
    /// budget via [`PowerManager::set_budget`] if it has moved since.
    /// All-or-nothing: on any decode or validation error the manager is
    /// left untouched.
    fn read_snapshot(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut r = ByteReader::open(bytes)?;
        let n = r.get_usize()?;
        if n != self.cols.len() {
            return Err(format!(
                "snapshot has {n} units, manager has {}",
                self.cols.len()
            ));
        }
        let budget = r.get_f64()?;
        check_new_budget(budget, n, self.limits)
            .map_err(|e| format!("snapshot budget rejected: {e}"))?;
        let rng_state = RngStreamState {
            seed: r.get_u64()?,
            label_hash: r.get_u64()?,
            draws: r.get_u64()?,
        };
        let last_restored = r.get_bool()?;
        let snapshot_incremental = r.get_bool()?;
        let mut changed = vec![false; n];
        for c in changed.iter_mut() {
            *c = r.get_bool()?;
        }
        let mut priority_flags = vec![false; n];
        for p in priority_flags.iter_mut() {
            *p = r.get_bool()?;
        }
        let mut active = vec![true; n];
        for a in active.iter_mut() {
            *a = r.get_bool()?;
        }
        let mut order = vec![0usize; n];
        for o in order.iter_mut() {
            *o = r.get_usize()?;
        }
        // Decode unit states into a clone of the column store; commit only
        // after full success. Per unit: exact rebuild first (peak runs,
        // cached derivative, moments), then — when both the snapshot and
        // this manager run the incremental path — the persisted moment
        // internals overwrite the rebuild so the restored controller
        // continues the checkpointed drift trajectory bit-exactly instead
        // of diverging from an uninterrupted run.
        let mut new_cols = self.cols.clone();
        for u in 0..n {
            new_cols.decode_unit(u, &mut r, snapshot_incremental)?;
        }
        let guard_present = r.get_bool()?;
        let new_guard = match (&self.guard, guard_present) {
            (Some(g), true) => {
                let mut g2 = g.clone();
                g2.decode(&mut r)?;
                Some(g2)
            }
            (None, false) => None,
            (have, _) => {
                return Err(format!(
                    "guard presence mismatch: snapshot {guard_present}, manager {}",
                    have.is_some()
                ))
            }
        };
        r.finish()?;
        self.mimd.restore_order(&order)?;
        // Infallible from here: commit.
        self.rng = RngStream::restore(rng_state);
        self.last_restored = last_restored;
        self.changed = changed;
        self.priority_flags = priority_flags;
        self.active = active;
        self.cols = new_cols;
        self.guard = new_guard;
        self.apply_budget(budget);
        Ok(())
    }

    /// Rebases every budget-derived quantity onto `new_budget` (already
    /// validated): the stateless module's ceiling, the constant-allocation
    /// fallback, and the guard's believed-cap accounting.
    fn apply_budget(&mut self, new_budget: Watts) {
        self.total_budget = new_budget;
        self.initial_cap = constant_cap(new_budget, self.cols.len(), self.limits);
        self.mimd.set_budget(new_budget);
        if let Some(g) = self.guard.as_mut() {
            g.set_budget(new_budget, self.initial_cap);
        }
    }
}

/// Maps the guard's health state onto the trace vocabulary.
fn health_kind(h: HealthState) -> dps_obs::HealthKind {
    match h {
        HealthState::Healthy => dps_obs::HealthKind::Healthy,
        HealthState::Suspect => dps_obs::HealthKind::Suspect,
        HealthState::Quarantined => dps_obs::HealthKind::Quarantined,
        HealthState::Probation => dps_obs::HealthKind::Probation,
    }
}

impl PowerManager for DpsManager {
    fn kind(&self) -> ManagerKind {
        ManagerKind::Dps
    }

    fn num_units(&self) -> usize {
        self.cols.len()
    }

    fn total_budget(&self) -> Watts {
        self.total_budget
    }

    fn set_budget(&mut self, new_budget: Watts) -> Result<(), String> {
        check_new_budget(new_budget, self.cols.len(), self.limits)?;
        self.apply_budget(new_budget);
        Ok(())
    }

    fn assign_caps(&mut self, measured: &[Watts], caps: &mut [Watts], dt: Seconds) {
        assert_eq!(measured.len(), self.cols.len(), "one measurement per unit");
        // Hoist the sink checks so an unattached (no-op) sink costs two
        // virtual calls per cycle, not per emission point.
        let tracing = self.sink.enabled();
        let timing = tracing && self.sink.timing();
        let t_assign = timing.then(std::time::Instant::now);

        // (0a) Repair non-finite caps before any module consumes them: a
        // faulted actuator path can hand back NaN/∞ readbacks as the caps
        // "in force", and a single NaN poisons every budget sum downstream
        // (the MIMD's freed-budget accounting, Alg. 4's available budget
        // and equalization mean). Repaired units restart from the constant
        // cap; if the substitutions overshoot the budget, the proportional
        // safety net pulls everything back under it.
        self.scratch_repaired.clear();
        for (u, cap) in caps.iter_mut().enumerate() {
            if !cap.is_finite() {
                *cap = self.initial_cap;
                self.scratch_repaired.push(u);
            }
        }
        if !self.scratch_repaired.is_empty() {
            enforce_budget(caps, self.total_budget, self.limits);
        }
        if tracing {
            for &u in &self.scratch_repaired {
                self.sink.emit(Event::CapRepair {
                    cycle: self.trace_cycle,
                    unit: u as u32,
                });
            }
            // Diff baselines are the post-repair caps (always finite) and
            // the previous cycle's priorities.
            self.scratch_trace_caps.clear();
            self.scratch_trace_caps.extend_from_slice(caps);
            self.scratch_trace_prio.clear();
            self.scratch_trace_prio
                .extend_from_slice(&self.priority_flags);
        }

        // (0b) Telemetry guard: gate the raw measurements and advance the
        // per-unit health machines. The rest of the pipeline sees only the
        // sanitized stream.
        let mut scratch = std::mem::take(&mut self.scratch_measured);
        let measured: &[Watts] = if let Some(g) = self.guard.as_mut() {
            scratch.clear();
            scratch.extend_from_slice(g.sanitize(measured));
            &scratch
        } else {
            measured
        };

        // (1) Stateless temporary allocation on raw current power (Fig. 3:
        // the stateless module takes in current power directly).
        let t_phase = timing.then(std::time::Instant::now);
        let mut changed = std::mem::take(&mut self.changed);
        self.mimd.apply(measured, caps, &mut changed, &mut self.rng);
        for &u in &self.scratch_repaired {
            changed[u] = true;
        }
        if let Some(t0) = t_phase {
            self.sink.emit(Event::PhaseEnd {
                cycle: self.trace_cycle,
                phase: PhaseKind::Mimd,
                nanos: t0.elapsed().as_nanos() as u64,
            });
        }

        // (2)+(3) Kalman-filtered estimates extend each unit's power
        // history, and the priority module classifies the unit's dynamics
        // (including the cap-pinned "needs power now" signal, judged
        // against the temporary caps). The two are fused per unit because
        // units are independent here — which also makes this the phase that
        // runs on worker threads at scale (`parallel` feature). Isolated
        // units then surrender their priority so readjust never feeds them.
        let t_phase = timing.then(std::time::Instant::now);
        self.observe_and_classify(measured, caps, dt);
        if let Some(g) = self.guard.as_ref() {
            for u in 0..self.cols.len() {
                if g.is_isolated(u) {
                    self.cols.set_priority(u, false);
                }
            }
        }
        self.priority_flags.copy_from_slice(self.cols.priorities());
        if let Some(t0) = t_phase {
            self.sink.emit(Event::PhaseEnd {
                cycle: self.trace_cycle,
                phase: PhaseKind::ObserveClassify,
                nanos: t0.elapsed().as_nanos() as u64,
            });
        }
        if tracing {
            for (u, (&now, &was)) in self
                .priority_flags
                .iter()
                .zip(&self.scratch_trace_prio)
                .enumerate()
            {
                if now != was {
                    self.sink.emit(Event::PriorityFlip {
                        cycle: self.trace_cycle,
                        unit: u as u32,
                        high: now,
                    });
                }
            }
        }
        if let Some(g) = self.guard.as_mut() {
            g.pin_caps(caps, &mut changed);
        }

        // (4) Restore, then readjust.
        let t_phase = timing.then(std::time::Instant::now);
        self.last_restored = restore(
            measured,
            caps,
            &mut changed,
            self.initial_cap,
            self.config.restore_threshold,
        );
        let outcome = readjust(
            caps,
            &mut changed,
            &self.priority_flags,
            self.total_budget,
            self.limits,
            self.last_restored,
            self.config.equalize_slack * self.total_budget,
            &mut self.scratch_readjust,
        );
        if let Some(t0) = t_phase {
            self.sink.emit(Event::PhaseEnd {
                cycle: self.trace_cycle,
                phase: PhaseKind::Readjust,
                nanos: t0.elapsed().as_nanos() as u64,
            });
        }
        if tracing {
            if self.last_restored {
                self.sink.emit(Event::Restored {
                    cycle: self.trace_cycle,
                });
            }
            match outcome {
                ReadjustOutcome::Distributed { spent } => self.sink.emit(Event::Readjusted {
                    cycle: self.trace_cycle,
                    kind: ReadjustKind::Distributed,
                    watts: spent,
                }),
                ReadjustOutcome::Equalized { at } => self.sink.emit(Event::Readjusted {
                    cycle: self.trace_cycle,
                    kind: ReadjustKind::Equalized,
                    watts: at,
                }),
                ReadjustOutcome::Skipped | ReadjustOutcome::NoHighPriority => {}
            }
        }

        // (5) Believed-cap budget enforcement and request bookkeeping for
        // the next write verification.
        if let Some(g) = self.guard.as_mut() {
            g.finish_cycle(caps, &mut changed);
        }

        if tracing {
            self.emit_cycle_diffs(caps);
            if let Some(t0) = t_assign {
                self.sink.emit(Event::PhaseEnd {
                    cycle: self.trace_cycle,
                    phase: PhaseKind::Assign,
                    nanos: t0.elapsed().as_nanos() as u64,
                });
            }
        }
        self.trace_cycle += 1;

        self.changed = changed;
        self.scratch_measured = scratch;
        debug_assert_budget(caps, self.total_budget, self.limits);
    }

    fn priorities(&self) -> Option<&[bool]> {
        Some(&self.priority_flags)
    }

    fn observe_membership(&mut self, active: &[bool]) {
        assert_eq!(
            active.len(),
            self.cols.len(),
            "membership mask must cover every unit"
        );
        let tracing = self.sink.enabled();
        for (u, (&now, was)) in active.iter().zip(self.active.iter_mut()).enumerate() {
            if now == *was {
                continue;
            }
            // The unit's Kalman estimate, power/duration histories, and
            // priority describe the previous tenancy; a fresh (or vacated)
            // socket starts from scratch, exactly as at construction.
            self.cols.reset_unit(u);
            self.changed[u] = false;
            self.priority_flags[u] = false;
            if let Some(g) = self.guard.as_mut() {
                g.reset_unit(u);
            }
            *was = now;
            if tracing {
                // Attributed to the upcoming cycle: membership lands before
                // the cycle's assign_caps.
                self.sink.emit(Event::MembershipFlip {
                    cycle: self.trace_cycle,
                    unit: u as u32,
                    active: now,
                });
            }
        }
    }

    fn observe_applied(&mut self, applied: &[Watts]) {
        if let Some(g) = self.guard.as_mut() {
            g.observe_applied(applied);
        }
    }

    fn health(&self) -> Option<&[HealthState]> {
        self.guard.as_ref().map(|g| g.health())
    }

    fn guard_stats(&self) -> Option<GuardStats> {
        self.guard.as_ref().map(|g| *g.stats())
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        Some(self.write_snapshot())
    }

    fn checkpoint_into(&self, out: &mut Vec<u8>) -> bool {
        self.write_snapshot_into(out);
        true
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), String> {
        self.read_snapshot(snapshot)
    }

    fn attach_trace(&mut self, sink: SinkHandle) {
        self.sink = sink;
        self.trace_cycle = 0;
        self.scratch_trace_health.clear();
    }

    fn reset(&mut self) {
        self.cols.reset_all();
        self.mimd.reset();
        self.rng = self.rng_initial.clone();
        self.changed.fill(false);
        self.priority_flags.fill(false);
        self.active.fill(true);
        self.last_restored = false;
        self.trace_cycle = 0;
        self.scratch_trace_health.clear();
        if let Some(g) = self.guard.as_mut() {
            g.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: UnitLimits = UnitLimits {
        min_cap: 40.0,
        max_cap: 165.0,
    };

    fn dps(n: usize, budget: Watts) -> DpsManager {
        DpsManager::new(
            n,
            budget,
            LIMITS,
            DpsConfig::default(),
            RngStream::new(3, "dps-test"),
        )
    }

    /// Drives the manager with a closure producing per-unit power from caps
    /// (power follows demand but never exceeds the cap).
    fn drive(
        m: &mut DpsManager,
        caps: &mut [f64],
        steps: usize,
        demand: impl Fn(usize, usize) -> f64,
    ) {
        for t in 0..steps {
            let measured: Vec<f64> = caps
                .iter()
                .enumerate()
                .map(|(u, &c)| demand(t, u).min(c))
                .collect();
            m.assign_caps(&measured, caps, 1.0);
        }
    }

    #[test]
    fn quiet_system_restores_constant_caps() {
        let mut m = dps(4, 440.0);
        let mut caps = vec![110.0; 4];
        drive(&mut m, &mut caps, 10, |_, _| 30.0);
        assert!(m.last_restored());
        assert!(caps.iter().all(|&c| (c - 110.0).abs() < 1e-9), "{caps:?}");
    }

    #[test]
    fn riser_rescued_when_budget_exhausted() {
        // The Fig. 1 scenario end-state: unit 0 grabbed everything, unit 1
        // then ramps. DPS detects the rise and equalizes; SLURM cannot.
        let mut m = dps(2, 220.0);
        let mut caps = vec![110.0, 110.0];
        // Phase 1: unit 0 hot, unit 1 idle → unit 0 accumulates budget.
        drive(
            &mut m,
            &mut caps,
            12,
            |_, u| if u == 0 { 165.0 } else { 25.0 },
        );
        assert!(
            caps[0] > 150.0,
            "unit 0 should have grabbed budget: {caps:?}"
        );
        assert!(caps[1] < 70.0);
        // Phase 2: unit 1 ramps hard to whatever it is allowed.
        drive(&mut m, &mut caps, 12, |_, _| 165.0);
        assert!(
            (caps[1] - 110.0).abs() < 10.0,
            "DPS must pull unit 1 back near the fair share: {caps:?}"
        );
        assert!(caps.iter().sum::<f64>() <= 220.0 + 1e-6);
    }

    #[test]
    fn budget_respected_under_chaotic_load() {
        let mut m = dps(8, 880.0);
        let mut caps = vec![110.0; 8];
        let mut rng = RngStream::new(77, "chaos");
        for _ in 0..400 {
            let measured: Vec<f64> = caps
                .iter()
                .map(|&c| rng.range(10.0..165.0_f64).min(c))
                .collect();
            m.assign_caps(&measured, &mut caps, 1.0);
            assert!(caps.iter().sum::<f64>() <= 880.0 + 1e-6);
            assert!(caps
                .iter()
                .all(|&c| (40.0 - 1e-9..=165.0 + 1e-9).contains(&c)));
        }
    }

    #[test]
    fn priorities_exposed_and_sized() {
        let mut m = dps(3, 330.0);
        let mut caps = vec![110.0; 3];
        m.assign_caps(&[100.0, 20.0, 80.0], &mut caps, 1.0);
        let p = m.priorities().unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn rising_unit_marked_high_priority() {
        let mut m = dps(2, 220.0);
        let mut caps = vec![110.0; 2];
        // Unit 0 ramps 20 → 160 over a few cycles; unit 1 idles.
        let ramp: [f64; 6] = [20.0, 20.0, 60.0, 105.0, 109.0, 109.0];
        for &p in &ramp {
            m.assign_caps(&[p.min(caps[0]), 20.0], &mut caps, 1.0);
        }
        assert!(m.priorities().unwrap()[0], "riser must be high priority");
        assert!(!m.priorities().unwrap()[1], "idler must be low priority");
    }

    #[test]
    fn estimates_follow_measurements() {
        let mut m = dps(1, 110.0);
        let mut caps = vec![110.0];
        for _ in 0..20 {
            m.assign_caps(&[100.0], &mut caps, 1.0);
        }
        assert!((m.estimates()[0] - 100.0).abs() < 2.0);
    }

    #[test]
    fn lower_bound_vs_constant_worst_case() {
        // High-frequency antagonistic load: power flips faster than the
        // manager reacts. DPS marks such units high priority and equalizes
        // at ≥ the constant cap — it must never park a busy unit far below
        // 110 W for long.
        let mut m = dps(2, 220.0);
        let mut caps = vec![110.0; 2];
        let mut below_count = 0;
        let mut steps = 0;
        for t in 0..200 {
            let p0: f64 = if t % 2 == 0 { 160.0 } else { 30.0 };
            let p1: f64 = if t % 2 == 1 { 160.0 } else { 30.0 };
            let measured = [p0.min(caps[0]), p1.min(caps[1])];
            m.assign_caps(&measured, &mut caps, 1.0);
            if t > 30 {
                steps += 1;
                if caps[0] < 100.0 || caps[1] < 100.0 {
                    below_count += 1;
                }
            }
        }
        assert!(
            (below_count as f64) < steps as f64 * 0.1,
            "caps parked below fair share in {below_count}/{steps} steps"
        );
    }

    #[test]
    fn reset_reproduces_run() {
        let mut m = dps(3, 330.0);
        let mut caps_a = vec![110.0; 3];
        let trace = [
            [100.0, 20.0, 80.0],
            [109.0, 25.0, 85.0],
            [109.0, 90.0, 40.0],
        ];
        for step in &trace {
            m.assign_caps(step, &mut caps_a, 1.0);
        }
        m.reset();
        let mut caps_b = vec![110.0; 3];
        for step in &trace {
            m.assign_caps(step, &mut caps_b, 1.0);
        }
        assert_eq!(caps_a, caps_b);
    }

    #[test]
    fn kind_is_dps() {
        assert_eq!(dps(1, 110.0).kind(), ManagerKind::Dps);
    }

    /// A deterministic wiggly demand so guard stuck detection stays quiet.
    fn wiggly(t: usize, u: usize, base: f64) -> f64 {
        base + 0.3 * (((t + 3 * u) % 7) as f64 - 3.0)
    }

    fn dps_guarded(n: usize, budget: Watts) -> DpsManager {
        DpsManager::with_guard(
            n,
            budget,
            LIMITS,
            DpsConfig::default(),
            crate::guard::GuardConfig {
                stuck_window: 5,
                quarantine_after: 2,
                probation_after: 3,
                readmit_after: 4,
                ..Default::default()
            },
            RngStream::new(11, "dps-guard-test"),
        )
    }

    #[test]
    fn guarded_manager_quarantines_dropout_and_keeps_budget() {
        let mut m = dps_guarded(3, 330.0);
        let mut caps = vec![110.0; 3];
        for t in 0..10 {
            let z = [
                wiggly(t, 0, 100.0),
                wiggly(t, 1, 100.0),
                wiggly(t, 2, 100.0),
            ];
            m.assign_caps(&z, &mut caps, 1.0);
        }
        // Unit 0's sensor drops out.
        for t in 10..20 {
            let z = [f64::NAN, wiggly(t, 1, 100.0), wiggly(t, 2, 100.0)];
            m.assign_caps(&z, &mut caps, 1.0);
            assert!(caps.iter().sum::<f64>() <= 330.0 + 1e-6);
        }
        let health = m.health().unwrap();
        assert_eq!(health[0], HealthState::Quarantined);
        assert_eq!(health[1], HealthState::Healthy);
        assert!(
            (caps[0] - 110.0).abs() < 1e-6,
            "pinned at fallback: {caps:?}"
        );
        // Healthy units keep the constant-allocation lower bound.
        assert!(
            caps[1] >= 110.0 - 1e-6 && caps[2] >= 110.0 - 1e-6,
            "{caps:?}"
        );
        assert!(!m.priorities().unwrap()[0], "quarantined loses priority");
    }

    #[test]
    fn guarded_manager_readmits_after_recovery() {
        let mut m = dps_guarded(2, 220.0);
        let mut caps = vec![110.0; 2];
        for t in 0..8 {
            m.assign_caps(&[wiggly(t, 0, 90.0), wiggly(t, 1, 90.0)], &mut caps, 1.0);
        }
        for t in 8..14 {
            m.assign_caps(&[f64::NAN, wiggly(t, 1, 90.0)], &mut caps, 1.0);
        }
        assert_eq!(m.health().unwrap()[0], HealthState::Quarantined);
        // Sensor heals: probation_after=3 + readmit_after=4 clean cycles.
        for t in 14..40 {
            m.assign_caps(&[wiggly(t, 0, 90.0), wiggly(t, 1, 90.0)], &mut caps, 1.0);
        }
        assert_eq!(m.health().unwrap()[0], HealthState::Healthy);
        assert_eq!(m.guard().unwrap().stats().readmissions, 1);
    }

    #[test]
    fn unguarded_manager_matches_guard_free_behaviour() {
        // A guarded manager on clean telemetry must reproduce the unguarded
        // trajectory exactly (the guard only gates, never filters).
        let mut a = dps(2, 220.0);
        let mut b = DpsManager::with_guard(
            2,
            220.0,
            LIMITS,
            DpsConfig::default(),
            crate::guard::GuardConfig::default(),
            RngStream::new(3, "dps-test"),
        );
        let mut caps_a = vec![110.0; 2];
        let mut caps_b = vec![110.0; 2];
        for t in 0..60 {
            let z = [wiggly(t, 0, 100.0), wiggly(t, 1, 40.0)];
            a.assign_caps(&z, &mut caps_a, 1.0);
            b.assign_caps(&z, &mut caps_b, 1.0);
            assert_eq!(caps_a, caps_b, "cycle {t}");
        }
    }

    #[test]
    fn checkpoint_restore_resumes_identical_trajectory() {
        let mut a = dps(3, 330.0);
        let mut caps_a = vec![110.0; 3];
        for t in 0..25 {
            let z = [
                wiggly(t, 0, 140.0).min(caps_a[0]),
                wiggly(t, 1, 60.0),
                wiggly(t, 2, 100.0).min(caps_a[2]),
            ];
            a.assign_caps(&z, &mut caps_a, 1.0);
        }
        let snap = a.checkpoint().unwrap();
        // The "crashed and restarted" controller: a fresh manager with the
        // same construction parameters, fed the snapshot.
        let mut b = dps(3, 330.0);
        b.restore(&snap).unwrap();
        let mut caps_b = caps_a.clone();
        for t in 25..80 {
            let z = [
                wiggly(t, 0, 140.0).min(caps_a[0]),
                wiggly(t, 1, 60.0),
                wiggly(t, 2, 100.0).min(caps_a[2]),
            ];
            a.assign_caps(&z, &mut caps_a, 1.0);
            b.assign_caps(&z, &mut caps_b, 1.0);
            assert_eq!(caps_a, caps_b, "diverged at cycle {t}");
            assert_eq!(a.priorities(), b.priorities(), "cycle {t}");
        }
    }

    #[test]
    fn checkpoint_preserves_guard_health() {
        let mut a = dps_guarded(2, 220.0);
        let mut caps = vec![110.0; 2];
        for t in 0..6 {
            a.assign_caps(&[wiggly(t, 0, 90.0), wiggly(t, 1, 90.0)], &mut caps, 1.0);
        }
        for t in 6..12 {
            a.assign_caps(&[f64::NAN, wiggly(t, 1, 90.0)], &mut caps, 1.0);
        }
        assert_eq!(a.health().unwrap()[0], HealthState::Quarantined);
        let snap = a.checkpoint().unwrap();
        let mut b = dps_guarded(2, 220.0);
        b.restore(&snap).unwrap();
        assert_eq!(b.health().unwrap(), a.health().unwrap());
        assert_eq!(b.guard().unwrap().stats(), a.guard().unwrap().stats());
    }

    #[test]
    fn restore_rejects_mismatched_shape() {
        let mut a = dps(2, 220.0);
        let mut caps = vec![110.0; 2];
        a.assign_caps(&[100.0, 50.0], &mut caps, 1.0);
        let snap = a.checkpoint().unwrap();
        assert!(dps(3, 330.0).restore(&snap).unwrap_err().contains("units"));
        // Guard presence must match too.
        assert!(dps_guarded(2, 220.0)
            .restore(&snap)
            .unwrap_err()
            .contains("guard"));
    }

    #[test]
    fn restore_adopts_snapshot_budget() {
        // The budget is checkpointed state: restoring onto a manager built
        // with a different (stale) budget rebases it onto the snapshot's.
        let mut a = dps(2, 220.0);
        let mut caps = vec![110.0; 2];
        a.assign_caps(&[100.0, 50.0], &mut caps, 1.0);
        let snap = a.checkpoint().unwrap();
        let mut b = dps(2, 200.0);
        b.restore(&snap).unwrap();
        assert_eq!(b.total_budget(), 220.0);
        assert_eq!(b.initial_cap(), 110.0);
    }

    #[test]
    fn budget_shock_compliant_next_cycle() {
        // One-cycle compliance: the cycle after a downward shock already
        // fits under the new budget, for both plain and guarded pipelines.
        for guarded in [false, true] {
            let mut m = if guarded {
                dps_guarded(4, 440.0)
            } else {
                dps(4, 440.0)
            };
            let mut caps = vec![110.0; 4];
            for t in 0..20 {
                let z: Vec<f64> = (0..4).map(|u| wiggly(t, u, 140.0).min(caps[u])).collect();
                m.assign_caps(&z, &mut caps, 1.0);
            }
            m.set_budget(330.0).unwrap();
            assert_eq!(m.total_budget(), 330.0);
            let z: Vec<f64> = (0..4).map(|u| wiggly(20, u, 140.0).min(caps[u])).collect();
            m.assign_caps(&z, &mut caps, 1.0);
            assert!(
                caps.iter().sum::<f64>() <= 330.0 + 1e-6,
                "guarded={guarded}: {caps:?}"
            );
            // Raising the budget back is also respected (and grants room).
            m.set_budget(440.0).unwrap();
            let z: Vec<f64> = (0..4).map(|u| wiggly(21, u, 140.0).min(caps[u])).collect();
            m.assign_caps(&z, &mut caps, 1.0);
            assert!(caps.iter().sum::<f64>() <= 440.0 + 1e-6);
        }
    }

    #[test]
    fn set_budget_rejects_nonsense() {
        let mut m = dps(2, 220.0);
        assert!(m.set_budget(f64::NAN).unwrap_err().contains("finite"));
        assert!(m.set_budget(-5.0).is_err());
        assert!(m.set_budget(10.0).is_err(), "below 2 × min_cap");
        assert_eq!(m.total_budget(), 220.0, "failed set leaves state alone");
    }

    #[test]
    fn churn_resets_unit_state_like_fresh_start() {
        // Two managers, identical unit-1 drive. Manager `a` additionally
        // learns a hot history on unit 0, then unit 0 churns (job finished,
        // new one started). From that point `a` must behave exactly like
        // manager `b`, for which unit 0 was always fresh — stale Kalman
        // state or histories leaking across the churn would diverge them.
        let mut a = dps(2, 220.0);
        let mut caps_a = vec![110.0; 2];
        for t in 0..20 {
            let z = [wiggly(t, 0, 150.0).min(caps_a[0]), wiggly(t, 1, 60.0)];
            a.assign_caps(&z, &mut caps_a, 1.0);
        }
        assert!(a.priorities().unwrap()[0], "unit 0 learned a hot history");

        let mut b = dps(2, 220.0);
        let mut caps_b = vec![110.0; 2];
        for t in 0..20 {
            // Same unit-1 history, idle unit 0.
            b.assign_caps(&[0.0, wiggly(t, 1, 60.0)], &mut caps_b, 1.0);
        }

        a.observe_membership(&[false, true]); // old job left unit 0
        a.observe_membership(&[true, true]); // new job arrived
        assert_eq!(a.membership(), &[true, true]);
        assert!(!a.priorities().unwrap()[0], "churn clears priority");
        assert!(a.unit_state(0).power_history.is_empty());

        // Unit 1's state differs (b saw a restored system more often), so
        // compare only unit 0's trajectory-relevant state: both must treat
        // it as brand new.
        assert_eq!(
            a.unit_state(0).filter.state().0,
            None,
            "Kalman estimate must be cleared on churn"
        );
        b.reset();
        a.reset();
        // After reset both are bit-identical again (reset also clears the
        // membership mask back to all-active).
        assert_eq!(a.membership(), b.membership());
    }

    #[test]
    fn unchanged_membership_is_a_noop() {
        let mut a = dps(2, 220.0);
        let mut b = dps(2, 220.0);
        let mut caps_a = vec![110.0; 2];
        let mut caps_b = vec![110.0; 2];
        for t in 0..30 {
            let z = [wiggly(t, 0, 120.0).min(caps_a[0]), wiggly(t, 1, 70.0)];
            a.observe_membership(&[true, true]);
            a.assign_caps(&z, &mut caps_a, 1.0);
            b.assign_caps(&z, &mut caps_b, 1.0);
            assert_eq!(caps_a, caps_b, "cycle {t}");
        }
    }

    #[test]
    fn churn_resets_guard_health() {
        let mut m = dps_guarded(2, 220.0);
        let mut caps = vec![110.0; 2];
        for t in 0..6 {
            m.assign_caps(&[wiggly(t, 0, 90.0), wiggly(t, 1, 90.0)], &mut caps, 1.0);
        }
        for t in 6..12 {
            m.assign_caps(&[f64::NAN, wiggly(t, 1, 90.0)], &mut caps, 1.0);
        }
        assert_eq!(m.health().unwrap()[0], HealthState::Quarantined);
        // The faulty job's socket is vacated and re-occupied: health starts
        // over rather than quarantining the new tenant.
        m.observe_membership(&[false, true]);
        assert_eq!(m.health().unwrap()[0], HealthState::Healthy);
        let stats_before = *m.guard().unwrap().stats();
        assert!(
            stats_before.quarantine_entries >= 1,
            "run-wide counters survive churn"
        );
    }

    #[test]
    fn checkpoint_roundtrips_membership_mask() {
        let mut a = dps(3, 330.0);
        let mut caps = vec![110.0; 3];
        a.assign_caps(&[100.0, 50.0, 80.0], &mut caps, 1.0);
        a.observe_membership(&[true, false, true]);
        let snap = a.checkpoint().unwrap();
        let mut b = dps(3, 330.0);
        b.restore(&snap).unwrap();
        assert_eq!(b.membership(), &[true, false, true]);
    }

    #[test]
    fn non_finite_caps_repaired_before_decision() {
        // A faulted actuator readback can hand the controller NaN/∞ as the
        // caps "in force". One poisoned entry must not leak into the budget
        // sums: the unit restarts from the constant cap, its changed flag is
        // raised, and every output is finite and budget-respecting.
        let mut m = dps(4, 440.0);
        let mut caps = vec![110.0; 4];
        drive(&mut m, &mut caps, 15, |t, u| wiggly(t, u, 120.0));

        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            caps[1] = poison;
            caps[3] = f64::NAN;
            let measured = [130.0, 90.0, 120.0, 80.0];
            m.assign_caps(&measured, &mut caps, 1.0);
            assert!(
                caps.iter().all(|c| c.is_finite()),
                "caps still poisoned: {caps:?}"
            );
            assert!(caps.iter().sum::<f64>() <= 440.0 + 1e-6);
            assert!(caps
                .iter()
                .all(|&c| (LIMITS.min_cap - 1e-9..=LIMITS.max_cap + 1e-9).contains(&c)));
            assert!(m.changed()[1], "repaired unit must be flagged as changed");
            assert!(m.changed()[3], "repaired unit must be flagged as changed");
        }

        // The repair leaves the statistics pipeline healthy: further cycles
        // classify from finite state.
        drive(&mut m, &mut caps, 30, |t, u| wiggly(t, u, 140.0));
        for u in 0..4 {
            assert!(m.unit_state(u).history_std().is_finite());
            assert!(m.unit_state(u).latest_estimate().is_finite());
        }
    }

    #[test]
    fn churn_resets_incremental_accumulators() {
        // A vacated-and-reoccupied socket must present brand-new statistics:
        // rolling moments, the peak tracker, and the cached derivative all
        // reset alongside the histories, so the new tenant is classified
        // from its own samples only.
        let mut m = dps(2, 220.0);
        let mut caps = vec![110.0; 2];
        drive(&mut m, &mut caps, 25, |t, u| wiggly(t, u, 90.0));
        assert!(
            m.unit_state(0).history_std() > 0.0,
            "precondition: unit 0 accumulated variance"
        );

        m.observe_membership(&[false, true]);
        m.observe_membership(&[true, true]);

        let fresh = UnitState::new(m.config());
        let churned = m.unit_state(0);
        assert_eq!(churned.moments_state(), fresh.moments_state());
        assert_eq!(churned.history_std(), 0.0);
        assert_eq!(churned.latest_estimate(), 0.0);
        // Unit 1 kept its learned state untouched.
        assert!(m.unit_state(1).history_std() > 0.0);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_phase_is_bit_identical_to_sequential() {
        // Force the threaded observe/classify path (threshold 1) against a
        // default manager whose unit count stays below the threshold: same
        // inputs, bit-identical caps on every cycle.
        let mk = |threshold: usize| {
            let config = DpsConfig {
                parallel_threshold: threshold,
                ..DpsConfig::default()
            };
            DpsManager::new(8, 880.0, LIMITS, config, RngStream::new(3, "dps-test"))
        };
        let mut seq = mk(usize::MAX);
        let mut par = mk(1);
        let mut caps_seq = vec![110.0; 8];
        let mut caps_par = vec![110.0; 8];
        let mut rng = RngStream::new(91, "par-equiv");
        for t in 0..200 {
            let measured: Vec<f64> = caps_seq
                .iter()
                .map(|&c| rng.range(20.0..165.0_f64).min(c))
                .collect();
            seq.assign_caps(&measured, &mut caps_seq, 1.0);
            par.assign_caps(&measured, &mut caps_par, 1.0);
            assert_eq!(caps_seq, caps_par, "parallel phase diverged at cycle {t}");
            assert_eq!(seq.priorities(), par.priorities());
        }
    }

    #[test]
    fn trace_sink_records_decision_events() {
        let mut m = dps_guarded(2, 220.0);
        let sink = SinkHandle::recording(4096);
        m.attach_trace(sink.clone());
        let mut caps = vec![110.0; 2];
        // Warm up, poison unit 0's sensor into quarantine, then churn it.
        for t in 0..8 {
            m.assign_caps(&[wiggly(t, 0, 130.0).min(caps[0]), 20.0], &mut caps, 1.0);
        }
        for t in 8..14 {
            m.assign_caps(&[f64::NAN, wiggly(t, 1, 90.0)], &mut caps, 1.0);
        }
        caps[1] = f64::NAN; // actuator-mangled readback → CapRepair
        m.assign_caps(&[30.0, 30.0], &mut caps, 1.0);
        m.observe_membership(&[true, false]);

        let reg = sink.as_ring().unwrap().registry();
        assert!(reg.cap_deltas() > 0, "cap churn must be traced");
        assert!(reg.priority_flips() > 0, "unit 0 ramped → flip");
        assert!(reg.quarantines() >= 1, "sensor dropout → quarantine event");
        assert_eq!(reg.cap_repairs(), 1);
        assert_eq!(reg.membership_flips(), 1);
        assert!(reg.restores() > 0, "quiet tail restores");
        // Timing spans stay off by default (golden-trace determinism).
        let trace = dps_obs::codec::decode(&sink.export().unwrap()).unwrap();
        assert!(trace
            .events
            .iter()
            .all(|e| !matches!(e, Event::PhaseEnd { .. })));
        // Cycle indices are monotonically non-decreasing.
        assert!(trace
            .events
            .windows(2)
            .all(|w| w[0].cycle() <= w[1].cycle()));
    }

    #[test]
    fn trace_emission_does_not_perturb_decisions() {
        // A traced manager and an untraced twin must produce bit-identical
        // caps — observation is read-only.
        let mut a = dps(3, 330.0);
        let mut b = dps(3, 330.0);
        b.attach_trace(SinkHandle::recording(1 << 14));
        let mut caps_a = vec![110.0; 3];
        let mut caps_b = vec![110.0; 3];
        for t in 0..80 {
            let z = [
                wiggly(t, 0, 140.0).min(caps_a[0]),
                wiggly(t, 1, 60.0),
                wiggly(t, 2, 100.0).min(caps_a[2]),
            ];
            a.assign_caps(&z, &mut caps_a, 1.0);
            b.assign_caps(&z, &mut caps_b, 1.0);
            assert_eq!(caps_a, caps_b, "cycle {t}");
        }
    }

    #[test]
    fn timing_sink_emits_phase_spans() {
        let mut m = dps(2, 220.0);
        let sink = SinkHandle::new(std::rc::Rc::new(dps_obs::RingSink::new(1024).with_timing()));
        m.attach_trace(sink.clone());
        let mut caps = vec![110.0; 2];
        m.assign_caps(&[100.0, 50.0], &mut caps, 1.0);
        let trace = dps_obs::codec::decode(&sink.export().unwrap()).unwrap();
        let phases: Vec<PhaseKind> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                Event::PhaseEnd { phase, .. } => Some(*phase),
                _ => None,
            })
            .collect();
        assert!(phases.contains(&PhaseKind::Mimd));
        assert!(phases.contains(&PhaseKind::ObserveClassify));
        assert!(phases.contains(&PhaseKind::Readjust));
        assert!(phases.contains(&PhaseKind::Assign));
    }

    #[test]
    fn restore_rejects_corruption_and_leaves_manager_untouched() {
        let mut a = dps(2, 220.0);
        let mut caps = vec![110.0; 2];
        for t in 0..10 {
            a.assign_caps(&[wiggly(t, 0, 100.0), wiggly(t, 1, 30.0)], &mut caps, 1.0);
        }
        let mut snap = a.checkpoint().unwrap();
        let mid = snap.len() / 2;
        snap[mid] ^= 0xFF;
        let mut b = dps(2, 220.0);
        let mut caps_b = vec![110.0; 2];
        b.assign_caps(&[100.0, 30.0], &mut caps_b, 1.0);
        let before = b.checkpoint().unwrap();
        assert!(b.restore(&snap).is_err());
        assert_eq!(
            b.checkpoint().unwrap(),
            before,
            "failed restore must not mutate"
        );
    }
}
