//! A hierarchical two-level stateless baseline (Argo-style).
//!
//! The paper's related work (§2.3) cites the Argo project's "conclave-node
//! two-level stateless power management system" (Ellsworth et al.): a
//! top-level controller divides the cluster budget among *nodes*, and a
//! per-node controller divides each node's budget among its sockets. Both
//! levels here are stateless: the node level runs the same MIMD rule as the
//! SLURM baseline on aggregate node power; the socket level splits the node
//! budget proportionally to socket power (floored at the minimum cap).
//!
//! The two-level split localises decisions (a real deployment gains fault
//! isolation and lower controller fan-out) but inherits — twice — the
//! stateless inability to anticipate, which is why it belongs in the
//! baseline set.

use crate::budget::{debug_assert_budget, enforce_budget, BUDGET_EPSILON};
use crate::config::MimdConfig;
use crate::manager::{check_new_budget, ManagerKind, PowerManager, UnitLimits};
use dps_sim_core::rng::RngStream;
use dps_sim_core::units::{Seconds, Watts};

/// Two-level (node → socket) stateless manager.
///
/// ```
/// use dps_core::manager::{PowerManager, UnitLimits};
/// use dps_core::{MimdConfig, TwoLevelManager};
/// use dps_sim_core::RngStream;
///
/// // Four sockets in two nodes sharing 440 W.
/// let mut m = TwoLevelManager::new(4, 2, 440.0, UnitLimits::xeon_gold_6240(),
///                                  MimdConfig::default(), RngStream::new(1, "docs"));
/// let mut caps = vec![110.0; 4];
/// // Node 0 hot, node 1 idle: the top level shifts budget between nodes.
/// for _ in 0..20 {
///     let measured = [caps[0] * 0.99, caps[1] * 0.99, 20.0, 20.0];
///     m.assign_caps(&measured, &mut caps, 1.0);
/// }
/// assert!(m.node_budgets()[0] > m.node_budgets()[1]);
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevelManager {
    config: MimdConfig,
    limits: UnitLimits,
    total_budget: Watts,
    sockets_per_node: usize,
    num_units: usize,
    /// Per-node budgets maintained by the top-level controller.
    node_budgets: Vec<Watts>,
    rng: RngStream,
    rng_initial: RngStream,
    /// Scratch: node visit order.
    order: Vec<usize>,
}

impl TwoLevelManager {
    /// Creates the manager for `num_units` sockets grouped into nodes of
    /// `sockets_per_node`.
    ///
    /// # Panics
    /// Panics if `num_units` is not a multiple of `sockets_per_node`, or on
    /// an invalid config.
    pub fn new(
        num_units: usize,
        sockets_per_node: usize,
        total_budget: Watts,
        limits: UnitLimits,
        config: MimdConfig,
        rng: RngStream,
    ) -> Self {
        config.validate().expect("invalid MIMD config");
        limits
            .check_feasible(total_budget, num_units)
            .expect("infeasible budget");
        assert!(
            sockets_per_node > 0 && num_units.is_multiple_of(sockets_per_node),
            "units ({num_units}) must fill whole nodes of {sockets_per_node}"
        );
        let nodes = num_units / sockets_per_node;
        Self {
            config,
            limits,
            total_budget,
            sockets_per_node,
            num_units,
            node_budgets: vec![total_budget / nodes as f64; nodes],
            rng_initial: rng.clone(),
            rng,
            order: (0..nodes).collect(),
        }
    }

    /// Current per-node budgets (diagnostics).
    pub fn node_budgets(&self) -> &[Watts] {
        &self.node_budgets
    }

    fn node_count(&self) -> usize {
        self.node_budgets.len()
    }
}

impl PowerManager for TwoLevelManager {
    fn kind(&self) -> ManagerKind {
        ManagerKind::TwoLevel
    }

    fn num_units(&self) -> usize {
        self.num_units
    }

    fn total_budget(&self) -> Watts {
        self.total_budget
    }

    fn set_budget(&mut self, new_budget: Watts) -> Result<(), String> {
        check_new_budget(new_budget, self.num_units, self.limits)?;
        self.total_budget = new_budget;
        Ok(())
    }

    fn assign_caps(&mut self, measured: &[Watts], caps: &mut [Watts], _dt: Seconds) {
        let spn = self.sockets_per_node;
        let nodes = self.node_count();
        let node_max = self.limits.max_cap * spn as f64;

        // Invariant maintained throughout: Σ caps(node) ≤ node_budget and
        // Σ node_budgets ≤ total_budget, hence Σ caps ≤ total_budget.

        // A budget shock can break both halves of that invariant (standing
        // caps above the new total, or a node budget stranded below its
        // caps). Rebase before the MIMD loops: shrink the caps under the
        // total and collapse each node budget onto its caps, returning all
        // slack to the top level for re-bidding. No-op in steady state.
        let over_total = caps.iter().sum::<f64>() > self.total_budget + BUDGET_EPSILON;
        let incoherent = (0..nodes).any(|k| {
            caps[k * spn..(k + 1) * spn].iter().sum::<f64>() > self.node_budgets[k] + BUDGET_EPSILON
        });
        if over_total || incoherent {
            enforce_budget(caps, self.total_budget, self.limits);
            for k in 0..nodes {
                self.node_budgets[k] = caps[k * spn..(k + 1) * spn].iter().sum();
            }
        }

        // (1) Bottom-level decrease: every socket with slack releases cap
        // (floored at its measured power), shrinking its node's usage.
        for u in 0..caps.len() {
            if measured[u] < caps[u] * self.config.dec_threshold {
                let target = measured[u].max(caps[u] * self.config.dec_factor);
                caps[u] = self.limits.clamp(target.min(caps[u]));
            }
        }

        // (2) Top-level decrease: a node's budget follows its retained caps
        // down (never below them, so the invariant holds).
        let node_used: Vec<f64> = (0..nodes)
            .map(|k| caps[k * spn..(k + 1) * spn].iter().sum())
            .collect();
        for (budget, &used) in self.node_budgets.iter_mut().zip(&node_used) {
            let shrunk = (*budget * self.config.dec_factor).max(used);
            if shrunk < *budget {
                *budget = shrunk;
            }
        }

        // (3) Top-level increase: nodes with a pinned socket bid for the
        // released budget, in random order (the node controller aggregates
        // its sockets' requests).
        let node_pinned: Vec<bool> = (0..nodes)
            .map(|k| {
                (k * spn..(k + 1) * spn).any(|u| measured[u] > caps[u] * self.config.inc_threshold)
            })
            .collect();
        let mut avail = self.total_budget - self.node_budgets.iter().sum::<f64>();
        self.rng.shuffle(&mut self.order);
        for idx in 0..nodes {
            if avail <= BUDGET_EPSILON {
                break;
            }
            let k = self.order[idx];
            if node_pinned[k] {
                let desired = (self.node_budgets[k] * self.config.inc_factor).min(node_max);
                let new = desired.min(self.node_budgets[k] + avail);
                if new > self.node_budgets[k] + BUDGET_EPSILON {
                    avail -= new - self.node_budgets[k];
                    self.node_budgets[k] = new;
                }
            }
        }

        // (4) Bottom-level increase: each node spends its budget headroom on
        // its own pinned sockets. The visit order rotates per cycle so no
        // socket index holds a standing priority (the node-level analogue
        // of the SLURM random order).
        for k in 0..nodes {
            let range = k * spn..(k + 1) * spn;
            let mut node_avail = self.node_budgets[k] - caps[range.clone()].iter().sum::<f64>();
            let offset = (self.rng.next_u64() as usize) % spn;
            for i in 0..spn {
                let u = k * spn + (i + offset) % spn;
                if node_avail <= BUDGET_EPSILON {
                    break;
                }
                if measured[u] > caps[u] * self.config.inc_threshold {
                    let desired = (caps[u] * self.config.inc_factor).min(self.limits.max_cap);
                    let new = desired.min(caps[u] + node_avail);
                    if new > caps[u] + BUDGET_EPSILON {
                        node_avail -= new - caps[u];
                        caps[u] = new;
                    }
                }
            }
        }
        debug_assert_budget(caps, self.total_budget, self.limits);
    }

    fn reset(&mut self) {
        let nodes = self.node_count();
        self.node_budgets.fill(self.total_budget / nodes as f64);
        for (i, slot) in self.order.iter_mut().enumerate() {
            *slot = i;
        }
        self.rng = self.rng_initial.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: UnitLimits = UnitLimits {
        min_cap: 40.0,
        max_cap: 165.0,
    };

    fn manager(units: usize, spn: usize, budget: Watts) -> TwoLevelManager {
        TwoLevelManager::new(
            units,
            spn,
            budget,
            LIMITS,
            MimdConfig::default(),
            RngStream::new(8, "twolevel-test"),
        )
    }

    #[test]
    fn node_budgets_start_equal() {
        let m = manager(8, 2, 880.0);
        assert_eq!(m.node_budgets(), &[220.0; 4]);
    }

    #[test]
    fn hot_node_gains_budget_from_idle_node() {
        let mut m = manager(4, 2, 440.0);
        let mut caps = vec![110.0; 4];
        for _ in 0..20 {
            // Node 0 (units 0-1) hot at its caps; node 1 idle.
            let measured = [caps[0] * 0.999, caps[1] * 0.999, 20.0, 20.0];
            m.assign_caps(&measured, &mut caps, 1.0);
        }
        assert!(m.node_budgets()[0] > 260.0, "{:?}", m.node_budgets());
        assert!(m.node_budgets()[1] < 180.0);
        assert!(caps[0] > 120.0 && caps[2] < 60.0, "{caps:?}");
    }

    #[test]
    fn socket_split_proportional_within_node() {
        let mut m = manager(2, 2, 220.0);
        let mut caps = vec![110.0; 2];
        // One node; socket 0 draws 3× socket 1.
        for _ in 0..10 {
            let measured = [90.0f64.min(caps[0]), 30.0f64.min(caps[1])];
            m.assign_caps(&measured, &mut caps, 1.0);
        }
        assert!(caps[0] > caps[1] + 20.0, "{caps:?}");
        let sum: f64 = caps.iter().sum();
        assert!(sum <= 220.0 + 1e-6);
    }

    #[test]
    fn budget_respected_under_churn() {
        let mut m = manager(12, 2, 1320.0);
        let mut caps = vec![110.0; 12];
        let mut rng = RngStream::new(5, "tl-churn");
        for _ in 0..300 {
            let measured: Vec<f64> = caps
                .iter()
                .map(|&c| rng.range(10.0..165.0_f64).min(c))
                .collect();
            m.assign_caps(&measured, &mut caps, 1.0);
            assert!(caps.iter().sum::<f64>() <= 1320.0 + 1e-6);
            assert!(caps
                .iter()
                .all(|&c| (40.0 - 1e-9..=165.0 + 1e-9).contains(&c)));
        }
    }

    #[test]
    fn reset_restores_equal_budgets_and_rng() {
        let mut m = manager(4, 2, 440.0);
        let mut caps_a = vec![110.0; 4];
        for _ in 0..5 {
            m.assign_caps(&[109.0, 109.0, 20.0, 20.0], &mut caps_a, 1.0);
        }
        m.reset();
        assert_eq!(m.node_budgets(), &[220.0, 220.0]);
        let mut caps_b = vec![110.0; 4];
        for _ in 0..5 {
            m.assign_caps(&[109.0, 109.0, 20.0, 20.0], &mut caps_b, 1.0);
        }
        m.reset();
        let mut caps_c = vec![110.0; 4];
        for _ in 0..5 {
            m.assign_caps(&[109.0, 109.0, 20.0, 20.0], &mut caps_c, 1.0);
        }
        assert_eq!(caps_b, caps_c, "reset must be reproducible");
    }

    #[test]
    #[should_panic(expected = "whole nodes")]
    fn partial_nodes_rejected() {
        manager(5, 2, 550.0);
    }

    #[test]
    fn kind_is_twolevel() {
        assert_eq!(manager(2, 2, 220.0).kind(), ManagerKind::TwoLevel);
    }
}
