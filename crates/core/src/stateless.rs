//! The stateless MIMD module (paper Alg. 1) and the SLURM comparator.
//!
//! A Multiplicative-Increase-Multiplicative-Decrease controller "inspired by
//! SLURM's power management system": units consuming well below their cap
//! have the cap multiplicatively decreased (to no lower than their current
//! power); units pushing against their cap get a multiplicative increase,
//! funded by whatever budget the decrease loop freed, visited **in random
//! order** "so that no unit has priority in increasing the cap over others".
//!
//! Standalone (wrapped in [`SlurmManager`]) this is the paper's SLURM
//! baseline; inside [`crate::dps::DpsManager`] it produces the temporary
//! allocation that the cap-readjusting module then refines.

use crate::budget::{debug_assert_budget, enforce_budget, BUDGET_EPSILON};
use crate::config::MimdConfig;
use crate::manager::{check_new_budget, ManagerKind, PowerManager, UnitLimits};
use dps_sim_core::rng::RngStream;
use dps_sim_core::units::{Seconds, Watts};

/// The reusable stateless controller.
#[derive(Debug, Clone)]
pub struct MimdModule {
    config: MimdConfig,
    limits: UnitLimits,
    total_budget: Watts,
    /// Scratch visit order, reused across cycles to avoid allocation.
    order: Vec<usize>,
}

impl MimdModule {
    /// Creates the module.
    ///
    /// # Panics
    /// Panics on an invalid config.
    pub fn new(
        config: MimdConfig,
        limits: UnitLimits,
        total_budget: Watts,
        num_units: usize,
    ) -> Self {
        config.validate().expect("invalid MIMD config");
        Self {
            config,
            limits,
            total_budget,
            order: (0..num_units).collect(),
        }
    }

    /// The module's configuration.
    pub fn config(&self) -> &MimdConfig {
        &self.config
    }

    /// Rebases the module on a new budget. The next [`MimdModule::apply`]
    /// shrinks any now-over-budget caps proportionally before the usual
    /// MIMD loops, so compliance is restored within one cycle.
    pub fn set_budget(&mut self, new_budget: Watts) {
        self.total_budget = new_budget;
    }

    /// The current visit-order permutation (checkpoint state: the shuffle
    /// mutates it in place, so replaying the RNG stream after a restore
    /// needs the permutation it left behind).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Restores a visit order captured with [`MimdModule::order`]. Must be
    /// a permutation of `0..num_units`.
    pub fn restore_order(&mut self, order: &[usize]) -> Result<(), String> {
        if order.len() != self.order.len() {
            return Err(format!(
                "order length {} does not match {} units",
                order.len(),
                self.order.len()
            ));
        }
        let mut seen = vec![false; order.len()];
        for &u in order {
            if u >= order.len() || seen[u] {
                return Err(format!("not a permutation: {order:?}"));
            }
            seen[u] = true;
        }
        self.order.copy_from_slice(order);
        Ok(())
    }

    /// Restores construction state. The visit-order scratch is shuffled in
    /// place every cycle; replaying an RNG stream against a leftover
    /// permutation would break reset-reproducibility, so it must return to
    /// the identity order.
    pub fn reset(&mut self) {
        for (i, slot) in self.order.iter_mut().enumerate() {
            *slot = i;
        }
    }

    /// One cycle of Alg. 1: rewrites `caps` from `measured`, marking changed
    /// units in `changed`. The increase loop visits units in a random order
    /// drawn from `rng`.
    pub fn apply(
        &mut self,
        measured: &[Watts],
        caps: &mut [Watts],
        changed: &mut [bool],
        rng: &mut RngStream,
    ) {
        let n = caps.len();
        assert!(measured.len() == n && changed.len() == n, "length mismatch");
        changed.fill(false);

        // A budget shock may leave the standing caps above the new budget;
        // the freed-budget accounting below assumes Σcaps ≤ budget, so
        // restore the invariant first (no-op under a constant budget).
        if caps.iter().sum::<f64>() > self.total_budget + BUDGET_EPSILON {
            let before: Vec<Watts> = caps.to_vec();
            enforce_budget(caps, self.total_budget, self.limits);
            for u in 0..n {
                if (caps[u] - before[u]).abs() > BUDGET_EPSILON {
                    changed[u] = true;
                }
            }
        }

        // First loop: decrease caps of units with headroom (Alg. 1 l.5-8).
        for u in 0..n {
            if measured[u] < caps[u] * self.config.dec_threshold {
                // "decreased by a percentage or to its current power" —
                // never raised (noise can place power slightly above cap).
                let target = measured[u].max(caps[u] * self.config.dec_factor);
                let new = self.limits.clamp(target.min(caps[u]));
                if new < caps[u] - BUDGET_EPSILON {
                    caps[u] = new;
                    changed[u] = true;
                }
            }
        }

        // Second loop: spend the freed budget on capped units, random order
        // (Alg. 1 l.9-14).
        let mut avail = self.total_budget - caps.iter().sum::<f64>();
        rng.shuffle(&mut self.order);
        for k in 0..n {
            if avail <= BUDGET_EPSILON {
                break;
            }
            let u = self.order[k];
            if measured[u] > caps[u] * self.config.inc_threshold {
                let desired = (caps[u] * self.config.inc_factor).min(self.limits.max_cap);
                let new = desired.min(caps[u] + avail);
                if new > caps[u] + BUDGET_EPSILON {
                    avail -= new - caps[u];
                    caps[u] = new;
                    changed[u] = true;
                }
            }
        }

        debug_assert_budget(caps, self.total_budget, self.limits);
    }
}

/// The SLURM power-plugin comparator: the stateless module as a complete
/// manager.
#[derive(Debug, Clone)]
pub struct SlurmManager {
    module: MimdModule,
    num_units: usize,
    rng: RngStream,
    rng_initial: RngStream,
    changed: Vec<bool>,
}

impl SlurmManager {
    /// Creates the manager with caps expected to start at the constant cap
    /// (the cluster simulator initialises caps; SLURM itself keeps no cap
    /// state beyond what the hardware holds).
    pub fn new(
        num_units: usize,
        total_budget: Watts,
        limits: UnitLimits,
        config: MimdConfig,
        rng: RngStream,
    ) -> Self {
        limits
            .check_feasible(total_budget, num_units)
            .expect("infeasible budget");
        Self {
            module: MimdModule::new(config, limits, total_budget, num_units),
            num_units,
            rng_initial: rng.clone(),
            rng,
            changed: vec![false; num_units],
        }
    }

    /// Which units changed caps in the last cycle (control-plane traffic
    /// accounting).
    pub fn changed(&self) -> &[bool] {
        &self.changed
    }
}

impl PowerManager for SlurmManager {
    fn kind(&self) -> ManagerKind {
        ManagerKind::Slurm
    }

    fn num_units(&self) -> usize {
        self.num_units
    }

    fn total_budget(&self) -> Watts {
        self.module.total_budget
    }

    fn set_budget(&mut self, new_budget: Watts) -> Result<(), String> {
        check_new_budget(new_budget, self.num_units, self.module.limits)?;
        self.module.set_budget(new_budget);
        Ok(())
    }

    fn assign_caps(&mut self, measured: &[Watts], caps: &mut [Watts], _dt: Seconds) {
        let mut changed = std::mem::take(&mut self.changed);
        self.module
            .apply(measured, caps, &mut changed, &mut self.rng);
        self.changed = changed;
    }

    fn reset(&mut self) {
        self.module.reset();
        self.rng = self.rng_initial.clone();
        self.changed.fill(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: UnitLimits = UnitLimits {
        min_cap: 40.0,
        max_cap: 165.0,
    };

    fn slurm(n: usize, budget: Watts) -> SlurmManager {
        SlurmManager::new(
            n,
            budget,
            LIMITS,
            MimdConfig::default(),
            RngStream::new(1, "slurm-test"),
        )
    }

    #[test]
    fn decreases_idle_unit() {
        let mut m = slurm(2, 220.0);
        let mut caps = vec![110.0, 110.0];
        // Unit 0 idles at 20 W → cap multiplicatively decreases toward 40.
        m.assign_caps(&[20.0, 108.0], &mut caps, 1.0);
        assert!(caps[0] < 110.0, "idle unit cap should drop: {}", caps[0]);
        assert!(caps[0] >= 40.0);
    }

    #[test]
    fn increases_capped_unit_with_freed_budget() {
        let mut m = slurm(2, 220.0);
        let mut caps = vec![110.0, 110.0];
        // Unit 0 idle, unit 1 pinned at its cap.
        for _ in 0..10 {
            let measured = [20.0, caps[1] * 0.999];
            m.assign_caps(&measured, &mut caps, 1.0);
        }
        assert!(caps[1] > 140.0, "capped unit should grow: {}", caps[1]);
        assert!(caps[0] <= 45.0, "idle unit should shrink: {}", caps[0]);
        assert!(caps.iter().sum::<f64>() <= 220.0 + 1e-6);
    }

    #[test]
    fn cap_never_exceeds_tdp() {
        let mut m = slurm(2, 400.0);
        let mut caps = vec![110.0, 110.0];
        for _ in 0..50 {
            let measured = [caps[0] * 0.999, caps[1] * 0.999];
            m.assign_caps(&measured, &mut caps, 1.0);
        }
        assert!(caps.iter().all(|&c| c <= 165.0 + 1e-9));
    }

    #[test]
    fn no_change_in_deadband() {
        let mut m = slurm(1, 110.0);
        let mut caps = vec![110.0];
        // Power between dec (0.85) and inc (0.95) thresholds: no action.
        m.assign_caps(&[99.0], &mut caps, 1.0);
        assert_eq!(caps[0], 110.0);
        assert!(!m.changed()[0]);
    }

    #[test]
    fn decrease_floors_at_current_power() {
        let cfg = MimdConfig {
            dec_factor: 0.5,
            ..Default::default()
        };
        // Budget of exactly 80 W: after the decrease floors the cap at the
        // current power, the increase loop has no budget to spend, isolating
        // the floor behaviour.
        let mut m = SlurmManager::new(1, 80.0, LIMITS, cfg, RngStream::new(2, "t"));
        let mut caps = vec![110.0];
        // Power 80 < 110*0.85; half-cap would be 55 < 80 → floor at 80.
        m.assign_caps(&[80.0], &mut caps, 1.0);
        assert!((caps[0] - 80.0).abs() < 1e-9, "cap {}", caps[0]);
    }

    #[test]
    fn budget_invariant_under_stress() {
        let mut m = slurm(8, 880.0);
        let mut caps = vec![110.0; 8];
        let mut rng = RngStream::new(9, "stress");
        for _ in 0..500 {
            let measured: Vec<f64> = caps.iter().map(|&c| rng.range(0.0..c * 1.01)).collect();
            m.assign_caps(&measured, &mut caps, 1.0);
            assert!(caps.iter().sum::<f64>() <= 880.0 + 1e-6);
            assert!(caps
                .iter()
                .all(|&c| (40.0 - 1e-9..=165.0 + 1e-9).contains(&c)));
        }
    }

    #[test]
    fn greedy_starvation_pathology() {
        // The motivating failure (Fig. 1): unit 0 grabs the whole surplus
        // first; when unit 1 later ramps up, no budget is left and the
        // stateless controller cannot give it any — both sit at their caps.
        let mut m = slurm(2, 220.0);
        let mut caps = vec![110.0, 110.0];
        // Phase 1: unit 0 hot, unit 1 idle.
        for _ in 0..15 {
            m.assign_caps(&[caps[0] * 0.999, 20.0], &mut caps, 1.0);
        }
        assert!(caps[0] > 160.0, "unit 0 should own the budget: {}", caps[0]);
        let starved_cap = caps[1];
        assert!(starved_cap < 60.0);
        // Phase 2: unit 1 ramps to its cap — both units now report at-cap
        // power, so unit 1 can only absorb the few Watts of slack and stays
        // far below the fair 110 W share while unit 0 keeps the lion's part.
        for _ in 0..15 {
            m.assign_caps(&[caps[0] * 0.999, caps[1] * 0.999], &mut caps, 1.0);
        }
        assert!(
            caps[1] < 70.0,
            "stateless cannot rescue the late unit back to fair share: {}",
            caps[1]
        );
        assert!(caps[0] > 150.0, "early unit keeps its grab: {}", caps[0]);
        let _ = starved_cap;
    }

    #[test]
    fn random_order_varies_but_reset_restores() {
        let mut m = slurm(4, 200.0);
        let mut caps_a = vec![50.0; 4];
        // All four want increases but budget allows none fully; order matters.
        m.assign_caps(&[50.0; 4], &mut caps_a, 1.0);
        m.reset();
        let mut caps_b = vec![50.0; 4];
        m.assign_caps(&[50.0; 4], &mut caps_b, 1.0);
        assert_eq!(caps_a, caps_b, "reset must restore the RNG stream");
    }

    #[test]
    fn kind_is_slurm() {
        assert_eq!(slurm(1, 110.0).kind(), ManagerKind::Slurm);
    }
}
