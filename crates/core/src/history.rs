//! Per-unit state: the *only* state DPS keeps.
//!
//! "The state is simply the recent power usage changes, which we refer to as
//! power dynamics" (§1). Concretely, per power-capping unit the server holds
//! a Kalman filter, a bounded estimated-power history, the matching sample
//! durations, the high-frequency flag and the current priority (§4.3).
//!
//! The dynamics statistics the priority module reads each cycle — prominent
//! peak count, history standard deviation, windowed derivative — are
//! maintained *incrementally* on `observe` (rolling moments with periodic
//! exact resync, a run-length peak structure, a cached derivative), so a
//! decision cycle no longer rescans `history_len` samples per unit. The
//! original full-window recompute survives as [`StatsMode::Rescan`] — both
//! the equivalence oracle for tests and the benchmark baseline.

use crate::config::{DpsConfig, StatsMode};
use dps_sim_core::kalman::KalmanFilter;
use dps_sim_core::ring::RingBuffer;
use dps_sim_core::rolling::{PeakTracker, RollingMoments};
use dps_sim_core::signal;
use dps_sim_core::units::{Seconds, Watts};

/// Dynamic state for one unit.
#[derive(Debug, Clone)]
pub struct UnitState {
    /// De-noising filter over raw measurements.
    pub filter: KalmanFilter,
    /// Estimated power history (newest last), bounded at `history_len`.
    pub power_history: RingBuffer<f64>,
    /// Per-sample durations aligned with `power_history`.
    pub duration_history: RingBuffer<f64>,
    /// Whether the unit is currently classified high-frequency.
    pub high_freq: bool,
    /// Current priority (true = high).
    pub priority: bool,
    /// Statistics strategy (frozen at construction from the config).
    mode: StatsMode,
    /// Peak prominence threshold (from the config, so reads need no args).
    peak_prominence: f64,
    /// Derivative window in samples (from the config).
    deriv_window: usize,
    /// Rolling Σx/Σx² over `power_history`.
    moments: RollingMoments,
    /// Run-length prominent-peak structure over `power_history`.
    peaks: PeakTracker,
    /// Windowed derivative refreshed on every observe.
    cached_deriv: Option<f64>,
    /// Scratch buffers reused across cycles so the rescan path allocates
    /// nothing in steady state (the history is copied out contiguously for
    /// the slice-based signal kernels).
    scratch_power: Vec<f64>,
    scratch_durations: Vec<f64>,
}

impl UnitState {
    /// Fresh state from a config.
    pub fn new(config: &DpsConfig) -> Self {
        Self {
            filter: KalmanFilter::new(config.kalman_q, config.kalman_r),
            power_history: RingBuffer::new(config.history_len),
            duration_history: RingBuffer::new(config.history_len),
            high_freq: false,
            priority: false,
            mode: config.stats_mode,
            peak_prominence: config.peak_prominence,
            deriv_window: config.deriv_window,
            moments: RollingMoments::new(config.history_len),
            peaks: PeakTracker::new(config.peak_prominence),
            cached_deriv: None,
            scratch_power: Vec::with_capacity(config.history_len),
            scratch_durations: Vec::with_capacity(config.history_len),
        }
    }

    /// Feeds one raw measurement: Kalman-filters it and appends the estimate
    /// to the history. Returns the estimate.
    ///
    /// Non-finite measurements (a dropped-out or corrupted sensor) are
    /// skip-and-hold: the filter is left untouched and the previous estimate
    /// is re-held into the history, so the window stays aligned with
    /// wall-clock time and derivatives read ≈ 0 through the outage instead
    /// of the whole history turning NaN.
    pub fn observe(&mut self, measured: Watts, dt: Seconds) -> Watts {
        if !measured.is_finite() {
            let held = self.latest_estimate();
            if !self.power_history.is_empty() {
                self.record(held, dt);
            }
            return held;
        }
        let estimate = self.filter.update(measured);
        self.record(estimate, dt);
        estimate
    }

    /// Appends one estimate and keeps the incremental statistics current.
    fn record(&mut self, estimate: f64, dt: Seconds) {
        let evicted = self.power_history.push(estimate);
        self.duration_history.push(dt);
        if self.mode == StatsMode::Incremental {
            self.moments.push(estimate, evicted, &self.power_history);
            self.peaks.push(estimate, evicted);
            self.cached_deriv = self.compute_derivative();
        }
    }

    /// Most recent power estimate (0 before any observation).
    pub fn latest_estimate(&self) -> Watts {
        self.power_history.newest().copied().unwrap_or(0.0)
    }

    /// Number of prominent peaks in the current history window.
    pub fn prominent_peak_count(&mut self) -> usize {
        match self.mode {
            StatsMode::Incremental => self.peaks.count(),
            StatsMode::Rescan => self.rescan_peak_count(),
        }
    }

    /// Standard deviation of the history window (0 while empty).
    pub fn history_std(&self) -> f64 {
        match self.mode {
            StatsMode::Incremental => self.moments.std_dev().unwrap_or(0.0),
            StatsMode::Rescan => self.rescan_std(),
        }
    }

    /// Windowed average first derivative over the newest `deriv_window`
    /// samples (Alg. 2 line 16); `None` until at least 2 samples exist.
    pub fn derivative(&mut self) -> Option<f64> {
        match self.mode {
            StatsMode::Incremental => self.cached_deriv,
            StatsMode::Rescan => self.rescan_derivative(),
        }
    }

    /// Reference peak count via the full-window slice kernel — the
    /// pre-optimization path, kept as the equivalence oracle.
    pub fn rescan_peak_count(&mut self) -> usize {
        self.power_history.copy_to(&mut self.scratch_power);
        signal::count_prominent_peaks(&self.scratch_power, self.peak_prominence)
    }

    /// Reference standard deviation via a full-window two-pass recompute.
    pub fn rescan_std(&self) -> f64 {
        self.power_history.std_dev().unwrap_or(0.0)
    }

    /// Reference derivative via the full-window slice kernel.
    pub fn rescan_derivative(&mut self) -> Option<f64> {
        self.power_history.copy_to(&mut self.scratch_power);
        self.duration_history.copy_to(&mut self.scratch_durations);
        signal::windowed_derivative(
            &self.scratch_power,
            &self.scratch_durations,
            self.deriv_window,
        )
    }

    /// The windowed derivative straight off the rings, summing the
    /// durations oldest-to-newest so the result is bit-identical to
    /// [`signal::windowed_derivative`] over the copied-out window.
    fn compute_derivative(&self) -> Option<f64> {
        let len = self.power_history.len();
        if len < 2 || self.deriv_window < 1 {
            return None;
        }
        let w = self.deriv_window.min(len - 1);
        let newest = *self.power_history.newest()?;
        let oldest = *self.power_history.get(len - 1 - w)?;
        let mut dt = 0.0;
        for i in (len - w)..len {
            dt += *self.duration_history.get(i)?;
        }
        if dt <= 0.0 {
            return None;
        }
        Some((newest - oldest) / dt)
    }

    /// Rebuilds every derived statistic exactly from the current window
    /// contents — used after a restore writes the histories wholesale.
    pub fn rebuild_stats(&mut self) {
        self.moments.resync(&self.power_history);
        self.peaks.rebuild(self.power_history.iter().copied());
        self.cached_deriv = self.compute_derivative();
    }

    /// Path-dependent accumulator internals (tests compare them across
    /// materialize/churn; the checkpoint codec reads the column store
    /// directly).
    #[cfg(test)]
    pub(crate) fn moments_state(&self) -> (f64, f64, f64, u32) {
        self.moments.state()
    }

    /// Restores checkpointed accumulator internals (after the histories
    /// have been written and [`UnitState::rebuild_stats`] has run).
    pub(crate) fn restore_moments(&mut self, sum: f64, sumsq: f64, offset: f64, until_resync: u32) {
        self.moments
            .restore_state(sum, sumsq, offset, until_resync, self.power_history.len());
    }

    /// Clears everything back to construction state.
    pub fn reset(&mut self) {
        self.filter.reset();
        self.power_history.clear();
        self.duration_history.clear();
        self.high_freq = false;
        self.priority = false;
        self.moments.clear();
        self.peaks.clear();
        self.cached_deriv = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> UnitState {
        UnitState::new(&DpsConfig::default())
    }

    #[test]
    fn observe_fills_history() {
        let mut s = state();
        for i in 0..25 {
            s.observe(100.0 + i as f64, 1.0);
        }
        assert_eq!(s.power_history.len(), 20, "bounded at history_len");
        assert_eq!(s.duration_history.len(), 20);
    }

    #[test]
    fn latest_estimate_tracks_signal() {
        let mut s = state();
        for _ in 0..30 {
            s.observe(120.0, 1.0);
        }
        assert!((s.latest_estimate() - 120.0).abs() < 1.0);
    }

    #[test]
    fn derivative_positive_on_ramp() {
        let mut s = state();
        for i in 0..10 {
            s.observe(20.0 + 20.0 * i as f64, 1.0);
        }
        let d = s.derivative().unwrap();
        assert!(d > 10.0, "ramp derivative {d}");
    }

    #[test]
    fn derivative_negative_on_decay() {
        let mut s = state();
        for i in 0..10 {
            s.observe(200.0 - 15.0 * i as f64, 1.0);
        }
        assert!(s.derivative().unwrap() < -10.0);
    }

    #[test]
    fn derivative_none_without_samples() {
        let mut s = state();
        assert_eq!(s.derivative(), None);
        let mut s1 = state();
        s1.observe(50.0, 1.0);
        assert_eq!(s1.derivative(), None);
    }

    #[test]
    fn peaks_detected_on_square_wave() {
        let mut s = state();
        for cycle in 0..5 {
            let _ = cycle;
            for _ in 0..2 {
                s.observe(150.0, 1.0);
            }
            for _ in 0..2 {
                s.observe(30.0, 1.0);
            }
        }
        assert!(
            s.prominent_peak_count() >= 3,
            "square wave should show peaks: {}",
            s.prominent_peak_count()
        );
        assert!(s.history_std() > 20.0);
    }

    #[test]
    fn flat_history_no_peaks_low_std() {
        let mut s = state();
        for _ in 0..20 {
            s.observe(110.0, 1.0);
        }
        assert_eq!(s.prominent_peak_count(), 0);
        assert!(s.history_std() < 5.0);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut s = state();
        for _ in 0..10 {
            s.observe(80.0, 1.0);
        }
        s.high_freq = true;
        s.priority = true;
        s.reset();
        assert_eq!(s.power_history.len(), 0);
        assert!(!s.high_freq && !s.priority);
        assert_eq!(s.latest_estimate(), 0.0);
        // The incremental accumulators must be as fresh as the histories —
        // a stale rolling sum would poison the next tenancy's statistics.
        assert_eq!(s.prominent_peak_count(), 0);
        assert_eq!(s.history_std(), 0.0);
        assert_eq!(s.derivative(), None);
    }

    #[test]
    fn non_finite_observation_skips_and_holds() {
        let mut s = state();
        for _ in 0..10 {
            s.observe(100.0, 1.0);
        }
        let held = s.latest_estimate();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(s.observe(bad, 1.0), held, "estimate held through {bad}");
        }
        // The whole history must stay finite and the derivative must read
        // flat through the outage, not NaN.
        s.power_history.copy_to(&mut s.scratch_power);
        assert!(s.scratch_power.iter().all(|v| v.is_finite()));
        assert_eq!(s.latest_estimate(), held);
        let d = s.derivative().unwrap();
        assert!(d.abs() < 1e-9, "derivative through outage: {d}");
        // Recovery: a finite sample resumes normal filtering.
        assert!(s.observe(101.0, 1.0).is_finite());
    }

    #[test]
    fn non_finite_first_observation_is_ignored() {
        let mut s = state();
        assert_eq!(s.observe(f64::NAN, 1.0), 0.0);
        assert_eq!(s.power_history.len(), 0, "no sample recorded");
        assert_eq!(s.observe(90.0, 1.0), 90.0, "first real sample adopted");
    }

    #[test]
    fn kalman_smooths_noise_in_history() {
        use dps_sim_core::rng::RngStream;
        let mut rng = RngStream::new(3, "hist");
        let mut s = state();
        let mut raw = Vec::new();
        for _ in 0..20 {
            let sample = 110.0 + rng.normal(0.0, 2.0);
            raw.push(sample);
            s.observe(sample, 1.0);
        }
        // The estimated history must vary less than the raw samples do —
        // compare against the realised sample std rather than the nominal
        // noise std, so the assertion is not sensitive to the particular
        // 20-draw realisation.
        let raw_std = dps_sim_core::stats::std_dev(&raw).unwrap();
        assert!(
            s.history_std() < raw_std,
            "smoothed std {} vs raw std {raw_std}",
            s.history_std()
        );
    }

    /// The incremental statistics must agree with the rescan oracle at
    /// every step of a long noisy stream, including through NaN outages.
    #[test]
    fn incremental_matches_rescan_oracle_stepwise() {
        use dps_sim_core::rng::RngStream;
        let mut rng = RngStream::new(9, "equiv");
        let mut s = state();
        for step in 0..600 {
            let sample = if step % 37 == 13 {
                f64::NAN // sensor dropout
            } else {
                70.0 + rng.range(0.0..90.0)
            };
            s.observe(sample, 1.0);
            assert_eq!(
                s.prominent_peak_count(),
                s.rescan_peak_count(),
                "peak count diverged at step {step}"
            );
            let inc_std = s.history_std();
            let ref_std = s.rescan_std();
            assert!(
                (inc_std - ref_std).abs() < 1e-9,
                "std diverged at step {step}: {inc_std} vs {ref_std}"
            );
            // The cached derivative is computed with the same summation
            // order as the slice kernel, so it must match bit-exactly.
            assert_eq!(s.derivative(), s.rescan_derivative(), "step {step}");
        }
    }

    /// Rescan mode serves the same statistics through the public API.
    #[test]
    fn rescan_mode_matches_incremental_values() {
        let cfg = DpsConfig::default();
        let mut inc = UnitState::new(&cfg);
        let mut res = UnitState::new(&cfg.with_stats_mode(crate::config::StatsMode::Rescan));
        for step in 0..120 {
            let sample = 60.0 + 50.0 * (((step % 9) as f64 - 4.0) / 4.0);
            inc.observe(sample, 1.0);
            res.observe(sample, 1.0);
            assert_eq!(inc.prominent_peak_count(), res.prominent_peak_count());
            assert!((inc.history_std() - res.history_std()).abs() < 1e-9);
            assert_eq!(inc.derivative(), res.derivative());
        }
    }

    #[test]
    fn rebuild_stats_recovers_after_history_surgery() {
        let mut s = state();
        for i in 0..30 {
            s.observe(40.0 + (i % 6) as f64 * 22.0, 1.0);
        }
        let peak_count = s.prominent_peak_count();
        let deriv = s.derivative();
        // Simulate a restore: wipe the accumulators, then rebuild from the
        // (untouched) histories.
        s.moments.clear();
        s.peaks.clear();
        s.cached_deriv = None;
        s.rebuild_stats();
        assert_eq!(s.prominent_peak_count(), peak_count);
        assert_eq!(s.derivative(), deriv);
        assert!((s.history_std() - s.rescan_std()).abs() < 1e-12);
    }
}
