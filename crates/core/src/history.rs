//! Per-unit state: the *only* state DPS keeps.
//!
//! "The state is simply the recent power usage changes, which we refer to as
//! power dynamics" (§1). Concretely, per power-capping unit the server holds
//! a Kalman filter, a bounded estimated-power history, the matching sample
//! durations, the high-frequency flag and the current priority (§4.3).

use crate::config::DpsConfig;
use dps_sim_core::kalman::KalmanFilter;
use dps_sim_core::ring::RingBuffer;
use dps_sim_core::signal;
use dps_sim_core::units::{Seconds, Watts};

/// Dynamic state for one unit.
#[derive(Debug, Clone)]
pub struct UnitState {
    /// De-noising filter over raw measurements.
    pub filter: KalmanFilter,
    /// Estimated power history (newest last), bounded at `history_len`.
    pub power_history: RingBuffer<f64>,
    /// Per-sample durations aligned with `power_history`.
    pub duration_history: RingBuffer<f64>,
    /// Whether the unit is currently classified high-frequency.
    pub high_freq: bool,
    /// Current priority (true = high).
    pub priority: bool,
    /// Scratch buffers reused across cycles so the steady-state decision
    /// loop allocates nothing (the history is copied out contiguously for
    /// the slice-based signal kernels).
    scratch_power: Vec<f64>,
    scratch_durations: Vec<f64>,
}

impl UnitState {
    /// Fresh state from a config.
    pub fn new(config: &DpsConfig) -> Self {
        Self {
            filter: KalmanFilter::new(config.kalman_q, config.kalman_r),
            power_history: RingBuffer::new(config.history_len),
            duration_history: RingBuffer::new(config.history_len),
            high_freq: false,
            priority: false,
            scratch_power: Vec::with_capacity(config.history_len),
            scratch_durations: Vec::with_capacity(config.history_len),
        }
    }

    /// Feeds one raw measurement: Kalman-filters it and appends the estimate
    /// to the history. Returns the estimate.
    ///
    /// Non-finite measurements (a dropped-out or corrupted sensor) are
    /// skip-and-hold: the filter is left untouched and the previous estimate
    /// is re-held into the history, so the window stays aligned with
    /// wall-clock time and derivatives read ≈ 0 through the outage instead
    /// of the whole history turning NaN.
    pub fn observe(&mut self, measured: Watts, dt: Seconds) -> Watts {
        if !measured.is_finite() {
            let held = self.latest_estimate();
            if !self.power_history.is_empty() {
                self.power_history.push(held);
                self.duration_history.push(dt);
            }
            return held;
        }
        let estimate = self.filter.update(measured);
        self.power_history.push(estimate);
        self.duration_history.push(dt);
        estimate
    }

    /// Most recent power estimate (0 before any observation).
    pub fn latest_estimate(&self) -> Watts {
        self.power_history.newest().copied().unwrap_or(0.0)
    }

    /// Number of prominent peaks in the current history window.
    pub fn prominent_peak_count(&mut self, prominence: f64) -> usize {
        self.power_history.copy_to(&mut self.scratch_power);
        signal::count_prominent_peaks(&self.scratch_power, prominence)
    }

    /// Standard deviation of the history window (0 while empty).
    pub fn history_std(&self) -> f64 {
        self.power_history.std_dev().unwrap_or(0.0)
    }

    /// Windowed average first derivative over the newest `window` samples
    /// (Alg. 2 line 16); `None` until at least 2 samples exist.
    pub fn derivative(&mut self, window: usize) -> Option<f64> {
        self.power_history.copy_to(&mut self.scratch_power);
        self.duration_history.copy_to(&mut self.scratch_durations);
        signal::windowed_derivative(&self.scratch_power, &self.scratch_durations, window)
    }

    /// Clears everything back to construction state.
    pub fn reset(&mut self) {
        self.filter.reset();
        self.power_history.clear();
        self.duration_history.clear();
        self.high_freq = false;
        self.priority = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> UnitState {
        UnitState::new(&DpsConfig::default())
    }

    #[test]
    fn observe_fills_history() {
        let mut s = state();
        for i in 0..25 {
            s.observe(100.0 + i as f64, 1.0);
        }
        assert_eq!(s.power_history.len(), 20, "bounded at history_len");
        assert_eq!(s.duration_history.len(), 20);
    }

    #[test]
    fn latest_estimate_tracks_signal() {
        let mut s = state();
        for _ in 0..30 {
            s.observe(120.0, 1.0);
        }
        assert!((s.latest_estimate() - 120.0).abs() < 1.0);
    }

    #[test]
    fn derivative_positive_on_ramp() {
        let mut s = state();
        for i in 0..10 {
            s.observe(20.0 + 20.0 * i as f64, 1.0);
        }
        let d = s.derivative(3).unwrap();
        assert!(d > 10.0, "ramp derivative {d}");
    }

    #[test]
    fn derivative_negative_on_decay() {
        let mut s = state();
        for i in 0..10 {
            s.observe(200.0 - 15.0 * i as f64, 1.0);
        }
        assert!(s.derivative(3).unwrap() < -10.0);
    }

    #[test]
    fn derivative_none_without_samples() {
        let mut s = state();
        assert_eq!(s.derivative(3), None);
        let mut s1 = state();
        s1.observe(50.0, 1.0);
        assert_eq!(s1.derivative(3), None);
    }

    #[test]
    fn peaks_detected_on_square_wave() {
        let mut s = state();
        for cycle in 0..5 {
            let _ = cycle;
            for _ in 0..2 {
                s.observe(150.0, 1.0);
            }
            for _ in 0..2 {
                s.observe(30.0, 1.0);
            }
        }
        assert!(
            s.prominent_peak_count(30.0) >= 3,
            "square wave should show peaks: {}",
            s.prominent_peak_count(30.0)
        );
        assert!(s.history_std() > 20.0);
    }

    #[test]
    fn flat_history_no_peaks_low_std() {
        let mut s = state();
        for _ in 0..20 {
            s.observe(110.0, 1.0);
        }
        assert_eq!(s.prominent_peak_count(30.0), 0);
        assert!(s.history_std() < 5.0);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut s = state();
        for _ in 0..10 {
            s.observe(80.0, 1.0);
        }
        s.high_freq = true;
        s.priority = true;
        s.reset();
        assert_eq!(s.power_history.len(), 0);
        assert!(!s.high_freq && !s.priority);
        assert_eq!(s.latest_estimate(), 0.0);
    }

    #[test]
    fn non_finite_observation_skips_and_holds() {
        let mut s = state();
        for _ in 0..10 {
            s.observe(100.0, 1.0);
        }
        let held = s.latest_estimate();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(s.observe(bad, 1.0), held, "estimate held through {bad}");
        }
        // The whole history must stay finite and the derivative must read
        // flat through the outage, not NaN.
        s.power_history.copy_to(&mut s.scratch_power);
        assert!(s.scratch_power.iter().all(|v| v.is_finite()));
        assert_eq!(s.latest_estimate(), held);
        let d = s.derivative(3).unwrap();
        assert!(d.abs() < 1e-9, "derivative through outage: {d}");
        // Recovery: a finite sample resumes normal filtering.
        assert!(s.observe(101.0, 1.0).is_finite());
    }

    #[test]
    fn non_finite_first_observation_is_ignored() {
        let mut s = state();
        assert_eq!(s.observe(f64::NAN, 1.0), 0.0);
        assert_eq!(s.power_history.len(), 0, "no sample recorded");
        assert_eq!(s.observe(90.0, 1.0), 90.0, "first real sample adopted");
    }

    #[test]
    fn kalman_smooths_noise_in_history() {
        use dps_sim_core::rng::RngStream;
        let mut rng = RngStream::new(3, "hist");
        let mut s = state();
        let mut raw = Vec::new();
        for _ in 0..20 {
            let sample = 110.0 + rng.normal(0.0, 2.0);
            raw.push(sample);
            s.observe(sample, 1.0);
        }
        // The estimated history must vary less than the raw samples do —
        // compare against the realised sample std rather than the nominal
        // noise std, so the assertion is not sensitive to the particular
        // 20-draw realisation.
        let raw_std = dps_sim_core::stats::std_dev(&raw).unwrap();
        assert!(
            s.history_std() < raw_std,
            "smoothed std {} vs raw std {raw_std}",
            s.history_std()
        );
    }
}
