//! Property tests on the telemetry guard's health state machine and its
//! believed-cap budget accounting, driven directly through the public
//! per-cycle API (`sanitize` → `pin_caps` → `finish_cycle` →
//! `observe_applied`) with arbitrary fault scripts.
//!
//! Two paper-level guarantees under test:
//!
//! * **No shortcut out of quarantine.** A quarantined unit must pass
//!   through `Probation` before it can be trusted again — no
//!   `Quarantined → Healthy` (or `→ Suspect`) edge exists, no matter how
//!   the faults flap.
//! * **The believed-cap budget invariant.** After `finish_cycle`, the sum
//!   of caps the guard believes to be in force (suspect actuators
//!   accounted at `max(request, readback)`) stays within the budget —
//!   except on cycles the guard itself declares saturated, the documented
//!   escape hatch for "so many rogue actuators that honest units cannot
//!   compensate".

use dps_core::guard::{GuardConfig, HealthState, TelemetryGuard};
use dps_core::manager::UnitLimits;
use proptest::prelude::*;

const LIMITS: UnitLimits = UnitLimits {
    min_cap: 40.0,
    max_cap: 165.0,
};
const BUDGET: f64 = 440.0; // 4 units × 110 W
const FALLBACK: f64 = 110.0;
const N: usize = 4;

/// One unit's behaviour for one cycle.
#[derive(Debug, Clone, Copy)]
enum UnitScript {
    /// Honest telemetry near the cap, honest actuator.
    Clean,
    /// Sensor returns NaN; actuator honest.
    DropoutSensor,
    /// Sensor returns a wild spike; actuator honest.
    SpikeSensor,
    /// Telemetry honest, but the actuator holds a stale high cap.
    StaleActuator,
}

fn unit_script() -> impl Strategy<Value = UnitScript> {
    // Weighted by index range: mostly clean, occasional faults of each
    // class (the vendored proptest's prop_oneof! carries no weights).
    (0u32..9).prop_map(|i| match i {
        0..=3 => UnitScript::Clean,
        4 | 5 => UnitScript::DropoutSensor,
        6 => UnitScript::SpikeSensor,
        _ => UnitScript::StaleActuator,
    })
}

/// A cycle script: per-unit behaviours plus an optional budget shock
/// factor applied at the top of the cycle (~1 cycle in 5).
fn cycle_script() -> impl Strategy<Value = (Vec<UnitScript>, Option<f64>)> {
    (
        proptest::collection::vec(unit_script(), N..=N),
        0u32..5,
        0.5f64..=1.0,
    )
        .prop_map(|(units, sel, factor)| (units, (sel == 0).then_some(factor)))
}

fn guard() -> TelemetryGuard {
    TelemetryGuard::new(
        N,
        BUDGET,
        LIMITS,
        FALLBACK,
        GuardConfig {
            // The scripts feed constant clean values; the stuck detector
            // would quarantine them all, which is not what's under test.
            stuck_window: 0,
            quarantine_after: 2,
            probation_after: 3,
            readmit_after: 4,
            ..GuardConfig::default()
        },
    )
}

/// The only legal edges of the health machine, keyed by (from, to).
fn legal_transition(from: HealthState, to: HealthState) -> bool {
    use HealthState::*;
    match (from, to) {
        // Self-loops are always fine.
        (a, b) if a == b => true,
        (Healthy, Suspect) => true,
        (Suspect, Healthy) | (Suspect, Quarantined) => true,
        // Quarantine only releases into probation — never straight to trust.
        (Quarantined, Probation) => true,
        // Probation either completes readmission or falls back in.
        (Probation, Healthy) | (Probation, Quarantined) => true,
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary fault scripts (sensor dropouts, spikes, rogue actuators,
    /// budget shocks) can only walk the health machine along its legal
    /// edges, and every cycle's believed-cap sum respects the budget in
    /// force unless the guard explicitly declared the cycle saturated.
    #[test]
    fn health_edges_stay_legal_and_believed_caps_fit_the_budget(
        script in proptest::collection::vec(cycle_script(), 1..60),
    ) {
        let mut guard = guard();
        let mut budget = BUDGET;
        let mut prev_health: Vec<HealthState> = guard.health().to_vec();
        let mut prev_saturated = guard.stats().saturated_cycles;
        // The hardware model: per-unit cap actually in force. Stale
        // actuators simply keep whatever they were holding.
        let mut hardware = vec![FALLBACK; N];

        for (cycle, (units, shock)) in script.iter().enumerate() {
            if let Some(factor) = shock {
                budget = BUDGET * factor;
                guard.set_budget(budget, budget / N as f64);
            }

            // 1. Telemetry for this cycle, per script.
            let measured: Vec<f64> = units
                .iter()
                .enumerate()
                .map(|(u, s)| match s {
                    UnitScript::DropoutSensor => f64::NAN,
                    UnitScript::SpikeSensor => 4_000.0,
                    _ => 90.0 + 3.0 * u as f64 + 0.1 * (cycle % 7) as f64,
                })
                .collect();
            guard.sanitize(&measured);

            // 2. A naive equal-split allocation, then the guard's caps.
            let mut caps = vec![budget / N as f64; N];
            let mut changed = vec![false; N];
            guard.pin_caps(&mut caps, &mut changed);
            guard.finish_cycle(&mut caps, &mut changed);

            // Believed-cap budget invariant, modulo declared saturation.
            let believed_sum: f64 = guard.believed().iter().sum();
            let saturated = guard.stats().saturated_cycles > prev_saturated;
            prev_saturated = guard.stats().saturated_cycles;
            prop_assert!(
                saturated || believed_sum <= budget + 1e-6,
                "cycle {cycle}: believed {believed_sum:.3} W over budget {budget:.3} W \
                 without a declared saturation"
            );

            // 3. The hardware applies the caps — except stale actuators.
            for (u, s) in units.iter().enumerate() {
                if !matches!(s, UnitScript::StaleActuator) {
                    hardware[u] = caps[u];
                }
            }
            guard.observe_applied(&hardware);

            // Health machine edges: compare against the pre-cycle states.
            for (u, (&from, &to)) in
                prev_health.iter().zip(guard.health().iter()).enumerate()
            {
                prop_assert!(
                    legal_transition(from, to),
                    "cycle {cycle}, unit {u}: illegal health edge {from} -> {to}"
                );
                prop_assert!(
                    !(from == HealthState::Quarantined && to == HealthState::Healthy),
                    "cycle {cycle}, unit {u}: quarantine released without probation"
                );
            }
            prev_health = guard.health().to_vec();
        }
    }

    /// A unit that goes all the way down (quarantined) and then behaves
    /// perfectly must still serve the full probation before readmission —
    /// and must be readmitted eventually.
    #[test]
    fn readmission_always_takes_the_full_probation(faulty_cycles in 2u32..12) {
        let mut guard = guard();
        let mut caps = vec![FALLBACK; N];
        let mut changed = vec![false; N];
        let clean = [95.0, 100.0, 105.0, 98.0];

        // Fault unit 0 until quarantined.
        for _ in 0..faulty_cycles {
            let mut m = clean;
            m[0] = f64::NAN;
            guard.sanitize(&m);
            guard.pin_caps(&mut caps, &mut changed);
            guard.finish_cycle(&mut caps, &mut changed);
            guard.observe_applied(&caps);
        }
        prop_assert_eq!(guard.health()[0], HealthState::Quarantined);

        // Clean telemetry from here on: count cycles to readmission and
        // check probation is the only road back.
        let mut probation_seen = false;
        let mut cycles_to_health = None;
        for cycle in 0..64 {
            guard.sanitize(&clean);
            guard.pin_caps(&mut caps, &mut changed);
            guard.finish_cycle(&mut caps, &mut changed);
            guard.observe_applied(&caps);
            match guard.health()[0] {
                HealthState::Probation => probation_seen = true,
                HealthState::Healthy => {
                    cycles_to_health = Some(cycle);
                    break;
                }
                _ => {}
            }
        }
        let took = cycles_to_health.expect("unit never readmitted");
        prop_assert!(probation_seen, "readmitted without serving probation");
        // probation_after (3) + readmit_after (4) clean cycles, give or
        // take the cycle the quarantine verdict itself consumes.
        prop_assert!(
            (6..=9).contains(&took),
            "readmission took {took} cycles, expected the configured 7±1"
        );
    }
}
