//! Integration tests for the framed control plane inside the full cluster
//! simulation: zero-fault equivalence with the quantized mode, and budget
//! safety under injected faults.

use dps_cluster::{ClusterSim, ControlPlaneMode, ExperimentConfig};
use dps_core::manager::ManagerKind;
use dps_ctrl::{wire_slack, FaultEvent, FramedConfig};
use dps_rapl::{NoiseModel, Topology};
use dps_sim_core::RngStream;
use dps_workloads::{DemandProgram, Phase, PhaseShape};

fn flat(duration: f64, watts: f64) -> DemandProgram {
    DemandProgram::new(vec![Phase {
        duration,
        shape: PhaseShape::Constant(watts),
    }])
}

/// A small but non-trivial setup: 2 clusters × 2 nodes × 2 sockets, one
/// hot and one cool workload, DPS managing.
fn sim_with(mode: ControlPlaneMode, seed: u64) -> ClusterSim {
    let mut cfg = ExperimentConfig::paper_default(seed, 1);
    cfg.sim.topology = Topology::new(2, 2, 2);
    cfg.sim.noise = NoiseModel::None;
    cfg.sim.control_plane = mode;
    let programs = vec![flat(300.0, 150.0), flat(300.0, 60.0)];
    ClusterSim::new(
        cfg.sim.clone(),
        programs,
        cfg.build_manager(ManagerKind::Dps),
        &RngStream::new(seed, "ctrl-integration"),
    )
}

/// The acceptance equivalence: under a zero-fault link the framed plane
/// reproduces the quantized mode bit for bit — same caps, same telemetry,
/// same satisfaction, cycle by cycle.
#[test]
fn framed_zero_fault_matches_quantized_bit_for_bit() {
    let mut quantized = sim_with(ControlPlaneMode::Quantized, 42);
    let mut framed = sim_with(ControlPlaneMode::Framed(FramedConfig::default()), 42);
    for cycle in 0..200 {
        quantized.cycle();
        framed.cycle();
        assert_eq!(
            quantized.caps(),
            framed.caps(),
            "caps diverged at cycle {cycle}"
        );
    }
    assert_eq!(quantized.satisfaction(0), framed.satisfaction(0));
    assert_eq!(quantized.satisfaction(1), framed.satisfaction(1));
    assert_eq!(quantized.runs_completed(0), framed.runs_completed(0));
    let stats = framed.control_plane_stats().expect("framed mode has stats");
    assert_eq!(stats.frames_dropped, 0);
    assert_eq!(stats.gather_misses, 0);
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.worst_budget_excess, 0.0);
}

/// The acceptance robustness run: 5 % frame drop plus one node crashing
/// and rejoining. The run completes without panics and the sum of caps
/// actually applied on controller-live nodes never exceeds the cluster
/// budget (plus deciwatt quantization slack) at any step.
#[test]
fn framed_survives_drops_and_crash_within_budget() {
    let mut config = FramedConfig::default();
    config.link.drop_prob = 0.05;
    config.faults.push(FaultEvent::Crash {
        node: 1,
        at: 40.0,
        until: 110.0,
    });
    let mut sim = sim_with(ControlPlaneMode::Framed(config), 7);
    let budget = sim.config().total_budget();
    let n = sim.config().topology.total_units();

    let mut saw_stale = false;
    for _ in 0..250 {
        sim.cycle();
        let plane = sim.control_plane().expect("framed mode");
        let live_sum = plane.live_applied_sum();
        assert!(
            live_sum <= budget + wire_slack(n),
            "live applied caps {live_sum} exceed budget {budget} at t={}",
            sim.now()
        );
        saw_stale |= !plane.node_live(1);
    }
    assert!(saw_stale, "the crashed node was demoted at some point");

    let stats = sim.control_plane_stats().unwrap();
    assert!(stats.frames_dropped > 0, "drops actually happened");
    assert!(stats.retries > 0, "retries were exercised");
    assert_eq!(stats.stale_transitions, 1);
    assert_eq!(stats.readmissions, 1, "crashed node rejoined");
    assert_eq!(stats.worst_budget_excess, 0.0, "belief never broke budget");
    let plane = sim.control_plane().unwrap();
    assert!(plane.node_live(1), "node live again at the end");
}

/// Stale-node budget actually flows to the live nodes: while a node is
/// down, someone else's cap grows past the constant split.
#[test]
fn reclaimed_budget_reaches_live_nodes() {
    let mut config = FramedConfig::default();
    config.faults.push(FaultEvent::Crash {
        node: 3,
        at: 20.0,
        until: 160.0,
    });
    let mut sim = sim_with(ControlPlaneMode::Framed(config), 9);
    let mut max_live_cap: f64 = 0.0;
    for _ in 0..150 {
        sim.cycle();
        let plane = sim.control_plane().unwrap();
        if !plane.node_live(3) {
            for u in 0..4 {
                max_live_cap = max_live_cap.max(plane.applied_caps()[u]);
            }
        }
    }
    assert!(
        max_live_cap > 111.0,
        "a live unit should exceed the 110 W split, saw {max_live_cap}"
    );
    let stats = sim.control_plane_stats().unwrap();
    assert!(stats.reclaimed_watt_cycles > 0.0);
}

/// An invalid framed configuration is rejected by SimConfig validation.
#[test]
#[should_panic(expected = "invalid sim config")]
fn slow_framed_link_rejected() {
    let mut config = FramedConfig::default();
    config.link.latency = 0.5; // half the decision period one-way
    sim_with(ControlPlaneMode::Framed(config), 1);
}
