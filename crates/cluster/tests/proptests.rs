//! Property tests for the cluster crate's protocol and accounting types.

use dps_cluster::protocol::{watts_to_wire, Frame, LatencyLink};
use dps_cluster::{ControlPlaneModel, SatisfactionTracker};
use proptest::prelude::*;

proptest! {
    /// Every representable frame survives an encode/decode roundtrip.
    #[test]
    fn frame_roundtrip(deciwatts in any::<u16>(), is_cap in any::<bool>()) {
        let frame = if is_cap {
            Frame::SetCap { deciwatts }
        } else {
            Frame::PowerReport { deciwatts }
        };
        prop_assert_eq!(Frame::decode(frame.encode()), Some(frame));
    }

    /// Wire conversion is monotone and bounded for arbitrary inputs.
    #[test]
    fn wire_conversion_monotone(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(watts_to_wire(lo) <= watts_to_wire(hi));
    }

    /// The quantization error never exceeds half a deciwatt in range.
    #[test]
    fn wire_quantization_error_bounded(watts in 0.0f64..6000.0) {
        let roundtrip = watts_to_wire(watts) as f64 * 0.1;
        prop_assert!((roundtrip - watts).abs() <= 0.05 + 1e-9);
    }

    /// A latency link delivers every frame exactly once, in send order,
    /// never early.
    #[test]
    fn latency_link_exactly_once_in_order(
        latency in 0.0f64..5.0,
        sends in prop::collection::vec(0.0f64..100.0, 1..50),
    ) {
        let mut sorted_sends = sends.clone();
        sorted_sends.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut link = LatencyLink::new(latency);
        for (i, &t) in sorted_sends.iter().enumerate() {
            link.send(t, i as u32, Frame::power_report(100.0));
        }
        // Drain at increasing times; nothing may arrive before its due time.
        let mut received = Vec::new();
        let mut now = 0.0;
        while received.len() < sorted_sends.len() {
            now += 0.25;
            for (unit, _) in link.deliver(now) {
                let sent = sorted_sends[unit as usize];
                prop_assert!(now + 1e-9 >= sent + latency, "early delivery");
                received.push(unit);
            }
            prop_assert!(now < 200.0, "delivery stalled");
        }
        // Exactly once, in order (send times are sorted, same latency).
        let expected: Vec<u32> = (0..sorted_sends.len() as u32).collect();
        prop_assert_eq!(received, expected);
        prop_assert_eq!(link.pending(), 0);
    }

    /// Satisfaction is scale-invariant: scaling demand and grant together
    /// leaves it unchanged.
    #[test]
    fn satisfaction_scale_invariant(
        windows in prop::collection::vec((20.0f64..165.0, 0.0f64..165.0), 1..50),
        scale in 0.5f64..2.0,
    ) {
        let mut a = SatisfactionTracker::new();
        let mut b = SatisfactionTracker::new();
        for &(demand, grant) in &windows {
            a.record(demand, grant, 15.0);
            b.record(demand * scale, grant * scale, 15.0 * scale);
        }
        prop_assert!((a.satisfaction() - b.satisfaction()).abs() < 1e-9);
    }

    /// Satisfaction is monotone in delivered power.
    #[test]
    fn satisfaction_monotone_in_grant(
        demand in 30.0f64..165.0,
        g1 in 0.0f64..165.0,
        g2 in 0.0f64..165.0,
    ) {
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        let mut a = SatisfactionTracker::new();
        let mut b = SatisfactionTracker::new();
        a.record(demand, lo, 15.0);
        b.record(demand, hi, 15.0);
        prop_assert!(a.satisfaction() <= b.satisfaction() + 1e-12);
    }

    /// Control-plane latency is monotone in node count and traffic exact.
    #[test]
    fn controlplane_monotone(n1 in 0usize..100_000, n2 in 0usize..100_000) {
        let model = ControlPlaneModel::default();
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(model.cycle_latency(lo) <= model.cycle_latency(hi) + 1e-12);
        prop_assert_eq!(model.cycle_traffic(lo), 2 * lo * model.bytes_per_unit);
    }
}
