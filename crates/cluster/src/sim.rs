//! The per-cycle cluster simulation loop.
//!
//! Wiring per decision cycle (period `dT`, default 1 s):
//!
//! 1. each cluster's job translates its current work position into a power
//!    demand per socket (per-socket program variants);
//! 2. the RAPL domains deliver `min(demand, cap)` (with the idle floor) and
//!    accumulate energy;
//! 3. node clients read the (noisy) energy counters → measurements;
//! 4. the power manager observes the measurements (the oracle additionally
//!    sees true demand) and rewrites the caps;
//! 5. the new caps are programmed into the domains (they take effect next
//!    window, as in a real deployment);
//! 6. each cluster's job advances at the pace of its slowest socket
//!    (barrier-synchronised data-parallel execution);
//! 7. satisfaction trackers and the optional cycle log record the window.

use crate::chaos::ChaosSchedule;
use crate::invariant::{InvariantConfig, InvariantInputs, InvariantMonitor};
use crate::logging::{CycleLog, CycleRecord};
use crate::satisfaction::SatisfactionTracker;
use crate::shocks::BudgetSchedule;
use dps_core::guard::HealthState;
use dps_core::manager::PowerManager;
use dps_core::{ConfidenceReport, ModeConfig, ModeMachine, OperatingMode};
use dps_ctrl::{CtrlStats, FramedConfig, FramedControlPlane};
use dps_idle::{Demotion, IdleConfig, IdleFleet, WakeFinished};
use dps_obs::{Event, FaultDomain, PhaseKind, ProvisionKind, SinkHandle};
use dps_rapl::{DomainBank, DomainSpec, NoiseModel, PowerInterface, Topology, UnitFaultSchedule};
use dps_sched::{JobRecord, JobScheduler, SchedConfig};
use dps_sim_core::rng::RngStream;
use dps_sim_core::units::{Seconds, SimClock, Watts};
use dps_traffic::{RequestStats, TrafficConfig, TrafficDriver};
use dps_workloads::{DemandProgram, PerfModel, Phase, RunningWorkload};

/// How measurements and cap assignments travel between the manager and the
/// units. See the "Control-plane modes" section of `DESIGN.md`.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum ControlPlaneMode {
    /// Instantaneous, lossless shared-memory exchange: the manager reads
    /// measurements and writes caps as plain f64s. The default — the
    /// quantization below is far under the measurement noise.
    #[default]
    Direct,
    /// Values round-trip through the 3-byte wire frames
    /// ([`crate::protocol`]) and quantize to 0.1 W exactly as they would
    /// over the testbed's sockets, but transport is still instantaneous
    /// and lossless.
    Quantized,
    /// The full framed control plane ([`dps_ctrl`]): polls, reports, cap
    /// assignments and acks travel as frames on per-node lossy links with
    /// latency, drops, corruption and a fault schedule; the controller
    /// keeps hold-last telemetry and the budget-safety invariant. With a
    /// zero-fault link this reproduces [`ControlPlaneMode::Quantized`]
    /// bit for bit.
    Framed(FramedConfig),
}

/// Static simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cluster/node/socket topology.
    pub topology: Topology,
    /// Per-socket power domain spec.
    pub domain_spec: DomainSpec,
    /// RAPL measurement noise.
    pub noise: NoiseModel,
    /// Power→progress model.
    pub perf: PerfModel,
    /// Decision period in seconds.
    pub period: Seconds,
    /// Cluster-wide budget as a fraction of aggregate TDP.
    pub budget_fraction: f64,
    /// Idle seconds between repeated runs of a workload.
    pub idle_gap: Seconds,
    /// How manager and units exchange measurements and caps.
    pub control_plane: ControlPlaneMode,
    /// Scripted sensor/actuator faults injected at the RAPL substrate
    /// (empty = fault-free hardware).
    pub sensor_faults: UnitFaultSchedule,
    /// Optional power-aware job scheduler ([`dps_sched`]): jobs arrive over
    /// time, occupy whole nodes, and drive unit churn. `None` (the default)
    /// keeps the classic one-workload-per-cluster pinning, bit-identical to
    /// pre-scheduler behaviour. Consumed by [`ClusterSim::with_scheduler`].
    pub scheduler: Option<SchedConfig>,
    /// Optional request-driven traffic layer ([`dps_traffic`]): a seeded
    /// arrival stream drives per-socket service demand while an elastic
    /// provisioner powers whole nodes on and off. `None` (the default)
    /// keeps the request layer out entirely. Consumed by
    /// [`ClusterSim::with_traffic`]; mutually exclusive with `scheduler`.
    pub traffic: Option<TrafficConfig>,
    /// Optional per-unit sleep-state management ([`dps_idle`]), traffic
    /// mode only: instead of hard power-off, the provisioner demotes dark
    /// units along a C-state-like ladder, wake latency delays their
    /// readmission, and residency/wake energy is charged to the request
    /// ledger. `None` (the default) keeps hard power-off, bit-identical to
    /// the pre-idle behaviour.
    pub idle: Option<IdleConfig>,
    /// Budget-over-time schedule: a factor multiplying the base budget
    /// each cycle, pushed to the manager through
    /// [`PowerManager::set_budget`]. [`BudgetSchedule::constant`] (the
    /// default) reproduces the fixed-budget world bit for bit.
    pub budget: BudgetSchedule,
    /// Correlated cross-layer chaos windows ([`crate::chaos`]), compiled
    /// into the per-layer fault schedules at construction.
    /// [`ChaosSchedule::none`] (the default) injects nothing.
    pub chaos: ChaosSchedule,
    /// Thresholds for the graceful-degradation operating-mode ladder
    /// (`Normal → Degraded → SafeMode`, [`dps_core::mode`]).
    pub mode: ModeConfig,
}

impl SimConfig {
    /// The paper's setup: 2×5×2 sockets, 165 W TDP, 66.7 % budget
    /// (110 W/socket), 1 s decisions.
    pub fn paper_default() -> Self {
        Self {
            topology: Topology::paper_testbed(),
            domain_spec: DomainSpec::xeon_gold_6240(),
            noise: NoiseModel::default(),
            perf: PerfModel::paper_default(),
            period: 1.0,
            budget_fraction: 2.0 / 3.0,
            idle_gap: 10.0,
            control_plane: ControlPlaneMode::Direct,
            sensor_faults: UnitFaultSchedule::none(),
            scheduler: None,
            traffic: None,
            idle: None,
            budget: BudgetSchedule::constant(),
            chaos: ChaosSchedule::none(),
            mode: ModeConfig::default(),
        }
    }

    /// Nodes across all clusters (the framed control plane's agent count).
    pub fn total_nodes(&self) -> usize {
        self.topology.clusters * self.topology.nodes_per_cluster
    }

    /// The cluster-wide power budget in Watts.
    pub fn total_budget(&self) -> Watts {
        self.topology.total_units() as f64 * self.domain_spec.tdp * self.budget_fraction
    }

    /// Checks the configuration is physically realisable. In particular the
    /// budget must cover every unit's minimum cap — below that no manager
    /// can respect both the budget and the hardware floor, and silently
    /// running anyway would fabricate results.
    pub fn validate(&self) -> Result<(), String> {
        self.domain_spec.validate()?;
        if !(self.period.is_finite() && self.period > 0.0) {
            return Err(format!("period must be positive, got {}", self.period));
        }
        if self.budget_fraction.is_nan() {
            return Err("budget_fraction must not be NaN".to_string());
        }
        if !(self.budget_fraction.is_finite()
            && 0.0 < self.budget_fraction
            && self.budget_fraction <= 1.0)
        {
            return Err(format!(
                "budget_fraction must be finite in (0,1], got {}",
                self.budget_fraction
            ));
        }
        if !(self.idle_gap.is_finite() && self.idle_gap >= 0.0) {
            return Err(format!(
                "idle_gap must be non-negative, got {}",
                self.idle_gap
            ));
        }
        let floor = self.domain_spec.min_cap * self.topology.total_units() as f64;
        if self.total_budget() < floor {
            return Err(format!(
                "budget {:.1} W cannot cover {} units at the {:.0} W minimum cap \
                 ({:.1} W required)",
                self.total_budget(),
                self.topology.total_units(),
                self.domain_spec.min_cap,
                floor
            ));
        }
        self.budget.validate()?;
        self.chaos.validate(&self.topology)?;
        self.mode.validate()?;
        // The schedule's deepest shock (and any concurrent chaos factor)
        // must still cover the hardware floor, or no manager could ever
        // get back under budget.
        let min_budget =
            self.total_budget() * self.budget.min_factor() * self.chaos.min_budget_factor();
        if min_budget < floor {
            return Err(format!(
                "scheduled budget trough {:.1} W cannot cover {} units at the {:.0} W \
                 minimum cap ({:.1} W required)",
                min_budget,
                self.topology.total_units(),
                self.domain_spec.min_cap,
                floor
            ));
        }
        if self.chaos.has_churn() && (self.scheduler.is_some() || self.traffic.is_some()) {
            return Err(
                "chaos node churn requires the pinned placement mode: scheduler and \
                 traffic modes already drive unit membership and would fight over \
                 observe_membership"
                    .to_string(),
            );
        }
        if let ControlPlaneMode::Framed(framed) = &self.control_plane {
            framed.validate(self.total_nodes(), self.period)?;
        }
        self.sensor_faults.validate(self.topology.total_units())?;
        if let Some(sched) = &self.scheduler {
            sched.validate()?;
        }
        if let Some(traffic) = &self.traffic {
            traffic.validate()?;
            if self.scheduler.is_some() {
                return Err(
                    "scheduler and traffic modes are mutually exclusive: both drive \
                     unit membership and would fight over observe_membership"
                        .to_string(),
                );
            }
        }
        if let Some(idle) = &self.idle {
            idle.validate()?;
            if self.traffic.is_none() {
                return Err("idle management requires traffic mode: only the elastic \
                     provisioner produces the dark units the sleep ladder manages"
                    .to_string());
            }
        }
        Ok(())
    }
}

/// Produces the demand program for run `index` of a cluster's workload —
/// per-run realisation variance (§6.1). A fixed program is the degenerate
/// factory that ignores the index.
pub type ProgramFactory = Box<dyn FnMut(usize) -> DemandProgram + Send>;

/// One cluster's job: the shared run state plus per-socket demand variants.
struct ClusterJob {
    run: RunningWorkload,
    socket_programs: Vec<DemandProgram>,
    /// Regenerates the program per run; `None` replays the same program.
    factory: Option<ProgramFactory>,
    /// Run index the current program realises.
    realized_run: usize,
    /// Stream for per-run socket variants.
    variant_rng: RngStream,
}

/// One scheduled job currently running on its allocated sockets
/// (scheduler mode).
struct ActiveJob {
    id: usize,
    run: RunningWorkload,
    socket_programs: Vec<DemandProgram>,
    /// Global unit indices the job occupies (whole nodes).
    units: Vec<usize>,
}

/// Scheduler-mode state: the queue plus the realised running jobs.
struct SchedState {
    scheduler: JobScheduler,
    jobs: Vec<ActiveJob>,
    /// Per-unit occupancy, mirrored to the manager on change.
    occupied: Vec<bool>,
    enforce_walltime: bool,
    /// Stream deriving each job's program realisation and socket variants.
    job_rng: RngStream,
}

/// Traffic-mode state: the request engine plus per-socket serving loops.
struct TrafficState {
    driver: TrafficDriver,
    /// One repeating service workload per unit (per-socket program
    /// variants); each advances at the speed its granted power allows.
    sockets: Vec<RunningWorkload>,
    /// Per-unit occupancy (expanded from the driver's per-node powered
    /// mask), mirrored to the manager on provisioning changes.
    occupied: Vec<bool>,
    /// Sleep-state runtime; `None` keeps the hard power-off model.
    fleet: Option<IdleFleet>,
    /// Scratch for demotions surfaced each cycle (steady state allocates
    /// nothing).
    demotions: Vec<Demotion>,
    /// Scratch for wakes completing each cycle.
    wakes: Vec<WakeFinished>,
}

/// Builds the per-socket demand variants for one base program.
fn make_variants(
    base: &DemandProgram,
    tdp: f64,
    per_cluster: usize,
    rng: &RngStream,
) -> Vec<DemandProgram> {
    (0..per_cluster)
        .map(|s| dps_workloads::generator::socket_variant(base, tdp, s, rng))
        .collect()
}

/// The simulator.
///
/// ```
/// use dps_cluster::{ClusterSim, ExperimentConfig};
/// use dps_core::manager::ManagerKind;
/// use dps_rapl::Topology;
/// use dps_sim_core::RngStream;
/// use dps_workloads::{DemandProgram, Phase};
///
/// // A downsized testbed: 2 clusters × 1 node × 2 sockets under DPS.
/// let mut cfg = ExperimentConfig::paper_default(1, 1);
/// cfg.sim.topology = Topology::new(2, 1, 2);
///
/// let hot = DemandProgram::new(vec![Phase::constant(30.0, 150.0)]);
/// let cool = DemandProgram::new(vec![Phase::constant(30.0, 50.0)]);
/// let mut sim = ClusterSim::new(
///     cfg.sim.clone(),
///     vec![hot, cool],
///     cfg.build_manager(ManagerKind::Dps),
///     &RngStream::new(1, "docs"),
/// );
///
/// // Run until the hot cluster's job completes once.
/// sim.run_until(10_000, |s| s.runs_completed(0) >= 1);
/// assert_eq!(sim.runs_completed(0), 1);
/// assert!(sim.fairness(0, 1) > 0.5);
/// ```
pub struct ClusterSim {
    config: SimConfig,
    bank: DomainBank,
    jobs: Vec<ClusterJob>,
    manager: Box<dyn PowerManager>,
    clock: SimClock,
    caps: Vec<Watts>,
    satisfaction: Vec<SatisfactionTracker>,
    log: CycleLog,
    /// The framed control plane; present iff the mode is
    /// [`ControlPlaneMode::Framed`].
    plane: Option<FramedControlPlane>,
    // Scratch buffers reused each cycle (steady state allocates nothing).
    demands: Vec<Watts>,
    measured: Vec<Watts>,
    true_power: Vec<Watts>,
    applied: Vec<Watts>,
    /// Checkpoint the manager every N cycles (watchdog); `None` disables.
    watchdog_every: Option<u64>,
    /// Latest watchdog snapshot, if the manager supports checkpointing.
    last_checkpoint: Option<Vec<u8>>,
    /// Scheduler-mode state; `None` in the classic pinned-workload mode.
    sched: Option<SchedState>,
    /// Traffic-mode state; `None` outside traffic mode.
    traffic: Option<TrafficState>,
    /// Structured trace sink (`dps-obs`); no-op unless
    /// [`ClusterSim::set_trace_sink`] was called.
    sink: SinkHandle,
    /// Control-plane counters at the end of the previous cycle, for
    /// per-cycle [`Event::ControlPlaneDelta`] deltas.
    prev_ctrl: CtrlStats,
    /// Caps at the start of the cycle (trace scratch, for `caps_changed`).
    trace_caps: Vec<Watts>,
    /// Per-unit fault-window actives at the last sample (trace scratch,
    /// for [`Event::FaultEdge`] edge detection): sensor then actuator.
    fault_sensor: Vec<bool>,
    fault_actuator: Vec<bool>,
    /// Graceful-degradation ladder state (`Normal → Degraded → SafeMode`).
    mode_machine: ModeMachine,
    /// Confidence report computed at the end of the previous cycle; the
    /// ladder steps on it at the start of the next.
    confidence: ConfidenceReport,
    /// Control-plane gather misses at the end of the previous cycle
    /// (stale-rate confidence input; independent of the tracing deltas,
    /// which only update while a sink is attached).
    prev_gather_misses: u64,
    /// Caps last assigned under `Normal` — what `Degraded` freezes to.
    last_good: Vec<Watts>,
    /// Scratch for shadow assignments in degraded modes (the manager's
    /// statistics advance on these; the hardware never sees them).
    shadow_caps: Vec<Watts>,
    /// Always-on per-cycle safety monitor.
    monitor: InvariantMonitor,
    /// The configured base budget (`SimConfig::total_budget`).
    base_budget: Watts,
    /// Budget currently in force: base × schedule factor × chaos factor.
    current_budget: Watts,
    /// Per-unit chaos-churn state (true = node powered down by a window).
    chaos_down: Vec<bool>,
    /// Scratch for membership updates under chaos churn.
    membership: Vec<bool>,
}

impl ClusterSim {
    /// Builds a simulator running one workload per cluster under `manager`.
    ///
    /// `programs[c]` is cluster `c`'s base demand program; per-socket
    /// variants are derived deterministically from `rng`. The workload
    /// repeats with the configured idle gap.
    ///
    /// # Panics
    /// Panics unless one program per cluster is supplied and the config
    /// validates (see [`SimConfig::validate`]).
    pub fn new(
        config: SimConfig,
        programs: Vec<DemandProgram>,
        manager: Box<dyn PowerManager>,
        rng: &RngStream,
    ) -> Self {
        config.validate().expect("invalid sim config");
        assert_eq!(
            programs.len(),
            config.topology.clusters,
            "one program per cluster"
        );
        assert_eq!(
            manager.num_units(),
            config.topology.total_units(),
            "manager sized for the topology"
        );
        let mut config = config;
        // Compile chaos windows down into the per-layer fault schedules:
        // the RAPL substrate and the framed plane never learn about chaos,
        // they just see faults (and the fault-edge tracing covers both).
        if !config.chaos.is_empty() {
            for ev in config.chaos.unit_fault_events(&config.topology) {
                config.sensor_faults.push(ev);
            }
            let ctrl_events = config.chaos.ctrl_fault_events(&config.topology);
            if let ControlPlaneMode::Framed(framed) = &mut config.control_plane {
                for ev in ctrl_events {
                    framed.faults.push(ev);
                }
            }
        }
        let n = config.topology.total_units();
        let mut bank = DomainBank::homogeneous(n, config.domain_spec, config.noise.clone(), rng);
        if !config.sensor_faults.is_empty() {
            bank.set_faults(config.sensor_faults.clone(), rng);
        }

        let jobs = programs
            .into_iter()
            .enumerate()
            .map(|(c, base)| {
                let variant_rng = rng.child(&format!("cluster/{c}/variants"));
                let socket_programs = make_variants(
                    &base,
                    config.domain_spec.tdp,
                    config.topology.units_per_cluster(),
                    &variant_rng,
                );
                ClusterJob {
                    run: RunningWorkload::repeating(base, config.perf, config.idle_gap),
                    socket_programs,
                    factory: None,
                    realized_run: 0,
                    variant_rng,
                }
            })
            .collect();

        let limits = dps_core::manager::UnitLimits {
            min_cap: config.domain_spec.min_cap,
            max_cap: config.domain_spec.tdp,
        };
        let constant = dps_core::manager::constant_cap(config.total_budget(), n, limits);
        let plane = match &config.control_plane {
            ControlPlaneMode::Framed(framed) => Some(FramedControlPlane::new(
                config.total_nodes(),
                config.topology.sockets_per_node,
                config.total_budget(),
                limits,
                constant,
                framed.clone(),
                &rng.child("ctrl"),
            )),
            _ => None,
        };
        let mut sim = Self {
            plane,
            caps: vec![constant; n],
            satisfaction: (0..config.topology.clusters)
                .map(|_| SatisfactionTracker::new())
                .collect(),
            log: CycleLog::disabled(),
            demands: vec![0.0; n],
            measured: vec![0.0; n],
            true_power: vec![0.0; n],
            applied: vec![0.0; n],
            watchdog_every: None,
            last_checkpoint: None,
            sched: None,
            traffic: None,
            sink: SinkHandle::noop(),
            prev_ctrl: CtrlStats::default(),
            trace_caps: Vec::new(),
            fault_sensor: vec![false; n],
            fault_actuator: vec![false; n],
            mode_machine: ModeMachine::new(config.mode),
            confidence: ConfidenceReport::clean(),
            prev_gather_misses: 0,
            last_good: vec![constant; n],
            shadow_caps: vec![constant; n],
            monitor: InvariantMonitor::new(InvariantConfig::for_plane(&config.control_plane, n)),
            base_budget: config.total_budget(),
            current_budget: config.total_budget(),
            chaos_down: vec![false; n],
            membership: vec![true; n],
            clock: SimClock::new(config.period),
            bank,
            jobs,
            manager,
            config,
        };
        for u in 0..n {
            sim.bank.set_cap(u, sim.caps[u]);
        }
        sim
    }

    /// Builds a simulator whose workloads regenerate per run: `factories[c]`
    /// is called with the run index to produce each realisation of cluster
    /// `c`'s program (run 0 is generated immediately).
    ///
    /// Realisations swap at run boundaries, which are only observable when
    /// `idle_gap >= period` (the default setup). With a shorter gap the next
    /// run can start inside the completing window, in which case it reuses
    /// the previous realisation and the swap lands one run later.
    ///
    /// # Panics
    /// Panics unless one factory per cluster is supplied (plus the
    /// [`ClusterSim::new`] conditions).
    pub fn with_factories(
        config: SimConfig,
        mut factories: Vec<ProgramFactory>,
        manager: Box<dyn PowerManager>,
        rng: &RngStream,
    ) -> Self {
        assert_eq!(
            factories.len(),
            config.topology.clusters,
            "one factory per cluster"
        );
        let programs: Vec<DemandProgram> = factories.iter_mut().map(|f| f(0)).collect();
        let mut sim = Self::new(config, programs, manager, rng);
        for (job, factory) in sim.jobs.iter_mut().zip(factories) {
            job.factory = Some(factory);
        }
        sim
    }

    /// Builds a simulator in **scheduler mode**: instead of one pinned
    /// workload per cluster, jobs arrive over time (per
    /// `config.scheduler`, which must be `Some`), are admitted by the
    /// FIFO + EASY-backfill queue under node *and* power-reservation
    /// constraints, and occupy whole nodes while they run. Job starts,
    /// finishes and evictions drive unit churn: the manager learns about
    /// occupancy flips through [`PowerManager::observe_membership`].
    ///
    /// The arrival trace is realised from `rng.child("sched/arrivals")`, so
    /// two managers built from the same `rng` face the identical job
    /// sequence.
    ///
    /// The pinned-mode accessors tied to cluster workloads
    /// ([`ClusterSim::runs_completed`], [`ClusterSim::run_durations`])
    /// have no jobs to report on in this mode and panic if indexed.
    ///
    /// # Panics
    /// Panics when `config.scheduler` is `None`, the config does not
    /// validate, or the arrival trace contains a job that could never fit
    /// the cluster.
    pub fn with_scheduler(
        config: SimConfig,
        manager: Box<dyn PowerManager>,
        rng: &RngStream,
    ) -> Self {
        let sched_cfg = config
            .scheduler
            .clone()
            .expect("SimConfig::scheduler must be Some for scheduler mode");
        config.validate().expect("invalid sim config");
        let n = config.topology.total_units();
        let budget = config.total_budget();
        let share = budget / n as f64;
        let mut arrival_rng = rng.child("sched/arrivals");
        let trace = sched_cfg.arrivals.generate(
            config.total_nodes(),
            config.domain_spec.tdp,
            share,
            sched_cfg.walltime_factor,
            &mut arrival_rng,
        );
        let scheduler = JobScheduler::new(
            trace,
            config.total_nodes(),
            config.topology.sockets_per_node,
            budget,
            sched_cfg.backfill,
        )
        .expect("arrival trace must fit the cluster");

        // Reuse the pinned-mode construction for the plant and control
        // plumbing, then swap the placeholder workloads out for scheduler
        // state (an idle cluster until jobs land).
        let mut base_cfg = config;
        base_cfg.scheduler = None;
        let placeholder: Vec<DemandProgram> = (0..base_cfg.topology.clusters)
            .map(|_| DemandProgram::new(vec![Phase::constant(1.0, 0.0)]))
            .collect();
        let mut sim = Self::new(base_cfg, placeholder, manager, rng);
        sim.config.scheduler = Some(sched_cfg.clone());
        sim.jobs.clear();
        let occupied = vec![false; n];
        sim.manager.observe_membership(&occupied);
        sim.sched = Some(SchedState {
            scheduler,
            jobs: Vec::new(),
            occupied,
            enforce_walltime: sched_cfg.enforce_walltime,
            job_rng: rng.child("sched/jobs"),
        });
        sim
    }

    /// Builds a simulator in **traffic mode**: a seeded request stream
    /// (per `config.traffic`, which must be `Some`) drives per-socket
    /// service demand, and the configured provisioner powers whole nodes
    /// on and off through [`PowerManager::observe_membership`] while DPS
    /// redistributes the budget among the powered sockets each cycle.
    ///
    /// Every unit hosts its own repeating realisation of the service
    /// workload (per-socket variants derived from `rng`), scaled each
    /// window by how much of the fleet's service capacity the request
    /// backlog can fill. The arrival stream is realised from
    /// `rng.child("traffic")`, so two managers built from the same `rng`
    /// face the identical request sequence.
    ///
    /// The pinned-mode accessors tied to cluster workloads
    /// ([`ClusterSim::runs_completed`], [`ClusterSim::run_durations`])
    /// have no jobs to report on in this mode and panic if indexed.
    ///
    /// # Panics
    /// Panics when `config.traffic` is `None` or the config does not
    /// validate.
    pub fn with_traffic(
        config: SimConfig,
        manager: Box<dyn PowerManager>,
        rng: &RngStream,
    ) -> Self {
        let traffic_cfg = config
            .traffic
            .clone()
            .expect("SimConfig::traffic must be Some for traffic mode");
        config.validate().expect("invalid sim config");
        let n = config.topology.total_units();
        let spk = config.topology.sockets_per_node;
        let driver = TrafficDriver::new(
            traffic_cfg.clone(),
            config.total_nodes(),
            spk,
            rng.child("traffic"),
        );

        // Per-unit serving loops: one base realisation of the service
        // workload, a deterministic per-socket variant each, repeating
        // back-to-back (a serving socket never idles between runs; request
        // pressure scales its demand instead).
        let mut service_rng = rng.child("traffic/service");
        let seed = service_rng.next_u64();
        let base = dps_workloads::build_program(&traffic_cfg.service, &config.perf, seed);
        let sockets: Vec<RunningWorkload> = (0..n)
            .map(|u| {
                let program = dps_workloads::generator::socket_variant(
                    &base,
                    config.domain_spec.tdp,
                    u,
                    &service_rng,
                );
                RunningWorkload::repeating(program, config.perf, 0.0)
            })
            .collect();

        // Reuse the pinned-mode construction for the plant and control
        // plumbing, then swap the placeholder workloads out for the
        // request engine.
        let mut base_cfg = config;
        base_cfg.traffic = None;
        let idle_cfg = base_cfg.idle.take();
        let placeholder: Vec<DemandProgram> = (0..base_cfg.topology.clusters)
            .map(|_| DemandProgram::new(vec![Phase::constant(1.0, 0.0)]))
            .collect();
        let mut sim = Self::new(base_cfg, placeholder, manager, rng);
        sim.config.traffic = Some(traffic_cfg);
        sim.config.idle = idle_cfg.clone();
        sim.jobs.clear();
        let mut occupied = vec![false; n];
        for (node, &on) in driver.powered().iter().enumerate() {
            if on {
                occupied[node * spk..(node + 1) * spk].fill(true);
            }
        }
        sim.manager.observe_membership(&occupied);
        // With idle management, the initially dark units start on the
        // sleep ladder rather than hard-off (no sink is attached yet, so
        // these construction-time demotions emit nothing).
        let fleet = idle_cfg.map(|ic| {
            let mut fleet = IdleFleet::new(n, ic, rng.child("idle"));
            for (u, &on) in occupied.iter().enumerate() {
                if !on {
                    fleet.demote(u, 0.0);
                }
            }
            fleet
        });
        sim.traffic = Some(TrafficState {
            driver,
            sockets,
            occupied,
            fleet,
            demotions: Vec::new(),
            wakes: Vec::new(),
        });
        sim
    }

    /// Enables per-cycle logging (records every window from now on).
    pub fn enable_logging(&mut self) {
        self.log = CycleLog::enabled();
    }

    /// Attaches a structured trace sink (`dps-obs`) to the simulator and
    /// its manager. The simulator emits the cycle envelope (cycle
    /// start/end, fault edges, control-plane deltas, scheduler lifecycle
    /// events, checkpoints); an instrumented manager emits its decision
    /// events (cap deltas, priority flips, readjust outcomes, guard
    /// transitions) through the same sink, so a single trace interleaves
    /// both layers in order. Attach before the first [`ClusterSim::cycle`]
    /// for a trace whose cycle indices start at 0; attaching mid-run is
    /// allowed and starts the envelope at the current timestep (the
    /// manager restarts its own counter at the next `assign_caps`).
    pub fn set_trace_sink(&mut self, sink: SinkHandle) {
        self.sink = sink.clone();
        self.manager.attach_trace(sink);
        // Baseline the delta trackers at the attach point so the first
        // traced cycle reports only what happens from here on.
        self.prev_ctrl = self.control_plane_stats().unwrap_or_default();
        let now = self.clock.now();
        for u in 0..self.fault_sensor.len() {
            let (s, a) = self.config.sensor_faults.active_kinds(u, now);
            self.fault_sensor[u] = s;
            self.fault_actuator[u] = a;
        }
    }

    /// The attached trace sink (a no-op handle unless
    /// [`ClusterSim::set_trace_sink`] was called).
    pub fn trace_sink(&self) -> &SinkHandle {
        &self.sink
    }

    /// The log collected so far.
    pub fn log(&self) -> &CycleLog {
        &self.log
    }

    /// The sim config.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current caps (as last assigned by the manager).
    pub fn caps(&self) -> &[Watts] {
        &self.caps
    }

    /// Completed run count for a cluster's workload.
    pub fn runs_completed(&self, cluster: usize) -> usize {
        self.jobs[cluster].run.runs_completed()
    }

    /// Completed run durations for a cluster's workload.
    pub fn run_durations(&self, cluster: usize) -> &[Seconds] {
        self.jobs[cluster].run.run_durations()
    }

    /// Satisfaction of a cluster so far (Eq. 1).
    pub fn satisfaction(&self, cluster: usize) -> f64 {
        self.satisfaction[cluster].satisfaction()
    }

    /// Fairness between two clusters so far (Eq. 2).
    pub fn fairness(&self, i: usize, j: usize) -> f64 {
        1.0 - (self.satisfaction(i) - self.satisfaction(j)).abs()
    }

    /// Simulated time.
    pub fn now(&self) -> Seconds {
        self.clock.now()
    }

    /// Elapsed decision cycles.
    pub fn timestep(&self) -> u64 {
        self.clock.timestep()
    }

    /// The manager's priority flags (DPS only).
    pub fn priorities(&self) -> Option<&[bool]> {
        self.manager.priorities()
    }

    /// The job scheduler, when running in scheduler mode.
    pub fn scheduler(&self) -> Option<&JobScheduler> {
        self.sched.as_ref().map(|s| &s.scheduler)
    }

    /// Per-unit occupancy in scheduler or traffic mode; `None` in pinned
    /// mode (where every unit hosts its cluster's workload for the whole
    /// run).
    pub fn occupied_units(&self) -> Option<&[bool]> {
        self.sched
            .as_ref()
            .map(|s| s.occupied.as_slice())
            .or_else(|| self.traffic.as_ref().map(|t| t.occupied.as_slice()))
    }

    /// The traffic driver, when running in traffic mode.
    pub fn traffic_driver(&self) -> Option<&TrafficDriver> {
        self.traffic.as_ref().map(|t| &t.driver)
    }

    /// Cumulative request bookkeeping in traffic mode; `None` otherwise.
    pub fn request_stats(&self) -> Option<&RequestStats> {
        self.traffic.as_ref().map(|t| t.driver.stats())
    }

    /// Retired job records in scheduler mode (empty in pinned mode).
    pub fn job_records(&self) -> &[JobRecord] {
        self.sched
            .as_ref()
            .map(|s| s.scheduler.records())
            .unwrap_or(&[])
    }

    /// True when the scheduler has no arrivals, queued, or running jobs
    /// left (always false in pinned mode).
    pub fn scheduler_drained(&self) -> bool {
        self.sched
            .as_ref()
            .is_some_and(|s| s.scheduler.is_drained())
    }

    /// The framed control plane, when one is running
    /// ([`ControlPlaneMode::Framed`]); `None` in the other modes.
    pub fn control_plane(&self) -> Option<&FramedControlPlane> {
        self.plane.as_ref()
    }

    /// Control-plane statistics (framed mode only).
    pub fn control_plane_stats(&self) -> Option<CtrlStats> {
        self.plane.as_ref().map(|p| p.stats())
    }

    /// Per-unit caps actually in force at the hardware after the last
    /// cycle's programming (the readback that write verification sees).
    /// Diverges from [`ClusterSim::caps`] exactly when actuator faults are
    /// swallowing or mangling writes.
    pub fn applied_caps(&self) -> &[Watts] {
        &self.applied
    }

    /// Per-unit telemetry health as judged by the manager's guard; `None`
    /// for managers without health gating.
    pub fn health(&self) -> Option<&[HealthState]> {
        self.manager.health()
    }

    /// The operating mode the next cycle will run under (the ladder steps
    /// at cycle start, so after [`ClusterSim::cycle`] returns this is the
    /// mode that just ran).
    pub fn operating_mode(&self) -> OperatingMode {
        self.mode_machine.mode()
    }

    /// The budget currently in force (base × schedule × chaos factors).
    pub fn current_budget(&self) -> Watts {
        self.current_budget
    }

    /// Total invariant violations reported by the always-on monitor.
    pub fn invariant_violations(&self) -> u64 {
        self.monitor.violations()
    }

    /// The manager's shard tree (`None` for flat managers) — lets
    /// differential harnesses assert the per-level budget invariant
    /// against [`ClusterSim::caps`] from outside the simulator.
    pub fn shard_view(&self) -> Option<&[dps_core::manager::ShardSpan]> {
        self.manager.shard_view()
    }

    /// Toggle panicking on hard invariant-check failures (defaults to on
    /// only inside this crate's own test build; integration harnesses that
    /// want the fail-fast behaviour opt in here).
    pub fn set_invariant_fail_fast(&mut self, on: bool) {
        self.monitor.set_fail_fast(on);
    }

    /// The confidence report computed at the end of the last cycle (what
    /// the ladder will step on next).
    pub fn confidence(&self) -> ConfidenceReport {
        self.confidence
    }

    /// Cumulative guard counters; `None` for managers without health gating.
    pub fn guard_stats(&self) -> Option<dps_core::GuardStats> {
        self.manager.guard_stats()
    }

    /// Enables the controller watchdog: every `every_cycles` cycles the
    /// manager is checkpointed (if it supports it; see
    /// [`PowerManager::checkpoint`]). The latest snapshot is what
    /// [`ClusterSim::crash_and_restore`] resumes from.
    ///
    /// # Panics
    /// Panics if `every_cycles` is 0.
    pub fn enable_watchdog(&mut self, every_cycles: u64) {
        assert!(every_cycles > 0, "watchdog period must be positive");
        self.watchdog_every = Some(every_cycles);
    }

    /// The latest watchdog snapshot, when one has been taken.
    pub fn last_checkpoint(&self) -> Option<&[u8]> {
        self.last_checkpoint.as_deref()
    }

    /// Simulates a controller crash-and-restart: the running manager is
    /// dropped (all its in-memory state lost) and replaced by `fresh` — a
    /// newly constructed manager with the same configuration — which is
    /// restored from the latest watchdog snapshot before taking over.
    ///
    /// Returns an error (leaving the old manager in place) if no snapshot
    /// has been taken, the snapshot fails validation, or `fresh` has the
    /// wrong shape.
    pub fn crash_and_restore(&mut self, mut fresh: Box<dyn PowerManager>) -> Result<(), String> {
        if fresh.num_units() != self.config.topology.total_units() {
            return Err(format!(
                "replacement manager has {} units, topology has {}",
                fresh.num_units(),
                self.config.topology.total_units()
            ));
        }
        let snap = self
            .last_checkpoint
            .as_ref()
            .ok_or_else(|| "no watchdog checkpoint to restore from".to_string())?;
        fresh.restore(snap)?;
        // The restored manager adopted the snapshot's budget; re-apply the
        // budget currently in force so a crash straddling a shock cannot
        // silently revert it.
        fresh.set_budget(self.current_budget)?;
        // The replacement inherits the trace sink (its per-process trace
        // cycle counter restarts at 0 — a restored controller is a new
        // process, and the envelope's `ControllerRestored` marks the seam).
        if self.sink.enabled() {
            fresh.attach_trace(self.sink.clone());
            self.sink.emit(Event::ControllerRestored {
                cycle: self.clock.timestep(),
            });
        }
        self.manager = fresh;
        Ok(())
    }

    /// Start-of-cycle scheduler phase: evict walltime overruns, admit due
    /// arrivals, realise newly started jobs on their sockets, and report
    /// occupancy flips to the manager (before it assigns caps).
    fn sched_begin(&mut self, st: &mut SchedState) {
        let now = self.clock.now();
        let mut membership_dirty = false;

        if st.enforce_walltime {
            for id in st.scheduler.overrunning(now) {
                st.scheduler.evict(id, now);
                if let Some(pos) = st.jobs.iter().position(|j| j.id == id) {
                    for &u in &st.jobs[pos].units {
                        st.occupied[u] = false;
                    }
                    st.jobs.swap_remove(pos);
                    membership_dirty = true;
                }
            }
        }

        let tdp = self.config.domain_spec.tdp;
        let spk = self.config.topology.sockets_per_node;
        for started in st.scheduler.tick(now) {
            // Each job gets its own program realisation (run-to-run
            // variance) and per-socket variants, all derived from the
            // job id so every manager sees the identical workload.
            let mut job_rng = st.job_rng.child(&format!("job{}", started.id));
            let seed = job_rng.next_u64();
            let base = dps_workloads::build_program(&started.spec, &self.config.perf, seed);
            let units: Vec<usize> = started
                .nodes
                .iter()
                .flat_map(|&node| node * spk..(node + 1) * spk)
                .collect();
            let socket_programs: Vec<DemandProgram> = (0..units.len())
                .map(|s| dps_workloads::generator::socket_variant(&base, tdp, s, &job_rng))
                .collect();
            for &u in &units {
                st.occupied[u] = true;
            }
            membership_dirty = true;
            st.jobs.push(ActiveJob {
                id: started.id,
                run: RunningWorkload::once(base, self.config.perf),
                socket_programs,
                units,
            });
        }

        if membership_dirty {
            self.manager.observe_membership(&st.occupied);
        }
    }

    /// Start-of-cycle traffic phase: the provisioner (re)sizes the powered
    /// fleet from last window's evidence and the generator contributes this
    /// window's arrivals. Node flips expand to unit occupancy and reach the
    /// manager (before it assigns caps), and each provisioning decision is
    /// emitted as an [`Event::Provision`].
    fn traffic_begin(&mut self, st: &mut TrafficState) {
        let now = self.clock.now();
        let spk = self.config.topology.sockets_per_node;
        let cycle = self.clock.timestep();
        let tracing = self.sink.enabled();
        let mut dirty = false;

        // Idle pre-phase: sleeping units deepen along their compiled
        // schedules, and wakes begun in earlier cycles complete — those
        // units rejoin the serving fleet this cycle.
        if let Some(fleet) = st.fleet.as_mut() {
            st.demotions.clear();
            fleet.advance(now, &mut st.demotions);
            if tracing {
                for d in &st.demotions {
                    self.sink.emit(Event::SleepTransition {
                        cycle,
                        unit: d.unit as u32,
                        from_state: d.from,
                        to_state: d.to,
                    });
                }
            }
            st.wakes.clear();
            fleet.tick_wakes(self.config.period, &mut st.wakes);
            for w in &st.wakes {
                st.occupied[w.unit] = true;
                dirty = true;
                if tracing {
                    self.sink.emit(Event::WakeDone {
                        cycle,
                        unit: w.unit as u32,
                        state: w.state,
                        energy_j: w.energy_j,
                    });
                    self.sink.emit(Event::PredictorSample {
                        cycle,
                        unit: w.unit as u32,
                        predicted_s: w.predicted_s,
                        actual_s: w.actual_s,
                    });
                }
            }
        }

        let begin = st.driver.begin_cycle(now, self.config.period);
        if begin.changes.is_empty() && !dirty {
            return;
        }
        for change in &begin.changes {
            for &node in &change.nodes {
                for u in node * spk..(node + 1) * spk {
                    match (st.fleet.as_mut(), change.power_on) {
                        // Sleep-managed power-on: begin the wake; the unit
                        // stays out of the serving fleet until the state's
                        // latency elapses (see the pre-phase above).
                        (Some(fleet), true) => {
                            if let Some(w) = fleet.begin_wake(u, now) {
                                if tracing {
                                    self.sink.emit(Event::WakeStart {
                                        cycle,
                                        unit: u as u32,
                                        state: w.state,
                                        latency_s: w.latency_s,
                                    });
                                }
                            }
                        }
                        // Sleep-managed power-off: demote onto the ladder
                        // instead of hard-off (a mid-wake unit is
                        // re-demoted — provisioner flapping).
                        (Some(fleet), false) => {
                            st.occupied[u] = false;
                            if let Some(d) = fleet.demote(u, now) {
                                if tracing {
                                    self.sink.emit(Event::SleepTransition {
                                        cycle,
                                        unit: u as u32,
                                        from_state: d.from,
                                        to_state: d.to,
                                    });
                                }
                            }
                        }
                        (None, on) => st.occupied[u] = on,
                    }
                }
            }
            dirty = true;
            if tracing {
                self.sink.emit(Event::Provision {
                    cycle,
                    kind: if change.power_on {
                        ProvisionKind::PowerOn
                    } else {
                        ProvisionKind::PowerOff
                    },
                    nodes: change.nodes.len() as u32,
                    active_nodes: change.active_after as u32,
                    utilization: change.utilization,
                });
            }
        }
        if dirty {
            self.manager.observe_membership(&st.occupied);
        }
    }

    /// Runs one decision cycle.
    pub fn cycle(&mut self) {
        let topo = self.config.topology;
        let period = self.config.period;
        let idle = self.config.domain_spec.idle_power;

        let tracing = self.sink.enabled();
        let timing = tracing && self.sink.timing();
        let t_cycle = timing.then(std::time::Instant::now);
        let cycle = self.clock.timestep();
        if tracing {
            self.sink.emit(Event::CycleStart {
                cycle,
                time_s: self.clock.now(),
            });
            // Scripted fault windows opening or closing at this timestep.
            if !self.config.sensor_faults.is_empty() {
                let now = self.clock.now();
                for u in 0..self.fault_sensor.len() {
                    let (s, a) = self.config.sensor_faults.active_kinds(u, now);
                    if s != self.fault_sensor[u] {
                        self.fault_sensor[u] = s;
                        self.sink.emit(Event::FaultEdge {
                            cycle,
                            unit: u as u32,
                            domain: FaultDomain::Sensor,
                            active: s,
                        });
                    }
                    if a != self.fault_actuator[u] {
                        self.fault_actuator[u] = a;
                        self.sink.emit(Event::FaultEdge {
                            cycle,
                            unit: u as u32,
                            domain: FaultDomain::Actuator,
                            active: a,
                        });
                    }
                }
            }
            // Caps entering the cycle, for the `caps_changed` churn count.
            self.trace_caps.clear();
            self.trace_caps.extend_from_slice(&self.caps);
        }

        // (0a) Effective budget for this cycle: base × schedule × chaos.
        // Changes are pushed to the manager (one-cycle compliance
        // contract, see `PowerManager::set_budget`) and the framed
        // controller before any caps are assigned.
        if !(self.config.budget.is_constant() && self.config.chaos.is_empty()) {
            let now = self.clock.now();
            let target = self.base_budget
                * self.config.budget.factor_at(now)
                * self.config.chaos.budget_factor_at(now);
            if (target - self.current_budget).abs() > dps_core::budget::BUDGET_EPSILON {
                self.manager
                    .set_budget(target)
                    .expect("scheduled budget was validated at construction");
                if let Some(plane) = self.plane.as_mut() {
                    plane.set_budget(target);
                }
                if tracing {
                    self.sink.emit(Event::BudgetShock {
                        cycle,
                        from_w: self.current_budget,
                        to_w: target,
                    });
                }
                self.current_budget = target;
            }
        }

        // (0b) Operating mode for this cycle, stepped on the previous
        // cycle's confidence report (immediate descent, hysteretic
        // re-ascent; see `dps_core::mode`).
        if let Some((from, to)) = self.mode_machine.step(&self.confidence) {
            if tracing {
                self.sink.emit(Event::ModeChange {
                    cycle,
                    from: from.to_obs(),
                    to: to.to_obs(),
                });
            }
        }
        let mode = self.mode_machine.mode();

        // (0c) Chaos node churn: units on powered-down racks leave managed
        // membership (and demand nothing below); they rejoin when the
        // window closes.
        if self.config.chaos.has_churn() {
            let now = self.clock.now();
            let mut dirty = false;
            for u in 0..self.chaos_down.len() {
                let down = self.config.chaos.unit_down(&topo, u, now);
                if down != self.chaos_down[u] {
                    self.chaos_down[u] = down;
                    dirty = true;
                }
            }
            if dirty {
                for u in 0..self.membership.len() {
                    self.membership[u] = !self.chaos_down[u];
                }
                self.manager.observe_membership(&self.membership);
            }
        }

        // (0) Scheduler/traffic phase (those modes only). Taken out of
        // `self` for the duration of the cycle to keep the borrows disjoint.
        let mut sched = self.sched.take();
        if let Some(st) = sched.as_mut() {
            self.sched_begin(st);
        }
        let mut traffic = self.traffic.take();
        if let Some(st) = traffic.as_mut() {
            self.traffic_begin(st);
        }

        // (1) Demands from job positions.
        if let Some(st) = traffic.as_ref() {
            // Traffic mode: every powered socket runs its serving loop at
            // the fraction of its capacity the request backlog can fill,
            // but never below the service's resident footprint — a powered
            // socket is not energy-proportional. Dark nodes demand nothing.
            let busy = st.driver.busy_fraction(period);
            let floor = st.driver.config().service_floor;
            for u in 0..self.demands.len() {
                self.demands[u] = if st.occupied[u] {
                    (busy * st.sockets[u].demand()).max(floor)
                } else {
                    0.0
                };
            }
        } else if let Some(st) = sched.as_ref() {
            // Scheduler mode: unoccupied sockets demand nothing.
            self.demands.fill(0.0);
            for job in &st.jobs {
                if job.run.demand() > 0.0 {
                    let pos = job.run.position();
                    for (k, &u) in job.units.iter().enumerate() {
                        self.demands[u] = job.socket_programs[k].demand_at(pos);
                    }
                }
            }
        } else {
            for (c, job) in self.jobs.iter().enumerate() {
                let active = job.run.demand() > 0.0;
                let pos = job.run.position();
                let range = topo.cluster_range(c);
                for (s, u) in range.enumerate() {
                    self.demands[u] = if active {
                        job.socket_programs[s].demand_at(pos)
                    } else {
                        0.0
                    };
                }
            }
        }
        if self.config.chaos.has_churn() {
            for u in 0..self.demands.len() {
                if self.chaos_down[u] {
                    self.demands[u] = 0.0;
                }
            }
        }

        // (2) Domains deliver power for this window.
        self.bank
            .step_all_into(&self.demands, period, &mut self.true_power);

        // (3)–(5) Measurements travel to the manager and caps travel back,
        // through whichever control plane the config selects.
        let quantized = self.config.control_plane == ControlPlaneMode::Quantized;
        if mode != OperatingMode::Normal {
            // Degraded/SafeMode: node-local failsafe. The framed plane (if
            // any) is bypassed — a degraded controller has stopped
            // trusting its telemetry path — and measurements are read
            // directly. The manager still runs a *shadow* assignment so
            // its statistics (above all the guard's health machines, whose
            // recovery the re-ascent depends on) keep advancing, but the
            // hardware never sees those caps. What is programmed is
            // mode-determined: `Degraded` holds the last-known-good caps
            // (re-squeezed if a shock shrank the budget under them);
            // `SafeMode` applies the telemetry-blind uniform split that
            // satisfies the budget with zero sensor trust.
            for u in 0..self.measured.len() {
                self.measured[u] = self.bank.read_power(u);
            }
            self.manager.observe_demands(&self.demands);
            self.shadow_caps.copy_from_slice(&self.caps);
            self.manager
                .assign_caps(&self.measured, &mut self.shadow_caps, period);
            let limits = dps_core::manager::UnitLimits {
                min_cap: self.config.domain_spec.min_cap,
                max_cap: self.config.domain_spec.tdp,
            };
            if mode == OperatingMode::SafeMode {
                let uniform =
                    dps_core::manager::constant_cap(self.current_budget, self.caps.len(), limits);
                self.caps.fill(uniform);
            } else {
                self.caps.copy_from_slice(&self.last_good);
                let sum: f64 = self.caps.iter().sum();
                if sum > self.current_budget + dps_core::budget::BUDGET_EPSILON {
                    dps_core::budget::enforce_budget(&mut self.caps, self.current_budget, limits);
                }
            }
            for (u, &cap) in self.caps.iter().enumerate() {
                self.bank.set_cap(u, cap);
            }
        } else if let Some(plane) = self.plane.as_mut() {
            // Framed: raw readings go to the node agents; the manager sees
            // the controller's hold-last telemetry, and the domains get
            // whatever caps the agents actually acknowledged.
            for u in 0..self.measured.len() {
                self.measured[u] = self.bank.read_power(u);
            }
            self.manager.observe_demands(&self.demands);
            plane.run_cycle(
                self.clock.now(),
                period,
                &self.measured,
                self.manager.as_mut(),
                &mut self.caps,
            );
            self.measured.copy_from_slice(plane.telemetry());
            for (u, &cap) in plane.applied_caps().iter().enumerate() {
                self.bank.set_cap(u, cap);
            }
        } else {
            // Direct/quantized: instantaneous exchange, optionally
            // round-tripped through the 3-byte wire frames.
            for u in 0..self.measured.len() {
                let reading = self.bank.read_power(u);
                self.measured[u] = if quantized {
                    let frame = crate::protocol::Frame::power_report(reading);
                    crate::protocol::Frame::decode(frame.encode())
                        .expect("own frame decodes")
                        .watts()
                } else {
                    reading
                };
            }
            self.manager.observe_demands(&self.demands);
            self.manager
                .assign_caps(&self.measured, &mut self.caps, period);
            for (u, &cap) in self.caps.iter().enumerate() {
                let cap = if quantized {
                    let frame = crate::protocol::Frame::set_cap(cap);
                    crate::protocol::Frame::decode(frame.encode())
                        .expect("own frame decodes")
                        .watts()
                } else {
                    cap
                };
                self.bank.set_cap(u, cap);
            }
        }

        // (5b) Write verification: read the programmed caps back from the
        // hardware and hand them to the manager. A telemetry-guarded
        // manager compares them against its requests to catch silently
        // dropped, clamped or delayed cap writes; other managers ignore
        // the call (default no-op). Skipped in degraded modes, where the
        // hardware deliberately holds caps the manager did not request —
        // feeding those back would poison write verification.
        for u in 0..self.applied.len() {
            self.applied[u] = self.bank.domain(u).cap();
        }
        if mode == OperatingMode::Normal {
            self.manager.observe_applied(&self.applied);
        }

        // Always-on safety monitor: re-derive the budget and cap
        // invariants from ground truth, chaos or not. The near-miss flag
        // feeds the mode ladder below.
        let near_miss = {
            let limits = dps_core::manager::UnitLimits {
                min_cap: self.config.domain_spec.min_cap,
                max_cap: self.config.domain_spec.tdp,
            };
            let fallback =
                dps_core::manager::constant_cap(self.current_budget, self.caps.len(), limits);
            let inputs = InvariantInputs {
                cycle,
                budget: self.current_budget,
                requested: &self.caps,
                applied: &self.applied,
                limits,
                mode,
                health: self.manager.health(),
                fallback_cap: fallback,
                shards: self.manager.shard_view(),
            };
            self.monitor.check(&inputs, &self.sink)
        };

        // Frame accounting for this cycle (framed mode only): deltas of the
        // cumulative control-plane counters, emitted only on activity.
        if tracing {
            if let Some(stats) = self.plane.as_ref().map(|p| p.stats()) {
                let sent = stats.frames_sent - self.prev_ctrl.frames_sent;
                let delivered = stats.frames_delivered - self.prev_ctrl.frames_delivered;
                let lost = (stats.frames_dropped + stats.frames_blocked + stats.frames_corrupted)
                    - (self.prev_ctrl.frames_dropped
                        + self.prev_ctrl.frames_blocked
                        + self.prev_ctrl.frames_corrupted);
                let retries = stats.retries - self.prev_ctrl.retries;
                if sent | delivered | lost | retries != 0 {
                    self.sink.emit(Event::ControlPlaneDelta {
                        cycle,
                        sent,
                        delivered,
                        dropped: lost,
                        retries,
                    });
                }
                self.prev_ctrl = stats;
            }
        }

        // (6) Jobs advance at the pace of their slowest socket: Spark
        // stages and NPB iterations are barrier-synchronised, so a single
        // starved socket stalls the whole job. This is the straggler effect
        // the paper's readjusting module explicitly repairs ("fix any major
        // unfairness due to the Stateless Module's random ordering",
        // §4.3.4).
        if let Some(st) = traffic.as_mut() {
            // Traffic mode: serving sockets are independent (no barrier —
            // each request runs on one socket), so each loop advances at
            // its own achieved rate. The summed rates set how many queued
            // requests drain this window, and only powered sockets charge
            // energy to the request bill (a powered-off node draws
            // nothing as far as the service is concerned).
            let mut speed_sum = 0.0;
            let mut joules = 0.0;
            for u in 0..self.demands.len() {
                if st.occupied[u] {
                    let rate = self.config.perf.rate(self.demands[u], self.true_power[u]);
                    speed_sum += rate;
                    joules += self.true_power[u] * period;
                    st.sockets[u].advance_with_rate(rate, period);
                }
            }
            // Sleep-managed fleets are not free when dark: residency power
            // accrues every window and each begun wake charges its one-shot
            // energy, all billed to the same request-energy ledger.
            if let Some(fleet) = st.fleet.as_mut() {
                joules += fleet.sleep_power_w() * period + fleet.drain_wake_energy();
            }
            let end = st
                .driver
                .end_cycle(self.clock.now(), period, speed_sum, joules);
            if tracing {
                if let Some(m) = end.milestone {
                    self.sink.emit(Event::RequestMilestone {
                        cycle,
                        served: m.served,
                        slo_ok: m.slo_ok,
                        backlog: m.backlog,
                    });
                }
            }

            // (7) Satisfaction accounting (dark sockets demand 0 and are
            // counted as satisfied, same as a pinned workload's gap).
            for c in 0..topo.clusters {
                for u in topo.cluster_range(c) {
                    self.satisfaction[c].record(self.demands[u], self.true_power[u], idle);
                }
            }
        } else if let Some(st) = sched.as_mut() {
            // Scheduler mode: the same barrier rule per scheduled job, over
            // its allocated sockets. Completions retire through the queue
            // (freeing nodes and power reservation) and flip occupancy.
            let end = self.clock.now() + period;
            let mut membership_dirty = false;
            let mut i = 0;
            while i < st.jobs.len() {
                let job = &mut st.jobs[i];
                if job.run.demand() > 0.0 {
                    let mut rate: f64 = 1.0;
                    for &u in &job.units {
                        rate = rate.min(self.config.perf.rate(self.demands[u], self.true_power[u]));
                    }
                    job.run.advance_with_rate(rate, period);
                } else {
                    job.run.advance_with_rate(1.0, period);
                }
                if job.run.is_done() {
                    st.scheduler.finish(job.id, end);
                    for &u in &st.jobs[i].units {
                        st.occupied[u] = false;
                    }
                    st.jobs.swap_remove(i);
                    membership_dirty = true;
                } else {
                    i += 1;
                }
            }
            if membership_dirty {
                self.manager.observe_membership(&st.occupied);
            }

            // (7) Satisfaction accounting (idle sockets demand 0 and are
            // counted as satisfied, same as a pinned workload's gap).
            for c in 0..topo.clusters {
                for u in topo.cluster_range(c) {
                    self.satisfaction[c].record(self.demands[u], self.true_power[u], idle);
                }
            }
        } else {
            for (c, job) in self.jobs.iter_mut().enumerate() {
                let range = topo.cluster_range(c);
                let active = job.run.demand() > 0.0;
                if active {
                    let mut rate: f64 = 1.0;
                    for u in range.clone() {
                        rate = rate.min(self.config.perf.rate(self.demands[u], self.true_power[u]));
                    }
                    job.run.advance_with_rate(rate, period);
                } else {
                    // Gap or pre-start: rate is irrelevant, time still passes.
                    job.run.advance_with_rate(1.0, period);
                }

                // (7) Satisfaction accounting.
                for u in range {
                    self.satisfaction[c].record(self.demands[u], self.true_power[u], idle);
                }
            }
        }

        // (8) Per-run realisation swap: a completed run's successor gets a
        // freshly generated program (and socket variants) at the run
        // boundary.
        let tdp = self.config.domain_spec.tdp;
        let per_cluster = topo.units_per_cluster();
        for job in &mut self.jobs {
            if let Some(factory) = job.factory.as_mut() {
                let completed = job.run.runs_completed();
                if completed > job.realized_run && job.run.position() == 0.0 {
                    let base = factory(completed);
                    let run_rng = job.variant_rng.child(&format!("run{completed}"));
                    job.socket_programs = make_variants(&base, tdp, per_cluster, &run_rng);
                    job.run.replace_program(base);
                    job.realized_run = completed;
                }
            }
        }

        // Scheduler events are drained every cycle even when logging is
        // off, so an unlogged run cannot accumulate them unboundedly.
        let (queue_depth, events) = match sched.as_mut() {
            Some(st) => (st.scheduler.queue_depth(), st.scheduler.take_events()),
            None => (0, Vec::new()),
        };
        if tracing {
            for ev in &events {
                self.sink.emit(ev.to_trace(cycle));
            }
        }
        if self.log.is_enabled() {
            self.log.push(CycleRecord {
                time: self.clock.now(),
                power: self.measured.clone(),
                caps: self.caps.clone(),
                demand: self.demands.clone(),
                priority: self
                    .manager
                    .priorities()
                    .map(|p| p.to_vec())
                    .unwrap_or_default(),
                queue_depth,
                events,
            });
        }

        // (9) Watchdog: periodically snapshot the manager so a crashed
        // controller can be restored (see `crash_and_restore`).
        if let Some(every) = self.watchdog_every {
            if (self.clock.timestep() + 1).is_multiple_of(every) {
                // Reuse the previous snapshot's allocation; a manager without
                // checkpoint support leaves the old snapshot (if any) in place.
                let mut buf = self.last_checkpoint.take().unwrap_or_default();
                if self.manager.checkpoint_into(&mut buf) {
                    if tracing {
                        self.sink.emit(Event::CheckpointTaken {
                            cycle,
                            bytes: buf.len() as u64,
                        });
                    }
                    self.last_checkpoint = Some(buf);
                } else if !buf.is_empty() {
                    self.last_checkpoint = Some(buf);
                }
            }
        }

        if tracing {
            let slack = self.manager.total_budget() - self.caps.iter().sum::<f64>();
            let caps_changed = self
                .caps
                .iter()
                .zip(&self.trace_caps)
                .filter(|(now, before)| now.to_bits() != before.to_bits())
                .count() as u32;
            self.sink.emit(Event::CycleEnd {
                cycle,
                budget_slack_w: slack,
                caps_changed,
                queue_depth: queue_depth as u32,
            });
            if let (true, Some(t0)) = (timing, t_cycle) {
                self.sink.emit(Event::PhaseEnd {
                    cycle,
                    phase: PhaseKind::SimCycle,
                    nanos: t0.elapsed().as_nanos() as u64,
                });
            }
        }

        // Mode-ladder inputs for the next cycle, from this cycle's ground
        // truth: the guard's isolation fraction, the control plane's
        // gather-miss rate, and the monitor's near-miss flag.
        if mode == OperatingMode::Normal {
            self.last_good.copy_from_slice(&self.caps);
        }
        let quarantined_frac = self
            .manager
            .health()
            .map(|h| h.iter().filter(|s| s.is_isolated()).count() as f64 / h.len().max(1) as f64)
            .unwrap_or(0.0);
        let stale_frac = match self.plane.as_ref() {
            // While the plane is bypassed (degraded modes) its counters
            // hold still, so the delta is computed only under Normal.
            Some(p) if mode == OperatingMode::Normal => {
                let misses = p.stats().gather_misses;
                let delta = misses - self.prev_gather_misses;
                self.prev_gather_misses = misses;
                (delta as f64 / self.config.total_nodes() as f64).min(1.0)
            }
            _ => 0.0,
        };
        self.confidence = ConfidenceReport {
            quarantined_frac,
            stale_frac,
            near_miss,
        };

        self.sched = sched;
        self.traffic = traffic;
        self.clock.advance();
    }

    /// Runs cycles until `stop` returns true or `max_steps` elapse. Returns
    /// the number of cycles executed.
    pub fn run_until(&mut self, max_steps: u64, mut stop: impl FnMut(&ClusterSim) -> bool) -> u64 {
        let mut steps = 0;
        while steps < max_steps && !stop(self) {
            self.cycle();
            steps += 1;
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_core::manager::UnitLimits;
    use dps_core::{ConstantManager, DpsConfig, DpsManager, SlurmManager};
    use dps_workloads::{Phase, PhaseShape};

    fn flat(duration: f64, watts: f64) -> DemandProgram {
        DemandProgram::new(vec![Phase {
            duration,
            shape: PhaseShape::Constant(watts),
        }])
    }

    fn small_config() -> SimConfig {
        SimConfig {
            topology: Topology::new(2, 1, 2), // 4 units
            noise: NoiseModel::None,
            ..SimConfig::paper_default()
        }
    }

    fn constant_mgr(cfg: &SimConfig) -> Box<dyn PowerManager> {
        Box::new(ConstantManager::new(
            cfg.topology.total_units(),
            cfg.total_budget(),
            UnitLimits {
                min_cap: cfg.domain_spec.min_cap,
                max_cap: cfg.domain_spec.tdp,
            },
        ))
    }

    #[test]
    fn constant_caps_stay_constant() {
        let cfg = small_config();
        let mgr = constant_mgr(&cfg);
        let rng = RngStream::new(1, "sim-test");
        let mut sim = ClusterSim::new(
            cfg.clone(),
            vec![flat(50.0, 150.0), flat(50.0, 60.0)],
            mgr,
            &rng,
        );
        for _ in 0..30 {
            sim.cycle();
        }
        for &c in sim.caps() {
            assert!((c - 110.0).abs() < 1e-9);
        }
    }

    #[test]
    fn workload_completes_and_repeats() {
        let cfg = small_config();
        let mgr = constant_mgr(&cfg);
        let rng = RngStream::new(2, "sim-test");
        let mut sim = ClusterSim::new(cfg, vec![flat(20.0, 100.0), flat(30.0, 100.0)], mgr, &rng);
        // Demand 100 < cap 110 → full speed; 20 s run + 10 s gap → 2 runs by ~65.
        let steps = sim.run_until(200, |s| s.runs_completed(0) >= 2);
        assert!(steps < 200, "should finish early");
        assert_eq!(sim.runs_completed(0), 2);
        let d = sim.run_durations(0)[0];
        assert!((d - 20.0).abs() < 1.5, "nominal duration, got {d}");
    }

    #[test]
    fn throttled_cluster_runs_longer() {
        let cfg = small_config();
        let rng = RngStream::new(3, "sim-test");
        // Cluster 0 demands 160 W vs 110 W constant caps → stretched.
        let mgr = constant_mgr(&cfg);
        let mut sim = ClusterSim::new(cfg, vec![flat(50.0, 160.0), flat(50.0, 60.0)], mgr, &rng);
        sim.run_until(400, |s| {
            s.runs_completed(0) >= 1 && s.runs_completed(1) >= 1
        });
        let d_hot = sim.run_durations(0)[0];
        let d_cool = sim.run_durations(1)[0];
        assert!(d_hot > d_cool + 5.0, "hot {d_hot} vs cool {d_cool}");
        assert!(sim.satisfaction(0) < 0.85, "{}", sim.satisfaction(0));
        assert!(sim.satisfaction(1) > 0.99);
    }

    #[test]
    fn slurm_shifts_power_to_hot_cluster() {
        let cfg = small_config();
        let budget = cfg.total_budget();
        let rng = RngStream::new(4, "sim-test");
        let mgr: Box<dyn PowerManager> = Box::new(SlurmManager::new(
            cfg.topology.total_units(),
            budget,
            UnitLimits {
                min_cap: cfg.domain_spec.min_cap,
                max_cap: cfg.domain_spec.tdp,
            },
            Default::default(),
            rng.child("mgr"),
        ));
        let mut sim = ClusterSim::new(cfg, vec![flat(400.0, 160.0), flat(400.0, 30.0)], mgr, &rng);
        for _ in 0..40 {
            sim.cycle();
        }
        // Hot cluster's sockets (units 0,1) should have grown past 110;
        // idle cluster's (units 2,3) shrunk.
        assert!(sim.caps()[0] > 130.0, "{:?}", sim.caps());
        assert!(sim.caps()[2] < 70.0, "{:?}", sim.caps());
    }

    #[test]
    fn dps_budget_always_respected() {
        let cfg = small_config();
        let budget = cfg.total_budget();
        let rng = RngStream::new(5, "sim-test");
        let mgr: Box<dyn PowerManager> = Box::new(DpsManager::new(
            cfg.topology.total_units(),
            budget,
            UnitLimits {
                min_cap: cfg.domain_spec.min_cap,
                max_cap: cfg.domain_spec.tdp,
            },
            DpsConfig::default(),
            rng.child("mgr"),
        ));
        let mut sim = ClusterSim::new(cfg, vec![flat(200.0, 160.0), flat(200.0, 150.0)], mgr, &rng);
        for _ in 0..150 {
            sim.cycle();
            let sum: f64 = sim.caps().iter().sum();
            assert!(sum <= budget + 1e-6, "cycle {}: {sum}", sim.timestep());
        }
    }

    #[test]
    fn logging_captures_cycles() {
        let cfg = small_config();
        let mgr = constant_mgr(&cfg);
        let rng = RngStream::new(6, "sim-test");
        let mut sim = ClusterSim::new(cfg, vec![flat(20.0, 120.0), flat(20.0, 50.0)], mgr, &rng);
        sim.enable_logging();
        for _ in 0..10 {
            sim.cycle();
        }
        assert_eq!(sim.log().records().len(), 10);
        let demand0 = sim.log().demand_series(0);
        assert!(demand0.iter().all(|&d| d > 100.0), "{demand0:?}");
    }

    #[test]
    fn fairness_perfect_when_unconstrained() {
        let cfg = small_config();
        let mgr = constant_mgr(&cfg);
        let rng = RngStream::new(7, "sim-test");
        let mut sim = ClusterSim::new(cfg, vec![flat(50.0, 90.0), flat(50.0, 70.0)], mgr, &rng);
        for _ in 0..60 {
            sim.cycle();
        }
        assert!(sim.fairness(0, 1) > 0.999, "{}", sim.fairness(0, 1));
    }

    #[test]
    fn run_until_respects_max_steps() {
        let cfg = small_config();
        let mgr = constant_mgr(&cfg);
        let rng = RngStream::new(8, "sim-test");
        let mut sim = ClusterSim::new(
            cfg,
            vec![flat(1000.0, 100.0), flat(1000.0, 100.0)],
            mgr,
            &rng,
        );
        let steps = sim.run_until(25, |_| false);
        assert_eq!(steps, 25);
        assert_eq!(sim.timestep(), 25);
    }

    #[test]
    fn wire_protocol_changes_nothing_material() {
        // Same run with and without the 3-byte frames: caps differ by at
        // most the 0.1 W quantization per hop.
        let mut cfg_a = small_config();
        cfg_a.noise = NoiseModel::None;
        let mut cfg_b = cfg_a.clone();
        cfg_b.control_plane = ControlPlaneMode::Quantized;
        let rng = RngStream::new(21, "wire-test");
        let programs = || vec![flat(60.0, 150.0), flat(60.0, 60.0)];
        let mut sim_a = ClusterSim::new(cfg_a.clone(), programs(), constant_mgr(&cfg_a), &rng);
        let mut sim_b = ClusterSim::new(cfg_b.clone(), programs(), constant_mgr(&cfg_b), &rng);
        for _ in 0..50 {
            sim_a.cycle();
            sim_b.cycle();
        }
        for (a, b) in sim_a.caps().iter().zip(sim_b.caps()) {
            assert!((a - b).abs() <= 0.2, "{a} vs {b}");
        }
        assert!((sim_a.satisfaction(0) - sim_b.satisfaction(0)).abs() < 0.01);
    }

    #[test]
    fn wire_protocol_budget_respected_with_dps() {
        let mut cfg = small_config();
        cfg.control_plane = ControlPlaneMode::Quantized;
        let budget = cfg.total_budget();
        let rng = RngStream::new(22, "wire-dps");
        let mgr: Box<dyn PowerManager> = Box::new(DpsManager::new(
            cfg.topology.total_units(),
            budget,
            UnitLimits {
                min_cap: cfg.domain_spec.min_cap,
                max_cap: cfg.domain_spec.tdp,
            },
            DpsConfig::default(),
            rng.child("mgr"),
        ));
        let mut sim = ClusterSim::new(cfg, vec![flat(100.0, 160.0), flat(100.0, 150.0)], mgr, &rng);
        for _ in 0..120 {
            sim.cycle();
            // Wire quantization rounds caps to 0.1 W; allow that slack.
            assert!(sim.caps().iter().sum::<f64>() <= budget + 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "one program per cluster")]
    fn program_count_mismatch_panics() {
        let cfg = small_config();
        let mgr = constant_mgr(&cfg);
        let rng = RngStream::new(9, "sim-test");
        ClusterSim::new(cfg, vec![flat(10.0, 100.0)], mgr, &rng);
    }

    // ---- sensor/actuator fault + guard + watchdog wiring ----

    use dps_core::GuardConfig;
    use dps_rapl::{ActuatorFault, SensorFault, UnitFaultEvent};

    fn guarded_dps(cfg: &SimConfig, rng: &RngStream) -> Box<dyn PowerManager> {
        Box::new(DpsManager::with_guard(
            cfg.topology.total_units(),
            cfg.total_budget(),
            UnitLimits {
                min_cap: cfg.domain_spec.min_cap,
                max_cap: cfg.domain_spec.tdp,
            },
            DpsConfig::default(),
            GuardConfig {
                // Noise-free telemetry looks "stuck" to the zero-variance
                // detector; disable it and rely on the value gates.
                stuck_window: 0,
                quarantine_after: 2,
                probation_after: 3,
                readmit_after: 4,
                ..Default::default()
            },
            rng.child("mgr"),
        ))
    }

    #[test]
    fn sensor_fault_schedule_reaches_the_bank() {
        let mut cfg = small_config();
        cfg.sensor_faults = UnitFaultSchedule::new(vec![UnitFaultEvent::sensor(
            0,
            5.0,
            15.0,
            SensorFault::Dropout,
        )]);
        cfg.validate().unwrap();
        let mgr = constant_mgr(&cfg);
        let rng = RngStream::new(31, "fault-wire");
        let mut sim = ClusterSim::new(cfg, vec![flat(50.0, 100.0), flat(50.0, 100.0)], mgr, &rng);
        sim.enable_logging();
        for _ in 0..20 {
            sim.cycle();
        }
        let series = sim.log().power_series(0);
        // Readings inside [5, 15) are NaN, outside they are finite.
        assert!(series[2].is_finite(), "{series:?}");
        assert!(series[8].is_nan(), "{series:?}");
        assert!(series[17].is_finite(), "{series:?}");
    }

    #[test]
    fn guarded_dps_quarantines_dropout_and_respects_budget() {
        let mut cfg = small_config();
        cfg.sensor_faults = UnitFaultSchedule::new(vec![UnitFaultEvent::sensor(
            0,
            10.0,
            40.0,
            SensorFault::Dropout,
        )]);
        let budget = cfg.total_budget();
        let rng = RngStream::new(32, "guard-sim");
        let mgr = guarded_dps(&cfg, &rng);
        let mut sim = ClusterSim::new(cfg, vec![flat(200.0, 160.0), flat(200.0, 150.0)], mgr, &rng);
        let mut quarantined_seen = false;
        for _ in 0..80 {
            sim.cycle();
            assert!(
                sim.caps().iter().sum::<f64>() <= budget + 1e-6,
                "cycle {}: {:?}",
                sim.timestep(),
                sim.caps()
            );
            let health = sim.health().expect("guarded manager reports health");
            if health[0].is_isolated() {
                quarantined_seen = true;
            }
        }
        assert!(quarantined_seen, "dropout unit was never isolated");
        // Long after the window the unit must be healthy again.
        assert_eq!(sim.health().unwrap()[0], HealthState::Healthy);
    }

    #[test]
    fn actuator_drop_writes_diverge_applied_from_requested() {
        let mut cfg = small_config();
        cfg.sensor_faults = UnitFaultSchedule::new(vec![UnitFaultEvent::actuator(
            0,
            0.0,
            1000.0,
            ActuatorFault::DropWrites,
        )]);
        let rng = RngStream::new(33, "act-wire");
        let mgr = guarded_dps(&cfg, &rng);
        // Hot demand everywhere: DPS wants to move unit 0's cap, but the
        // write never lands; the readback must expose the stale cap.
        let mut sim = ClusterSim::new(cfg, vec![flat(200.0, 160.0), flat(200.0, 30.0)], mgr, &rng);
        let mut diverged = false;
        for _ in 0..60 {
            sim.cycle();
            if (sim.applied_caps()[0] - sim.caps()[0]).abs() > 1.0 {
                diverged = true;
            }
            // Honest units' readbacks track their requests.
            assert!((sim.applied_caps()[2] - sim.caps()[2]).abs() < 0.5);
        }
        assert!(diverged, "dropped writes never showed up in the readback");
    }

    #[test]
    fn watchdog_restore_resumes_identical_trajectory() {
        // Checkpoint every cycle, crash after 30, restore a fresh manager
        // from the snapshot: the remaining trajectory must match an
        // uninterrupted twin bit for bit (fault-free plant, shared seed).
        let cfg = small_config();
        let budget = cfg.total_budget();
        let rng = RngStream::new(34, "watchdog");
        let programs = || vec![flat(300.0, 160.0), flat(300.0, 140.0)];
        let mut crashed = ClusterSim::new(cfg.clone(), programs(), guarded_dps(&cfg, &rng), &rng);
        let mut twin = ClusterSim::new(cfg.clone(), programs(), guarded_dps(&cfg, &rng), &rng);
        crashed.enable_watchdog(1);
        for _ in 0..30 {
            crashed.cycle();
            twin.cycle();
        }
        crashed
            .crash_and_restore(guarded_dps(&cfg, &rng))
            .expect("restore from watchdog snapshot");
        for _ in 0..40 {
            crashed.cycle();
            twin.cycle();
            assert_eq!(crashed.caps(), twin.caps(), "t={}", crashed.timestep());
            assert!(crashed.caps().iter().sum::<f64>() <= budget + 1e-6);
        }
    }

    #[test]
    fn crash_without_snapshot_is_rejected() {
        let cfg = small_config();
        let rng = RngStream::new(35, "watchdog-none");
        let mut sim = ClusterSim::new(
            cfg.clone(),
            vec![flat(50.0, 100.0), flat(50.0, 100.0)],
            guarded_dps(&cfg, &rng),
            &rng,
        );
        // Watchdog never enabled → no snapshot → restore must fail and the
        // incumbent manager keeps running.
        for _ in 0..5 {
            sim.cycle();
        }
        let err = sim.crash_and_restore(guarded_dps(&cfg, &rng)).unwrap_err();
        assert!(err.contains("no watchdog checkpoint"), "{err}");
        sim.cycle(); // still functional
    }

    // ---- structured trace (dps-obs) wiring ----

    #[test]
    fn trace_envelope_brackets_every_cycle() {
        let mut cfg = small_config();
        cfg.sensor_faults = UnitFaultSchedule::new(vec![UnitFaultEvent::sensor(
            0,
            5.0,
            15.0,
            SensorFault::Dropout,
        )]);
        let rng = RngStream::new(41, "trace-sim");
        // Asymmetric demand so DPS actually moves caps (a uniformly hot
        // cluster equalizes at the constant cap and produces no deltas).
        let mut sim = ClusterSim::new(
            cfg.clone(),
            vec![flat(200.0, 160.0), flat(200.0, 30.0)],
            guarded_dps(&cfg, &rng),
            &rng,
        );
        sim.enable_watchdog(8);
        let sink = SinkHandle::recording(4096);
        sim.set_trace_sink(sink.clone());
        for _ in 0..30 {
            sim.cycle();
        }

        let bytes = sink.export().expect("recording sink exports");
        let decoded = dps_obs::codec::decode(&bytes).expect("trace decodes");
        assert_eq!(decoded.dropped, 0);

        let mut starts = 0u64;
        let mut ends = 0u64;
        let mut fault_edges = Vec::new();
        let mut checkpoints = 0u64;
        let mut open = false;
        for ev in &decoded.events {
            match *ev {
                Event::CycleStart { cycle, time_s } => {
                    assert!(!open, "nested CycleStart at cycle {cycle}");
                    assert_eq!(cycle, starts, "cycle indices are dense");
                    assert!((time_s - cycle as f64).abs() < 1e-9, "1 s period");
                    open = true;
                    starts += 1;
                }
                Event::CycleEnd {
                    cycle,
                    budget_slack_w,
                    queue_depth,
                    ..
                } => {
                    assert!(open, "CycleEnd without CycleStart");
                    assert_eq!(cycle, ends);
                    assert!(budget_slack_w > -1e-6, "budget overrun in trace");
                    assert_eq!(queue_depth, 0, "pinned mode has no queue");
                    open = false;
                    ends += 1;
                }
                Event::FaultEdge {
                    cycle,
                    unit,
                    domain,
                    active,
                } => {
                    assert_eq!(unit, 0);
                    assert_eq!(domain, FaultDomain::Sensor);
                    fault_edges.push((cycle, active));
                }
                Event::CheckpointTaken { bytes, .. } => {
                    assert!(bytes > 0, "checkpoint blob is never empty");
                    checkpoints += 1;
                }
                Event::PhaseEnd { .. } => {
                    panic!("timing spans must stay off without with_timing()")
                }
                _ => {}
            }
        }
        assert_eq!(starts, 30);
        assert_eq!(ends, 30);
        // The [5, 15) s window opens at the cycle sampled at t=5 and closes
        // at the one sampled at t=15 (1 s period → cycles 5 and 15).
        assert_eq!(fault_edges, vec![(5, true), (15, false)]);
        // Watchdog every 8 cycles → snapshots at timesteps 7, 15, 23.
        assert_eq!(checkpoints, 3);
        let reg = sink.as_ring().unwrap().registry();
        assert_eq!(reg.checkpoints(), 3);
        assert_eq!(reg.fault_edges(), 2);
        assert!(reg.cap_deltas() > 0, "DPS moved caps under load");
    }

    #[test]
    fn trace_sink_does_not_perturb_the_simulation() {
        let cfg = small_config();
        let rng = RngStream::new(42, "trace-twin");
        let programs = || vec![flat(120.0, 160.0), flat(120.0, 60.0)];
        let mut traced = ClusterSim::new(cfg.clone(), programs(), guarded_dps(&cfg, &rng), &rng);
        let mut plain = ClusterSim::new(cfg.clone(), programs(), guarded_dps(&cfg, &rng), &rng);
        traced.set_trace_sink(SinkHandle::recording(8192));
        for _ in 0..60 {
            traced.cycle();
            plain.cycle();
            assert_eq!(traced.caps(), plain.caps(), "t={}", plain.timestep());
        }
        assert_eq!(traced.satisfaction(0), plain.satisfaction(0));
    }

    #[test]
    fn scheduler_mode_traces_job_lifecycle() {
        let mut cfg = SimConfig {
            topology: Topology::new(2, 4, 2),
            noise: NoiseModel::None,
            ..SimConfig::paper_default()
        };
        cfg.scheduler = Some(SchedConfig::default_poisson(6, 100.0));
        let rng = RngStream::new(43, "trace-sched");
        let mut sim = ClusterSim::with_scheduler(cfg.clone(), guarded_dps(&cfg, &rng), &rng);
        let sink = SinkHandle::recording(1 << 16);
        sim.set_trace_sink(sink.clone());
        for _ in 0..4000 {
            sim.cycle();
            if sim.scheduler_drained() {
                break;
            }
        }
        assert!(sim.scheduler_drained(), "queue failed to drain");
        let reg = sink.as_ring().unwrap().registry();
        assert_eq!(reg.sched_arrivals(), 6);
        assert_eq!(reg.sched_starts(), 6);
        assert_eq!(
            reg.sched_finishes() + reg.sched_evictions(),
            6,
            "every job retires"
        );
        assert!(
            reg.membership_flips() > 0,
            "job churn must reach the manager's membership trace"
        );
    }

    // ---- traffic mode (dps-traffic) wiring ----

    use dps_traffic::{ProvisionerConfig, ProvisionerMode, TrafficPattern};

    fn flash_crowd_traffic(total_sockets: usize) -> TrafficConfig {
        let mut cfg = TrafficConfig::default_diurnal(total_sockets, 100.0);
        cfg.pattern = TrafficPattern::FlashCrowd {
            base_rps: 100.0,
            peak_rps: 0.9 * total_sockets as f64 * 100.0,
            start: 20.0,
            ramp: 10.0,
            hold: 60.0,
            decay: 10.0,
        };
        cfg.provisioner = ProvisionerMode::Reactive(ProvisionerConfig {
            target_utilization: 0.7,
            headroom_nodes: 0,
            power_off_after: 15.0,
            min_nodes: 1,
        });
        cfg.milestone_every = 10_000;
        cfg
    }

    #[test]
    fn traffic_mode_provisions_and_stays_under_budget() {
        let mut cfg = SimConfig {
            topology: Topology::new(2, 4, 2), // 8 nodes × 2 sockets
            noise: NoiseModel::None,
            ..SimConfig::paper_default()
        };
        cfg.traffic = Some(flash_crowd_traffic(cfg.topology.total_units()));
        let budget = cfg.total_budget();
        let rng = RngStream::new(51, "traffic-sim");
        let mut sim = ClusterSim::with_traffic(cfg.clone(), guarded_dps(&cfg, &rng), &rng);
        let sink = SinkHandle::recording(1 << 16);
        sim.set_trace_sink(sink.clone());
        let mut peak_active = 0;
        for _ in 0..200 {
            sim.cycle();
            assert!(
                sim.caps().iter().sum::<f64>() <= budget + 1e-6,
                "budget overrun at cycle {}",
                sim.timestep()
            );
            peak_active = peak_active.max(sim.traffic_driver().unwrap().active_nodes());
        }
        // The crowd forced the fleet up, the hysteresis brought it back.
        assert!(peak_active >= 5, "fleet never grew: peak {peak_active}");
        assert!(
            sim.traffic_driver().unwrap().active_nodes() <= 2,
            "fleet never shrank: {} nodes",
            sim.traffic_driver().unwrap().active_nodes()
        );
        let stats = sim.request_stats().unwrap();
        assert!(stats.served > 10_000.0, "served {}", stats.served);
        assert!(stats.joules > 0.0);
        let reg = sink.as_ring().unwrap().registry();
        assert!(reg.provision_power_ons() > 0, "no power-ons traced");
        assert!(reg.provision_power_offs() > 0, "no power-offs traced");
        assert!(reg.request_milestones() > 0, "no milestones traced");
        assert!(
            reg.membership_flips() > 0,
            "provisioning must reach the manager's membership trace"
        );
    }

    #[test]
    fn traffic_mode_is_deterministic_per_seed() {
        let mut cfg = SimConfig {
            topology: Topology::new(2, 2, 2),
            noise: NoiseModel::None,
            ..SimConfig::paper_default()
        };
        cfg.traffic = Some(flash_crowd_traffic(cfg.topology.total_units()));
        let run = |seed: u64| {
            let rng = RngStream::new(seed, "traffic-det");
            let mut sim = ClusterSim::with_traffic(cfg.clone(), guarded_dps(&cfg, &rng), &rng);
            for _ in 0..150 {
                sim.cycle();
            }
            (
                sim.request_stats().unwrap().arrived,
                sim.request_stats().unwrap().served,
                sim.caps().to_vec(),
            )
        };
        let (a1, s1, c1) = run(7);
        let (a2, s2, c2) = run(7);
        let (a3, _, _) = run(8);
        assert_eq!(a1, a2);
        assert_eq!(s1, s2);
        assert_eq!(c1, c2);
        assert_ne!(a1, a3, "different seeds must diverge");
    }

    #[test]
    fn scheduler_and_traffic_are_mutually_exclusive() {
        let mut cfg = small_config();
        cfg.scheduler = Some(SchedConfig::default_poisson(2, 50.0));
        cfg.traffic = Some(TrafficConfig::default_diurnal(4, 100.0));
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn crash_restore_is_marked_in_the_trace() {
        let cfg = small_config();
        let rng = RngStream::new(44, "trace-crash");
        let mut sim = ClusterSim::new(
            cfg.clone(),
            vec![flat(300.0, 160.0), flat(300.0, 140.0)],
            guarded_dps(&cfg, &rng),
            &rng,
        );
        sim.enable_watchdog(1);
        let sink = SinkHandle::recording(1 << 14);
        sim.set_trace_sink(sink.clone());
        for _ in 0..10 {
            sim.cycle();
        }
        sim.crash_and_restore(guarded_dps(&cfg, &rng))
            .expect("restore from snapshot");
        for _ in 0..10 {
            sim.cycle();
        }
        let reg = sink.as_ring().unwrap().registry();
        assert_eq!(reg.controller_restores(), 1);
        let events = sink.as_ring().unwrap().ring().snapshot();
        let marker = events
            .iter()
            .position(|e| matches!(e, Event::ControllerRestored { .. }))
            .expect("restore marker present");
        assert!(
            matches!(events[marker], Event::ControllerRestored { cycle: 10 }),
            "marker carries the crash timestep"
        );
        // The envelope keeps counting across the seam (sim-owned indices).
        let last_end = events
            .iter()
            .rev()
            .find_map(|e| match e {
                Event::CycleEnd { cycle, .. } => Some(*cycle),
                _ => None,
            })
            .unwrap();
        assert_eq!(last_end, 19);
    }
}
