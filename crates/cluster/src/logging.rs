//! Per-cycle logs matching the paper artifact's records.
//!
//! "The experimental results also include a log of the average power during
//! every operating cycle, the power cap set, and the priority (if DPS is
//! running) at every operating decision for each socket" (artifact
//! appendix). Logging is optional: full factorial sweeps disable it, the
//! time-series figures enable it.

use dps_sched::SchedEvent;
use dps_sim_core::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// One decision cycle's record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleRecord {
    /// Simulated time at the end of the cycle.
    pub time: Seconds,
    /// Measured power per unit.
    pub power: Vec<Watts>,
    /// Cap set per unit.
    pub caps: Vec<Watts>,
    /// True (uncapped) demand per unit.
    pub demand: Vec<Watts>,
    /// DPS priority per unit (empty for managers without priorities).
    pub priority: Vec<bool>,
    /// Jobs waiting in the scheduler queue this cycle (0 without a
    /// scheduler).
    pub queue_depth: usize,
    /// Scheduler lifecycle events that fired this cycle (empty without a
    /// scheduler).
    pub events: Vec<SchedEvent>,
}

/// A bounded-or-unbounded cycle log.
#[derive(Debug, Clone, Default)]
pub struct CycleLog {
    records: Vec<CycleRecord>,
    enabled: bool,
}

impl CycleLog {
    /// A disabled log: records are dropped.
    pub fn disabled() -> Self {
        Self {
            records: Vec::new(),
            enabled: false,
        }
    }

    /// An enabled log.
    pub fn enabled() -> Self {
        Self {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record (no-op when disabled).
    pub fn push(&mut self, record: CycleRecord) {
        if self.enabled {
            self.records.push(record);
        }
    }

    /// All records so far.
    pub fn records(&self) -> &[CycleRecord] {
        &self.records
    }

    /// Extracts one unit's measured-power series.
    pub fn power_series(&self, unit: usize) -> Vec<Watts> {
        self.records.iter().map(|r| r.power[unit]).collect()
    }

    /// Extracts one unit's cap series.
    pub fn cap_series(&self, unit: usize) -> Vec<Watts> {
        self.records.iter().map(|r| r.caps[unit]).collect()
    }

    /// Extracts one unit's demand series.
    pub fn demand_series(&self, unit: usize) -> Vec<Watts> {
        self.records.iter().map(|r| r.demand[unit]).collect()
    }

    /// Extracts the scheduler queue-depth series.
    pub fn queue_depth_series(&self) -> Vec<usize> {
        self.records.iter().map(|r| r.queue_depth).collect()
    }

    /// All scheduler events across the logged cycles, in firing order.
    pub fn sched_events(&self) -> Vec<SchedEvent> {
        self.records
            .iter()
            .flat_map(|r| r.events.iter().cloned())
            .collect()
    }

    /// Scheduler events as string rows (`time,job,nodes,event`), ready for
    /// a CSV writer such as `dps_metrics::csv::render`.
    pub fn sched_event_rows(&self) -> Vec<Vec<String>> {
        self.sched_events()
            .iter()
            .map(|e| {
                vec![
                    format!("{}", e.time),
                    e.job.to_string(),
                    e.nodes.to_string(),
                    e.kind.to_string(),
                ]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t: f64) -> CycleRecord {
        CycleRecord {
            time: t,
            power: vec![100.0, 50.0],
            caps: vec![110.0, 110.0],
            demand: vec![120.0, 50.0],
            priority: vec![true, false],
            queue_depth: 3,
            events: vec![SchedEvent {
                time: t,
                job: 7,
                nodes: 2,
                kind: dps_sched::SchedEventKind::Started,
            }],
        }
    }

    #[test]
    fn disabled_log_drops_records() {
        let mut log = CycleLog::disabled();
        log.push(record(1.0));
        assert!(log.records().is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn enabled_log_keeps_records() {
        let mut log = CycleLog::enabled();
        log.push(record(1.0));
        log.push(record(2.0));
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.records()[1].time, 2.0);
    }

    #[test]
    fn series_extraction() {
        let mut log = CycleLog::enabled();
        log.push(record(1.0));
        log.push(record(2.0));
        assert_eq!(log.power_series(0), vec![100.0, 100.0]);
        assert_eq!(log.cap_series(1), vec![110.0, 110.0]);
        assert_eq!(log.demand_series(0), vec![120.0, 120.0]);
        assert_eq!(log.queue_depth_series(), vec![3, 3]);
        let events = log.sched_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].job, 7);
        assert_eq!(events[1].time, 2.0);
    }

    #[test]
    fn event_rows_are_csv_ready() {
        let mut log = CycleLog::enabled();
        log.push(record(1.5));
        let rows = log.sched_event_rows();
        let expected: Vec<Vec<String>> = vec![["1.5", "7", "2", "started"]
            .iter()
            .map(|s| s.to_string())
            .collect()];
        assert_eq!(rows, expected);
    }
}
