//! Per-cycle logs matching the paper artifact's records.
//!
//! "The experimental results also include a log of the average power during
//! every operating cycle, the power cap set, and the priority (if DPS is
//! running) at every operating decision for each socket" (artifact
//! appendix). Logging is optional: full factorial sweeps disable it, the
//! time-series figures enable it.

use dps_sim_core::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// One decision cycle's record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleRecord {
    /// Simulated time at the end of the cycle.
    pub time: Seconds,
    /// Measured power per unit.
    pub power: Vec<Watts>,
    /// Cap set per unit.
    pub caps: Vec<Watts>,
    /// True (uncapped) demand per unit.
    pub demand: Vec<Watts>,
    /// DPS priority per unit (empty for managers without priorities).
    pub priority: Vec<bool>,
}

/// A bounded-or-unbounded cycle log.
#[derive(Debug, Clone, Default)]
pub struct CycleLog {
    records: Vec<CycleRecord>,
    enabled: bool,
}

impl CycleLog {
    /// A disabled log: records are dropped.
    pub fn disabled() -> Self {
        Self {
            records: Vec::new(),
            enabled: false,
        }
    }

    /// An enabled log.
    pub fn enabled() -> Self {
        Self {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record (no-op when disabled).
    pub fn push(&mut self, record: CycleRecord) {
        if self.enabled {
            self.records.push(record);
        }
    }

    /// All records so far.
    pub fn records(&self) -> &[CycleRecord] {
        &self.records
    }

    /// Extracts one unit's measured-power series.
    pub fn power_series(&self, unit: usize) -> Vec<Watts> {
        self.records.iter().map(|r| r.power[unit]).collect()
    }

    /// Extracts one unit's cap series.
    pub fn cap_series(&self, unit: usize) -> Vec<Watts> {
        self.records.iter().map(|r| r.caps[unit]).collect()
    }

    /// Extracts one unit's demand series.
    pub fn demand_series(&self, unit: usize) -> Vec<Watts> {
        self.records.iter().map(|r| r.demand[unit]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t: f64) -> CycleRecord {
        CycleRecord {
            time: t,
            power: vec![100.0, 50.0],
            caps: vec![110.0, 110.0],
            demand: vec![120.0, 50.0],
            priority: vec![true, false],
        }
    }

    #[test]
    fn disabled_log_drops_records() {
        let mut log = CycleLog::disabled();
        log.push(record(1.0));
        assert!(log.records().is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn enabled_log_keeps_records() {
        let mut log = CycleLog::enabled();
        log.push(record(1.0));
        log.push(record(2.0));
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.records()[1].time, 2.0);
    }

    #[test]
    fn series_extraction() {
        let mut log = CycleLog::enabled();
        log.push(record(1.0));
        log.push(record(2.0));
        assert_eq!(log.power_series(0), vec![100.0, 100.0]);
        assert_eq!(log.cap_series(1), vec![110.0, 110.0]);
        assert_eq!(log.demand_series(0), vec![120.0, 120.0]);
    }
}
