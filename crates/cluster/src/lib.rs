//! Discrete-time overprovisioned-cluster simulator and experiment runner.
//!
//! Reproduces the paper's evaluation platform in simulation: a server node
//! running one of the power managers and two client clusters of five
//! dual-socket nodes each (20 power-capping units), a cluster-wide power
//! budget of 66.7 % of TDP (110 W/socket average), a one-second decision
//! cycle, and workload pairs running side by side — one workload per
//! cluster, the shorter one repeating until the longer completes its
//! repetitions.
//!
//! * [`sim`] — the per-cycle simulation loop tying demand → RAPL domains →
//!   measurements → manager → caps → progress.
//! * [`controlplane`] — the latency/traffic model of the server↔client
//!   messaging (3 bytes per unit per cycle, BSD-socket latencies; §6.5).
//! * [`protocol`] — the 3-byte wire frames (re-exported from `dps-ctrl`,
//!   which also provides the full framed control plane with lossy links,
//!   node agents and a budget-safe controller). The simulator selects
//!   between the direct, quantized and framed planes via
//!   [`sim::ControlPlaneMode`].
//! * [`satisfaction`] — per-cluster satisfaction (Eq. 1) and pairwise
//!   fairness (Eq. 2) accounting.
//! * [`logging`] — optional per-cycle logs (power, cap, priority per unit),
//!   the records the paper's artifact emits.
//! * [`runner`] — the experiment harness: builds a workload pair, runs it
//!   under a chosen manager until both sides finish their repetitions, and
//!   reports throughput times, satisfaction, and fairness.

#![warn(missing_docs)]

pub mod controlplane;
pub mod logging;
pub mod protocol;
pub mod runner;
pub mod satisfaction;
pub mod sim;

pub use controlplane::ControlPlaneModel;
pub use logging::{CycleLog, CycleRecord};
pub use runner::{run_pair, ExperimentConfig, PairOutcome, WorkloadOutcome};
pub use satisfaction::{FairnessTracker, SatisfactionTracker};
pub use sim::{ClusterSim, ControlPlaneMode, SimConfig};
