//! Discrete-time overprovisioned-cluster simulator and experiment runner.
//!
//! Reproduces the paper's evaluation platform in simulation: a server node
//! running one of the power managers and two client clusters of five
//! dual-socket nodes each (20 power-capping units), a cluster-wide power
//! budget of 66.7 % of TDP (110 W/socket average), a one-second decision
//! cycle, and workload pairs running side by side — one workload per
//! cluster, the shorter one repeating until the longer completes its
//! repetitions.
//!
//! * [`sim`] — the per-cycle simulation loop tying demand → RAPL domains →
//!   measurements → manager → caps → progress.
//! * [`controlplane`] — the latency/traffic model of the server↔client
//!   messaging (3 bytes per unit per cycle, BSD-socket latencies; §6.5).
//! * [`protocol`] — the 3-byte wire frames (re-exported from `dps-ctrl`,
//!   which also provides the full framed control plane with lossy links,
//!   node agents and a budget-safe controller). The simulator selects
//!   between the direct, quantized and framed planes via
//!   [`sim::ControlPlaneMode`].
//! * [`satisfaction`] — per-cluster satisfaction (Eq. 1) and pairwise
//!   fairness (Eq. 2) accounting.
//! * [`logging`] — optional per-cycle logs (power, cap, priority per unit),
//!   the records the paper's artifact emits.
//! * [`runner`] — the experiment harness: builds a workload pair, runs it
//!   under a chosen manager until both sides finish their repetitions, and
//!   reports throughput times, satisfaction, and fairness.
//! * [`shocks`] — dynamic budget schedules (steps, brownout ramps,
//!   demand-response windows) the simulator pushes to the manager through
//!   `PowerManager::set_budget` each cycle.
//! * [`chaos`] — correlated cross-layer incident windows (rack-scoped
//!   sensor faults + frame loss + node churn + budget shocks) compiled
//!   into the per-layer injectors at construction.
//! * [`invariant`] — the always-on per-cycle safety monitor backing the
//!   `Normal → Degraded → SafeMode` operating-mode ladder
//!   (`dps_core::mode`).

#![warn(missing_docs)]

pub mod chaos;
pub mod controlplane;
pub mod invariant;
pub mod logging;
pub mod protocol;
pub mod runner;
pub mod satisfaction;
pub mod shocks;
pub mod sim;

pub use chaos::{ChaosSchedule, ChaosWindow};
pub use controlplane::ControlPlaneModel;
pub use invariant::{InvariantConfig, InvariantInputs, InvariantMonitor};
pub use logging::{CycleLog, CycleRecord};
pub use runner::{run_pair, ExperimentConfig, PairOutcome, WorkloadOutcome};
pub use satisfaction::{FairnessTracker, SatisfactionTracker};
pub use shocks::{BudgetSchedule, BudgetSegment};
pub use sim::{ClusterSim, ControlPlaneMode, SimConfig};
