//! Dynamic budget schedules: the cluster-wide budget as a function of time.
//!
//! The paper treats the power budget as a constant fraction of aggregate
//! TDP, but real facilities do not: utilities call demand-response events,
//! UPS failures brown the feed out, and operators step budgets to track
//! tariffs. A [`BudgetSchedule`] scripts those moves as a deterministic
//! piecewise-linear *factor* over simulated time — the simulator multiplies
//! the configured base budget (`SimConfig::total_budget`) by
//! [`BudgetSchedule::factor_at`] each cycle and pushes changes to the
//! manager through [`dps_core::manager::PowerManager::set_budget`], which
//! every shipped manager honours with **one-cycle compliance**: the cycle
//! after a downward move already fits under the new budget.
//!
//! Schedules are plain data (no randomness of their own), so a shock
//! scenario is exactly reproducible and composable with any seed;
//! [`BudgetSchedule::random_shocks`] derives its segment placement from a
//! caller-provided stream once, at construction.

use dps_sim_core::rng::RngStream;
use dps_sim_core::units::Seconds;

/// One scheduled budget move: starting at `start`, the factor ramps
/// linearly from its previous value to `factor` over `ramp` seconds, then
/// holds until the next segment begins. `ramp == 0` is a step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetSegment {
    /// When the move begins (simulated seconds).
    pub start: Seconds,
    /// Budget factor in `(0, 1]` reached at `start + ramp`.
    pub factor: f64,
    /// Seconds the linear transition takes (`0` = instantaneous step).
    pub ramp: Seconds,
}

/// A deterministic piecewise-linear budget factor over time. The factor is
/// `1.0` before the first segment (the configured base budget).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BudgetSchedule {
    /// Segments in strictly increasing `start` order.
    segments: Vec<BudgetSegment>,
}

impl BudgetSchedule {
    /// The constant schedule: factor `1.0` forever (the pre-shock world,
    /// byte-identical traces).
    pub fn constant() -> Self {
        Self::default()
    }

    /// A single instantaneous step to `factor` at `at`.
    pub fn step(at: Seconds, factor: f64) -> Self {
        Self {
            segments: vec![BudgetSegment {
                start: at,
                factor,
                ramp: 0.0,
            }],
        }
    }

    /// A brownout: ramp down to `depth` over `ramp` seconds starting at
    /// `start`, hold for `hold` seconds, then ramp back to `1.0` over
    /// `ramp` seconds.
    pub fn brownout(start: Seconds, depth: f64, ramp: Seconds, hold: Seconds) -> Self {
        Self {
            segments: vec![
                BudgetSegment {
                    start,
                    factor: depth,
                    ramp,
                },
                BudgetSegment {
                    start: start + ramp + hold,
                    factor: 1.0,
                    ramp,
                },
            ],
        }
    }

    /// A demand-response window: step down to `factor` at `start`, step
    /// back to `1.0` after `duration` seconds.
    pub fn demand_response(start: Seconds, duration: Seconds, factor: f64) -> Self {
        Self {
            segments: vec![
                BudgetSegment {
                    start,
                    factor,
                    ramp: 0.0,
                },
                BudgetSegment {
                    start: start + duration,
                    factor: 1.0,
                    ramp: 0.0,
                },
            ],
        }
    }

    /// `count` step shocks at seeded times inside `[0, horizon)`, each to a
    /// seeded factor in `[floor, 1]`, every other shock recovering to
    /// `1.0`. Placement is drawn once here; the schedule itself stays plain
    /// data.
    pub fn random_shocks(count: usize, horizon: Seconds, floor: f64, rng: &mut RngStream) -> Self {
        assert!(count > 0, "need at least one shock");
        assert!(
            floor.is_finite() && 0.0 < floor && floor <= 1.0,
            "floor must be in (0,1], got {floor}"
        );
        let mut starts: Vec<Seconds> = (0..count)
            .map(|_| rng.range(0.0..horizon.max(f64::MIN_POSITIVE)))
            .collect();
        starts.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        starts.dedup();
        let segments = starts
            .into_iter()
            .enumerate()
            .map(|(i, start)| BudgetSegment {
                start,
                factor: if i % 2 == 1 {
                    1.0
                } else {
                    rng.range(floor..1.0)
                },
                ramp: 0.0,
            })
            .collect();
        Self { segments }
    }

    /// A schedule from explicit segments. Rejects an empty list — use
    /// [`BudgetSchedule::constant`] to say "no shocks" explicitly.
    pub fn from_segments(segments: Vec<BudgetSegment>) -> Result<Self, String> {
        if segments.is_empty() {
            return Err(
                "budget schedule needs at least one segment; use BudgetSchedule::constant() \
                 for a flat budget"
                    .to_string(),
            );
        }
        let s = Self { segments };
        s.validate()?;
        Ok(s)
    }

    /// The scheduled segments.
    pub fn segments(&self) -> &[BudgetSegment] {
        &self.segments
    }

    /// True for the constant (factor `1.0` forever) schedule.
    pub fn is_constant(&self) -> bool {
        self.segments.is_empty()
    }

    /// The smallest factor the schedule ever reaches (including mid-ramp
    /// values, which lie between adjacent targets).
    pub fn min_factor(&self) -> f64 {
        self.segments.iter().map(|s| s.factor).fold(1.0, f64::min)
    }

    /// The budget factor in force at simulated time `t`.
    pub fn factor_at(&self, t: Seconds) -> f64 {
        let mut prev = 1.0;
        for seg in &self.segments {
            if t < seg.start {
                return prev;
            }
            if seg.ramp > 0.0 && t < seg.start + seg.ramp {
                let frac = (t - seg.start) / seg.ramp;
                return prev + (seg.factor - prev) * frac;
            }
            prev = seg.factor;
        }
        prev
    }

    /// Checks segment sanity: factors finite in `(0, 1]`, non-negative
    /// finite starts and ramps, strictly increasing starts, and no segment
    /// starting inside its predecessor's ramp.
    pub fn validate(&self) -> Result<(), String> {
        let mut prev_end = f64::NEG_INFINITY;
        for (i, seg) in self.segments.iter().enumerate() {
            if !(seg.factor.is_finite() && 0.0 < seg.factor && seg.factor <= 1.0) {
                return Err(format!(
                    "budget segment {i}: factor must be finite in (0,1], got {}",
                    seg.factor
                ));
            }
            if !(seg.start.is_finite() && seg.start >= 0.0) {
                return Err(format!(
                    "budget segment {i}: start must be finite and >= 0, got {}",
                    seg.start
                ));
            }
            if !(seg.ramp.is_finite() && seg.ramp >= 0.0) {
                return Err(format!(
                    "budget segment {i}: ramp must be finite and >= 0, got {}",
                    seg.ramp
                ));
            }
            if seg.start <= prev_end {
                return Err(format!(
                    "budget segment {i} starts at {} before its predecessor settled at {}",
                    seg.start, prev_end
                ));
            }
            prev_end = seg.start + seg.ramp;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one_forever() {
        let s = BudgetSchedule::constant();
        assert!(s.is_constant());
        assert_eq!(s.factor_at(0.0), 1.0);
        assert_eq!(s.factor_at(1e9), 1.0);
        assert_eq!(s.min_factor(), 1.0);
        s.validate().unwrap();
    }

    #[test]
    fn step_switches_at_boundary() {
        let s = BudgetSchedule::step(10.0, 0.7);
        assert_eq!(s.factor_at(9.99), 1.0);
        assert_eq!(s.factor_at(10.0), 0.7);
        assert_eq!(s.factor_at(500.0), 0.7);
        assert!(!s.is_constant());
    }

    #[test]
    fn brownout_ramps_down_holds_and_recovers() {
        let s = BudgetSchedule::brownout(100.0, 0.6, 20.0, 50.0);
        s.validate().unwrap();
        assert_eq!(s.factor_at(99.0), 1.0);
        assert!((s.factor_at(110.0) - 0.8).abs() < 1e-12, "mid-ramp");
        assert_eq!(s.factor_at(120.0), 0.6);
        assert_eq!(s.factor_at(169.0), 0.6);
        assert!((s.factor_at(180.0) - 0.8).abs() < 1e-12, "mid-recovery");
        assert_eq!(s.factor_at(190.0), 1.0);
        assert_eq!(s.min_factor(), 0.6);
    }

    #[test]
    fn demand_response_window_is_flat_inside() {
        let s = BudgetSchedule::demand_response(50.0, 30.0, 0.8);
        assert_eq!(s.factor_at(49.9), 1.0);
        assert_eq!(s.factor_at(50.0), 0.8);
        assert_eq!(s.factor_at(79.9), 0.8);
        assert_eq!(s.factor_at(80.0), 1.0);
    }

    #[test]
    fn random_shocks_are_deterministic_and_valid() {
        let mut a = RngStream::new(7, "shock-test");
        let mut b = RngStream::new(7, "shock-test");
        let s1 = BudgetSchedule::random_shocks(6, 500.0, 0.5, &mut a);
        let s2 = BudgetSchedule::random_shocks(6, 500.0, 0.5, &mut b);
        assert_eq!(s1, s2);
        s1.validate().unwrap();
        assert!(s1.min_factor() >= 0.5);
        for t in 0..500 {
            let f = s1.factor_at(t as f64);
            assert!((0.5..=1.0).contains(&f), "t={t}: {f}");
        }
    }

    #[test]
    fn empty_segment_list_rejected() {
        let err = BudgetSchedule::from_segments(Vec::new()).unwrap_err();
        assert!(err.contains("at least one segment"), "{err}");
    }

    #[test]
    fn validate_rejects_nonsense() {
        let bad_factor = BudgetSchedule {
            segments: vec![BudgetSegment {
                start: 0.0,
                factor: f64::NAN,
                ramp: 0.0,
            }],
        };
        assert!(bad_factor.validate().is_err());
        let above_one = BudgetSchedule {
            segments: vec![BudgetSegment {
                start: 0.0,
                factor: 1.5,
                ramp: 0.0,
            }],
        };
        assert!(above_one.validate().is_err());
        let overlapping = BudgetSchedule {
            segments: vec![
                BudgetSegment {
                    start: 10.0,
                    factor: 0.8,
                    ramp: 20.0,
                },
                BudgetSegment {
                    start: 15.0,
                    factor: 1.0,
                    ramp: 0.0,
                },
            ],
        };
        assert!(overlapping.validate().is_err(), "start inside prior ramp");
    }
}
