//! Control-plane cost model (paper §6.5).
//!
//! DPS and SLURM "are implemented using the same Internet communication
//! protocol"; per decision cycle the server exchanges 3 bytes with each
//! node per unit, over BSD sockets with tens-of-microseconds latencies. The
//! paper argues the controller "could handle tens of thousands of nodes
//! with no bottleneck"; this model lets the overhead experiment reproduce
//! that scaling argument with numbers.

use dps_sim_core::units::Seconds;
use serde::{Deserialize, Serialize};

/// Latency/traffic model for the server↔client messaging.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlPlaneModel {
    /// One-way message latency per node, in seconds (paper: "tens of
    /// microseconds").
    pub per_node_latency: Seconds,
    /// Payload bytes exchanged per unit per request (paper: 3 bytes).
    pub bytes_per_unit: usize,
    /// How many node requests the server can have in flight concurrently
    /// (sockets are polled asynchronously; 64 is conservative for epoll).
    pub concurrency: usize,
}

impl Default for ControlPlaneModel {
    fn default() -> Self {
        Self {
            per_node_latency: 50e-6,
            bytes_per_unit: 3,
            concurrency: 64,
        }
    }
}

impl ControlPlaneModel {
    /// Wall-clock time of one gather+scatter cycle across `nodes` nodes.
    pub fn cycle_latency(&self, nodes: usize) -> Seconds {
        if nodes == 0 {
            return 0.0;
        }
        let waves = nodes.div_ceil(self.concurrency);
        // Gather (read power) and scatter (set caps) are separate rounds.
        2.0 * waves as f64 * self.per_node_latency
    }

    /// Total payload bytes per cycle for `units` units (both directions).
    pub fn cycle_traffic(&self, units: usize) -> usize {
        2 * units * self.bytes_per_unit
    }

    /// Fraction of a decision period consumed by communication. A
    /// non-positive (or non-finite) period means decisions are continuous
    /// — there is no idle time between rounds — so the communication duty
    /// cycle saturates at 1.0 rather than dividing by zero.
    pub fn duty_cycle(&self, nodes: usize, period: Seconds) -> f64 {
        if !(period.is_finite() && period > 0.0) {
            return 1.0;
        }
        (self.cycle_latency(nodes) / period).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_latency_negligible() {
        let m = ControlPlaneModel::default();
        // 10 client nodes: well under a millisecond.
        assert!(m.cycle_latency(10) < 1e-3);
        assert!(m.duty_cycle(10, 1.0) < 0.001);
    }

    #[test]
    fn degenerate_period_saturates_duty_cycle() {
        let m = ControlPlaneModel::default();
        // Non-positive or non-finite periods mean no idle time between
        // decision rounds: duty cycle 1.0, not a panic or a division blowup.
        assert_eq!(m.duty_cycle(10, 0.0), 1.0);
        assert_eq!(m.duty_cycle(10, -1.0), 1.0);
        assert_eq!(m.duty_cycle(10, f64::NAN), 1.0);
        // And a period shorter than the comm latency is fully consumed.
        assert_eq!(m.duty_cycle(1000, 1e-9), 1.0);
    }

    #[test]
    fn thousand_nodes_few_milliseconds() {
        // §6.5: "Scaling to 1,000 nodes would only incur a several
        // millisecond latency".
        let m = ControlPlaneModel::default();
        let l = m.cycle_latency(1000);
        assert!(l > 1e-4 && l < 10e-3, "latency {l}");
    }

    #[test]
    fn traffic_three_bytes_per_unit() {
        let m = ControlPlaneModel::default();
        // §6.5: 1M units → ~3 MB each way.
        assert_eq!(m.cycle_traffic(1_000_000), 6_000_000);
        assert_eq!(m.cycle_traffic(20), 120);
    }

    #[test]
    fn latency_scales_in_waves() {
        let m = ControlPlaneModel::default();
        assert_eq!(m.cycle_latency(1), m.cycle_latency(64));
        assert!(m.cycle_latency(65) > m.cycle_latency(64));
        assert_eq!(m.cycle_latency(0), 0.0);
    }

    #[test]
    fn million_nodes_still_subsecond() {
        let m = ControlPlaneModel::default();
        assert!(m.cycle_latency(1_000_000) < 2.0);
    }
}
