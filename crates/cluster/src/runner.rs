//! The experiment harness: workload pairs under a chosen manager.
//!
//! Mirrors the artifact's `exp.py`: pick a workload for each cluster, a
//! power manager, and a repetition count; run until both workloads have
//! completed their repetitions; report per-run throughput times plus the
//! satisfaction/fairness record. All randomness derives from the experiment
//! seed, so a pair is bit-reproducible, and — crucially for manager
//! comparisons — every manager sees the *same* workload realisation.

use crate::sim::{ClusterSim, SimConfig};
use dps_core::manager::{ManagerKind, PowerManager, UnitLimits};
use dps_core::{
    ConstantManager, DpsConfig, DpsManager, FeedbackConfig, FeedbackManager, MimdConfig,
    OracleManager, PredictiveConfig, PredictiveManager, QdpmConfig, QdpmManager, ShardedManager,
    SlurmManager, TwoLevelManager,
};
use dps_sim_core::rng::RngStream;
use dps_sim_core::stats;
use dps_sim_core::units::Seconds;
use dps_workloads::{build_program, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Everything needed to run one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Simulator parameters.
    pub sim: SimConfig,
    /// DPS tunables.
    pub dps: DpsConfig,
    /// SLURM/stateless tunables.
    pub mimd: MimdConfig,
    /// Master seed; workload realisations and noise streams derive from it.
    pub seed: u64,
    /// Repetitions each workload must complete ("repeated at least 10
    /// times" in the artifact).
    pub reps: usize,
    /// Hard step limit (safety net against pathological configurations).
    pub max_steps: u64,
    /// Shard count for [`ManagerKind::Sharded`] (ignored by flat managers).
    pub shards: usize,
}

impl ExperimentConfig {
    /// The paper's setup with a given seed and repetition count.
    pub fn paper_default(seed: u64, reps: usize) -> Self {
        Self {
            sim: SimConfig::paper_default(),
            dps: DpsConfig::default(),
            mimd: MimdConfig::default(),
            seed,
            reps,
            // Budget for reps runs of the slowest workload (~6000 s) plus
            // gaps, with generous slack for throttling.
            max_steps: 400_000,
            shards: 4,
        }
    }

    /// Unit limits implied by the domain spec.
    pub fn limits(&self) -> UnitLimits {
        UnitLimits {
            min_cap: self.sim.domain_spec.min_cap,
            max_cap: self.sim.domain_spec.tdp,
        }
    }

    /// Builds a manager of the given kind for this experiment.
    pub fn build_manager(&self, kind: ManagerKind) -> Box<dyn PowerManager> {
        let n = self.sim.topology.total_units();
        let budget = self.sim.total_budget();
        let limits = self.limits();
        let rng = RngStream::new(self.seed, &format!("manager/{kind}"));
        match kind {
            ManagerKind::Constant => Box::new(ConstantManager::new(n, budget, limits)),
            ManagerKind::Slurm => Box::new(SlurmManager::new(n, budget, limits, self.mimd, rng)),
            ManagerKind::Dps => Box::new(DpsManager::new(n, budget, limits, self.dps, rng)),
            ManagerKind::Oracle => Box::new(OracleManager::new(n, budget, limits)),
            ManagerKind::Feedback => Box::new(FeedbackManager::new(
                n,
                budget,
                limits,
                FeedbackConfig::default(),
            )),
            ManagerKind::Predictive => Box::new(PredictiveManager::new(
                n,
                budget,
                limits,
                PredictiveConfig::default(),
            )),
            ManagerKind::Qdpm => Box::new(QdpmManager::new(
                n,
                budget,
                limits,
                QdpmConfig::default(),
                rng,
            )),
            ManagerKind::TwoLevel => Box::new(TwoLevelManager::new(
                n,
                self.sim.topology.sockets_per_node,
                budget,
                limits,
                self.mimd,
                rng,
            )),
            ManagerKind::Sharded => Box::new(ShardedManager::new(
                n,
                budget,
                limits,
                self.dps,
                // Small testbeds may have fewer units than the configured
                // shard count; never split finer than one unit per shard.
                self.shards.clamp(1, n),
                // Seeded from the DPS stream, not a `Sharded` one: the tree
                // wraps DPS instances, and a one-shard tree must reproduce
                // the flat DPS manager bit for bit (the differential
                // equivalence suite pins exactly that through this harness).
                RngStream::new(self.seed, &format!("manager/{}", ManagerKind::Dps)),
            )),
        }
    }
}

/// One workload's results within a pair run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadOutcome {
    /// Workload name.
    pub name: String,
    /// Completed-run throughput times (first `reps` runs).
    pub durations: Vec<Seconds>,
    /// Satisfaction over the whole experiment (Eq. 1).
    pub satisfaction: f64,
}

impl WorkloadOutcome {
    /// Harmonic mean throughput time.
    pub fn hmean_duration(&self) -> f64 {
        stats::harmonic_mean(&self.durations).unwrap_or(f64::NAN)
    }
}

/// A pair run's results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairOutcome {
    /// Manager used.
    pub manager: ManagerKind,
    /// Cluster 0's workload.
    pub a: WorkloadOutcome,
    /// Cluster 1's workload.
    pub b: WorkloadOutcome,
    /// Fairness between the clusters (Eq. 2).
    pub fairness: f64,
    /// Decision cycles executed.
    pub steps: u64,
}

impl PairOutcome {
    /// Speedup of workload `a` relative to a baseline hmean duration
    /// (baseline / measured; > 1 is faster than baseline).
    pub fn speedup_a(&self, baseline_hmean: f64) -> f64 {
        baseline_hmean / self.a.hmean_duration()
    }

    /// Speedup of workload `b` relative to a baseline hmean duration.
    pub fn speedup_b(&self, baseline_hmean: f64) -> f64 {
        baseline_hmean / self.b.hmean_duration()
    }

    /// Harmonic mean of the two workloads' speedups (the paper's pair
    /// metric, Figs. 5(b) and 6).
    pub fn pair_speedup(&self, baseline_a: f64, baseline_b: f64) -> f64 {
        let sa = self.speedup_a(baseline_a);
        let sb = self.speedup_b(baseline_b);
        stats::harmonic_mean(&[sa, sb]).unwrap_or(f64::NAN)
    }
}

/// Runs one workload pair under one manager.
///
/// Cluster 0 runs `spec_a`, cluster 1 runs `spec_b`; both repeat until each
/// has completed `config.reps` runs (or `max_steps` elapses — the outcome
/// then carries however many runs finished).
pub fn run_pair(
    spec_a: &WorkloadSpec,
    spec_b: &WorkloadSpec,
    kind: ManagerKind,
    config: &ExperimentConfig,
) -> PairOutcome {
    // The workload realisations depend on the pair, seed and run index but
    // NOT the manager: all managers face identical demand-trace sequences.
    // Each repetition is a fresh realisation of the same workload family
    // ("the Spark workloads demonstrate such variable performance between
    // different runs", §6.1).
    let pair_rng = RngStream::new(
        config.seed,
        &format!("pair/{}+{}", spec_a.name, spec_b.name),
    );
    let factory = |spec: &WorkloadSpec, label: &str| -> crate::sim::ProgramFactory {
        let run_rng = pair_rng.child(label);
        let perf = config.sim.perf;
        let spec = spec.clone();
        Box::new(move |run_index| {
            let seed = run_rng.child(&format!("run{run_index}")).next_u64_static();
            build_program(&spec, &perf, seed)
        })
    };

    let manager = config.build_manager(kind);
    let mut sim = ClusterSim::with_factories(
        config.sim.clone(),
        vec![factory(spec_a, "program-a"), factory(spec_b, "program-b")],
        manager,
        &pair_rng.child("sim"),
    );

    let reps = config.reps;
    let steps = sim.run_until(config.max_steps, |s| {
        s.runs_completed(0) >= reps && s.runs_completed(1) >= reps
    });

    let take = |durations: &[Seconds]| durations.iter().take(reps).copied().collect::<Vec<_>>();
    PairOutcome {
        manager: kind,
        a: WorkloadOutcome {
            name: spec_a.name.to_string(),
            durations: take(sim.run_durations(0)),
            satisfaction: sim.satisfaction(0),
        },
        b: WorkloadOutcome {
            name: spec_b.name.to_string(),
            durations: take(sim.run_durations(1)),
            satisfaction: sim.satisfaction(1),
        },
        fairness: sim.fairness(0, 1),
        steps,
    }
}

/// Small extension so a child stream can yield one seed without mutable
/// plumbing at the call site.
trait NextU64Static {
    fn next_u64_static(self) -> u64;
}

impl NextU64Static for RngStream {
    fn next_u64_static(mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_rapl::Topology;

    /// A downsized config so tests run in milliseconds: 2×1×2 topology and
    /// tiny rep counts. Workload specs still come from the real catalog.
    fn quick_config(seed: u64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_default(seed, 1);
        cfg.sim.topology = Topology::new(2, 1, 2);
        cfg.sim.noise = dps_rapl::NoiseModel::None;
        cfg.max_steps = 30_000;
        cfg
    }

    fn spec(name: &str) -> &'static WorkloadSpec {
        dps_workloads::catalog::find(name).expect("catalog entry")
    }

    #[test]
    fn pair_runs_to_completion() {
        let cfg = quick_config(1);
        let out = run_pair(spec("Sort"), spec("Wordcount"), ManagerKind::Constant, &cfg);
        assert_eq!(out.a.durations.len(), 1);
        assert_eq!(out.b.durations.len(), 1);
        assert!(out.steps < cfg.max_steps);
        // Low-power workloads under 110 W caps run at catalog speed.
        assert!((out.a.hmean_duration() - spec("Sort").duration_110w).abs() < 5.0);
    }

    #[test]
    fn same_seed_same_outcome() {
        let cfg = quick_config(7);
        let x = run_pair(spec("Bayes"), spec("Sort"), ManagerKind::Dps, &cfg);
        let y = run_pair(spec("Bayes"), spec("Sort"), ManagerKind::Dps, &cfg);
        assert_eq!(x, y);
    }

    #[test]
    fn managers_see_identical_workloads() {
        // The constant-run duration of a low-power workload is insensitive
        // to the manager; equal durations across managers indicate the
        // realisation is shared.
        let cfg = quick_config(3);
        let c = run_pair(spec("Sort"), spec("Terasort"), ManagerKind::Constant, &cfg);
        let d = run_pair(spec("Sort"), spec("Terasort"), ManagerKind::Dps, &cfg);
        // Sort never exceeds 110 W; both managers grant full demand.
        assert!((c.a.hmean_duration() - d.a.hmean_duration()).abs() < 2.0);
    }

    #[test]
    fn oracle_beats_constant_on_hot_workload() {
        let mut cfg = quick_config(5);
        cfg.reps = 1;
        let constant = run_pair(spec("GMM"), spec("Sort"), ManagerKind::Constant, &cfg);
        let oracle = run_pair(spec("GMM"), spec("Sort"), ManagerKind::Oracle, &cfg);
        assert!(
            oracle.a.hmean_duration() < constant.a.hmean_duration() * 0.99,
            "oracle {} vs constant {}",
            oracle.a.hmean_duration(),
            constant.a.hmean_duration()
        );
    }

    #[test]
    fn speedup_arithmetic() {
        let cfg = quick_config(11);
        let out = run_pair(spec("Sort"), spec("Wordcount"), ManagerKind::Constant, &cfg);
        let base_a = out.a.hmean_duration();
        let base_b = out.b.hmean_duration();
        assert!((out.speedup_a(base_a) - 1.0).abs() < 1e-9);
        assert!((out.pair_speedup(base_a, base_b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fairness_in_unit_interval() {
        let cfg = quick_config(13);
        let out = run_pair(spec("GMM"), spec("Kmeans"), ManagerKind::Slurm, &cfg);
        assert!((0.0..=1.0).contains(&out.fairness), "{}", out.fairness);
    }
}
