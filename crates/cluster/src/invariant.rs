//! The always-on invariant monitor: safety checks every cycle, chaos or
//! not.
//!
//! The point of graceful degradation is that the *safety* invariants hold
//! even when everything else is on fire. The monitor re-derives them from
//! the simulator's own ground truth every cycle:
//!
//! 1. **Requested budget** (hard): the caps the manager asked for sum to at
//!    most the effective budget plus wire slack.
//! 2. **Cap bounds** (hard): every requested cap sits inside
//!    `[min_cap, max_cap]` (plus quantization tolerance).
//! 3. **Applied budget** (graced): the caps in force at the hardware sum to
//!    at most the budget. Actuator faults and in-flight frames can breach
//!    this transiently, so a breach only becomes a reported violation after
//!    [`InvariantConfig::applied_grace`] consecutive cycles — but *every*
//!    breach is surfaced as a near-miss to the operating-mode ladder.
//! 4. **Guard consistency** (hard, `Normal` mode only): units the telemetry
//!    guard isolated hold no more than the fallback pin (lower layers may
//!    push them further down, but never grant them extra power). Skipped
//!    in degraded modes, where caps are deliberately frozen.
//! 5. **Shard budgets** (hard, hierarchical managers only): budget safety
//!    re-checked at every level of the allocation tree — each shard's
//!    requested caps sum to at most its grant, and the grants sum to at
//!    most the cluster budget. A flat cluster-level sum (check 1) cannot
//!    see an over-granted shard hiding under another shard's slack.
//!
//! Hard-check failures emit [`dps_obs::Event::InvariantViolation`], bump
//! the counter, and — with [`InvariantMonitor::set_fail_fast`] on (the
//! default inside this crate's own tests) — panic on the spot so a buggy
//! change cannot hide behind averaging.

use crate::sim::ControlPlaneMode;
use dps_core::guard::HealthState;
use dps_core::manager::{ShardSpan, UnitLimits};
use dps_core::OperatingMode;
use dps_obs::{Event, InvariantKind, SinkHandle};
use dps_sim_core::units::Watts;

/// Tolerances and policy for the monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvariantConfig {
    /// Slack on budget sums (covers cap quantization on the wire).
    pub budget_slack: Watts,
    /// Slack on per-cap bound and pin checks.
    pub cap_tol: Watts,
    /// Consecutive applied-budget breaches tolerated before a violation is
    /// reported (readback/actuator grace window).
    pub applied_grace: u32,
    /// Panic on a hard-check failure instead of only counting it.
    pub fail_fast: bool,
}

impl InvariantConfig {
    /// Tolerances matched to the control-plane mode: the direct plane gets
    /// epsilon slack; quantized/framed planes get one deciwatt of rounding
    /// per unit. `fail_fast` defaults to on inside this crate's own test
    /// build and off elsewhere (integration harnesses opt in).
    pub fn for_plane(mode: &ControlPlaneMode, n_units: usize) -> Self {
        let quantized = !matches!(mode, ControlPlaneMode::Direct);
        let budget_slack = if quantized {
            n_units as f64 * 0.05 + dps_core::budget::BUDGET_EPSILON
        } else {
            dps_core::budget::BUDGET_EPSILON
        };
        let cap_tol = if quantized {
            0.05 + dps_core::budget::BUDGET_EPSILON
        } else {
            dps_core::budget::BUDGET_EPSILON
        };
        Self {
            budget_slack,
            cap_tol,
            applied_grace: 2,
            fail_fast: cfg!(test),
        }
    }
}

/// Everything the monitor needs about one finished cycle.
#[derive(Debug, Clone, Copy)]
pub struct InvariantInputs<'a> {
    /// Decision-cycle index.
    pub cycle: u64,
    /// Effective budget in force this cycle (W).
    pub budget: Watts,
    /// Caps the manager requested this cycle.
    pub requested: &'a [Watts],
    /// Caps actually in force at the hardware after readback.
    pub applied: &'a [Watts],
    /// Per-unit cap limits.
    pub limits: UnitLimits,
    /// The operating mode the cycle ran under.
    pub mode: OperatingMode,
    /// The manager's per-unit health view, when it has a guard.
    pub health: Option<&'a [HealthState]>,
    /// The fallback pin isolated units must sit at.
    pub fallback_cap: Watts,
    /// The manager's allocation tree ([`dps_core::PowerManager::shard_view`]),
    /// when it is hierarchical; `None` for flat managers.
    pub shards: Option<&'a [ShardSpan]>,
}

/// Per-cycle safety monitor. See the module docs for the four checks.
#[derive(Debug, Clone)]
pub struct InvariantMonitor {
    config: InvariantConfig,
    applied_streak: u32,
    violations: u64,
    near_miss: bool,
}

impl InvariantMonitor {
    /// A monitor with the given tolerances.
    pub fn new(config: InvariantConfig) -> Self {
        Self {
            config,
            applied_streak: 0,
            violations: 0,
            near_miss: false,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> InvariantConfig {
        self.config
    }

    /// Toggle panicking on hard-check failures.
    pub fn set_fail_fast(&mut self, on: bool) {
        self.config.fail_fast = on;
    }

    /// Total violations reported so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Whether the last checked cycle brushed an invariant (applied-budget
    /// breach inside the grace window counts; this is the `near_miss`
    /// confidence signal).
    pub fn breached_last_cycle(&self) -> bool {
        self.near_miss
    }

    fn report(
        &mut self,
        sink: &SinkHandle,
        cycle: u64,
        kind: InvariantKind,
        value: f64,
        limit: f64,
        hard: bool,
    ) {
        self.violations += 1;
        if sink.enabled() {
            sink.emit(Event::InvariantViolation {
                cycle,
                kind,
                value,
                limit,
            });
        }
        if hard && self.config.fail_fast {
            panic!("invariant violation at cycle {cycle}: {kind:?} value {value} exceeds {limit}");
        }
    }

    /// Runs all four checks for one cycle. Returns true when the cycle
    /// brushed an invariant (feeds the mode ladder's `near_miss` input).
    pub fn check(&mut self, inp: &InvariantInputs<'_>, sink: &SinkHandle) -> bool {
        self.near_miss = false;
        let cycle = inp.cycle;

        // 1. Requested caps fit the budget — the paper's safety contract.
        let requested_sum: f64 = inp.requested.iter().sum();
        let budget_limit = inp.budget + self.config.budget_slack;
        if requested_sum > budget_limit {
            self.near_miss = true;
            self.report(
                sink,
                cycle,
                InvariantKind::RequestedBudget,
                requested_sum,
                budget_limit,
                true,
            );
        }

        // 2. Every requested cap inside [min_cap, max_cap].
        for &c in inp.requested {
            if c < inp.limits.min_cap - self.config.cap_tol
                || c > inp.limits.max_cap + self.config.cap_tol
            {
                self.near_miss = true;
                let limit = if c < inp.limits.min_cap {
                    inp.limits.min_cap
                } else {
                    inp.limits.max_cap
                };
                self.report(sink, cycle, InvariantKind::CapBounds, c, limit, true);
                break; // one report per cycle is enough to fail the build
            }
        }

        // 3. Applied caps fit the budget, with a readback grace window.
        let applied_sum: f64 = inp.applied.iter().sum();
        if applied_sum > budget_limit {
            self.near_miss = true;
            self.applied_streak += 1;
            if self.applied_streak > self.config.applied_grace {
                self.report(
                    sink,
                    cycle,
                    InvariantKind::AppliedBudget,
                    applied_sum,
                    budget_limit,
                    false,
                );
            }
        } else {
            self.applied_streak = 0;
        }

        // 4. Isolated units never hold more than the fallback pin (Normal
        //    mode only — degraded modes freeze caps on purpose). One-sided:
        //    lower layers may legitimately push an isolated unit further
        //    down (e.g. the framed controller floor-pins a stale node),
        //    but nothing may grant a quarantined unit extra power.
        if inp.mode == OperatingMode::Normal {
            if let Some(health) = inp.health {
                for (u, h) in health.iter().enumerate() {
                    if h.is_isolated() && inp.requested[u] > inp.fallback_cap + self.config.cap_tol
                    {
                        self.near_miss = true;
                        self.report(
                            sink,
                            cycle,
                            InvariantKind::GuardConsistency,
                            inp.requested[u],
                            inp.fallback_cap,
                            true,
                        );
                        break;
                    }
                }
            }
        }

        // 5. Hierarchical managers: budget safety at every tree level. Per
        //    shard, the requested caps must fit the shard's grant (scaled
        //    cap tolerance — the same wire quantization applies to every
        //    unit in the shard); across shards, the grants must fit the
        //    cluster budget.
        if let Some(spans) = inp.shards {
            let mut grant_sum = 0.0;
            for sp in spans {
                grant_sum += sp.grant;
                let shard_caps: f64 = inp.requested[sp.start..sp.end].iter().sum();
                let shard_limit = sp.grant + self.config.cap_tol * sp.units() as f64;
                if shard_caps > shard_limit {
                    self.near_miss = true;
                    self.report(
                        sink,
                        cycle,
                        InvariantKind::ShardBudget,
                        shard_caps,
                        shard_limit,
                        true,
                    );
                    break; // one report per cycle is enough to fail the build
                }
            }
            let grant_limit = inp.budget + self.config.budget_slack;
            if grant_sum > grant_limit {
                self.near_miss = true;
                self.report(
                    sink,
                    cycle,
                    InvariantKind::ShardBudget,
                    grant_sum,
                    grant_limit,
                    true,
                );
            }
        }

        self.near_miss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> InvariantConfig {
        InvariantConfig {
            budget_slack: 1e-6,
            cap_tol: 1e-6,
            applied_grace: 2,
            fail_fast: false,
        }
    }

    fn limits() -> UnitLimits {
        UnitLimits {
            min_cap: 40.0,
            max_cap: 165.0,
        }
    }

    fn inputs<'a>(requested: &'a [Watts], applied: &'a [Watts]) -> InvariantInputs<'a> {
        InvariantInputs {
            cycle: 7,
            budget: 200.0,
            requested,
            applied,
            limits: limits(),
            mode: OperatingMode::Normal,
            health: None,
            fallback_cap: 100.0,
            shards: None,
        }
    }

    #[test]
    fn clean_cycle_reports_nothing() {
        let mut m = InvariantMonitor::new(cfg());
        let caps = [100.0, 100.0];
        assert!(!m.check(&inputs(&caps, &caps), &SinkHandle::noop()));
        assert_eq!(m.violations(), 0);
        assert!(!m.breached_last_cycle());
    }

    #[test]
    fn requested_over_budget_is_immediate() {
        let mut m = InvariantMonitor::new(cfg());
        let caps = [120.0, 120.0];
        let applied = [100.0, 100.0];
        assert!(m.check(&inputs(&caps, &applied), &SinkHandle::noop()));
        assert_eq!(m.violations(), 1);
    }

    #[test]
    #[should_panic(expected = "invariant violation")]
    fn fail_fast_panics_on_hard_check() {
        let mut m = InvariantMonitor::new(InvariantConfig {
            fail_fast: true,
            ..cfg()
        });
        let caps = [120.0, 120.0];
        let applied = [100.0, 100.0];
        m.check(&inputs(&caps, &applied), &SinkHandle::noop());
    }

    #[test]
    fn cap_out_of_bounds_reports() {
        let mut m = InvariantMonitor::new(cfg());
        let caps = [30.0, 100.0]; // below 40 W floor
        let applied = [40.0, 100.0];
        assert!(m.check(&inputs(&caps, &applied), &SinkHandle::noop()));
        assert_eq!(m.violations(), 1);
    }

    #[test]
    fn applied_breach_needs_to_outlast_grace() {
        let mut m = InvariantMonitor::new(cfg());
        let caps = [100.0, 100.0];
        let applied = [120.0, 120.0]; // rogue actuators hold old caps
        let sink = SinkHandle::noop();
        // Two graced cycles: near-miss yes, violation no.
        assert!(m.check(&inputs(&caps, &applied), &sink));
        assert!(m.check(&inputs(&caps, &applied), &sink));
        assert_eq!(m.violations(), 0);
        // Third consecutive breach crosses the grace window.
        assert!(m.check(&inputs(&caps, &applied), &sink));
        assert_eq!(m.violations(), 1);
        // Recovery resets the streak.
        assert!(!m.check(&inputs(&caps, &caps), &sink));
        assert!(m.check(&inputs(&caps, &applied), &sink));
        assert_eq!(m.violations(), 1);
    }

    #[test]
    fn over_granted_shard_trips_the_tree_check() {
        // Both shards' caps fit the *cluster* budget (check 1 passes), but
        // shard 0 holds more than its grant — only the tree check sees it.
        let mut m = InvariantMonitor::new(cfg());
        let caps = [120.0, 70.0];
        let spans = [
            ShardSpan {
                start: 0,
                end: 1,
                grant: 100.0,
            },
            ShardSpan {
                start: 1,
                end: 2,
                grant: 100.0,
            },
        ];
        let mut inp = inputs(&caps, &caps);
        inp.shards = Some(&spans);
        assert!(m.check(&inp, &SinkHandle::noop()));
        assert_eq!(m.violations(), 1);
    }

    #[test]
    fn overcommitted_grants_trip_the_tree_check() {
        // Each shard respects its own grant, but the grants were issued
        // past the cluster budget: the grant-sum level must catch it.
        let mut m = InvariantMonitor::new(cfg());
        let caps = [100.0, 100.0];
        let spans = [
            ShardSpan {
                start: 0,
                end: 1,
                grant: 130.0,
            },
            ShardSpan {
                start: 1,
                end: 2,
                grant: 130.0,
            },
        ];
        let mut inp = inputs(&caps, &caps);
        inp.shards = Some(&spans);
        assert!(m.check(&inp, &SinkHandle::noop()));
        assert_eq!(m.violations(), 1);
    }

    #[test]
    fn well_granted_tree_is_clean() {
        let mut m = InvariantMonitor::new(cfg());
        let caps = [90.0, 100.0];
        let spans = [
            ShardSpan {
                start: 0,
                end: 1,
                grant: 95.0,
            },
            ShardSpan {
                start: 1,
                end: 2,
                grant: 105.0,
            },
        ];
        let mut inp = inputs(&caps, &caps);
        inp.shards = Some(&spans);
        assert!(!m.check(&inp, &SinkHandle::noop()));
        assert_eq!(m.violations(), 0);
    }

    #[test]
    fn isolated_unit_off_its_pin_reports_in_normal_mode_only() {
        let mut m = InvariantMonitor::new(cfg());
        let caps = [130.0, 70.0];
        let health = [HealthState::Quarantined, HealthState::Healthy];
        let sink = SinkHandle::noop();
        let mut inp = inputs(&caps, &caps);
        inp.health = Some(&health);
        assert!(m.check(&inp, &sink));
        assert_eq!(m.violations(), 1);
        inp.mode = OperatingMode::Degraded;
        assert!(!m.check(&inp, &sink), "degraded mode skips the pin check");
        assert_eq!(m.violations(), 1);
    }
}
