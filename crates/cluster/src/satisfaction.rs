//! Satisfaction and fairness accounting (paper Eqs. 1–2).
//!
//! ```text
//! satisfaction(n) = avg power under current cap / avg power under no cap
//! fairness(i, j)  = 1 − |satisfaction(i) − satisfaction(j)|
//! ```
//!
//! "Average power under no cap" is the workload's *demand*, which the
//! simulator knows exactly; a real deployment estimates it offline. A
//! satisfaction of 1 means the node was never meaningfully throttled.

use dps_sim_core::units::Watts;
use serde::{Deserialize, Serialize};

/// Accumulates one cluster's demanded vs granted power over a lifetime.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SatisfactionTracker {
    demanded: f64,
    granted: f64,
}

impl SatisfactionTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one window: `demand` is the uncapped draw the workload would
    /// have exhibited, `actual` the power it really drew. Windows with no
    /// compute demand (idle / inter-run gaps) are skipped — an uncapped idle
    /// socket draws idle power too, so it carries no throttling signal.
    pub fn record(&mut self, demand: Watts, actual: Watts, idle_power: Watts) {
        if demand <= idle_power {
            return;
        }
        self.demanded += demand;
        // Actual can exceed demand only via the idle floor; clamp so
        // satisfaction stays in [0, 1].
        self.granted += actual.min(demand);
    }

    /// Satisfaction over everything recorded (1.0 when nothing recorded:
    /// a workload that never demanded power was never throttled).
    pub fn satisfaction(&self) -> f64 {
        if self.demanded <= 0.0 {
            1.0
        } else {
            (self.granted / self.demanded).clamp(0.0, 1.0)
        }
    }

    /// Total demanded Watt-windows (diagnostics).
    pub fn total_demanded(&self) -> f64 {
        self.demanded
    }

    /// Merges another tracker (e.g. per-socket trackers into a cluster).
    pub fn merge(&mut self, other: &SatisfactionTracker) {
        self.demanded += other.demanded;
        self.granted += other.granted;
    }

    /// Clears the accumulators.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Pairwise fairness between two clusters (Eq. 2).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FairnessTracker {
    /// Tracker for cluster 0.
    pub a: SatisfactionTracker,
    /// Tracker for cluster 1.
    pub b: SatisfactionTracker,
}

impl FairnessTracker {
    /// Creates an empty tracker pair.
    pub fn new() -> Self {
        Self::default()
    }

    /// `1 − |sat(a) − sat(b)|`, in `[0, 1]`.
    pub fn fairness(&self) -> f64 {
        1.0 - (self.a.satisfaction() - self.b.satisfaction()).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IDLE: Watts = 15.0;

    #[test]
    fn never_throttled_is_fully_satisfied() {
        let mut t = SatisfactionTracker::new();
        for _ in 0..100 {
            t.record(150.0, 150.0, IDLE);
        }
        assert_eq!(t.satisfaction(), 1.0);
    }

    #[test]
    fn halving_power_halves_satisfaction() {
        let mut t = SatisfactionTracker::new();
        for _ in 0..100 {
            t.record(160.0, 80.0, IDLE);
        }
        assert!((t.satisfaction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn idle_windows_ignored() {
        let mut t = SatisfactionTracker::new();
        t.record(160.0, 80.0, IDLE);
        // Idle windows (demand ≤ idle) carry no signal.
        for _ in 0..1000 {
            t.record(0.0, 15.0, IDLE);
            t.record(10.0, 15.0, IDLE);
        }
        assert!((t.satisfaction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_satisfied() {
        assert_eq!(SatisfactionTracker::new().satisfaction(), 1.0);
    }

    #[test]
    fn over_delivery_clamped() {
        let mut t = SatisfactionTracker::new();
        // Idle floor can put actual above a tiny demand.
        t.record(20.0, 40.0, IDLE);
        assert_eq!(t.satisfaction(), 1.0);
    }

    #[test]
    fn merge_combines_windows() {
        let mut a = SatisfactionTracker::new();
        let mut b = SatisfactionTracker::new();
        a.record(100.0, 100.0, IDLE);
        b.record(100.0, 0.0, IDLE);
        a.merge(&b);
        assert!((a.satisfaction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fairness_of_equal_satisfaction_is_one() {
        let mut f = FairnessTracker::new();
        f.a.record(160.0, 120.0, IDLE);
        f.b.record(100.0, 75.0, IDLE);
        assert!((f.fairness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_drops_with_starvation() {
        let mut f = FairnessTracker::new();
        f.a.record(160.0, 160.0, IDLE); // fully fed
        f.b.record(160.0, 40.0, IDLE); // starved
        assert!((f.fairness() - 0.25).abs() < 1e-9, "{}", f.fairness());
    }

    #[test]
    fn reset_clears() {
        let mut t = SatisfactionTracker::new();
        t.record(100.0, 50.0, IDLE);
        t.reset();
        assert_eq!(t.satisfaction(), 1.0);
        assert_eq!(t.total_demanded(), 0.0);
    }
}
