//! Cross-layer chaos scenarios: correlated fault windows spanning every
//! injector the stack owns.
//!
//! The individual fault injectors live with the layers they attack —
//! sensor/actuator faults in `dps-rapl`, frame loss and agent crashes in
//! `dps-ctrl`, membership churn in the scheduler. Real incidents are not
//! that polite: a rack losing a PDU takes out its sensors, drops its
//! control-plane links, bounces its nodes **and** shrinks the usable budget
//! in the same minute. A [`ChaosSchedule`] scripts such incidents as
//! [`ChaosWindow`]s: each window names one rack (client cluster) and a set
//! of co-occurring effects. At simulator construction the schedule is
//! *compiled down* into the per-layer schedules
//! ([`ChaosSchedule::unit_fault_events`] →
//! [`dps_rapl::UnitFaultSchedule`], [`ChaosSchedule::ctrl_fault_events`] →
//! [`dps_ctrl::FaultSchedule`]), so the layers never learn about chaos —
//! they just see faults — while churn and budget shocks are sampled live
//! each cycle ([`ChaosSchedule::unit_down`],
//! [`ChaosSchedule::budget_factor_at`]).
//!
//! Everything is plain data: the same schedule plus the same seed
//! reproduces the same incident byte for byte.

use dps_rapl::{ActuatorFault, SensorFault, Topology, UnitFaultEvent};
use dps_sim_core::units::Seconds;

/// One correlated incident: a time window, a target rack, and the effects
/// that fire together inside it. Build with [`ChaosWindow::new`] and the
/// `with_*` methods; every effect defaults to off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosWindow {
    /// Target rack (client-cluster index in the topology).
    pub rack: usize,
    /// Window start (simulated seconds, half-open `[at, until)`).
    pub at: Seconds,
    /// Window end.
    pub until: Seconds,
    /// Sensor fault applied to every unit in the rack.
    pub sensor: Option<SensorFault>,
    /// Actuator fault applied to every unit in the rack.
    pub actuator: Option<ActuatorFault>,
    /// Power-cycle the rack's nodes: their units leave managed membership
    /// and demand nothing for the window, then rejoin.
    pub churn: bool,
    /// Extra per-frame corruption probability on the rack's control-plane
    /// links (framed mode only; `0.0` = none).
    pub frame_loss: f64,
    /// Budget factor in force during the window (`1.0` = untouched);
    /// multiplies the scheduled budget.
    pub budget_factor: f64,
}

impl ChaosWindow {
    /// A window with every effect off.
    pub fn new(rack: usize, at: Seconds, until: Seconds) -> Self {
        Self {
            rack,
            at,
            until,
            sensor: None,
            actuator: None,
            churn: false,
            frame_loss: 0.0,
            budget_factor: 1.0,
        }
    }

    /// Add a sensor fault on every unit in the rack.
    pub fn with_sensor(mut self, fault: SensorFault) -> Self {
        self.sensor = Some(fault);
        self
    }

    /// Add an actuator fault on every unit in the rack.
    pub fn with_actuator(mut self, fault: ActuatorFault) -> Self {
        self.actuator = Some(fault);
        self
    }

    /// Power-cycle the rack's nodes for the window.
    pub fn with_churn(mut self) -> Self {
        self.churn = true;
        self
    }

    /// Add frame corruption on the rack's control-plane links.
    pub fn with_frame_loss(mut self, prob: f64) -> Self {
        self.frame_loss = prob;
        self
    }

    /// Shrink the budget by `factor` for the window.
    pub fn with_budget_factor(mut self, factor: f64) -> Self {
        self.budget_factor = factor;
        self
    }

    fn contains(&self, t: Seconds) -> bool {
        self.at <= t && t < self.until
    }
}

/// A deterministic list of correlated chaos windows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosSchedule {
    windows: Vec<ChaosWindow>,
}

impl ChaosSchedule {
    /// No chaos — the byte-identical default.
    pub fn none() -> Self {
        Self::default()
    }

    /// A schedule from explicit windows.
    pub fn new(windows: Vec<ChaosWindow>) -> Self {
        Self { windows }
    }

    /// The canonical correlated incident on one rack: sensor dropout,
    /// lossy control-plane links, and a budget shock in one window.
    /// (Node churn is left off so the scenario composes with any placement
    /// mode; add it with [`ChaosWindow::with_churn`] on a pinned layout.)
    pub fn correlated(rack: usize, at: Seconds, until: Seconds) -> Self {
        Self::new(vec![ChaosWindow::new(rack, at, until)
            .with_sensor(SensorFault::Dropout)
            .with_frame_loss(0.35)
            .with_budget_factor(0.85)])
    }

    /// Add a window.
    pub fn push(&mut self, window: ChaosWindow) {
        self.windows.push(window);
    }

    /// The scheduled windows.
    pub fn windows(&self) -> &[ChaosWindow] {
        &self.windows
    }

    /// True when no windows are scheduled.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// True when any window power-cycles nodes.
    pub fn has_churn(&self) -> bool {
        self.windows.iter().any(|w| w.churn)
    }

    /// Compile the rack-scoped sensor/actuator effects into per-unit fault
    /// events for the RAPL model's [`dps_rapl::UnitFaultSchedule`].
    pub fn unit_fault_events(&self, topo: &Topology) -> Vec<UnitFaultEvent> {
        let mut events = Vec::new();
        for w in &self.windows {
            for u in topo.cluster_range(w.rack) {
                if let Some(fault) = w.sensor {
                    events.push(UnitFaultEvent::sensor(u, w.at, w.until, fault));
                }
                if let Some(fault) = w.actuator {
                    events.push(UnitFaultEvent::actuator(u, w.at, w.until, fault));
                }
            }
        }
        events
    }

    /// Compile the frame-loss effects into control-plane fault events
    /// (corruption bursts on every node of the rack) for the framed
    /// plane's [`dps_ctrl::FaultSchedule`].
    pub fn ctrl_fault_events(&self, topo: &Topology) -> Vec<dps_ctrl::FaultEvent> {
        let nodes_per_rack = topo.nodes_per_cluster;
        let mut events = Vec::new();
        for w in &self.windows {
            if w.frame_loss > 0.0 {
                for k in 0..nodes_per_rack {
                    events.push(dps_ctrl::FaultEvent::CorruptBurst {
                        node: w.rack * nodes_per_rack + k,
                        at: w.at,
                        until: w.until,
                        prob: w.frame_loss,
                    });
                }
            }
        }
        events
    }

    /// Whether `unit` is chaos-churned (its node powered down) at time `t`.
    pub fn unit_down(&self, topo: &Topology, unit: usize, t: Seconds) -> bool {
        self.windows
            .iter()
            .any(|w| w.churn && w.contains(t) && topo.cluster_of(unit) == w.rack)
    }

    /// The combined chaos budget factor at time `t` (product of the
    /// factors of all active windows).
    pub fn budget_factor_at(&self, t: Seconds) -> f64 {
        self.windows
            .iter()
            .filter(|w| w.contains(t))
            .map(|w| w.budget_factor)
            .product()
    }

    /// A conservative lower bound on the instantaneous chaos budget factor
    /// (product of every window's factor — reached only if all windows
    /// overlap, so always ≤ the true minimum's lower bound requirement).
    pub fn min_budget_factor(&self) -> f64 {
        self.windows.iter().map(|w| w.budget_factor).product()
    }

    /// Checks window sanity against the topology: rack in range, ordered
    /// finite windows, `frame_loss` in `[0, 1]`, `budget_factor` finite in
    /// `(0, 1]`.
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        for (i, w) in self.windows.iter().enumerate() {
            if w.rack >= topo.clusters {
                return Err(format!(
                    "chaos window {i}: rack {} out of range (topology has {} clusters)",
                    w.rack, topo.clusters
                ));
            }
            if !(w.at.is_finite() && w.until.is_finite() && 0.0 <= w.at && w.at < w.until) {
                return Err(format!(
                    "chaos window {i}: need 0 <= at < until, got [{}, {})",
                    w.at, w.until
                ));
            }
            if !(w.frame_loss.is_finite() && (0.0..=1.0).contains(&w.frame_loss)) {
                return Err(format!(
                    "chaos window {i}: frame_loss must be in [0,1], got {}",
                    w.frame_loss
                ));
            }
            if !(w.budget_factor.is_finite() && 0.0 < w.budget_factor && w.budget_factor <= 1.0) {
                return Err(format!(
                    "chaos window {i}: budget_factor must be finite in (0,1], got {}",
                    w.budget_factor
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(2, 2, 2) // 2 racks x 2 nodes x 2 sockets = 8 units
    }

    #[test]
    fn empty_schedule_has_no_effects() {
        let s = ChaosSchedule::none();
        let t = topo();
        assert!(s.is_empty());
        assert!(!s.has_churn());
        assert!(s.unit_fault_events(&t).is_empty());
        assert!(s.ctrl_fault_events(&t).is_empty());
        assert_eq!(s.budget_factor_at(100.0), 1.0);
        assert_eq!(s.min_budget_factor(), 1.0);
        assert!(!s.unit_down(&t, 0, 100.0));
        s.validate(&t).unwrap();
    }

    #[test]
    fn window_compiles_to_rack_scoped_unit_faults() {
        let t = topo();
        let s = ChaosSchedule::new(vec![ChaosWindow::new(1, 10.0, 20.0)
            .with_sensor(SensorFault::Dropout)
            .with_actuator(ActuatorFault::DropWrites)]);
        s.validate(&t).unwrap();
        let events = s.unit_fault_events(&t);
        // Rack 1 is units 4..8; one sensor + one actuator event each.
        assert_eq!(events.len(), 8);
        let units: Vec<usize> = events.iter().map(|e| e.unit).collect();
        assert!(units.iter().all(|&u| (4..8).contains(&u)), "{units:?}");
    }

    #[test]
    fn frame_loss_targets_rack_nodes() {
        let t = topo();
        let s = ChaosSchedule::new(vec![ChaosWindow::new(0, 5.0, 9.0).with_frame_loss(0.5)]);
        let events = s.ctrl_fault_events(&t);
        assert_eq!(events.len(), 2); // rack 0 = nodes 0 and 1
        for e in &events {
            match *e {
                dps_ctrl::FaultEvent::CorruptBurst {
                    node,
                    at,
                    until,
                    prob,
                } => {
                    assert!(node < 2);
                    assert_eq!((at, until, prob), (5.0, 9.0, 0.5));
                }
                ref other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn churn_marks_rack_units_down_inside_window() {
        let t = topo();
        let s = ChaosSchedule::new(vec![ChaosWindow::new(0, 10.0, 20.0).with_churn()]);
        assert!(s.has_churn());
        assert!(s.unit_down(&t, 0, 10.0));
        assert!(s.unit_down(&t, 3, 19.9));
        assert!(!s.unit_down(&t, 4, 15.0), "other rack untouched");
        assert!(!s.unit_down(&t, 0, 9.9), "before window");
        assert!(!s.unit_down(&t, 0, 20.0), "half-open end");
    }

    #[test]
    fn budget_factors_compose_multiplicatively() {
        let s = ChaosSchedule::new(vec![
            ChaosWindow::new(0, 0.0, 100.0).with_budget_factor(0.9),
            ChaosWindow::new(1, 50.0, 100.0).with_budget_factor(0.8),
        ]);
        assert!((s.budget_factor_at(10.0) - 0.9).abs() < 1e-12);
        assert!((s.budget_factor_at(60.0) - 0.72).abs() < 1e-12);
        assert_eq!(s.budget_factor_at(100.0), 1.0);
        assert!((s.min_budget_factor() - 0.72).abs() < 1e-12);
    }

    #[test]
    fn correlated_builds_the_canonical_incident() {
        let t = topo();
        let s = ChaosSchedule::correlated(0, 30.0, 60.0);
        s.validate(&t).unwrap();
        assert_eq!(s.windows().len(), 1);
        let w = s.windows()[0];
        assert_eq!(w.sensor, Some(SensorFault::Dropout));
        assert!(w.frame_loss > 0.0);
        assert!(w.budget_factor < 1.0);
        assert!(!w.churn);
    }

    #[test]
    fn validate_rejects_nonsense() {
        let t = topo();
        let bad_rack = ChaosSchedule::new(vec![ChaosWindow::new(7, 0.0, 1.0)]);
        assert!(bad_rack.validate(&t).unwrap_err().contains("rack"));
        let bad_window = ChaosSchedule::new(vec![ChaosWindow::new(0, 5.0, 5.0)]);
        assert!(bad_window.validate(&t).is_err());
        let bad_loss = ChaosSchedule::new(vec![ChaosWindow::new(0, 0.0, 1.0).with_frame_loss(1.5)]);
        assert!(bad_loss.validate(&t).unwrap_err().contains("frame_loss"));
        let bad_budget =
            ChaosSchedule::new(vec![ChaosWindow::new(0, 0.0, 1.0).with_budget_factor(0.0)]);
        assert!(bad_budget
            .validate(&t)
            .unwrap_err()
            .contains("budget_factor"));
    }
}
