//! The server↔client wire protocol — re-exported from [`dps_ctrl`].
//!
//! The 3-byte frame codec and the ideal latency link grew into a full
//! control-plane subsystem (lossy links, node agents, a budget-safe
//! controller) and moved to the `dps-ctrl` crate; this module keeps the
//! original paths (`dps_cluster::protocol::{Frame, LatencyLink, ...}`)
//! working. See [`dps_ctrl::frame`] for the protocol itself and
//! [`dps_ctrl::plane`] for the event-driven control plane built on it.

pub use dps_ctrl::frame::{watts_to_wire, wire_slack, Frame, LatencyLink, DECIWATT};
