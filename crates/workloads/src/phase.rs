//! Phase-structured power-demand programs.
//!
//! A program maps *work position* (seconds of execution at full speed) to
//! instantaneous power demand. Position, not wall time, is the domain:
//! when a power cap slows the application down, the same demand trace plays
//! out stretched in wall-clock time — matching how a real capped application
//! behaves and how the paper defines power demand (§3.1).

use dps_sim_core::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// The shape of demand within one phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PhaseShape {
    /// Constant demand for the whole phase.
    Constant(Watts),
    /// Linear ramp from `from` to `to` across the phase — produces the
    /// diverse first derivatives of Fig. 2 (fast 20→160 W rises, slow
    /// 160→70 W decays).
    Ramp {
        /// Demand at the start of the phase.
        from: Watts,
        /// Demand at the end of the phase.
        to: Watts,
    },
}

impl PhaseShape {
    /// Demand at fraction `f ∈ [0, 1]` through the phase.
    #[inline]
    pub fn demand_at(&self, f: f64) -> Watts {
        let f = f.clamp(0.0, 1.0);
        match *self {
            PhaseShape::Constant(w) => w,
            PhaseShape::Ramp { from, to } => from + (to - from) * f,
        }
    }

    /// Peak demand over the phase.
    pub fn peak(&self) -> Watts {
        match *self {
            PhaseShape::Constant(w) => w,
            PhaseShape::Ramp { from, to } => from.max(to),
        }
    }
}

/// One phase: a shape held for `duration` seconds of work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Work-seconds the phase lasts when never throttled.
    pub duration: Seconds,
    /// Demand shape across the phase.
    pub shape: PhaseShape,
}

impl Phase {
    /// Constant-demand phase.
    pub fn constant(duration: Seconds, watts: Watts) -> Self {
        Self {
            duration,
            shape: PhaseShape::Constant(watts),
        }
    }

    /// Ramp phase.
    pub fn ramp(duration: Seconds, from: Watts, to: Watts) -> Self {
        Self {
            duration,
            shape: PhaseShape::Ramp { from, to },
        }
    }
}

/// A complete demand program: an ordered list of phases.
///
/// ```
/// use dps_workloads::{DemandProgram, Phase};
/// let p = DemandProgram::new(vec![
///     Phase::constant(10.0, 40.0),
///     Phase::ramp(5.0, 40.0, 160.0),
///     Phase::constant(20.0, 160.0),
/// ]);
/// assert_eq!(p.total_work(), 35.0);
/// assert_eq!(p.demand_at(0.0), 40.0);
/// assert_eq!(p.demand_at(12.5), 100.0); // halfway up the ramp
/// assert_eq!(p.demand_at(999.0), 0.0);  // past the end
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandProgram {
    phases: Vec<Phase>,
    /// Cumulative end positions, same length as `phases`, for O(log n) lookup.
    cumulative: Vec<Seconds>,
}

impl DemandProgram {
    /// Builds a program from phases.
    ///
    /// # Panics
    /// Panics if there are no phases or any phase has non-positive duration.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a program needs at least one phase");
        let mut cumulative = Vec::with_capacity(phases.len());
        let mut acc = 0.0;
        for (i, p) in phases.iter().enumerate() {
            assert!(
                p.duration.is_finite() && p.duration > 0.0,
                "phase {i} must have positive duration, got {}",
                p.duration
            );
            acc += p.duration;
            cumulative.push(acc);
        }
        Self { phases, cumulative }
    }

    /// The phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total work in seconds (uncapped duration).
    pub fn total_work(&self) -> Seconds {
        *self.cumulative.last().expect("non-empty")
    }

    /// Demand at work position `pos`; 0 outside `[0, total_work)`.
    pub fn demand_at(&self, pos: Seconds) -> Watts {
        if pos < 0.0 || pos >= self.total_work() {
            return 0.0;
        }
        // Binary search over cumulative end positions: first phase whose end
        // exceeds pos.
        let idx = self.cumulative.partition_point(|&end| end <= pos);
        let phase = &self.phases[idx];
        let start = if idx == 0 {
            0.0
        } else {
            self.cumulative[idx - 1]
        };
        let f = (pos - start) / phase.duration;
        phase.shape.demand_at(f)
    }

    /// Peak demand across the whole program.
    pub fn peak_demand(&self) -> Watts {
        self.phases
            .iter()
            .map(|p| p.shape.peak())
            .fold(0.0, f64::max)
    }

    /// Samples the uncapped demand trace at `period`-second spacing.
    pub fn sample(&self, period: Seconds) -> dps_sim_core::TimeSeries {
        assert!(period > 0.0);
        let mut ts = dps_sim_core::TimeSeries::new(period);
        let n = (self.total_work() / period).ceil() as usize;
        for i in 0..n {
            ts.push(self.demand_at(i as f64 * period));
        }
        ts
    }

    /// Fraction of (uncapped) time the demand exceeds `threshold` — the
    /// paper's workload-classification statistic ("Above 110 W", Table 2).
    pub fn fraction_above(&self, threshold: Watts) -> f64 {
        // Sample at fine granularity; ramps make closed-form fiddly.
        self.sample(0.25).fraction_above(threshold)
    }

    /// Returns a copy with every phase duration multiplied by `factor`
    /// (used by calibration to hit published durations).
    pub fn scale_work(&self, factor: f64) -> DemandProgram {
        assert!(factor.is_finite() && factor > 0.0, "scale must be positive");
        DemandProgram::new(
            self.phases
                .iter()
                .map(|p| Phase {
                    duration: p.duration * factor,
                    shape: p.shape,
                })
                .collect(),
        )
    }

    /// Concatenates programs into one, separated by idle gaps of
    /// `gap_duration` seconds at `gap_power` Watts — a job *queue* flattened
    /// into a single demand trace (submission gaps between jobs look like
    /// low-power phases to the managers, exactly as on a real cluster).
    ///
    /// # Panics
    /// Panics if `programs` is empty or the gap duration is negative.
    pub fn concat(programs: &[DemandProgram], gap_duration: Seconds, gap_power: Watts) -> Self {
        assert!(!programs.is_empty(), "need at least one program");
        assert!(gap_duration >= 0.0, "gap must be non-negative");
        let mut phases = Vec::new();
        for (i, p) in programs.iter().enumerate() {
            if i > 0 && gap_duration > 0.0 {
                phases.push(Phase::constant(gap_duration, gap_power.max(0.0)));
            }
            phases.extend_from_slice(p.phases());
        }
        DemandProgram::new(phases)
    }

    /// Returns a copy with every demand value multiplied by `factor`,
    /// clamped to `[0, ceiling]` (per-socket variation).
    pub fn scale_demand(&self, factor: f64, ceiling: Watts) -> DemandProgram {
        assert!(factor.is_finite() && factor > 0.0);
        let clamp = |w: Watts| (w * factor).clamp(0.0, ceiling);
        DemandProgram::new(
            self.phases
                .iter()
                .map(|p| Phase {
                    duration: p.duration,
                    shape: match p.shape {
                        PhaseShape::Constant(w) => PhaseShape::Constant(clamp(w)),
                        PhaseShape::Ramp { from, to } => PhaseShape::Ramp {
                            from: clamp(from),
                            to: clamp(to),
                        },
                    },
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_phase() -> DemandProgram {
        DemandProgram::new(vec![
            Phase::constant(10.0, 40.0),
            Phase::ramp(5.0, 40.0, 160.0),
            Phase::constant(20.0, 160.0),
        ])
    }

    #[test]
    fn total_work_sums_phases() {
        assert_eq!(three_phase().total_work(), 35.0);
    }

    #[test]
    fn demand_lookup_inside_phases() {
        let p = three_phase();
        assert_eq!(p.demand_at(0.0), 40.0);
        assert_eq!(p.demand_at(9.99), 40.0);
        assert_eq!(p.demand_at(10.0), 40.0); // ramp start
        assert!((p.demand_at(15.0 - 1e-9) - 160.0).abs() < 1e-3); // ramp end
        assert_eq!(p.demand_at(20.0), 160.0);
    }

    #[test]
    fn demand_outside_is_zero() {
        let p = three_phase();
        assert_eq!(p.demand_at(-1.0), 0.0);
        assert_eq!(p.demand_at(35.0), 0.0);
        assert_eq!(p.demand_at(100.0), 0.0);
    }

    #[test]
    fn ramp_interpolates_linearly() {
        let shape = PhaseShape::Ramp {
            from: 20.0,
            to: 160.0,
        };
        assert_eq!(shape.demand_at(0.0), 20.0);
        assert_eq!(shape.demand_at(0.5), 90.0);
        assert_eq!(shape.demand_at(1.0), 160.0);
        assert_eq!(shape.demand_at(2.0), 160.0); // clamped
        assert_eq!(shape.peak(), 160.0);
    }

    #[test]
    fn falling_ramp_peak_is_start() {
        let shape = PhaseShape::Ramp {
            from: 160.0,
            to: 70.0,
        };
        assert_eq!(shape.peak(), 160.0);
        assert_eq!(shape.demand_at(0.5), 115.0);
    }

    #[test]
    fn peak_demand_across_program() {
        assert_eq!(three_phase().peak_demand(), 160.0);
    }

    #[test]
    fn fraction_above_matches_structure() {
        // 10s at 40, 5s ramping 40→160 (above 110 for the last ~2.08s),
        // 20s at 160 → roughly (2.08+20)/35 ≈ 0.63.
        let f = three_phase().fraction_above(110.0);
        assert!((f - 0.63).abs() < 0.03, "fraction {f}");
    }

    #[test]
    fn sample_covers_duration() {
        let ts = three_phase().sample(1.0);
        assert_eq!(ts.len(), 35);
        assert_eq!(ts.values()[0], 40.0);
        assert_eq!(*ts.values().last().unwrap(), 160.0);
    }

    #[test]
    fn scale_work_preserves_shape() {
        let p = three_phase().scale_work(2.0);
        assert_eq!(p.total_work(), 70.0);
        assert_eq!(p.demand_at(20.0), 40.0); // first phase now 20 s
        assert_eq!(p.peak_demand(), 160.0);
    }

    #[test]
    fn scale_demand_clamps_to_ceiling() {
        let p = three_phase().scale_demand(1.5, 165.0);
        assert_eq!(p.demand_at(0.0), 60.0);
        assert_eq!(p.peak_demand(), 165.0); // 240 clamped
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_program_rejected() {
        DemandProgram::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_duration_phase_rejected() {
        DemandProgram::new(vec![Phase::constant(0.0, 50.0)]);
    }

    #[test]
    fn concat_joins_with_gaps() {
        let a = DemandProgram::new(vec![Phase::constant(10.0, 100.0)]);
        let b = DemandProgram::new(vec![Phase::constant(5.0, 150.0)]);
        let joined = DemandProgram::concat(&[a, b], 3.0, 20.0);
        assert_eq!(joined.total_work(), 18.0);
        assert_eq!(joined.demand_at(5.0), 100.0);
        assert_eq!(joined.demand_at(11.0), 20.0); // in the gap
        assert_eq!(joined.demand_at(14.0), 150.0);
    }

    #[test]
    fn concat_zero_gap_back_to_back() {
        let a = DemandProgram::new(vec![Phase::constant(4.0, 60.0)]);
        let joined = DemandProgram::concat(&[a.clone(), a], 0.0, 0.0);
        assert_eq!(joined.total_work(), 8.0);
        assert_eq!(joined.phases().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one program")]
    fn concat_empty_rejected() {
        DemandProgram::concat(&[], 1.0, 0.0);
    }

    #[test]
    fn many_phases_lookup_consistent() {
        // Cross-check binary search against linear scan.
        let phases: Vec<Phase> = (0..100)
            .map(|i| Phase::constant(1.0 + (i % 7) as f64, (i % 150) as f64))
            .collect();
        let p = DemandProgram::new(phases.clone());
        let mut pos = 0.0;
        for phase in &phases {
            let mid = pos + phase.duration / 2.0;
            assert_eq!(p.demand_at(mid), phase.shape.demand_at(0.5));
            pos += phase.duration;
        }
    }
}
