//! Workload substrate: phase-based power-demand models calibrated to the
//! DPS paper's benchmark tables.
//!
//! The paper evaluates on 11 Apache Spark (HiBench) applications and 8 NAS
//! Parallel Benchmarks (Tables 2–4). Neither stack can run here, so this
//! crate reproduces what the power managers actually *see* and *affect*:
//!
//! 1. **Demand traces.** Each workload is a [`phase::DemandProgram`] — power
//!    demand as a function of *work position* (the paper's "power demand" is
//!    "the power consumption that an application would exhibit without a
//!    cap", §3.1). Programs are generated per workload family with seeded
//!    randomness reproducing the published phase structure: long/short/mixed
//!    phase durations, diverse peaks, diverse first derivatives (Fig. 2).
//! 2. **A power→performance model.** When a socket is granted less power
//!    than it demands, progress slows ([`perf::PerfModel`]); the workload's
//!    wall-clock trace stretches, which is exactly the *throughput time*
//!    metric the paper reports.
//! 3. **A calibrated catalog.** [`catalog`] carries the published per-
//!    workload statistics (duration under the constant 110 W cap, power
//!    class, % time above 110 W); [`generator`] synthesizes programs and
//!    [`generator::calibrate`] rescales total work so the simulated duration
//!    under a constant 110 W cap matches the published duration.
//! 4. **A runtime.** [`runtime::RunningWorkload`] advances a program under
//!    per-window power grants, supports back-to-back repeated runs with idle
//!    gaps (how the testbed keeps the paired cluster busy), and logs the
//!    per-run throughput times.
//! 5. **Trace playback.** [`playback`] turns recorded `time,value` power
//!    logs (e.g. real RAPL traces) into demand programs, so the whole
//!    pipeline can replay measured workloads instead of synthetic ones.

#![warn(missing_docs)]

pub mod catalog;
pub mod generator;
pub mod perf;
pub mod phase;
pub mod playback;
pub mod runtime;

pub use catalog::{PowerClass, Suite, WorkloadSpec};
pub use generator::build_program;
pub use perf::PerfModel;
pub use phase::{DemandProgram, Phase, PhaseShape};
pub use runtime::RunningWorkload;
