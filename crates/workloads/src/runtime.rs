//! Workload execution state under per-window power grants.
//!
//! A [`RunningWorkload`] advances its demand program by `rate × dt` work-
//! seconds per control window, where the rate comes from the power actually
//! granted. It records a throughput time per completed run and (optionally)
//! restarts after an idle gap — the testbed keeps a pair of clusters busy by
//! repeating the shorter workload until the longer one finishes (§6.3:
//! "multiple runs are in need to match one run of the Spark workload"; the
//! inter-run gap is why short NPB runs "look like a power phase").

use crate::perf::PerfModel;
use crate::phase::DemandProgram;
use dps_sim_core::units::{Seconds, Watts};

/// Execution state of one workload instance.
#[derive(Debug, Clone)]
pub struct RunningWorkload {
    program: DemandProgram,
    perf: PerfModel,
    /// Work position within the current run.
    position: Seconds,
    /// Total wall-clock time elapsed.
    elapsed: Seconds,
    /// Wall-clock time the current run started.
    run_start: Seconds,
    /// Completed-run throughput times.
    completed: Vec<Seconds>,
    /// Whether to restart after completing a run.
    restart: bool,
    /// Idle time between runs (job submission, data staging).
    idle_gap: Seconds,
    /// Remaining idle gap before the next run starts.
    gap_remaining: Seconds,
}

impl RunningWorkload {
    /// Creates a one-shot workload (no restart).
    pub fn once(program: DemandProgram, perf: PerfModel) -> Self {
        Self {
            program,
            perf,
            position: 0.0,
            elapsed: 0.0,
            run_start: 0.0,
            completed: Vec::new(),
            restart: false,
            idle_gap: 0.0,
            gap_remaining: 0.0,
        }
    }

    /// Creates a workload that restarts after each completion, idling
    /// `idle_gap` seconds between runs.
    pub fn repeating(program: DemandProgram, perf: PerfModel, idle_gap: Seconds) -> Self {
        assert!(idle_gap >= 0.0, "idle gap must be non-negative");
        Self {
            idle_gap,
            restart: true,
            ..Self::once(program, perf)
        }
    }

    /// The underlying program.
    pub fn program(&self) -> &DemandProgram {
        &self.program
    }

    /// Instantaneous power demand (0 during inter-run gaps and after a
    /// non-restarting workload finishes).
    pub fn demand(&self) -> Watts {
        if self.gap_remaining > 0.0 || self.is_done() {
            0.0
        } else {
            self.program.demand_at(self.position)
        }
    }

    /// Whether a one-shot workload has completed (repeating workloads are
    /// never done).
    pub fn is_done(&self) -> bool {
        !self.restart && !self.completed.is_empty()
    }

    /// Number of completed runs.
    pub fn runs_completed(&self) -> usize {
        self.completed.len()
    }

    /// Throughput times of completed runs.
    pub fn run_durations(&self) -> &[Seconds] {
        &self.completed
    }

    /// Total elapsed wall-clock time.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Fraction of the current run's work completed, `[0, 1]`.
    pub fn progress(&self) -> f64 {
        (self.position / self.program.total_work()).clamp(0.0, 1.0)
    }

    /// Current work position within the run (for multi-socket demand
    /// lookup against per-socket program variants).
    pub fn position(&self) -> Seconds {
        self.position
    }

    /// Whether the workload is between runs (inside the idle gap).
    pub fn in_gap(&self) -> bool {
        self.gap_remaining > 0.0
    }

    /// Swaps in a new program for the *next* run — per-run realisation
    /// variance ("the Spark workloads demonstrate such variable performance
    /// between different runs", §6.1). Only valid at a run boundary.
    ///
    /// # Panics
    /// Panics if called mid-run (work already done on the current program).
    pub fn replace_program(&mut self, program: DemandProgram) {
        assert!(
            self.position == 0.0,
            "programs can only be swapped at a run boundary (position {})",
            self.position
        );
        self.program = program;
    }

    /// Advances one control window of length `dt` with `granted` Watts.
    /// Returns the work-seconds of progress made.
    pub fn advance(&mut self, granted: Watts, dt: Seconds) -> Seconds {
        self.advance_inner(Some(granted), 1.0, dt)
    }

    /// Advances one window at an externally computed progress `rate` (e.g.
    /// the mean of per-socket rates when several sockets execute the job in
    /// lock-step). The rate is held constant across the window.
    pub fn advance_with_rate(&mut self, rate: f64, dt: Seconds) -> Seconds {
        debug_assert!((0.0..=1.0 + 1e-9).contains(&rate), "rate {rate}");
        self.advance_inner(None, rate, dt)
    }

    fn advance_inner(&mut self, granted: Option<Watts>, fixed_rate: f64, dt: Seconds) -> Seconds {
        debug_assert!(dt > 0.0);
        self.elapsed += dt;
        if self.is_done() {
            return 0.0;
        }

        let mut remaining_dt = dt;
        let mut progressed = 0.0;

        // Consume any inter-run gap first.
        if self.gap_remaining > 0.0 {
            let consumed = self.gap_remaining.min(remaining_dt);
            self.gap_remaining -= consumed;
            remaining_dt -= consumed;
            if remaining_dt <= 0.0 {
                return 0.0;
            }
            // Gap just ended: the new run starts now.
            self.run_start = self.elapsed - remaining_dt;
        }

        // Advance work, handling at most a few run completions per window
        // (loop guards against zero-length pathologies).
        for _ in 0..8 {
            if remaining_dt <= 0.0 {
                break;
            }
            let rate = match granted {
                Some(g) => {
                    let demand = self.program.demand_at(self.position);
                    self.perf.rate(demand, g)
                }
                None => fixed_rate.max(1e-6),
            };
            let work_left = self.program.total_work() - self.position;
            let step_work = rate * remaining_dt;

            if step_work < work_left {
                self.position += step_work;
                progressed += step_work;
                remaining_dt = 0.0;
            } else {
                // Run completes within this window at the exact sub-step time.
                let dt_to_finish = work_left / rate;
                progressed += work_left;
                remaining_dt -= dt_to_finish;
                let finish_time = self.elapsed - remaining_dt;
                self.completed.push(finish_time - self.run_start);
                self.position = 0.0;
                if !self.restart {
                    break;
                }
                let gap = self.idle_gap;
                if gap >= remaining_dt {
                    self.gap_remaining = gap - remaining_dt;
                    self.run_start = self.elapsed + self.gap_remaining;
                    remaining_dt = 0.0;
                } else {
                    remaining_dt -= gap;
                    self.run_start = self.elapsed - remaining_dt;
                }
            }
        }
        progressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    fn flat_program(duration: Seconds, watts: Watts) -> DemandProgram {
        DemandProgram::new(vec![Phase::constant(duration, watts)])
    }

    fn linear_perf() -> PerfModel {
        PerfModel::linear(0.0)
    }

    #[test]
    fn full_power_completes_in_nominal_time() {
        let mut w = RunningWorkload::once(flat_program(100.0, 150.0), linear_perf());
        for _ in 0..100 {
            w.advance(150.0, 1.0);
        }
        assert!(w.is_done());
        assert_eq!(w.runs_completed(), 1);
        assert!((w.run_durations()[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn half_power_doubles_duration() {
        let mut w = RunningWorkload::once(flat_program(100.0, 150.0), linear_perf());
        let mut steps = 0;
        while !w.is_done() && steps < 1000 {
            w.advance(75.0, 1.0);
            steps += 1;
        }
        assert!(w.is_done());
        assert!(
            (w.run_durations()[0] - 200.0).abs() < 1.0,
            "{:?}",
            w.run_durations()
        );
    }

    #[test]
    fn demand_follows_program_position() {
        let program = DemandProgram::new(vec![
            Phase::constant(10.0, 50.0),
            Phase::constant(10.0, 150.0),
        ]);
        let mut w = RunningWorkload::once(program, linear_perf());
        assert_eq!(w.demand(), 50.0);
        for _ in 0..10 {
            w.advance(165.0, 1.0);
        }
        assert_eq!(w.demand(), 150.0);
    }

    #[test]
    fn throttled_demand_trace_stretches() {
        // 10 s high phase at 160 W; at 80 W grant (linear) the phase should
        // persist for ~20 wall-clock seconds.
        let program = DemandProgram::new(vec![
            Phase::constant(10.0, 160.0),
            Phase::constant(10.0, 40.0),
        ]);
        let mut w = RunningWorkload::once(program, linear_perf());
        let mut high_windows = 0;
        for _ in 0..40 {
            if w.demand() > 110.0 {
                high_windows += 1;
                w.advance(80.0, 1.0);
            } else {
                w.advance(165.0, 1.0);
            }
        }
        assert!((19..=21).contains(&high_windows), "{high_windows}");
    }

    #[test]
    fn sub_step_completion_time_exact() {
        // 10.5 work-seconds at full speed with 1 s windows: finishes at 10.5.
        let mut w = RunningWorkload::once(flat_program(10.5, 100.0), linear_perf());
        for _ in 0..11 {
            w.advance(100.0, 1.0);
        }
        assert!(w.is_done());
        assert!((w.run_durations()[0] - 10.5).abs() < 1e-9);
    }

    #[test]
    fn one_shot_demand_zero_after_done() {
        let mut w = RunningWorkload::once(flat_program(2.0, 100.0), linear_perf());
        for _ in 0..5 {
            w.advance(100.0, 1.0);
        }
        assert!(w.is_done());
        assert_eq!(w.demand(), 0.0);
        assert_eq!(w.advance(100.0, 1.0), 0.0);
    }

    #[test]
    fn repeating_restarts_with_gap() {
        let mut w = RunningWorkload::repeating(flat_program(5.0, 100.0), linear_perf(), 3.0);
        // Run 1: 5 s; gap 3 s; run 2: 5 s → two completions by t=13.
        for _ in 0..13 {
            w.advance(100.0, 1.0);
        }
        assert_eq!(w.runs_completed(), 2);
        assert!((w.run_durations()[0] - 5.0).abs() < 1e-9);
        assert!((w.run_durations()[1] - 5.0).abs() < 1e-9);
        assert!(!w.is_done(), "repeating workloads are never done");
    }

    #[test]
    fn demand_zero_during_gap() {
        let mut w = RunningWorkload::repeating(flat_program(2.0, 120.0), linear_perf(), 5.0);
        w.advance(120.0, 1.0);
        w.advance(120.0, 1.0); // run completes exactly at t=2
        w.advance(120.0, 1.0); // inside gap
        assert_eq!(w.demand(), 0.0);
    }

    #[test]
    fn gap_throughput_times_unaffected_by_gap() {
        let mut w = RunningWorkload::repeating(flat_program(4.0, 100.0), linear_perf(), 2.0);
        for _ in 0..30 {
            w.advance(100.0, 1.0);
        }
        for d in w.run_durations() {
            assert!((d - 4.0).abs() < 1e-9, "run duration {d}");
        }
        assert_eq!(w.runs_completed(), 5); // 30 / (4+2)
    }

    #[test]
    fn progress_fraction_monotone() {
        let mut w = RunningWorkload::once(flat_program(10.0, 100.0), linear_perf());
        let mut prev = 0.0;
        for _ in 0..9 {
            w.advance(50.0, 1.0);
            assert!(w.progress() >= prev);
            prev = w.progress();
        }
        assert!(prev < 1.0);
    }

    #[test]
    fn advance_with_rate_matches_advance_for_equivalent_rate() {
        let program = flat_program(20.0, 100.0);
        let mut a = RunningWorkload::once(program.clone(), linear_perf());
        let mut b = RunningWorkload::once(program, linear_perf());
        // Linear perf, constant demand 100, grant 50 → rate 0.5 throughout.
        for _ in 0..50 {
            a.advance(50.0, 1.0);
            b.advance_with_rate(0.5, 1.0);
        }
        assert_eq!(a.runs_completed(), b.runs_completed());
        assert!((a.run_durations()[0] - b.run_durations()[0]).abs() < 1e-9);
    }

    #[test]
    fn position_accessor_tracks_progress() {
        let mut w = RunningWorkload::once(flat_program(10.0, 100.0), linear_perf());
        assert_eq!(w.position(), 0.0);
        w.advance_with_rate(1.0, 3.0);
        assert!((w.position() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn replace_program_at_boundary_changes_next_run() {
        let mut w = RunningWorkload::repeating(flat_program(5.0, 100.0), linear_perf(), 3.0);
        for _ in 0..6 {
            w.advance(100.0, 1.0); // run 1 done at t=5, now in gap
        }
        assert!(w.in_gap());
        w.replace_program(flat_program(8.0, 120.0));
        for _ in 0..20 {
            w.advance(165.0, 1.0);
        }
        assert!(w.runs_completed() >= 2);
        assert!((w.run_durations()[0] - 5.0).abs() < 1e-9);
        assert!(
            (w.run_durations()[1] - 8.0).abs() < 1e-9,
            "{:?}",
            w.run_durations()
        );
    }

    #[test]
    #[should_panic(expected = "run boundary")]
    fn replace_program_mid_run_panics() {
        let mut w = RunningWorkload::once(flat_program(10.0, 100.0), linear_perf());
        w.advance(100.0, 1.0);
        w.replace_program(flat_program(5.0, 50.0));
    }

    #[test]
    fn concave_model_slows_less_than_linear() {
        let program = flat_program(100.0, 160.0);
        let mut lin = RunningWorkload::once(program.clone(), PerfModel::linear(15.0));
        let mut con = RunningWorkload::once(program, PerfModel::paper_default());
        let mut lin_t = 0;
        let mut con_t = 0;
        for t in 1..10_000 {
            if !lin.is_done() {
                lin.advance(110.0, 1.0);
                lin_t = t;
            }
            if !con.is_done() {
                con.advance(110.0, 1.0);
                con_t = t;
            }
            if lin.is_done() && con.is_done() {
                break;
            }
        }
        assert!(con_t < lin_t, "concave {con_t} vs linear {lin_t}");
    }
}
