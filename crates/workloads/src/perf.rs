//! Power→performance model.
//!
//! The managers' figure of merit is *throughput time*: how long a workload
//! takes under a given cap schedule. The link between granted power and
//! execution speed is the standard DVFS-derived relationship: dynamic power
//! scales superlinearly with frequency while throughput scales roughly
//! linearly, so performance as a function of power is concave. We model the
//! progress rate of a phase demanding `d` Watts but granted `g ≤ d` Watts as
//!
//! ```text
//! rate = ((g - idle) / (d - idle)) ^ alpha ,   alpha ∈ (0, 1]
//! ```
//!
//! with `rate = 1` when the phase demands no more than idle power (I/O or
//! setup phases are not slowed by power caps). `alpha = 1` is the
//! pessimistic linear model; the default `alpha = 0.7` reflects the concave
//! frequency/power curve measured on RAPL-capped Xeons (e.g. Zhang &
//! Hoffmann, ASPLOS '16). The evaluation's *shape* is insensitive to alpha
//! (all managers are measured through the same model); the ablation bench
//! sweeps it.

use dps_sim_core::units::Watts;
use serde::{Deserialize, Serialize};

/// Concave power-to-progress model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    /// Concavity exponent in `(0, 1]`.
    pub alpha: f64,
    /// Idle power subtracted from both demand and grant — only power above
    /// idle does computational work.
    pub idle_power: Watts,
}

impl PerfModel {
    /// Creates a model.
    ///
    /// # Panics
    /// Panics unless `alpha ∈ (0, 1]` and `idle_power ≥ 0`.
    pub fn new(alpha: f64, idle_power: Watts) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0,1], got {alpha}"
        );
        assert!(
            idle_power.is_finite() && idle_power >= 0.0,
            "idle_power must be non-negative"
        );
        Self { alpha, idle_power }
    }

    /// The default used throughout the experiments.
    pub fn paper_default() -> Self {
        Self::new(0.7, 15.0)
    }

    /// Strictly linear model (progress ∝ granted power).
    pub fn linear(idle_power: Watts) -> Self {
        Self::new(1.0, idle_power)
    }

    /// Progress rate in `(0, 1]` for a phase demanding `demand` Watts that
    /// was granted `granted` Watts.
    pub fn rate(&self, demand: Watts, granted: Watts) -> f64 {
        let d = demand - self.idle_power;
        if d <= 0.0 {
            // Phase does not need compute power: caps cannot slow it.
            return 1.0;
        }
        let g = (granted - self.idle_power).max(0.0);
        let ratio = (g / d).clamp(0.0, 1.0);
        // Floor far above zero denies deadlock: even a minimum-cap socket
        // makes some progress (a real capped CPU still retires
        // instructions). min_cap=40 W over 15 W idle on a 165 W demand gives
        // ratio ≈ 0.17 → rate ≈ 0.29 at alpha 0.7, so the floor below only
        // guards pathological configurations.
        ratio.powf(self.alpha).max(1e-3)
    }

    /// Inverse helper for tests/oracle reasoning: the grant needed to achieve
    /// `rate` against `demand`.
    pub fn grant_for_rate(&self, demand: Watts, rate: f64) -> Watts {
        let d = demand - self.idle_power;
        if d <= 0.0 {
            return self.idle_power;
        }
        let rate = rate.clamp(0.0, 1.0);
        self.idle_power + d * rate.powf(1.0 / self.alpha)
    }
}

impl Default for PerfModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grant_full_speed() {
        let m = PerfModel::paper_default();
        assert_eq!(m.rate(160.0, 160.0), 1.0);
        assert_eq!(m.rate(160.0, 200.0), 1.0); // over-grant clamps
    }

    #[test]
    fn idle_phase_never_slowed() {
        let m = PerfModel::paper_default();
        assert_eq!(m.rate(10.0, 0.0), 1.0);
        assert_eq!(m.rate(15.0, 40.0), 1.0);
    }

    #[test]
    fn linear_model_proportional() {
        let m = PerfModel::linear(0.0);
        assert!((m.rate(100.0, 50.0) - 0.5).abs() < 1e-12);
        assert!((m.rate(160.0, 40.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn concave_model_above_linear() {
        let m = PerfModel::new(0.7, 0.0);
        let lin = PerfModel::linear(0.0);
        for grant in [20.0, 50.0, 80.0, 120.0] {
            assert!(
                m.rate(160.0, grant) >= lin.rate(160.0, grant),
                "concave must dominate linear at grant {grant}"
            );
        }
    }

    #[test]
    fn rate_monotone_in_grant() {
        let m = PerfModel::paper_default();
        let mut prev = 0.0;
        for g in (0..=165).step_by(5) {
            let r = m.rate(160.0, g as f64);
            assert!(r >= prev, "rate must be monotone, broke at {g}");
            prev = r;
        }
    }

    #[test]
    fn rate_strictly_positive() {
        let m = PerfModel::paper_default();
        assert!(m.rate(165.0, 0.0) > 0.0);
        assert!(m.rate(165.0, 15.0) > 0.0);
    }

    #[test]
    fn idle_power_subtracted() {
        let m = PerfModel::new(1.0, 15.0);
        // demand 115 (100 useful), grant 65 (50 useful) → rate 0.5.
        assert!((m.rate(115.0, 65.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn grant_for_rate_inverts_rate() {
        let m = PerfModel::paper_default();
        for demand in [60.0, 110.0, 160.0] {
            for target in [0.25, 0.5, 0.9, 1.0] {
                let g = m.grant_for_rate(demand, target);
                let r = m.rate(demand, g);
                assert!(
                    (r - target).abs() < 1e-9,
                    "demand {demand} target {target}: {r}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1]")]
    fn bad_alpha_rejected() {
        PerfModel::new(1.5, 0.0);
    }
}
