//! The published workload catalog (paper Tables 2, 3 and 4).
//!
//! Each entry carries the statistics the paper reports: mean throughput time
//! under the constant 110 W/socket allocation, the data size, the power
//! class, and the fraction of time spent above 110 W. The generator uses
//! these to synthesize demand programs whose statistics match.

use serde::{Deserialize, Serialize};

/// Which benchmark suite a workload comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// HiBench Spark machine-learning / micro workloads.
    Spark,
    /// NAS Parallel Benchmarks.
    Npb,
}

/// The paper's power classification (Table 2 / §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerClass {
    /// `< 10%` of time above 110 W; runs with 1 executor × 8 cores.
    Low,
    /// `> 10%` of time above 110 W; 48 executors × 8 cores.
    Mid,
    /// `> 2/3` of time above 110 W; 48 executors × 8 cores.
    High,
}

/// One catalog entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name as the paper prints it.
    pub name: &'static str,
    /// Originating suite.
    pub suite: Suite,
    /// Input data size in GB (Tables 2 and 4).
    pub data_size_gb: f64,
    /// Mean throughput time in seconds under the constant 110 W cap.
    pub duration_110w: f64,
    /// Power class.
    pub class: PowerClass,
    /// Fraction of (uncapped) time above 110 W, `[0, 1]`.
    pub frac_above_110: f64,
}

impl WorkloadSpec {
    /// Whether this workload is "phase-rich" (Spark) or sustained (NPB).
    pub fn is_sustained(&self) -> bool {
        self.suite == Suite::Npb
    }
}

/// Table 2: Spark benchmark workloads.
pub const SPARK_WORKLOADS: &[WorkloadSpec] = &[
    WorkloadSpec {
        name: "Wordcount",
        suite: Suite::Spark,
        data_size_gb: 3.1,
        duration_110w: 44.36,
        class: PowerClass::Low,
        frac_above_110: 0.0018,
    },
    WorkloadSpec {
        name: "Sort",
        suite: Suite::Spark,
        data_size_gb: 0.3135,
        duration_110w: 38.48,
        class: PowerClass::Low,
        frac_above_110: 0.0010,
    },
    WorkloadSpec {
        name: "Terasort",
        suite: Suite::Spark,
        data_size_gb: 3.0,
        duration_110w: 54.53,
        class: PowerClass::Low,
        frac_above_110: 0.0007,
    },
    WorkloadSpec {
        name: "Repartition",
        suite: Suite::Spark,
        data_size_gb: 3.0,
        duration_110w: 44.92,
        class: PowerClass::Low,
        frac_above_110: 0.0020,
    },
    WorkloadSpec {
        name: "Kmeans",
        suite: Suite::Spark,
        data_size_gb: 224.4,
        duration_110w: 1467.08,
        class: PowerClass::Mid,
        frac_above_110: 0.4758,
    },
    WorkloadSpec {
        name: "LDA",
        suite: Suite::Spark,
        data_size_gb: 4.1,
        duration_110w: 1254.12,
        class: PowerClass::Mid,
        frac_above_110: 0.5154,
    },
    WorkloadSpec {
        name: "Linear",
        suite: Suite::Spark,
        data_size_gb: 745.1,
        duration_110w: 928.36,
        class: PowerClass::Mid,
        frac_above_110: 0.1453,
    },
    WorkloadSpec {
        name: "LR",
        suite: Suite::Spark,
        data_size_gb: 52.2,
        duration_110w: 499.37,
        class: PowerClass::Mid,
        frac_above_110: 0.1669,
    },
    WorkloadSpec {
        name: "Bayes",
        suite: Suite::Spark,
        data_size_gb: 70.1,
        duration_110w: 342.18,
        class: PowerClass::Mid,
        frac_above_110: 0.3320,
    },
    WorkloadSpec {
        name: "RF",
        suite: Suite::Spark,
        data_size_gb: 32.8,
        duration_110w: 415.71,
        class: PowerClass::Mid,
        frac_above_110: 0.3578,
    },
    WorkloadSpec {
        name: "GMM",
        suite: Suite::Spark,
        data_size_gb: 8.6,
        duration_110w: 2432.43,
        class: PowerClass::High,
        frac_above_110: 0.6896,
    },
];

/// Table 4: NAS Parallel Benchmark applications. All are high-power: the
/// paper measures "over 99% of the time power is above 110 W".
pub const NPB_WORKLOADS: &[WorkloadSpec] = &[
    WorkloadSpec {
        name: "BT",
        suite: Suite::Npb,
        data_size_gb: 247.1,
        duration_110w: 3509.29,
        class: PowerClass::High,
        frac_above_110: 0.995,
    },
    WorkloadSpec {
        name: "CG",
        suite: Suite::Npb,
        data_size_gb: 21.8,
        duration_110w: 1839.00,
        class: PowerClass::High,
        frac_above_110: 0.995,
    },
    WorkloadSpec {
        name: "EP",
        suite: Suite::Npb,
        data_size_gb: 4096.0,
        duration_110w: 6019.07,
        class: PowerClass::High,
        frac_above_110: 0.995,
    },
    WorkloadSpec {
        name: "FT",
        suite: Suite::Npb,
        data_size_gb: 400.0,
        duration_110w: 152.83,
        class: PowerClass::High,
        frac_above_110: 0.995,
    },
    WorkloadSpec {
        name: "IS",
        suite: Suite::Npb,
        data_size_gb: 128.0,
        duration_110w: 416.80,
        class: PowerClass::High,
        frac_above_110: 0.995,
    },
    WorkloadSpec {
        name: "LU",
        suite: Suite::Npb,
        data_size_gb: 296.5,
        duration_110w: 1895.89,
        class: PowerClass::High,
        frac_above_110: 0.995,
    },
    WorkloadSpec {
        name: "MG",
        suite: Suite::Npb,
        data_size_gb: 400.0,
        duration_110w: 143.82,
        class: PowerClass::High,
        frac_above_110: 0.995,
    },
    WorkloadSpec {
        name: "SP",
        suite: Suite::Npb,
        data_size_gb: 494.2,
        duration_110w: 3563.23,
        class: PowerClass::High,
        frac_above_110: 0.995,
    },
];

/// Looks up any workload by (case-insensitive) name across both suites.
pub fn find(name: &str) -> Option<&'static WorkloadSpec> {
    SPARK_WORKLOADS
        .iter()
        .chain(NPB_WORKLOADS.iter())
        .find(|w| w.name.eq_ignore_ascii_case(name))
}

/// All low-power Spark workloads (the "micro" applications).
pub fn low_power_spark() -> Vec<&'static WorkloadSpec> {
    SPARK_WORKLOADS
        .iter()
        .filter(|w| w.class == PowerClass::Low)
        .collect()
}

/// All mid- and high-power Spark workloads (the 7 ML applications).
pub fn mid_high_spark() -> Vec<&'static WorkloadSpec> {
    SPARK_WORKLOADS
        .iter()
        .filter(|w| w.class != PowerClass::Low)
        .collect()
}

/// All NPB workloads.
pub fn npb() -> Vec<&'static WorkloadSpec> {
    NPB_WORKLOADS.iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_sizes_match_paper() {
        assert_eq!(SPARK_WORKLOADS.len(), 11);
        assert_eq!(NPB_WORKLOADS.len(), 8);
        assert_eq!(low_power_spark().len(), 4);
        assert_eq!(mid_high_spark().len(), 7);
    }

    #[test]
    fn classification_consistent_with_fraction() {
        for w in SPARK_WORKLOADS {
            match w.class {
                PowerClass::Low => assert!(w.frac_above_110 < 0.10, "{}", w.name),
                PowerClass::Mid => assert!(
                    w.frac_above_110 >= 0.10 && w.frac_above_110 <= 2.0 / 3.0,
                    "{}",
                    w.name
                ),
                PowerClass::High => assert!(w.frac_above_110 > 2.0 / 3.0, "{}", w.name),
            }
        }
        for w in NPB_WORKLOADS {
            assert_eq!(w.class, PowerClass::High);
            assert!(w.frac_above_110 > 0.99);
        }
    }

    #[test]
    fn find_is_case_insensitive_and_cross_suite() {
        assert_eq!(find("gmm").unwrap().name, "GMM");
        assert_eq!(find("ep").unwrap().suite, Suite::Npb);
        assert_eq!(find("nonexistent"), None);
    }

    #[test]
    fn gmm_is_only_high_power_spark() {
        let high: Vec<_> = SPARK_WORKLOADS
            .iter()
            .filter(|w| w.class == PowerClass::High)
            .collect();
        assert_eq!(high.len(), 1);
        assert_eq!(high[0].name, "GMM");
    }

    #[test]
    fn durations_positive() {
        for w in SPARK_WORKLOADS.iter().chain(NPB_WORKLOADS) {
            assert!(w.duration_110w > 0.0, "{}", w.name);
        }
    }

    #[test]
    fn npb_sustained_spark_not() {
        assert!(find("BT").unwrap().is_sustained());
        assert!(!find("LDA").unwrap().is_sustained());
    }
}
